"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The environment has setuptools without the `wheel` package, so PEP 660
editable installs fail; this file enables the classic develop-mode path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
