#!/usr/bin/env python
"""Two-cluster encounter: the paper's g_1192768 motif, scaled down.

The paper's largest instance is two Gaussian clusters in one domain.
This example throws two such clusters at each other and follows the
encounter with the SPDA formulation, demonstrating the part of the paper
that static assignment cannot do: as the clusters move and merge, the
measured per-cluster loads shift and SPDA re-partitions the Morton-ordered
cluster list every step.

Usage: python examples/galaxy_collision.py [n_particles] [steps]
"""

import sys

import numpy as np

from repro import NCUBE2, ParallelBarnesHut, SchemeConfig
from repro.bh.particles import ParticleSet


def two_cluster_encounter(n: int, seed: int = 7) -> ParticleSet:
    """Two Gaussian clusters with closing bulk velocities."""
    rng = np.random.default_rng(seed)
    half = n // 2
    c1 = np.array([30.0, 45.0, 50.0])
    c2 = np.array([70.0, 55.0, 50.0])
    pos = np.concatenate((
        rng.normal(c1, 4.0, size=(half, 3)),
        rng.normal(c2, 4.0, size=(n - half, 3)),
    ))
    pos = np.clip(pos, 0.0, 100.0 - 1e-9)
    vel = np.zeros((n, 3))
    vel[:half, 0] = +0.5   # moving right
    vel[half:, 0] = -0.5   # moving left
    return ParticleSet(positions=pos, masses=np.full(n, 1.0 / n),
                       velocities=vel)


def main(n: int = 4000, steps: int = 3) -> None:
    particles = two_cluster_encounter(n)
    from repro.bh.particles import Box
    root = Box(np.full(3, 50.0), 50.0)

    config = SchemeConfig(scheme="spda", alpha=0.8, mode="force",
                          softening=0.5, grid_level=3, leaf_capacity=16)
    sim = ParallelBarnesHut(particles, config, p=16, profile=NCUBE2,
                            root=root)
    print(f"two {n // 2}-particle clusters, SPDA on a virtual "
          f"16-processor nCUBE2, {steps} steps\n")
    result = sim.run(steps=steps, dt=0.05)

    print(f"virtual parallel time: {result.parallel_time:.2f} s")
    print(f"force computations:    {result.force_computations()}\n")

    print("per-step particle counts per processor (SPDA rebalancing):")
    for s, step in enumerate(result.steps):
        counts = [sr.n_local for sr in step]
        shipped = sum(sr.force.records_shipped for sr in step)
        print(f"  step {s}: min={min(counts):5d} max={max(counts):5d} "
              f"shipped records={shipped}")

    sep = np.linalg.norm(
        result.positions[: n // 2].mean(axis=0)
        - result.positions[n // 2:].mean(axis=0)
    )
    print(f"\ncluster separation after {steps} steps: {sep:.1f} "
          f"(started at 41.2)")
    assert sep < 41.2, "clusters should be approaching"
    print("phase breakdown (max over processors):")
    for phase, t in sorted(result.phase_breakdown().items(),
                           key=lambda kv: -kv[1]):
        print(f"  {phase:<28s} {t:10.3f} s")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(n, steps)
