#!/usr/bin/env python
"""Strong-scaling study across schemes and machines (paper Section 5).

Runs one instance at several processor counts on the virtual nCUBE2 and
CM5, printing runtime, speedup and efficiency per scheme — a compact
version of the measurements behind Tables 1 and 5.  Efficiencies are
computed the paper's way: the serial time is extrapolated from the
instruction-count model (13 + 16 k^2 per interaction, 14 per MAC),
because the big instances never fit on one node.

Usage: python examples/scaling_study.py [instance] [scale]
  e.g. python examples/scaling_study.py g_160535 0.05
"""

import sys

from repro import (
    CM5,
    NCUBE2,
    ParallelBarnesHut,
    SchemeConfig,
    efficiency,
    format_table,
    make_instance,
    serial_time_estimate,
    speedup,
)


def study(instance: str, scale: float) -> None:
    particles = make_instance(instance, scale=scale)
    print(f"instance {instance} at scale {scale}: "
          f"{particles.n} particles\n")

    for profile in (NCUBE2, CM5):
        rows = []
        for scheme in ("spsa", "spda", "dpda"):
            for p in (4, 16, 64):
                config = SchemeConfig(scheme=scheme, alpha=0.67,
                                      mode="potential", grid_level=3,
                                      leaf_capacity=16)
                sim = ParallelBarnesHut(particles, config, p=p,
                                        profile=profile)
                result = sim.run()
                t_serial = serial_time_estimate(
                    result.total_flops(config.degree), profile)
                rows.append([
                    scheme, p, result.parallel_time,
                    speedup(t_serial, result.parallel_time),
                    efficiency(t_serial, result.parallel_time, p),
                ])
        print(format_table(
            ["scheme", "p", "T_p (s)", "speedup", "efficiency"],
            rows, title=f"strong scaling on the virtual {profile.name}",
        ))
        print()


if __name__ == "__main__":
    instance = sys.argv[1] if len(sys.argv) > 1 else "g_160535"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.03
    study(instance, scale)
