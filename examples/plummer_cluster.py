#!/usr/bin/env python
"""A Plummer cluster evolved with the parallel treecode (paper Fig. 8).

Generates the paper's sample Plummer distribution (Fig. 8 shows 5000
particles), prints an ASCII density projection, then advances it several
leapfrog steps with DPDA-parallel Barnes-Hut forces on a virtual CM5,
monitoring energy drift and the DPDA load balance across steps.

Usage: python examples/plummer_cluster.py [n_particles] [steps]
"""

import sys

import numpy as np

from repro import CM5, ParallelBarnesHut, SchemeConfig, plummer
from repro.bh.integrator import kinetic_energy, potential_energy


def ascii_projection(positions: np.ndarray, width: int = 56,
                     height: int = 22, extent: float = 3.0) -> str:
    """A terminal-friendly x-y density projection (Fig. 8 stand-in)."""
    shades = " .:-=+*#%@"
    grid = np.zeros((height, width))
    x = ((positions[:, 0] + extent) / (2 * extent) * width).astype(int)
    y = ((positions[:, 1] + extent) / (2 * extent) * height).astype(int)
    ok = (x >= 0) & (x < width) & (y >= 0) & (y < height)
    np.add.at(grid, (y[ok], x[ok]), 1.0)
    if grid.max() > 0:
        grid = np.log1p(grid) / np.log1p(grid.max())
    rows = []
    for r in range(height):
        rows.append("".join(
            shades[min(int(v * (len(shades) - 1)), len(shades) - 1)]
            for v in grid[r]
        ))
    return "\n".join(rows)


def main(n: int = 5000, steps: int = 4) -> None:
    particles = plummer(n, seed=1994)
    print(f"Plummer distribution of {n} particles (paper Fig. 8):\n")
    print(ascii_projection(particles.positions))

    e_kin0 = kinetic_energy(particles)
    e_pot0 = potential_energy(particles, softening=0.05)
    e0 = e_kin0 + e_pot0
    print(f"\ninitial energy: kinetic {e_kin0:.4f}  potential {e_pot0:.4f}"
          f"  total {e0:.4f}")
    print(f"virial ratio -2K/W = {-2 * e_kin0 / e_pot0:.3f} "
          f"(1.0 = equilibrium)\n")

    config = SchemeConfig(scheme="dpda", alpha=0.8, mode="force",
                          softening=0.05, leaf_capacity=16)
    sim = ParallelBarnesHut(particles, config, p=8, profile=CM5)
    print(f"advancing {steps} steps on a virtual 8-processor CM5 (DPDA)...")
    result = sim.run(steps=steps, dt=0.01)

    print(f"  virtual parallel time: {result.parallel_time:.2f} s "
          f"({result.parallel_time / steps:.2f} s/step)")
    for s, step in enumerate(result.steps):
        n_per_rank = [sr.n_local for sr in step]
        print(f"  step {s}: particles/processor min={min(n_per_rank)} "
              f"max={max(n_per_rank)}")

    from repro.bh.particles import ParticleSet
    evolved = ParticleSet(positions=result.positions,
                          masses=particles.masses,
                          velocities=result.velocities)
    e1 = kinetic_energy(evolved) + potential_energy(evolved, softening=0.05)
    print(f"\nenergy drift after {steps} steps: "
          f"{abs(e1 - e0) / abs(e0) * 100:.3f} %")
    print("\nfinal projection:\n")
    print(ascii_projection(evolved.positions))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, steps)
