#!/usr/bin/env python
"""Quickstart: serial Barnes-Hut, accuracy check, and a parallel run.

Runs in a few seconds:

1. builds a Plummer sphere and computes serial Barnes-Hut potentials,
   comparing them against exact O(n^2) summation at several alpha values
   (the accuracy/cost dial of Fig. 1);
2. runs the same problem through the SPDA parallel formulation on a
   virtual 16-processor nCUBE2 and prints the phase breakdown the paper
   reports in Table 3.

Usage: python examples/quickstart.py [n_particles]
"""

import sys

import numpy as np

from repro import (
    NCUBE2,
    ParallelBarnesHut,
    SchemeConfig,
    compute_potentials,
    direct_potentials,
    format_table,
    fractional_percent_error,
    plummer,
)


def main(n: int = 3000) -> None:
    particles = plummer(n, seed=2024)
    print(f"Plummer sphere with {n} particles "
          f"(half-mass radius ~1.3 scale radii)\n")

    # --- serial treecode: accuracy vs alpha -----------------------------
    exact = direct_potentials(particles)
    rows = []
    for alpha in (0.5, 0.67, 0.8, 1.0):
        res = compute_potentials(particles, alpha=alpha)
        rows.append([
            alpha,
            fractional_percent_error(res.values, exact),
            res.mac_tests,
            res.cluster_interactions + res.p2p_interactions,
        ])
    print(format_table(
        ["alpha", "frac % error", "MAC tests", "interactions F"],
        rows, title="Serial Barnes-Hut: the alpha dial", precision=3,
    ))

    # --- parallel run on the virtual nCUBE2 -----------------------------
    config = SchemeConfig(scheme="spda", alpha=0.67, mode="potential",
                          grid_level=2)
    sim = ParallelBarnesHut(particles, config, p=16, profile=NCUBE2)
    result = sim.run()

    err = fractional_percent_error(result.values, exact)
    print(f"\nSPDA on a virtual 16-processor nCUBE2:")
    print(f"  parallel time (virtual)    {result.parallel_time:9.2f} s")
    print(f"  fractional % error         {err:9.3f} %")
    print(f"  force computations F       {result.force_computations():9d}")
    print(f"  force-phase load imbalance {result.load_imbalance():9.2f}x")
    print("  phase breakdown (max over processors):")
    for phase, t in sorted(result.phase_breakdown().items(),
                           key=lambda kv: -kv[1]):
        print(f"    {phase:<28s} {t:10.3f} s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
