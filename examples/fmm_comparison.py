#!/usr/bin/env python
"""Barnes-Hut vs the fast multipole method (paper Section 2).

The paper's background section contrasts the two hierarchical methods:
Barnes-Hut computes particle-cluster interactions (O(n log n)); FMM adds
cluster-cluster interactions through local expansions (O(n)) and has
proven error bounds.  This example evaluates the same Plummer sphere's
potentials with both, against exact direct summation, showing the
accuracy/operator-count trade-off.

Usage: python examples/fmm_comparison.py [n_particles]
"""

import sys
import time

import numpy as np

from repro import (
    compute_potentials,
    direct_potentials,
    format_table,
    fractional_percent_error,
    plummer,
)
from repro.bh.fmm import fmm_potentials


def main(n: int = 2000) -> None:
    particles = plummer(n, seed=42)
    exact = direct_potentials(particles)
    rows = []

    for alpha in (0.5, 0.8):
        t0 = time.time()
        res = compute_potentials(particles, alpha=alpha, degree=0)
        rows.append([
            f"Barnes-Hut a={alpha}",
            fractional_percent_error(res.values, exact),
            res.cluster_interactions + res.p2p_interactions,
            time.time() - t0,
        ])

    for degree, theta in ((3, 0.7), (5, 0.7)):
        t0 = time.time()
        phi, stats = fmm_potentials(particles, degree=degree, theta=theta,
                                    return_stats=True)
        rows.append([
            f"FMM k={degree} theta={theta}",
            fractional_percent_error(phi, exact),
            stats.m2l_pairs + stats.p2p_pairs,
            time.time() - t0,
        ])

    print(format_table(
        ["method", "frac % error", "interactions/pairs", "wall (s)"],
        rows,
        title=f"Barnes-Hut vs FMM on a {n}-particle Plummer sphere",
        precision=4,
    ))
    print("\nNote: FMM pair counts are cell-cell operations (each worth "
          "O(k^4) flops),\nBarnes-Hut counts are particle-cluster/"
          "particle-particle interactions.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
