"""Tests for the analysis utilities (flops model, errors, metrics,
Kruskal-Weiss, tables)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.error import fractional_error, fractional_percent_error
from repro.analysis.flops import (
    FLOPS_PER_MAC,
    interaction_flops,
    serial_time_estimate,
    traversal_flops,
)
from repro.analysis.kruskal_weiss import (
    expected_completion_time,
    imbalance_overhead,
    min_clusters,
)
from repro.analysis.metrics import efficiency, phase_table, speedup
from repro.analysis.tables import format_table
from repro.machine.profiles import NCUBE2


class TestFlopsModel:
    def test_paper_instruction_counts(self):
        """Section 5.2.1: 13 + 16 k^2 per interaction, 14 per MAC."""
        assert FLOPS_PER_MAC == 14.0
        assert interaction_flops(4) == 13 + 16 * 16
        assert interaction_flops(6) == 13 + 16 * 36

    def test_degree_zero_charged_as_k1(self):
        assert interaction_flops(0) == interaction_flops(1) == 29

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            interaction_flops(-1)

    def test_traversal_flops(self):
        assert traversal_flops(10, 5, 2, degree=3) == pytest.approx(
            14 * 10 + (13 + 144) * 5 + 29 * 2
        )

    def test_serial_time(self):
        t = serial_time_estimate(NCUBE2.flops_per_second, NCUBE2)
        assert t == pytest.approx(1.0)
        with pytest.raises(ValueError):
            serial_time_estimate(-1, NCUBE2)


class TestFractionalError:
    def test_definition(self):
        exact = np.array([3.0, 4.0])
        approx = np.array([3.0, 5.0])
        assert fractional_error(approx, exact) == pytest.approx(1.0 / 5.0)

    def test_percent(self):
        assert fractional_percent_error(np.array([1.1]), np.array([1.0])) \
            == pytest.approx(10.0)

    def test_identical_is_zero(self):
        v = np.random.default_rng(0).normal(size=20)
        assert fractional_error(v, v) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fractional_error(np.zeros(3), np.zeros(4))

    def test_zero_norm_rejected(self):
        with pytest.raises(ValueError):
            fractional_error(np.ones(3), np.zeros(3))

    def test_matrix_inputs_flattened(self):
        exact = np.ones((4, 3))
        approx = np.ones((4, 3)) * 1.01
        assert fractional_error(approx, exact) == pytest.approx(0.01)


class TestMetrics:
    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 25.0) == 4.0
        assert efficiency(100.0, 25.0, 8) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)

    def test_phase_table_zero_fills_paper_phases(self):
        from repro.machine.engine import Engine
        rep = Engine(2).run(lambda comm: comm.compute(5.0))
        table = phase_table(rep)
        assert table["load balancing"] == 0.0
        assert "force computation" in table


class TestKruskalWeiss:
    def test_zero_variance_is_perfect(self):
        t = expected_completion_time(64, 8, mean=2.0, std=0.0)
        assert t == pytest.approx(16.0)

    def test_overhead_shrinks_with_more_clusters(self):
        """The Section 4.1 argument: increasing r grows work linearly but
        overhead only as sqrt(r), so the ratio falls."""
        ratios = [imbalance_overhead(r, 16, 1.0, 1.0)
                  for r in (16, 64, 256, 1024)]
        assert ratios == sorted(ratios, reverse=True)

    def test_overhead_grows_with_p(self):
        assert imbalance_overhead(256, 64, 1.0, 1.0) > \
            imbalance_overhead(256, 4, 1.0, 1.0)

    def test_min_clusters_rule(self):
        assert min_clusters(1) == 1
        assert min_clusters(16) == math.ceil(16 * math.log(16))
        # at r = p log p the overhead ratio is O(1)
        p = 64
        r = min_clusters(p)
        assert imbalance_overhead(r, p, 1.0, 1.0) < 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_completion_time(0, 4, 1.0, 1.0)
        with pytest.raises(ValueError):
            expected_completion_time(4, 4, -1.0, 1.0)
        with pytest.raises(ValueError):
            imbalance_overhead(4, 4, 0.0, 1.0)
        with pytest.raises(ValueError):
            min_clusters(0)

    @given(st.integers(2, 512), st.integers(2, 64))
    def test_time_at_least_essential_work(self, r, p):
        t = expected_completion_time(r, p, 1.0, 0.5)
        assert t >= r / p


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["p", "time"], [[16, 1.5], [64, 0.25]],
                           title="Table 1")
        lines = out.splitlines()
        assert lines[0] == "Table 1"
        assert "p" in lines[2] and "time" in lines[2]
        assert "1.50" in out and "0.25" in out

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=4)
        assert "1.2346" in out

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
