"""Tests for critical-path extraction and the trace text reports."""

import numpy as np
import pytest

from repro import ParallelBarnesHut, SchemeConfig, make_instance
from repro.analysis.critical_path import (
    critical_path,
    format_critical_path,
    step_critical_paths,
)
from repro.analysis.trace_report import (
    bytes_matrix,
    format_bytes_matrix,
    phase_waterfall,
)
from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.profiles import NCUBE2

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


class TestHandBuiltChain:
    """A two-rank program whose critical path is known in closed form."""

    def _report(self):
        def main(comm):
            if comm.rank == 1:
                with comm.phase("produce"):
                    comm.compute(100.0)          # 100 s
                comm.send(b"zz", dst=0, tag=4)   # charge 11, arrival +1
            else:
                with comm.phase("consume"):
                    comm.compute(5.0)            # 5 s, then waits
                    comm.recv(src=1, tag=4)      # arrival 112, copy 1
            return comm.now

        return Engine(2, TOY).run(main, tracer=True)

    def test_chain_length_equals_parallel_time(self):
        rep = self._report()
        cp = critical_path(rep.trace)
        assert cp.length == pytest.approx(rep.parallel_time, abs=1e-12)

    def test_chain_structure(self):
        rep = self._report()
        cp = critical_path(rep.trace)
        # produce on rank 1 -> send charge -> network hop -> copy-out on 0.
        kinds = [(s.rank, s.kind) for s in cp.segments]
        assert kinds[0] == (1, "compute")
        assert (0, "network") in kinds
        assert kinds[-1] == (0, "compute")
        by_kind = cp.by_kind()
        assert by_kind["network"] == pytest.approx(1.0)   # one hop of t_h
        assert cp.hops() == 1

    def test_phase_attribution(self):
        rep = self._report()
        phases = critical_path(rep.trace).by_phase()
        assert phases["produce"] == pytest.approx(100.0)
        # The send charge (11 s) happens outside any phase block.
        assert phases["(untracked)"] == pytest.approx(11.0)
        assert phases["(network)"] == pytest.approx(1.0)

    def test_no_messages_single_segment(self):
        def main(comm):
            with comm.phase("solo"):
                comm.compute(float(comm.rank + 1))

        rep = Engine(4, TOY).run(main, tracer=True)
        cp = critical_path(rep.trace)
        assert cp.length == pytest.approx(4.0)
        assert all(s.rank == 3 for s in cp.segments)
        assert cp.hops() == 0

    def test_format_is_readable(self):
        rep = self._report()
        text = format_critical_path(critical_path(rep.trace))
        assert "critical path:" in text
        assert "produce" in text and "network" in text


class TestSimulationChain:
    """The acceptance criterion: on a real dpda run, the chain length
    equals the run's parallel time to 1e-12."""

    @pytest.fixture(scope="class")
    def result(self):
        particles = make_instance("g_5000", scale=0.1, seed=11)
        config = SchemeConfig(scheme="dpda", alpha=0.67, mode="force")
        sim = ParallelBarnesHut(particles, config, p=4, profile=NCUBE2)
        return sim.run(steps=2, trace=True)

    def test_chain_matches_parallel_time(self, result):
        cp = critical_path(result.trace)
        assert cp.length == pytest.approx(result.parallel_time,
                                          abs=1e-12)

    def test_chain_dominated_by_force_phase(self, result):
        phases = critical_path(result.trace).by_phase()
        assert max(phases, key=phases.get) == "force computation"

    def test_per_step_chains(self, result):
        per_step = step_critical_paths(result.trace)
        assert sorted(per_step) == [0, 1]
        for step, cp in per_step.items():
            assert cp.length > 0
            # Each step's chain cannot exceed the whole run.
            assert cp.length <= result.parallel_time + 1e-9

    def test_bytes_matrix_matches_comm_stats(self, result):
        m = bytes_matrix(result.trace)
        assert m.shape == (4, 4)
        assert np.all(np.diag(m) == 0)  # dpda ships no self-traffic bytes?
        for r, rank in enumerate(result.run.ranks):
            assert m[r].sum() == rank.stats.bytes_sent

    def test_recv_bytes_by_tag_closes_the_loop(self, result):
        """Receive-side per-tag volume equals send-side per-tag volume
        machine-wide (reliable-free run: nothing lost or duplicated)."""
        sent: dict[int, int] = {}
        got: dict[int, int] = {}
        for rank in result.run.ranks:
            for tag, n in rank.stats.bytes_by_tag.items():
                sent[tag] = sent.get(tag, 0) + n
            for tag, n in rank.stats.recv_bytes_by_tag.items():
                got[tag] = got.get(tag, 0) + n
        assert sent == got

    def test_waterfall_renders_all_ranks(self, result):
        text = phase_waterfall(result.trace, width=40)
        for r in range(4):
            assert f"rank {r:>3d} |" in text
        assert "legend:" in text
        assert "F=force computation" in text

    def test_bytes_matrix_formatting(self, result):
        text = format_bytes_matrix(result.trace)
        assert "src\\dst" in text and "total" in text
