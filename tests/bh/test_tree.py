"""Tests for tree construction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bh.distributions import plummer, uniform_cube
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import NO_CHILD, Tree, build_tree, cell_box


def simple_ps(n=200, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return ParticleSet(positions=rng.uniform(0, 1, (n, d)),
                       masses=rng.uniform(0.5, 1.5, n))


class TestCellBox:
    def test_root_cell(self):
        root = Box(np.zeros(3), 1.0)
        b = cell_box(root, 0, 0)
        np.testing.assert_allclose(b.center, root.center)
        assert b.half == root.half

    def test_depth_one_octant(self):
        root = Box(np.zeros(3), 1.0)
        b = cell_box(root, 1, 0b011)  # +x, +y, -z
        np.testing.assert_allclose(b.center, [0.5, 0.5, -0.5])
        assert b.half == 0.5

    def test_depth_two_path(self):
        root = Box(np.zeros(2), 1.0)
        # first go to quadrant 0 (-x,-y), then quadrant 3 (+x,+y)
        b = cell_box(root, 2, (0 << 2) | 3)
        np.testing.assert_allclose(b.center, [-0.25, -0.25])
        assert b.half == 0.25

    def test_invalid_key(self):
        root = Box(np.zeros(3), 1.0)
        with pytest.raises(ValueError):
            cell_box(root, 1, 8)
        with pytest.raises(ValueError):
            cell_box(root, -1, 0)
        with pytest.raises(ValueError):
            cell_box(root, 0, 1)


class TestBuildTree:
    def test_leaf_capacity_respected(self):
        ps = simple_ps(500)
        tree = build_tree(ps, leaf_capacity=8)
        for leaf in tree.leaves():
            assert tree.count(int(leaf)) <= 8

    def test_every_particle_in_exactly_one_leaf(self):
        ps = simple_ps(300)
        tree = build_tree(ps, leaf_capacity=4)
        seen = np.concatenate([tree.particle_indices(int(l))
                               for l in tree.leaves()])
        assert sorted(seen.tolist()) == list(range(300))

    def test_node_slices_nest(self):
        """A child's particle slice lies inside its parent's slice."""
        ps = simple_ps(400)
        tree = build_tree(ps, leaf_capacity=4)
        for node in range(tree.nnodes):
            for c in tree.children[node]:
                if c != NO_CHILD:
                    assert tree.start[node] <= tree.start[c]
                    assert tree.end[c] <= tree.end[node]

    def test_children_cover_parent_slice(self):
        ps = simple_ps(400)
        tree = build_tree(ps, leaf_capacity=4)
        for node in range(tree.nnodes):
            kids = [c for c in tree.children[node] if c != NO_CHILD]
            if kids:
                total = sum(tree.count(int(c)) for c in kids)
                assert total == tree.count(node)

    def test_particles_inside_their_node_box(self):
        ps = simple_ps(300)
        tree = build_tree(ps, leaf_capacity=4, collapse_chains=False)
        for node in range(tree.nnodes):
            idx = tree.particle_indices(node)
            box = tree.node_box(node)
            # half-open boundary effects: allow tiny tolerance
            assert np.all(ps.positions[idx] >= box.lo - 1e-12)
            assert np.all(ps.positions[idx] <= box.hi + 1e-12)

    def test_path_key_identifies_cell(self):
        ps = simple_ps(300)
        tree = build_tree(ps, leaf_capacity=4)
        for node in range(0, tree.nnodes, 7):
            b = cell_box(tree.root_box, int(tree.depth[node]),
                         int(tree.path_key[node]))
            np.testing.assert_allclose(b.center, tree.center[node])
            assert b.half == pytest.approx(float(tree.half[node]))

    def test_monopoles(self):
        ps = simple_ps(200)
        tree = build_tree(ps, leaf_capacity=8)
        assert tree.mass[tree.ROOT] == pytest.approx(ps.total_mass)
        np.testing.assert_allclose(tree.com[tree.ROOT],
                                   ps.center_of_mass(), atol=1e-12)

    def test_node_monopole_matches_slice(self):
        ps = simple_ps(300)
        tree = build_tree(ps, leaf_capacity=4)
        for node in range(0, tree.nnodes, 5):
            idx = tree.particle_indices(node)
            sub = ps.subset(idx)
            assert tree.mass[node] == pytest.approx(sub.total_mass)
            np.testing.assert_allclose(tree.com[node], sub.center_of_mass(),
                                       atol=1e-10)

    def test_collapse_chains_shrinks_tree(self):
        """Two tight pairs far apart: chains must be collapsed."""
        pos = np.array([
            [0.1, 0.1, 0.1], [0.1 + 1e-5, 0.1, 0.1],
            [0.9, 0.9, 0.9], [0.9, 0.9 + 1e-5, 0.9],
        ])
        ps = ParticleSet(positions=pos, masses=np.ones(4))
        chained = build_tree(ps, leaf_capacity=1, collapse_chains=False)
        collapsed = build_tree(ps, leaf_capacity=1, collapse_chains=True)
        assert collapsed.nnodes < chained.nnodes
        # both still separate the pairs into singleton leaves
        assert all(collapsed.count(int(l)) <= 1 for l in collapsed.leaves())

    def test_explicit_root_box(self):
        ps = simple_ps(100)
        box = Box(np.full(3, 0.5), 2.0)
        tree = build_tree(ps, box=box)
        assert tree.root_box is box

    def test_particle_outside_root_box_rejected(self):
        ps = simple_ps(100)
        with pytest.raises(ValueError, match="outside"):
            build_tree(ps, box=Box(np.full(3, 10.0), 0.5))

    def test_empty_particles_rejected(self):
        with pytest.raises(ValueError):
            build_tree(ParticleSet.empty(3))

    def test_bad_leaf_capacity(self):
        with pytest.raises(ValueError):
            build_tree(simple_ps(10), leaf_capacity=0)

    def test_max_depth_limits_refinement(self):
        ps = simple_ps(2000)
        tree = build_tree(ps, leaf_capacity=1, max_depth=3)
        assert tree.node_depth_max() <= 3

    def test_max_depth_validated(self):
        with pytest.raises(ValueError):
            build_tree(simple_ps(10), max_depth=0)
        with pytest.raises(ValueError):
            build_tree(simple_ps(10), max_depth=99)

    def test_2d_tree(self):
        ps = simple_ps(200, d=2)
        tree = build_tree(ps, leaf_capacity=4)
        assert tree.dims == 2
        assert tree.children.shape[1] == 4
        seen = np.concatenate([tree.particle_indices(int(l))
                               for l in tree.leaves()])
        assert len(seen) == 200

    def test_children_appended_after_parent(self):
        """The invariant sum_interactions_up relies on."""
        ps = simple_ps(500)
        tree = build_tree(ps, leaf_capacity=4)
        for node in range(tree.nnodes):
            for c in tree.children[node]:
                if c != NO_CHILD:
                    assert c > node

    @settings(deadline=None, max_examples=20)
    @given(st.integers(1, 300), st.integers(1, 16))
    def test_random_invariants(self, n, s):
        rng = np.random.default_rng(n * 31 + s)
        ps = ParticleSet(positions=rng.normal(0, 1, (n, 3)),
                         masses=np.ones(n))
        tree = build_tree(ps, leaf_capacity=s)
        seen = np.concatenate([tree.particle_indices(int(l))
                               for l in tree.leaves()])
        assert sorted(seen.tolist()) == list(range(n))
        assert tree.mass[0] == pytest.approx(float(n))


class TestTreeQueries:
    def test_interactions_sum_up(self):
        ps = simple_ps(100)
        tree = build_tree(ps, leaf_capacity=4)
        leaves = tree.leaves()
        tree.interactions[leaves] = 1
        tree.sum_interactions_up()
        assert tree.interactions[tree.ROOT] == leaves.size

    def test_is_leaf_and_count(self):
        ps = simple_ps(50)
        tree = build_tree(ps, leaf_capacity=100)
        assert tree.is_leaf(tree.ROOT)
        assert tree.count(tree.ROOT) == 50

    def test_remote_defaults(self):
        ps = simple_ps(50)
        tree = build_tree(ps)
        assert not any(tree.is_remote(i) for i in range(tree.nnodes))
