"""Walk-cache invalidation and target-subset evaluation (ISSUE 9).

Acceptance contract: invalidation-surviving walks produce values within
1e-12 of a fresh walk over the repaired tree, with *exactly* equal
interaction counters; subset evaluation matches a fresh subset walk the
same way.
"""

import numpy as np
import pytest

from repro.bh.interaction_lists import (TraversalEngine,
                                        build_interaction_lists,
                                        evaluate_interaction_lists,
                                        subset_interaction_lists)
from repro.bh.mac import BarnesHutMAC
from repro.bh.morton import morton_keys
from repro.bh.multipole import MonopoleExpansion
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import build_tree
from repro.bh.tree_repair import repair_tree

BITS = 10


def make(n=800, seed=0, d=3):
    rng = np.random.default_rng(seed)
    ps = ParticleSet(positions=rng.uniform(-1.0, 1.0, (n, d)),
                     masses=rng.uniform(0.5, 1.5, n))
    box = Box(np.zeros(d), 2.0)
    return ps, box


def counters(r):
    return (r.mac_tests, r.cluster_interactions, r.p2p_interactions)


class TestSubsetEvaluation:
    @pytest.mark.parametrize("method", ["dfs", "frontier"])
    @pytest.mark.parametrize("mode", ["force", "potential"])
    def test_subset_matches_fresh_subset_walk(self, method, mode):
        ps, box = make()
        tree = build_tree(ps, box=box, leaf_capacity=8)
        mac = BarnesHutMAC(alpha=1.2)
        idx = np.sort(np.random.default_rng(1).choice(ps.n, 150,
                                                      replace=False))
        full = build_interaction_lists(tree, ps.positions, mac,
                                       method=method)
        sub = subset_interaction_lists(full, idx)
        ev = MonopoleExpansion(tree)
        got = evaluate_interaction_lists(tree, sub, ps, ev, mode=mode)
        fresh_lists = build_interaction_lists(tree, ps.positions[idx],
                                              mac, method=method)
        want = evaluate_interaction_lists(tree, fresh_lists, ps, ev,
                                          mode=mode)
        assert counters(got) == counters(want)
        np.testing.assert_allclose(got.values, want.values,
                                   rtol=1e-12, atol=1e-12)

    def test_subset_weights_and_node_counts_match(self):
        ps, box = make()
        tree = build_tree(ps, box=box, leaf_capacity=8)
        tree2 = build_tree(ps, box=box, leaf_capacity=8)
        mac = BarnesHutMAC(alpha=1.0)
        idx = np.arange(0, ps.n, 3)
        full = build_interaction_lists(tree, ps.positions, mac)
        sub = subset_interaction_lists(full, idx)
        ev = MonopoleExpansion(tree)
        w_sub = np.zeros(idx.size)
        evaluate_interaction_lists(tree, sub, ps, ev, mode="force",
                                   count_node_interactions=True,
                                   target_weights=w_sub)
        fresh = build_interaction_lists(tree2, ps.positions[idx], mac)
        ev2 = MonopoleExpansion(tree2)
        w_fresh = np.zeros(idx.size)
        evaluate_interaction_lists(tree2, fresh, ps, ev2, mode="force",
                                   count_node_interactions=True,
                                   target_weights=w_fresh)
        np.testing.assert_array_equal(w_sub, w_fresh)
        np.testing.assert_array_equal(tree.interactions, tree2.interactions)


def _repair_engine(n=1200, seed=0, mover_lo=-1.0, mover_hi=-0.6,
                   target_lo=0.5, target_hi=1.0, nmove=30, alpha=1.2):
    """Build an engine + cached walk over targets in one corner, then
    move particles in a (possibly distant) region and repair."""
    ps, box = make(n, seed)
    k0 = morton_keys(ps.positions, box.lo, box.side, BITS)
    tree = build_tree(ps, box=box, leaf_capacity=8, max_depth=BITS,
                      keys=k0)
    mac = BarnesHutMAC(alpha=alpha)
    engine = TraversalEngine(tree, sources=ps, mac=mac)
    tsel = np.flatnonzero((ps.positions > target_lo).all(axis=1))
    targets = ps.positions[tsel].copy()
    base = engine.compute(targets, MonopoleExpansion(tree), mode="force")

    rng = np.random.default_rng(seed + 1)
    movers = np.flatnonzero((ps.positions < mover_hi).all(axis=1))[:nmove]
    pos = ps.positions.copy()
    pos[movers] = rng.uniform(mover_lo, mover_hi, (movers.size, 3))
    ps2 = ParticleSet(positions=pos, masses=ps.masses)
    k1 = morton_keys(ps2.positions, box.lo, box.side, BITS)
    res = repair_tree(tree, ps2, k0, k1, movers)
    assert not res.rebuilt
    engine.apply_repair(res, sources=ps2)
    return engine, ps2, targets, res, base


class TestApplyRepair:
    def test_distant_movers_walk_survives(self):
        engine, ps2, targets, res, _ = _repair_engine()
        before = engine.walks_built
        got = engine.compute(targets, MonopoleExpansion(engine.tree),
                             mode="force")
        assert engine.walks_built == before      # cache hit, no new walk
        assert engine.walks_retained == 1
        fresh = TraversalEngine(res.tree, sources=ps2, mac=engine.mac)
        want = fresh.compute(targets, MonopoleExpansion(res.tree),
                             mode="force")
        assert counters(got) == counters(want)
        np.testing.assert_allclose(got.values, want.values,
                                   rtol=1e-12, atol=1e-12)

    def test_movers_near_targets_evict(self):
        # movers jump right into the target corner: structure the walk
        # descended through changes, so the cached walk must die
        engine, ps2, targets, res, _ = _repair_engine(
            mover_lo=0.6, mover_hi=0.95)
        assert engine.walks_retained == 0
        assert engine.walks_invalidated == 1
        before = engine.walks_built
        got = engine.compute(targets, MonopoleExpansion(engine.tree),
                             mode="force")
        assert engine.walks_built == before + 1  # fresh walk
        fresh = TraversalEngine(res.tree, sources=ps2, mac=engine.mac)
        want = fresh.compute(targets, MonopoleExpansion(res.tree),
                             mode="force")
        assert counters(got) == counters(want)
        np.testing.assert_array_equal(got.values, want.values)

    def test_full_rebuild_clears_cache(self):
        ps, box = make(600)
        k0 = morton_keys(ps.positions, box.lo, box.side, BITS)
        tree = build_tree(ps, box=box, leaf_capacity=8, max_depth=BITS,
                          keys=k0)
        engine = TraversalEngine(tree, sources=ps,
                                 mac=BarnesHutMAC(alpha=1.0))
        engine.compute(ps.positions[:50], MonopoleExpansion(tree))
        rng = np.random.default_rng(9)
        pos = rng.uniform(-1, 1, ps.positions.shape)
        ps2 = ParticleSet(positions=pos, masses=ps.masses)
        k1 = morton_keys(pos, box.lo, box.side, BITS)
        res = repair_tree(tree, ps2, k0, k1, np.arange(ps.n))
        assert res.rebuilt
        engine.apply_repair(res, sources=ps2)
        assert len(engine._cache) == 0
        assert engine.walks_invalidated == 1

    def test_surviving_walk_tracks_new_monopoles(self):
        """A surviving walk must *not* serve stale values: monopole data
        is gathered at eval time from the repaired tree."""
        engine, ps2, targets, res, base = _repair_engine(nmove=60)
        got = engine.compute(targets, MonopoleExpansion(engine.tree),
                             mode="force")
        # movers changed distant mass distribution -> values moved
        assert not np.array_equal(got.values, base.values)

    def test_subset_of_surviving_walk(self):
        engine, ps2, targets, res, _ = _repair_engine()
        idx = np.arange(0, targets.shape[0], 2)
        got = engine.compute(targets, MonopoleExpansion(engine.tree),
                             mode="force", target_subset=idx)
        fresh = TraversalEngine(res.tree, sources=ps2, mac=engine.mac)
        want = fresh.compute(targets[idx], MonopoleExpansion(res.tree),
                             mode="force")
        assert counters(got) == counters(want)
        np.testing.assert_allclose(got.values, want.values,
                                   rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("method", ["dfs", "frontier"])
    def test_walks_record_decisions(self, method):
        ps, box = make(400)
        tree = build_tree(ps, box=box, leaf_capacity=8)
        lists = build_interaction_lists(tree, ps.positions[:64],
                                        BarnesHutMAC(alpha=1.0),
                                        method=method)
        assert lists.tested_node.size == lists.mac_tests
        assert lists.tested_ok.size == lists.mac_tests
        # accepted pairs are exactly the ok-flagged tested pairs
        acc = {(int(n), int(t)) for n, t
               in zip(lists.tested_node[lists.tested_ok],
                      lists.tested_tgt[lists.tested_ok])}
        cl = {(int(n), int(t)) for n, t
              in zip(lists.cluster_node, lists.cluster_tgt)}
        assert acc == cl
