"""Tests for the local-expansion operators and the serial FMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bh.direct import direct_potentials
from repro.bh.distributions import plummer, uniform_cube
from repro.bh.fmm import FMMStats, fmm_potentials
from repro.bh.local_expansion import l2l, l2p, m2l, p2l
from repro.bh.multipole import MultipoleExpansion3D
from repro.bh.particles import ParticleSet


def cloud(n=25, seed=0, radius=0.4):
    rng = np.random.default_rng(seed)
    return (rng.uniform(-radius, radius, (n, 3)),
            rng.uniform(0.2, 1.0, n))


def direct_sum(targets, src, q):
    return np.array([np.sum(q / np.linalg.norm(t - src, axis=1))
                     for t in targets])


class TestM2L:
    def test_converts_far_multipole_to_local(self):
        src, q = cloud()
        exp = MultipoleExpansion3D(8)
        M = exp.p2m(src, q)                      # about the origin
        center = np.array([4.0, 1.0, -2.0])      # local center, far away
        L = m2l(M, -center, 8)                   # multipole rel. to local
        rng = np.random.default_rng(1)
        targets = center + rng.uniform(-0.3, 0.3, (12, 3))
        approx = l2p(L, targets - center, 8)
        np.testing.assert_allclose(approx, direct_sum(targets, src, q),
                                   rtol=1e-6)

    def test_error_falls_with_degree(self):
        src, q = cloud()
        center = np.array([3.0, 0.0, 0.0])
        rng = np.random.default_rng(2)
        targets = center + rng.uniform(-0.2, 0.2, (10, 3))
        exact = direct_sum(targets, src, q)
        errs = []
        for deg in (2, 4, 8):
            exp = MultipoleExpansion3D(deg)
            L = m2l(exp.p2m(src, q), -center, deg)
            errs.append(np.abs(l2p(L, targets - center, deg)
                               - exact).max())
        assert errs[0] > errs[1] > errs[2]

    def test_coincident_centers_rejected(self):
        with pytest.raises(ValueError):
            m2l(np.zeros(9, dtype=complex), np.zeros(3), 2)


class TestL2L:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10**6))
    def test_shift_preserves_field(self, seed):
        rng = np.random.default_rng(seed)
        src = rng.uniform(-0.4, 0.4, (15, 3)) + np.array([5.0, 0.0, 0.0])
        q = rng.uniform(0.2, 1.0, 15)
        center = np.zeros(3)
        L = p2l(src - center, q, 6)
        d = rng.uniform(-0.2, 0.2, 3)
        L_shifted = l2l(L, center - (center + d), 6)
        targets = center + d + rng.uniform(-0.1, 0.1, (6, 3))
        a = l2p(L, targets - center, 6)
        b = l2p(L_shifted, targets - (center + d), 6)
        np.testing.assert_allclose(b, a, atol=1e-9)

    def test_composition(self):
        src, q = cloud(seed=3)
        src = src + np.array([4.0, 4.0, 0.0])
        L = p2l(src, q, 5)
        step = np.array([0.1, -0.05, 0.08])
        two = l2l(l2l(L, step, 5), step, 5)
        one = l2l(L, 2 * step, 5)
        np.testing.assert_allclose(two, one, atol=1e-10)


class TestP2L:
    def test_matches_direct_inside_ball(self):
        src, q = cloud(seed=4)
        src = src + np.array([0.0, 6.0, 0.0])
        L = p2l(src, q, 10)
        rng = np.random.default_rng(5)
        targets = rng.uniform(-0.3, 0.3, (8, 3))
        np.testing.assert_allclose(l2p(L, targets, 10),
                                   direct_sum(targets, src, q), rtol=1e-7)

    def test_source_on_center_rejected(self):
        with pytest.raises(ValueError):
            p2l(np.zeros((1, 3)), np.ones(1), 3)


class TestFMM:
    def test_matches_direct(self):
        ps = plummer(500, seed=6)
        phi = fmm_potentials(ps, degree=5, theta=0.7)
        exact = direct_potentials(ps)
        err = np.linalg.norm(phi - exact) / np.linalg.norm(exact)
        assert err < 1e-4

    def test_accuracy_improves_with_degree(self):
        ps = uniform_cube(400, seed=7)
        exact = direct_potentials(ps)
        errs = []
        for deg in (2, 4, 6):
            phi = fmm_potentials(ps, degree=deg, theta=0.7)
            errs.append(np.linalg.norm(phi - exact))
        assert errs[0] > errs[1] > errs[2]

    def test_stats_populated(self):
        ps = uniform_cube(500, seed=8)
        _, stats = fmm_potentials(ps, degree=3, return_stats=True)
        assert stats.m2l_pairs > 0
        assert stats.p2p_pairs > 0
        assert stats.l2l_shifts > 0

    def test_m2l_pairs_scale_linearly(self):
        """The FMM signature: cell-cell interaction counts grow ~O(n).
        Small trees are lumpy (a new refinement level opens whole
        interaction lists at once), so the check compares n and 2n past
        the first transition."""
        counts = []
        for n in (800, 1600):
            ps = uniform_cube(n, seed=9)
            _, stats = fmm_potentials(ps, degree=2, theta=0.7,
                                      leaf_capacity=8, return_stats=True)
            counts.append(stats.m2l_pairs)
        assert counts[1] < 3.0 * counts[0]

    def test_validation(self):
        ps = uniform_cube(20, seed=10)
        with pytest.raises(ValueError):
            fmm_potentials(ps, degree=0)
        with pytest.raises(ValueError):
            fmm_potentials(ps, theta=0.0)
        rng = np.random.default_rng(11)
        ps2 = ParticleSet(positions=rng.uniform(0, 1, (10, 2)),
                          masses=np.ones(10))
        with pytest.raises(ValueError):
            fmm_potentials(ps2)
