"""Tests for multipole expansions: P2M, M2M, M2P, tree expansions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bh.distributions import plummer
from repro.bh.multipole import (
    MonopoleExpansion,
    MultipoleExpansion2D,
    MultipoleExpansion3D,
    TreeMultipoles,
    irregular_terms,
    n_terms,
    regular_terms,
    spherical_coords,
    spherical_harmonics,
    term_index,
)
from repro.bh.particles import ParticleSet
from repro.bh.tree import build_tree


def cloud(n=40, seed=0, radius=0.5):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-radius, radius, (n, 3))
    q = rng.uniform(0.1, 1.0, n)
    return pos, q


def far_targets(m=15, seed=1, dist=5.0):
    rng = np.random.default_rng(seed)
    t = rng.normal(0, 1, (m, 3))
    return t / np.linalg.norm(t, axis=1, keepdims=True) * dist


def direct_sum(targets, src, q):
    return np.array([np.sum(q / np.linalg.norm(t - src, axis=1))
                     for t in targets])


class TestIndexing:
    def test_term_index_layout(self):
        assert term_index(0, 0) == 0
        assert term_index(1, -1) == 1
        assert term_index(1, 0) == 2
        assert term_index(1, 1) == 3
        assert term_index(2, -2) == 4

    def test_term_index_bounds(self):
        with pytest.raises(ValueError):
            term_index(1, 2)

    def test_n_terms(self):
        assert n_terms(0) == 1
        assert n_terms(4) == 25
        with pytest.raises(ValueError):
            n_terms(-1)


class TestSphericalCoords:
    def test_poles_and_axes(self):
        r, ct, phi = spherical_coords(np.array([[0.0, 0.0, 2.0]]))
        assert r[0] == 2.0 and ct[0] == 1.0
        r, ct, phi = spherical_coords(np.array([[1.0, 0.0, 0.0]]))
        assert ct[0] == pytest.approx(0.0)
        assert phi[0] == pytest.approx(0.0)

    def test_origin_is_safe(self):
        r, ct, phi = spherical_coords(np.zeros((1, 3)))
        assert r[0] == 0.0 and ct[0] == 1.0


class TestSphericalHarmonics:
    def test_addition_theorem(self):
        """sum_m Y_l^{-m}(a) Y_l^m(b) = P_l(cos gamma) — the identity the
        whole expansion rests on."""
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 3)
        b = rng.normal(0, 1, 3)
        ra, cta, pa = spherical_coords(a[None])
        rb, ctb, pb = spherical_coords(b[None])
        Ya = spherical_harmonics(cta, pa, 6)[0]
        Yb = spherical_harmonics(ctb, pb, 6)[0]
        cos_gamma = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        for l in range(7):
            total = sum(
                Ya[term_index(l, -m)] * Yb[term_index(l, m)]
                for m in range(-l, l + 1)
            )
            legendre = np.polynomial.legendre.Legendre.basis(l)(cos_gamma)
            assert total.real == pytest.approx(legendre, abs=1e-12)
            assert abs(total.imag) < 1e-12

    def test_y00_is_one(self):
        Y = spherical_harmonics(np.array([0.3]), np.array([1.2]), 2)
        assert Y[0, term_index(0, 0)] == pytest.approx(1.0)

    def test_conjugate_symmetry(self):
        Y = spherical_harmonics(np.array([0.4]), np.array([0.7]), 5)
        for l in range(6):
            for m in range(1, l + 1):
                assert Y[0, term_index(l, -m)] == pytest.approx(
                    np.conj(Y[0, term_index(l, m)])
                )


class TestExpansion3D:
    def test_p2m_m2p_converges_with_degree(self):
        src, q = cloud()
        targets = far_targets()
        direct = direct_sum(targets, src, q)
        prev_err = np.inf
        for k in (1, 3, 5, 8):
            exp = MultipoleExpansion3D(k)
            approx = exp.evaluate(exp.p2m(src, q), targets)
            err = np.abs(approx - direct).max()
            assert err < prev_err
            prev_err = err
        assert prev_err < 1e-6

    def test_degree_zero_is_total_charge_over_r(self):
        src, q = cloud()
        exp = MultipoleExpansion3D(0)
        M = exp.p2m(src, q)
        t = np.array([[0.0, 0.0, 4.0]])
        assert exp.evaluate(M, t)[0] == pytest.approx(q.sum() / 4.0, rel=0.05)

    def test_error_scales_like_ratio_power(self):
        """Truncation error ~ (a/r)^{k+1}: doubling the distance cuts the
        degree-3 error by about 2^4."""
        src, q = cloud(radius=0.5)
        exp = MultipoleExpansion3D(3)
        M = exp.p2m(src, q)
        errs = []
        for dist in (3.0, 6.0):
            t = far_targets(30, seed=4, dist=dist)
            err = np.abs(exp.evaluate(M, t) - direct_sum(t, src, q)).max()
            errs.append(err)
        ratio = errs[0] / errs[1]
        assert 6.0 < ratio < 50.0

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10**6))
    def test_m2m_exact(self, seed):
        """Shifting moments must equal recomputing them about the new
        center, for any geometry."""
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1, 1, (12, 3))
        q = rng.uniform(0.1, 1.0, 12)
        shift_target = rng.uniform(-1, 1, 3)
        exp = MultipoleExpansion3D(5)
        child = exp.p2m(src, q)
        moved = exp.m2m(child, -shift_target)
        direct = exp.p2m(src - shift_target, q)
        np.testing.assert_allclose(moved, direct, atol=1e-10)

    def test_m2m_chain_composes(self):
        src, q = cloud(20, seed=5)
        exp = MultipoleExpansion3D(4)
        M0 = exp.p2m(src, q)
        step = np.array([0.2, -0.1, 0.3])
        # two shifts of `step` = one shift of `2*step` (shift argument is
        # old center relative to new center)
        two_steps = exp.m2m(exp.m2m(M0, step), step)
        one_jump = exp.m2m(M0, 2 * step)
        np.testing.assert_allclose(two_steps, one_jump, atol=1e-10)

    def test_evaluate_at_center_rejected(self):
        exp = MultipoleExpansion3D(2)
        M = exp.p2m(*cloud(5))
        with pytest.raises(ValueError):
            exp.evaluate(M, np.zeros((1, 3)))

    def test_wire_floats(self):
        assert MultipoleExpansion3D(6).wire_floats == 2 * 49

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            MultipoleExpansion3D(-1)

    def test_regular_terms_at_origin(self):
        R = regular_terms(np.zeros((1, 3)), 3)
        assert R[0, 0] == pytest.approx(1.0)
        assert np.abs(R[0, 1:]).max() == 0.0

    def test_irregular_rejects_origin(self):
        with pytest.raises(ValueError):
            irregular_terms(np.zeros((1, 3)), 2)


class TestExpansion2D:
    def test_p2m_m2p(self):
        rng = np.random.default_rng(7)
        src = rng.uniform(-0.5, 0.5, (30, 2))
        q = rng.uniform(0.1, 1.0, 30)
        t = rng.normal(0, 1, (10, 2))
        t = t / np.linalg.norm(t, axis=1, keepdims=True) * 4.0
        direct = np.array([
            np.sum(q * np.log(np.linalg.norm(p - src, axis=1))) for p in t
        ])
        exp = MultipoleExpansion2D(10)
        approx = exp.evaluate(exp.p2m(src, q), t)
        np.testing.assert_allclose(approx, direct, atol=1e-7)

    def test_m2m_exact(self):
        rng = np.random.default_rng(8)
        src = rng.uniform(-0.5, 0.5, (20, 2))
        q = rng.uniform(0.1, 1.0, 20)
        nc = np.array([0.3, -0.2])
        exp = MultipoleExpansion2D(8)
        moved = exp.m2m(exp.p2m(src, q), -nc)
        direct = exp.p2m(src - nc, q)
        np.testing.assert_allclose(moved, direct, atol=1e-12)

    def test_total_charge_preserved_by_shift(self):
        exp = MultipoleExpansion2D(4)
        rng = np.random.default_rng(9)
        M = exp.p2m(rng.uniform(-1, 1, (5, 2)), np.ones(5))
        shifted = exp.m2m(M, np.array([3.0, 4.0]))
        assert shifted[0] == pytest.approx(5.0)

    def test_degree_validated(self):
        with pytest.raises(ValueError):
            MultipoleExpansion2D(0)

    def test_bad_point_shape(self):
        exp = MultipoleExpansion2D(2)
        with pytest.raises(ValueError):
            exp.p2m(np.zeros((3, 3)), np.ones(3))

    def test_evaluate_at_center_rejected(self):
        exp = MultipoleExpansion2D(2)
        M = exp.p2m(np.ones((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            exp.evaluate(M, np.zeros((1, 2)))


class TestTreeMultipoles:
    def test_root_expansion_matches_direct_p2m(self):
        """Leaf P2M + M2M up the tree must equal a single P2M of all
        particles about the root center."""
        ps = plummer(300, seed=11)
        tree = build_tree(ps, leaf_capacity=8)
        tm = TreeMultipoles(tree, ps, degree=4)
        exp = MultipoleExpansion3D(4)
        direct = exp.p2m(ps.positions - tree.center[0], ps.masses)
        np.testing.assert_allclose(tm.coeffs[0], direct, atol=1e-9)

    def test_node_potential_sign_and_value(self):
        ps = plummer(100, seed=12)
        tree = build_tree(ps, leaf_capacity=8)
        tm = TreeMultipoles(tree, ps, degree=6)
        far = ps.center_of_mass()[None, :] + np.array([[30.0, 0.0, 0.0]])
        phi = tm.node_potential(0, far)[0]
        exact = -np.sum(ps.masses / np.linalg.norm(far - ps.positions, axis=1))
        assert phi == pytest.approx(exact, rel=1e-6)

    def test_requires_3d(self):
        rng = np.random.default_rng(13)
        ps = ParticleSet(positions=rng.uniform(0, 1, (20, 2)),
                         masses=np.ones(20))
        tree = build_tree(ps)
        with pytest.raises(ValueError):
            TreeMultipoles(tree, ps, degree=2)

    def test_monopole_evaluator_matches_kernels(self):
        ps = plummer(50, seed=14)
        tree = build_tree(ps, leaf_capacity=100)  # single node
        mono = MonopoleExpansion(tree)
        t = np.array([[20.0, 0.0, 0.0]])
        expected = -ps.total_mass / np.linalg.norm(
            t[0] - tree.com[0]
        )
        assert mono.node_potential(0, t)[0] == pytest.approx(expected)
        f = mono.node_force(0, t)[0]
        assert f[0] < 0  # attraction toward the cluster
