"""Tests for the interaction-list traversal engine.

The engine must be *observationally identical* to the classical
single-pass traversal (kept as :func:`traverse_reference`): values to
1e-12, interaction counters exactly, per-node interaction counts
exactly, per-target weights exactly, remote-target sets element-for-
element.  Plus the build-once/evaluate-many behaviour the two-phase
split exists for.
"""

import numpy as np
import pytest

from repro.bh import kernels
from repro.bh.distributions import gaussian_blobs, plummer, random_centers
from repro.bh.interaction_lists import (
    TraversalEngine,
    build_interaction_lists,
    evaluate_interaction_lists,
)
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MonopoleExpansion, TreeMultipoles
from repro.bh.traversal import compute_forces, compute_potentials, \
    traverse, traverse_reference
from repro.bh.tree import build_tree

N = 800


def _instances():
    ps_p = plummer(N, seed=7)
    rng = np.random.default_rng(3)
    ps_g = gaussian_blobs(N, random_centers(4, 3, rng), sigma=2.0, seed=3)
    return {"plummer": ps_p, "gaussian": ps_g}


INSTANCES = _instances()


def _evaluator(tree, particles, degree):
    if degree == 0:
        return MonopoleExpansion(tree)
    return TreeMultipoles(tree, particles, degree)


class TestMatchesReference:
    @pytest.mark.parametrize("dist", sorted(INSTANCES))
    @pytest.mark.parametrize("degree", [0, 2])
    @pytest.mark.parametrize("mode", ["potential", "force"])
    def test_values_and_counters(self, dist, degree, mode):
        if mode == "force" and degree > 0:
            pytest.skip("multipole evaluators are potential-only")
        ps = INSTANCES[dist]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        ev = _evaluator(tree, ps, degree)
        ref = traverse_reference(tree, ps, ps.positions, mac, ev,
                                 mode=mode)
        res = traverse(tree, ps, ps.positions, mac, ev, mode=mode)
        assert np.max(np.abs(res.values - ref.values)) < 1e-12
        assert res.mac_tests == ref.mac_tests
        assert res.cluster_interactions == ref.cluster_interactions
        assert res.p2p_interactions == ref.p2p_interactions

    def test_node_interaction_counts_exact(self):
        ps = INSTANCES["plummer"]
        t1 = build_tree(ps, leaf_capacity=8)
        t2 = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        traverse_reference(t1, ps, ps.positions, mac,
                           MonopoleExpansion(t1), mode="force",
                           count_node_interactions=True)
        traverse(t2, ps, ps.positions, mac, MonopoleExpansion(t2),
                 mode="force", count_node_interactions=True)
        np.testing.assert_array_equal(t1.interactions, t2.interactions)

    def test_target_weights_exact(self):
        ps = INSTANCES["gaussian"]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        ev = MonopoleExpansion(tree)
        w_ref = np.zeros(ps.n)
        w_eng = np.zeros(ps.n)
        traverse_reference(tree, ps, ps.positions, mac, ev,
                           mode="potential", target_weights=w_ref)
        traverse(tree, ps, ps.positions, mac, ev, mode="potential",
                 target_weights=w_eng)
        # Per-target flop shares are sums of integer-valued terms, so
        # equality is exact, not approximate.
        np.testing.assert_array_equal(w_ref, w_eng)

    def test_softened_force(self):
        ps = INSTANCES["plummer"]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.8)
        ev = MonopoleExpansion(tree, softening=0.05)
        ref = traverse_reference(tree, ps, ps.positions, mac, ev,
                                 mode="force", softening=0.05)
        res = traverse(tree, ps, ps.positions, mac, ev, mode="force",
                       softening=0.05)
        assert np.max(np.abs(res.values - ref.values)) < 1e-12


class TestRemoteTargets:
    def _remote_tree(self):
        ps = plummer(300, seed=21)
        tree = build_tree(ps, leaf_capacity=8)
        kids = tree.children[0][tree.children[0] >= 0]
        for i, child in enumerate(kids[:2]):
            tree.remote_owner[int(child)] = i + 1
            tree.remote_key[int(child)] = 100 + i
        return ps, tree

    def test_matches_reference(self):
        ps, tree = self._remote_tree()
        mac = BarnesHutMAC(1e-9)          # force descent everywhere
        ev = MonopoleExpansion(tree)
        ref = traverse_reference(tree, ps, ps.positions, mac, ev)
        res = traverse(tree, ps, ps.positions, mac, ev)
        assert sorted(res.remote_targets) == sorted(ref.remote_targets)
        for node, idx in res.remote_targets.items():
            np.testing.assert_array_equal(np.sort(ref.remote_targets[node]),
                                          idx)

    def test_deterministic_and_sorted(self):
        """Regression: remote target index lists are emitted sorted, so
        bin contents (and therefore wire traffic) are deterministic."""
        ps, tree = self._remote_tree()
        lists = build_interaction_lists(tree, ps.positions,
                                        BarnesHutMAC(1e-9))
        assert lists.remote_targets
        assert list(lists.remote_targets) == \
            sorted(lists.remote_targets)
        for idx in lists.remote_targets.values():
            assert np.all(np.diff(idx) > 0)


class TestBuildOnceEvaluateMany:
    def test_one_walk_many_evaluations(self):
        ps = INSTANCES["plummer"]
        tree = build_tree(ps, leaf_capacity=8)
        engine = TraversalEngine(tree, ps, BarnesHutMAC(0.67))
        f1 = engine.compute(ps.positions, MonopoleExpansion(tree), "force")
        p1 = engine.compute(ps.positions, MonopoleExpansion(tree),
                            "potential")
        f2 = engine.compute(ps.positions, MonopoleExpansion(tree), "force")
        assert engine.walks_built == 1
        assert engine.walks_reused == 2
        np.testing.assert_array_equal(f1.values, f2.values)
        assert p1.values.shape == (ps.n,)

    def test_reused_walk_matches_fresh(self):
        ps = INSTANCES["gaussian"]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        engine = TraversalEngine(tree, ps, mac)
        engine.compute(ps.positions, MonopoleExpansion(tree), "potential")
        warm = engine.compute(ps.positions, MonopoleExpansion(tree),
                              "force")
        ref = traverse_reference(tree, ps, ps.positions, mac,
                                 MonopoleExpansion(tree), mode="force")
        assert np.max(np.abs(warm.values - ref.values)) < 1e-12
        assert warm.mac_tests == ref.mac_tests
        assert warm.cluster_interactions == ref.cluster_interactions
        assert warm.p2p_interactions == ref.p2p_interactions

    def test_cache_evicts_fifo(self):
        ps = plummer(100, seed=5)
        tree = build_tree(ps, leaf_capacity=8)
        engine = TraversalEngine(tree, ps, BarnesHutMAC(0.67),
                                 cache_size=2)
        ev = MonopoleExpansion(tree)
        a, b, c = (ps.positions[i::3] for i in range(3))
        for batch in (a, b, c):
            engine.compute(batch, ev, "potential")
        assert engine.walks_built == 3
        engine.compute(a, ev, "potential")      # evicted -> rebuilt
        assert engine.walks_built == 4

    def test_compute_helpers_share_engine(self):
        ps = INSTANCES["plummer"]
        tree = build_tree(ps, leaf_capacity=8)
        engine = TraversalEngine(tree, ps, BarnesHutMAC(0.67))
        pot = compute_potentials(ps, engine=engine)
        frc = compute_forces(ps, engine=engine)
        assert engine.walks_built == 1
        assert engine.walks_reused == 1
        ref_p = compute_potentials(ps, tree=build_tree(ps, leaf_capacity=8))
        ref_f = compute_forces(ps, tree=build_tree(ps, leaf_capacity=8))
        assert np.max(np.abs(pot.values - ref_p.values)) < 1e-12
        assert np.max(np.abs(frc.values - ref_f.values)) < 1e-12


class TestEvaluateDirect:
    def test_lists_are_evaluator_independent(self):
        """One walk serves monopole *and* multipole evaluation."""
        ps = INSTANCES["plummer"]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        lists = build_interaction_lists(tree, ps.positions, mac)
        for degree in (0, 2):
            ev = _evaluator(tree, ps, degree)
            res = evaluate_interaction_lists(tree, lists, ps, ev,
                                             mode="potential")
            ref = traverse_reference(tree, ps, ps.positions, mac, ev,
                                     mode="potential")
            assert np.max(np.abs(res.values - ref.values)) < 1e-12

    def test_working_set_does_not_change_results(self):
        ps = INSTANCES["gaussian"]
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.67)
        lists = build_interaction_lists(tree, ps.positions, mac)
        ev = MonopoleExpansion(tree)
        big = evaluate_interaction_lists(tree, lists, ps, ev, mode="force")
        tiny = evaluate_interaction_lists(tree, lists, ps, ev,
                                          mode="force",
                                          working_set_bytes=4096)
        # Chunk boundaries reorder the accumulation, so agreement is to
        # the engine's 1e-12 contract, not bitwise.
        assert np.max(np.abs(big.values - tiny.values)) < 1e-12
        assert big.mac_tests == tiny.mac_tests
        assert big.cluster_interactions == tiny.cluster_interactions
        assert big.p2p_interactions == tiny.p2p_interactions


class TestKernelChunking:
    def test_chunked_matches_unchunked(self):
        rng = np.random.default_rng(17)
        t = rng.normal(size=(500, 3))
        s = rng.normal(size=(40, 3))
        m = rng.uniform(0.5, 1.5, size=40)
        full_p = kernels.pair_potential(t, s, m, working_set_bytes=1 << 30)
        full_f = kernels.pair_force(t, s, m, working_set_bytes=1 << 30)
        # Small working set forces many chunks; rows are computed with
        # identical arithmetic, so equality is exact.
        np.testing.assert_array_equal(
            kernels.pair_potential(t, s, m, working_set_bytes=8192), full_p)
        np.testing.assert_array_equal(
            kernels.pair_force(t, s, m, working_set_bytes=8192), full_f)

    def test_direct_sum_memory_bounded(self):
        """A 20k x 20k direct sum must not allocate the O(n^2 d) pair
        tensor (9.6 GB unchunked); peak temporary memory stays within a
        small multiple of the 16 MB default working set."""
        import tracemalloc

        n = 20_000
        rng = np.random.default_rng(23)
        t = rng.normal(size=(n, 3))
        m = np.ones(n)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        kernels.pair_potential(t, t, m)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak - before < 4 * kernels.DEFAULT_WORKING_SET_BYTES
