"""Tests for the compiled kernel tier (:mod:`repro.bh.compiled`).

Three contracts, in decreasing strictness:

1. *Thread-count invariance* — any slotted tier (threaded numpy or
   numba) must produce **bitwise identical** values for 1, 2 and 8
   threads on the same interaction lists.  The perf-regression
   trajectory and cross-backend bitwise tests depend on this.
2. *Exactness vs the reference* — every tier matches the serial numpy
   tier to 1e-12 (relative) and every interaction counter exactly (the
   counters come from the walk, which tiers never touch).
3. *Graceful degradation* — a ``numba`` request without numba installed
   resolves to numpy with a one-line warning, exactly once per process;
   ``auto`` never warns.

The numba-gated classes run only when the ``[perf]`` extra is
installed (CI exercises both matrix legs).
"""

import numpy as np
import pytest

from repro.bh import compiled
from repro.bh.distributions import plummer
from repro.bh.interaction_lists import (
    TraversalEngine,
    build_interaction_lists,
    evaluate_interaction_lists,
)
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MonopoleExpansion, TreeMultipoles
from repro.bh.tree import build_tree
from repro.core.config import SchemeConfig
from repro.core.simulation import ParallelBarnesHut
from repro.machine.profiles import ZERO_COST

N = 600
SOFTENING = 0.05
PS = plummer(N, seed=11)
TREE = build_tree(PS, leaf_capacity=8)
MAC = BarnesHutMAC(0.67)

HAVE_NUMBA = compiled.available()


def _engine(tier="numpy", threads=None, softening=SOFTENING):
    return TraversalEngine(TREE, PS, MAC, softening=softening,
                           kernel_tier=tier, kernel_threads=threads)


def _evaluator():
    return MonopoleExpansion(TREE, softening=SOFTENING)


class TestTierResolution:
    def test_bad_tier_name_rejected(self):
        with pytest.raises(ValueError, match="kernel tier"):
            compiled.resolve_tier("cuda")
        with pytest.raises(ValueError, match="kernel tier"):
            TraversalEngine(TREE, PS, MAC, kernel_tier="fortran")

    def test_numpy_resolves_to_numpy(self):
        assert compiled.resolve_tier("numpy") == "numpy"

    def test_auto_resolves_quietly(self, capsys, monkeypatch):
        monkeypatch.setattr(compiled, "_warned_missing", False)
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert compiled.resolve_tier("auto", warn=True) == expected
        assert "falling back" not in capsys.readouterr().err

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_missing_numba_warns_exactly_once(self, capsys, monkeypatch):
        monkeypatch.setattr(compiled, "_warned_missing", False)
        assert compiled.resolve_tier("numba", warn=True) == "numpy"
        err = capsys.readouterr().err
        assert "falling back to numpy kernels" in err
        assert "repro[perf]" in err
        assert compiled.resolve_tier("numba", warn=True) == "numpy"
        assert capsys.readouterr().err == ""  # once per process

    def test_quiet_without_warn_flag(self, capsys, monkeypatch):
        monkeypatch.setattr(compiled, "_warned_missing", False)
        compiled.resolve_tier("numba")
        assert capsys.readouterr().err == ""

    def test_thread_count_validated(self):
        with pytest.raises(ValueError, match="kernel_threads"):
            TraversalEngine(TREE, PS, MAC, kernel_threads=0)
        lists = build_interaction_lists(TREE, PS.positions, MAC)
        with pytest.raises(ValueError, match="kernel_threads"):
            evaluate_interaction_lists(TREE, lists, PS, _evaluator(),
                                       kernel_threads=-1)

    def test_numba_version_matches_availability(self):
        ver = compiled.numba_version()
        assert (ver is None) == (not HAVE_NUMBA)


class TestThreadedNumpy:
    @pytest.mark.parametrize("mode", ["potential", "force"])
    def test_thread_count_invariance_bitwise(self, mode):
        """1, 2 and 8 threads: bit-for-bit identical results."""
        base = _engine(threads=1).compute(PS.positions, _evaluator(),
                                          mode=mode)
        for t in (2, 8):
            res = _engine(threads=t).compute(PS.positions, _evaluator(),
                                             mode=mode)
            assert np.array_equal(base.values, res.values)
            assert res.p2p_interactions == base.p2p_interactions

    @pytest.mark.parametrize("mode", ["potential", "force"])
    def test_slotted_matches_serial(self, mode):
        ref = _engine(threads=None).compute(PS.positions, _evaluator(),
                                            mode=mode)
        res = _engine(threads=2).compute(PS.positions, _evaluator(),
                                         mode=mode)
        scale = max(1.0, float(np.max(np.abs(ref.values))))
        assert np.max(np.abs(res.values - ref.values)) < 1e-12 * scale
        assert res.mac_tests == ref.mac_tests
        assert res.cluster_interactions == ref.cluster_interactions
        assert res.p2p_interactions == ref.p2p_interactions

    def test_multipole_potentials_stay_exact_and_invariant(self):
        """Degree>=1 cluster potentials run on the numpy batch path in
        every tier; the threaded P2P part must not disturb them."""
        ev = TreeMultipoles(TREE, PS, degree=2)
        ref = TraversalEngine(TREE, PS, MAC).compute(
            PS.positions, ev, mode="potential")
        runs = [TraversalEngine(TREE, PS, MAC, kernel_threads=t).compute(
                    PS.positions, ev, mode="potential") for t in (1, 4)]
        assert np.array_equal(runs[0].values, runs[1].values)
        scale = max(1.0, float(np.max(np.abs(ref.values))))
        assert np.max(np.abs(runs[0].values - ref.values)) < 1e-12 * scale

    def test_serial_default_unchanged(self):
        """``kernel_threads=None`` must stay the legacy serial loop —
        bit-for-bit, not just close."""
        before = _engine().compute(PS.positions, _evaluator(),
                                   mode="force")
        again = _engine(tier="auto" if not HAVE_NUMBA else "numpy") \
            .compute(PS.positions, _evaluator(), mode="force")
        assert np.array_equal(before.values, again.values)


class TestScratchReuse:
    def test_p2p_scratch_reused_across_evaluations(self):
        """Warm evaluations on a cached walk must reuse the P2P scratch
        buffers instead of reallocating them each call."""
        eng = _engine(threads=2)
        first = eng.compute(PS.positions, _evaluator(), mode="force")
        lists = eng.lists_for(PS.positions)
        assert lists._scratch, "threaded P2P pass should build scratch"
        ids = {k: tuple(id(b) for b in bufs)
               for k, bufs in lists._scratch.items()}
        second = eng.compute(PS.positions, _evaluator(), mode="force")
        assert {k: tuple(id(b) for b in bufs)
                for k, bufs in lists._scratch.items()} == ids
        assert np.array_equal(first.values, second.values)
        assert eng.walks_built == 1 and eng.walks_reused >= 2

    def test_serial_path_also_reuses_scratch(self):
        eng = _engine(threads=None)
        eng.compute(PS.positions, _evaluator(), mode="potential")
        lists = eng.lists_for(PS.positions)
        ids = {k: tuple(id(b) for b in bufs)
               for k, bufs in (lists._scratch or {}).items()}
        eng.compute(PS.positions, _evaluator(), mode="potential")
        assert {k: tuple(id(b) for b in bufs)
                for k, bufs in lists._scratch.items()} == ids


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed "
                                           "(the [perf] extra)")
class TestNumbaTier:
    @pytest.mark.parametrize("mode", ["potential", "force"])
    def test_matches_numpy_reference(self, mode):
        ref = _engine().compute(PS.positions, _evaluator(), mode=mode)
        res = _engine(tier="numba", threads=2).compute(
            PS.positions, _evaluator(), mode=mode)
        scale = max(1.0, float(np.max(np.abs(ref.values))))
        assert np.max(np.abs(res.values - ref.values)) < 1e-12 * scale
        assert res.mac_tests == ref.mac_tests
        assert res.cluster_interactions == ref.cluster_interactions
        assert res.p2p_interactions == ref.p2p_interactions

    @pytest.mark.parametrize("mode", ["potential", "force"])
    def test_thread_count_invariance_bitwise(self, mode):
        base = _engine(tier="numba", threads=1).compute(
            PS.positions, _evaluator(), mode=mode)
        for t in (2, 8):
            res = _engine(tier="numba", threads=t).compute(
                PS.positions, _evaluator(), mode=mode)
            assert np.array_equal(base.values, res.values)

    def test_auto_selects_numba(self):
        assert _engine(tier="auto").kernel_tier == "numba"

    def test_warm_up_compiles(self):
        compiled.warm_up("force")
        compiled.warm_up("potential")
        assert compiled._kernel_cache is not None

    def test_multipole_potentials_fall_back_per_pass(self):
        """Degree>=1 potentials are not compiled-eligible: the numba
        tier must transparently use the numpy cluster pass and still
        match the reference."""
        ev = TreeMultipoles(TREE, PS, degree=2)
        assert ev.compiled_cluster_data("potential") is None
        ref = TraversalEngine(TREE, PS, MAC).compute(
            PS.positions, ev, mode="potential")
        res = TraversalEngine(TREE, PS, MAC, kernel_tier="numba",
                              kernel_threads=2).compute(
            PS.positions, ev, mode="potential")
        scale = max(1.0, float(np.max(np.abs(ref.values))))
        assert np.max(np.abs(res.values - ref.values)) < 1e-12 * scale


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", ["spda", "dpda"])
    def test_simulation_with_kernel_threads(self, scheme):
        """Both shipping engines accept the tier config, stay within
        tolerance of the serial tier, and record the tier in metrics."""
        cfg_serial = SchemeConfig(scheme=scheme)
        cfg_threaded = SchemeConfig(scheme=scheme, kernel_tier="auto",
                                    kernel_threads=2)
        ref = ParallelBarnesHut(PS, cfg_serial, p=4,
                                profile=ZERO_COST).run()
        res = ParallelBarnesHut(PS, cfg_threaded, p=4,
                                profile=ZERO_COST).run()
        scale = max(1.0, float(np.max(np.abs(ref.values))))
        assert np.max(np.abs(res.values - ref.values)) < 1e-10 * scale
        tier = "numba" if HAVE_NUMBA else "numpy"
        counter = res.metrics_summary().counter(f"force.kernel_tier.{tier}")
        assert counter.value >= 1

    def test_tier_recorded_for_serial_default(self):
        res = ParallelBarnesHut(PS, SchemeConfig(), p=2,
                                profile=ZERO_COST).run()
        assert res.metrics_summary().counter(
            "force.kernel_tier.numpy").value >= 1

    def test_thread_invariance_full_simulation(self):
        """End to end: the whole simulation is bitwise invariant to the
        kernel thread count (same tier, different counts)."""
        runs = [ParallelBarnesHut(
                    PS, SchemeConfig(kernel_threads=t), p=4,
                    profile=ZERO_COST).run().values
                for t in (1, 2, 8)]
        assert np.array_equal(runs[0], runs[1])
        assert np.array_equal(runs[0], runs[2])
