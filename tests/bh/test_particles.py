"""Tests for ParticleSet and Box."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bh.particles import Box, ParticleSet


def make_ps(n=10, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return ParticleSet(positions=rng.uniform(0, 1, (n, d)),
                       masses=rng.uniform(0.5, 1.5, n),
                       velocities=rng.normal(0, 1, (n, d)))


class TestBox:
    def test_basic_geometry(self):
        b = Box(np.array([1.0, 2.0, 3.0]), 0.5)
        assert b.dims == 3
        assert b.side == 1.0
        np.testing.assert_allclose(b.lo, [0.5, 1.5, 2.5])
        np.testing.assert_allclose(b.hi, [1.5, 2.5, 3.5])

    def test_invalid_half(self):
        with pytest.raises(ValueError):
            Box(np.zeros(3), 0.0)

    def test_invalid_center_shape(self):
        with pytest.raises(ValueError):
            Box(np.zeros(4), 1.0)

    def test_contains_half_open(self):
        b = Box(np.array([0.5, 0.5]), 0.5)
        pts = np.array([[0.0, 0.0], [0.999, 0.999], [1.0, 0.5], [-0.1, 0.5]])
        np.testing.assert_array_equal(b.contains(pts),
                                      [True, True, False, False])

    def test_children_partition_parent(self):
        b = Box(np.zeros(3), 1.0)
        rng = np.random.default_rng(3)
        pts = rng.uniform(-1, 1, (200, 3))
        memberships = np.zeros(200, dtype=int)
        for o in range(8):
            memberships += b.child(o).contains(pts)
        assert (memberships == 1).all()

    def test_octant_of_matches_child_contains(self):
        b = Box(np.zeros(3), 1.0)
        rng = np.random.default_rng(4)
        pts = rng.uniform(-1, 1, (100, 3))
        octs = b.octant_of(pts)
        for i, o in enumerate(octs):
            assert b.child(int(o)).contains(pts[i:i + 1])[0]

    def test_child_octant_bit_convention(self):
        """Bit i of the octant selects the upper half of axis i."""
        b = Box(np.zeros(3), 1.0)
        c = b.child(0b101)  # +x, -y, +z
        np.testing.assert_allclose(c.center, [0.5, -0.5, 0.5])
        assert c.half == 0.5

    def test_invalid_octant(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), 1.0).child(4)

    def test_bounding_contains_all(self):
        rng = np.random.default_rng(5)
        pts = rng.normal(0, 3, (500, 3))
        b = Box.bounding(pts)
        assert b.contains(pts).all()

    def test_bounding_is_cube(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 10.0, 2.0]])
        b = Box.bounding(pts)
        assert b.half >= 5.0  # half the largest extent

    def test_bounding_empty_rejected(self):
        with pytest.raises(ValueError):
            Box.bounding(np.zeros((0, 3)))

    @given(st.integers(1, 50))
    def test_bounding_random(self, n):
        rng = np.random.default_rng(n)
        pts = rng.uniform(-5, 5, (n, 2))
        assert Box.bounding(pts).contains(pts).all()


class TestParticleSet:
    def test_construction_defaults(self):
        ps = ParticleSet(positions=np.zeros((3, 3)), masses=np.ones(3))
        assert ps.n == 3
        assert ps.dims == 3
        np.testing.assert_array_equal(ps.velocities, np.zeros((3, 3)))
        np.testing.assert_array_equal(ps.ids, [0, 1, 2])

    def test_len(self):
        assert len(make_ps(7)) == 7

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ParticleSet(positions=np.zeros((3, 4)), masses=np.ones(3))
        with pytest.raises(ValueError):
            ParticleSet(positions=np.zeros((3, 3)), masses=np.ones(2))
        with pytest.raises(ValueError):
            ParticleSet(positions=np.zeros((3, 3)), masses=np.ones(3),
                        velocities=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            ParticleSet(positions=np.zeros((3, 3)), masses=np.ones(3),
                        ids=np.arange(4))

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ValueError):
            ParticleSet(positions=np.zeros((2, 3)),
                        masses=np.array([1.0, 0.0]))

    def test_total_mass_and_com(self):
        ps = ParticleSet(
            positions=np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]]),
            masses=np.array([1.0, 3.0]),
        )
        assert ps.total_mass == 4.0
        np.testing.assert_allclose(ps.center_of_mass(), [1.5, 0.0, 0.0])

    def test_com_of_empty_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet.empty(3).center_of_mass()

    def test_subset_by_mask_keeps_ids(self):
        ps = make_ps(10)
        sub = ps.subset(ps.masses > 1.0)
        assert sub.n == int((ps.masses > 1.0).sum())
        assert set(sub.ids).issubset(set(ps.ids))

    def test_subset_by_index(self):
        ps = make_ps(10)
        sub = ps.subset(np.array([3, 1]))
        np.testing.assert_array_equal(sub.ids, [3, 1])
        np.testing.assert_array_equal(sub.positions, ps.positions[[3, 1]])

    def test_concatenate_round_trip(self):
        ps = make_ps(10)
        a = ps.subset(np.arange(4))
        b = ps.subset(np.arange(4, 10))
        merged = ParticleSet.concatenate([a, b])
        np.testing.assert_array_equal(merged.ids, ps.ids)
        np.testing.assert_allclose(merged.positions, ps.positions)

    def test_concatenate_skips_empty(self):
        ps = make_ps(5)
        merged = ParticleSet.concatenate([ParticleSet.empty(3), ps])
        assert merged.n == 5

    def test_concatenate_all_empty_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet.concatenate([ParticleSet.empty(3)])

    def test_concatenate_dim_mismatch(self):
        with pytest.raises(ValueError):
            ParticleSet.concatenate([make_ps(3, d=2), make_ps(3, d=3)])

    def test_bounding_box(self):
        ps = make_ps(50)
        assert ps.bounding_box().contains(ps.positions).all()

    def test_empty(self):
        e = ParticleSet.empty(2)
        assert e.n == 0 and e.dims == 2
