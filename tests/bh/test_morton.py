"""Tests for Morton keys and the Hilbert curve."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bh.morton import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    hilbert_keys_2d,
    morton_decode_2d,
    morton_decode_3d,
    morton_key_2d,
    morton_key_3d,
    morton_keys,
    quantize,
)

coord2 = st.integers(0, (1 << MAX_BITS_2D) - 1)
coord3 = st.integers(0, (1 << MAX_BITS_3D) - 1)


class TestMortonKeys:
    def test_known_2d_values(self):
        # interleave: key bits ...y1x1y0x0
        assert morton_key_2d(0, 0) == 0
        assert morton_key_2d(1, 0) == 1
        assert morton_key_2d(0, 1) == 2
        assert morton_key_2d(1, 1) == 3
        assert morton_key_2d(2, 0) == 4
        assert morton_key_2d(3, 3) == 15

    def test_known_3d_values(self):
        assert morton_key_3d(0, 0, 0) == 0
        assert morton_key_3d(1, 0, 0) == 1
        assert morton_key_3d(0, 1, 0) == 2
        assert morton_key_3d(0, 0, 1) == 4
        assert morton_key_3d(1, 1, 1) == 7

    def test_vectorized(self):
        k = morton_key_3d(np.arange(4), np.zeros(4, dtype=np.int64),
                          np.zeros(4, dtype=np.int64))
        np.testing.assert_array_equal(k, [0, 1, 8, 9])

    def test_rejects_float_coords(self):
        with pytest.raises(TypeError):
            morton_key_2d(np.array([0.5]), np.array([1.0]))

    @given(coord2, coord2)
    def test_2d_round_trip(self, x, y):
        k = morton_key_2d(x, y)
        dx, dy = morton_decode_2d(k)
        assert (dx, dy) == (x, y)

    @given(coord3, coord3, coord3)
    def test_3d_round_trip(self, x, y, z):
        k = morton_key_3d(x, y, z)
        dx, dy, dz = morton_decode_3d(k)
        assert (dx, dy, dz) == (x, y, z)

    @given(coord3, coord3, coord3, coord3, coord3, coord3)
    def test_3d_injective(self, x1, y1, z1, x2, y2, z2):
        if (x1, y1, z1) != (x2, y2, z2):
            assert morton_key_3d(x1, y1, z1) != morton_key_3d(x2, y2, z2)

    def test_keys_fit_in_int64(self):
        m = (1 << MAX_BITS_3D) - 1
        assert morton_key_3d(m, m, m) > 0  # no overflow into sign bit
        m2 = (1 << MAX_BITS_2D) - 1
        assert morton_key_2d(m2, m2) > 0


class TestQuantize:
    def test_grid_mapping(self):
        lo = np.array([0.0, 0.0])
        g = quantize(np.array([[0.0, 0.0], [0.5, 0.999], [0.999, 0.25]]),
                     lo, 1.0, bits=2)
        np.testing.assert_array_equal(g, [[0, 0], [2, 3], [3, 1]])

    def test_clipping_at_upper_edge(self):
        g = quantize(np.array([[1.0, 1.0]]), np.zeros(2), 1.0, bits=3)
        np.testing.assert_array_equal(g, [[7, 7]])

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((1, 2)), np.zeros(2), 0.0, 3)


class TestMortonKeysOfPositions:
    def test_spatial_ordering_groups_octants(self):
        """All points in the low octant sort before points in others."""
        rng = np.random.default_rng(0)
        low = rng.uniform(0.0, 0.49, (20, 3))
        high = rng.uniform(0.51, 0.99, (20, 3))
        keys = morton_keys(np.vstack((low, high)), np.zeros(3), 1.0)
        assert keys[:20].max() < keys[20:].min()

    def test_bits_validation(self):
        pts = np.zeros((1, 3))
        with pytest.raises(ValueError):
            morton_keys(pts, np.zeros(3), 1.0, bits=0)
        with pytest.raises(ValueError):
            morton_keys(pts, np.zeros(3), 1.0, bits=MAX_BITS_3D + 1)

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            morton_keys(np.zeros((1, 4)), np.zeros(4), 1.0)

    def test_2d_and_3d_defaults(self):
        assert morton_keys(np.full((1, 2), 0.5), np.zeros(2), 1.0).shape == (1,)
        assert morton_keys(np.full((1, 3), 0.5), np.zeros(3), 1.0).shape == (1,)

    def test_prefix_property(self):
        """Keys at depth b are prefixes of keys at depth b+1."""
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, (100, 3))
        k4 = morton_keys(pts, np.zeros(3), 1.0, bits=4)
        k5 = morton_keys(pts, np.zeros(3), 1.0, bits=5)
        np.testing.assert_array_equal(k4, k5 >> 3)


class TestHilbert:
    def test_first_order_curve(self):
        # 2x2 Hilbert curve visits (0,0), (0,1), (1,1), (1,0)
        xs = np.array([0, 0, 1, 1])
        ys = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(hilbert_keys_2d(xs, ys, 1),
                                      [0, 1, 2, 3])

    def test_bijective_on_grid(self):
        n = 16
        xx, yy = np.meshgrid(np.arange(n), np.arange(n))
        d = hilbert_keys_2d(xx.ravel(), yy.ravel(), 4)
        assert sorted(d.tolist()) == list(range(n * n))

    def test_consecutive_cells_are_adjacent(self):
        """The defining Hilbert property Morton lacks: curve-consecutive
        cells are always grid neighbours."""
        n = 32
        xx, yy = np.meshgrid(np.arange(n), np.arange(n))
        xs, ys = xx.ravel(), yy.ravel()
        d = hilbert_keys_2d(xs, ys, 5)
        order = np.argsort(d)
        dx = np.abs(np.diff(xs[order]))
        dy = np.abs(np.diff(ys[order]))
        assert np.all(dx + dy == 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_keys_2d(np.array([4]), np.array([0]), 2)
        with pytest.raises(ValueError):
            hilbert_keys_2d(np.array([-1]), np.array([0]), 2)

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            hilbert_keys_2d(np.array([0]), np.array([0]), 0)
