"""Tests for interaction kernels and the direct-summation reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bh import kernels
from repro.bh.direct import (
    direct_forces,
    direct_potentials,
    sample_direct_potentials,
)
from repro.bh.particles import ParticleSet


def two_body():
    return ParticleSet(
        positions=np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]]),
        masses=np.array([1.0, 3.0]),
    )


class TestKernels:
    def test_pair_potential_value(self):
        phi = kernels.pair_potential(
            np.array([[0.0, 0.0, 0.0]]),
            np.array([[3.0, 4.0, 0.0]]), np.array([2.0])
        )
        assert phi[0] == pytest.approx(-2.0 / 5.0)

    def test_pair_force_newtons_law(self):
        t = np.array([[0.0, 0.0, 0.0]])
        s = np.array([[2.0, 0.0, 0.0]])
        f = kernels.pair_force(t, s, np.array([4.0]))
        # attraction toward +x with magnitude Gm/r^2 = 4/4 = 1
        np.testing.assert_allclose(f[0], [1.0, 0.0, 0.0])

    def test_self_pair_contributes_zero(self):
        p = np.array([[1.0, 2.0, 3.0]])
        assert kernels.pair_potential(p, p, np.ones(1))[0] == 0.0
        np.testing.assert_array_equal(kernels.pair_force(p, p, np.ones(1)),
                                      np.zeros((1, 3)))

    def test_softening_caps_close_interactions(self):
        t = np.zeros((1, 3))
        s = np.array([[1e-9, 0.0, 0.0]])
        f_soft = kernels.pair_force(t, s, np.ones(1), softening=0.1)
        assert np.linalg.norm(f_soft) < 1.0 / 0.1 ** 2 + 1e-9

    def test_point_mass_matches_pair(self):
        rng = np.random.default_rng(0)
        t = rng.normal(0, 1, (5, 3))
        c = np.array([3.0, 3.0, 3.0])
        np.testing.assert_allclose(
            kernels.point_mass_potential(t, c, 2.5),
            kernels.pair_potential(t, c[None], np.array([2.5])),
        )
        np.testing.assert_allclose(
            kernels.point_mass_force(t, c, 2.5),
            kernels.pair_force(t, c[None], np.array([2.5])),
        )

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10**6))
    def test_force_is_gradient_of_potential(self, seed):
        """Numerical gradient check ties force and potential kernels."""
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1, 1, (4, 3))
        q = rng.uniform(0.5, 2.0, 4)
        t = rng.uniform(2.0, 3.0, (1, 3))
        f = kernels.pair_force(t, src, q)[0]
        h = 1e-6
        for axis in range(3):
            tp = t.copy(); tp[0, axis] += h
            tm = t.copy(); tm[0, axis] -= h
            dphi = (kernels.pair_potential(tp, src, q)[0]
                    - kernels.pair_potential(tm, src, q)[0]) / (2 * h)
            assert f[axis] == pytest.approx(-dphi, rel=1e-4, abs=1e-8)


class TestDirect:
    def test_two_body_potentials(self):
        ps = two_body()
        phi = direct_potentials(ps)
        np.testing.assert_allclose(phi, [-1.5, -0.5])

    def test_two_body_forces_opposite(self):
        ps = two_body()
        f = direct_forces(ps)
        # momentum conservation: m1 a1 + m2 a2 = 0
        np.testing.assert_allclose(ps.masses[0] * f[0] + ps.masses[1] * f[1],
                                   np.zeros(3), atol=1e-12)

    def test_chunking_invariance(self):
        rng = np.random.default_rng(1)
        ps = ParticleSet(positions=rng.uniform(0, 1, (37, 3)),
                         masses=rng.uniform(0.5, 1.5, 37))
        np.testing.assert_allclose(direct_potentials(ps, chunk=5),
                                   direct_potentials(ps, chunk=1000))
        np.testing.assert_allclose(direct_forces(ps, chunk=7),
                                   direct_forces(ps, chunk=64))

    def test_explicit_targets(self):
        ps = two_body()
        t = np.array([[1.0, 0.0, 0.0]])
        phi = direct_potentials(ps, t)
        assert phi[0] == pytest.approx(-1.0 - 3.0)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            direct_potentials(two_body(), chunk=0)
        with pytest.raises(ValueError):
            direct_forces(two_body(), chunk=-1)

    def test_sampled_reference_agrees(self):
        rng = np.random.default_rng(2)
        ps = ParticleSet(positions=rng.uniform(0, 1, (100, 3)),
                         masses=np.ones(100) / 100)
        idx, phi = sample_direct_potentials(ps, 20, seed=3)
        full = direct_potentials(ps)
        np.testing.assert_allclose(phi, full[idx])
        assert len(set(idx.tolist())) == 20

    def test_sample_count_capped(self):
        ps = two_body()
        idx, phi = sample_direct_potentials(ps, 50)
        assert idx.size == 2

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_direct_potentials(two_body(), 0)
