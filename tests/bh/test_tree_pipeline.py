"""Equivalence suite for the level-synchronous tree pipeline.

The vectorized builder, the level-batched upward passes, and the
frontier MAC walk each have a node-at-a-time reference kept verbatim
from the seed.  These tests pin the contract the benchmarks rely on:
*exact* array equality for construction and upward passes, and
identical interaction sets/counters for the walk (entry order and
therefore fp accumulation order may differ there).
"""

import numpy as np
import pytest

from repro.bh.distributions import (
    gaussian_blobs,
    plummer,
    random_centers,
    uniform_cube,
)
from repro.bh.interaction_lists import build_interaction_lists
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import TreeMultipoles
from repro.bh.particles import ParticleSet
from repro.bh.tree import (
    NO_CHILD,
    SMALL_BUILD_CUTOFF,
    build_tree,
    build_tree_reference,
    cell_box,
    cell_boxes,
)

#: Large enough that build_tree takes the level-synchronous path rather
#: than dispatching to the recursive builder.
N = 400
assert N >= SMALL_BUILD_CUTOFF

ARRAY_FIELDS = ("children", "depth", "path_key", "center", "half",
                "start", "end", "order")


def cloud(n: int, dims: int, seed: int) -> ParticleSet:
    """Centrally-concentrated set in 3-D, uniform in 2-D (the Plummer
    model is three-dimensional only)."""
    if dims == 3:
        return plummer(n, seed=seed)
    return uniform_cube(n, dims=dims, seed=seed)


def make_particles(kind: str, dims: int, n: int = N,
                   seed: int = 7) -> ParticleSet:
    if kind == "plummer":
        return cloud(n, dims, seed)
    if kind == "gaussian":
        rng = np.random.default_rng(seed)
        centers = random_centers(4, dims, rng)
        return gaussian_blobs(n, centers, sigma=3.0, dims=dims, seed=seed)
    # A few distinct sites, each holding many exactly coincident
    # particles: refinement can never separate them, so leaves at
    # max_depth hold more than the capacity.
    rng = np.random.default_rng(seed)
    sites = rng.uniform(10.0, 90.0, (10, dims))
    pos = np.repeat(sites, n // 10, axis=0)
    return ParticleSet(positions=pos, masses=rng.uniform(0.5, 1.5, n))


def assert_trees_equal(a, b):
    assert a.nnodes == b.nnodes
    for f in ARRAY_FIELDS:
        np.testing.assert_array_equal(getattr(a, f), getattr(b, f),
                                      err_msg=f)
    np.testing.assert_array_equal(a.mass, b.mass)
    np.testing.assert_array_equal(a.com, b.com)


class TestBuildEquivalence:
    @pytest.mark.parametrize("kind", ["plummer", "gaussian", "duplicates"])
    @pytest.mark.parametrize("dims", [2, 3])
    @pytest.mark.parametrize("cap", [1, 8, 32])
    @pytest.mark.parametrize("collapse", [True, False])
    def test_builders_bitwise_equal(self, kind, dims, cap, collapse):
        ps = make_particles(kind, dims)
        ref = build_tree_reference(ps, leaf_capacity=cap,
                                   collapse_chains=collapse)
        vec = build_tree(ps, leaf_capacity=cap, collapse_chains=collapse)
        assert_trees_equal(vec, ref)

    def test_small_input_dispatch_is_equal(self):
        ps = plummer(SMALL_BUILD_CUTOFF - 1, seed=3)
        assert_trees_equal(build_tree(ps, leaf_capacity=4),
                           build_tree_reference(ps, leaf_capacity=4))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_explicit_max_depth_equal(self, dims):
        ps = make_particles("plummer", dims)
        for depth in (3, 8):
            assert_trees_equal(
                build_tree(ps, leaf_capacity=1, max_depth=depth),
                build_tree_reference(ps, leaf_capacity=1, max_depth=depth))


class TestUpwardPasses:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_monopoles_and_interaction_sums(self, dims):
        ps = cloud(1000, dims, seed=3)
        tree = build_tree(ps, leaf_capacity=8)

        tree.compute_monopoles_reference(ps)
        mass, com = tree.mass.copy(), tree.com.copy()
        tree.compute_monopoles(ps)
        np.testing.assert_array_equal(tree.mass, mass)
        np.testing.assert_array_equal(tree.com, com)

        base = (np.arange(tree.nnodes, dtype=np.int64) * 7919) % 1013
        tree.interactions[:] = base
        tree.sum_interactions_up_reference()
        ref = tree.interactions.copy()
        tree.interactions[:] = base
        tree.sum_interactions_up()
        np.testing.assert_array_equal(tree.interactions, ref)

    @pytest.mark.parametrize("degree", [1, 2])
    def test_multipole_coeffs(self, degree):
        ps = plummer(1500, seed=5)
        tree = build_tree(ps, leaf_capacity=8)
        ref = TreeMultipoles(tree, None, degree)
        ref._build_reference(ps)
        vec = TreeMultipoles(tree, None, degree)
        vec._build(ps)
        np.testing.assert_array_equal(vec.coeffs, ref.coeffs)


class TestNodeNumbering:
    """The reverse level scans (and the seed's reverse id scan before
    them) rely on every child being numbered after its parent."""

    @pytest.mark.parametrize("builder", [build_tree, build_tree_reference])
    @pytest.mark.parametrize("collapse", [True, False])
    def test_children_ids_exceed_parent(self, builder, collapse):
        ps = plummer(800, seed=11)
        tree = builder(ps, leaf_capacity=4, collapse_chains=collapse)
        parent = np.repeat(np.arange(tree.nnodes),
                           tree.children.shape[1])
        kids = tree.children.ravel()
        ok = kids != NO_CHILD
        assert np.all(kids[ok] > parent[ok])

    @pytest.mark.parametrize("dims", [2, 3])
    def test_nodes_by_level_partitions_tree(self, dims):
        ps = cloud(500, dims, seed=9)
        tree = build_tree(ps, leaf_capacity=4)
        levels = tree.nodes_by_level()
        all_ids = np.concatenate([ids for _, ids in levels])
        assert np.array_equal(np.sort(all_ids), np.arange(tree.nnodes))
        for depth, ids in levels:
            assert np.all(tree.depth[ids] == depth)


class TestCellBoxes:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_batch_matches_scalar(self, dims):
        ps = cloud(400, dims, seed=2)
        tree = build_tree_reference(ps, leaf_capacity=4)
        center, half = cell_boxes(tree.root_box, tree.depth,
                                  tree.path_key)
        for i in range(tree.nnodes):
            b = cell_box(tree.root_box, int(tree.depth[i]),
                         int(tree.path_key[i]))
            np.testing.assert_array_equal(center[i], b.center)
            assert half[i] == b.half


class TestFrontierWalk:
    def _remote_tree(self, dims):
        ps = cloud(2000, dims, seed=13)
        tree = build_tree(ps, leaf_capacity=8)
        kids = tree.children[0][tree.children[0] != NO_CHILD]
        for i, child in enumerate(kids[:2]):
            tree.remote_owner[int(child)] = i + 1
            tree.remote_key[int(child)] = 100 + i
        return ps, tree

    @pytest.mark.parametrize("dims,alpha", [(2, 0.5), (3, 0.67), (3, 1.2)])
    def test_matches_dfs(self, dims, alpha):
        ps, tree = self._remote_tree(dims)
        tg = ps.positions[:150]
        mac = BarnesHutMAC(alpha)
        dfs = build_interaction_lists(tree, tg, mac, method="dfs")
        fr = build_interaction_lists(tree, tg, mac, method="frontier")

        assert fr.mac_tests == dfs.mac_tests
        np.testing.assert_array_equal(fr.mac_per_target,
                                      dfs.mac_per_target)
        assert (set(zip(fr.cluster_node.tolist(),
                        fr.cluster_tgt.tolist()))
                == set(zip(dfs.cluster_node.tolist(),
                           dfs.cluster_tgt.tolist())))
        assert (set(zip(fr.p2p_leaf.tolist(), fr.p2p_tgt.tolist()))
                == set(zip(dfs.p2p_leaf.tolist(), dfs.p2p_tgt.tolist())))
        assert fr.p2p_interactions == dfs.p2p_interactions
        assert list(fr.remote_targets) == list(dfs.remote_targets)
        for node, idx in fr.remote_targets.items():
            np.testing.assert_array_equal(idx, dfs.remote_targets[node])

    def test_auto_matches_both(self):
        ps, tree = self._remote_tree(3)
        mac = BarnesHutMAC(0.7)
        tg = ps.positions[:64]
        auto = build_interaction_lists(tree, tg, mac)  # method="auto"
        dfs = build_interaction_lists(tree, tg, mac, method="dfs")
        assert auto.mac_tests == dfs.mac_tests
        assert auto.cluster_interactions == dfs.cluster_interactions
        assert auto.p2p_interactions == dfs.p2p_interactions

    def test_unknown_method_rejected(self):
        ps = plummer(200, seed=1)
        tree = build_tree(ps, leaf_capacity=8)
        with pytest.raises(ValueError):
            build_interaction_lists(tree, ps.positions[:8],
                                    BarnesHutMAC(0.7), method="bogus")
