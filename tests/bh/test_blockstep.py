"""Block timesteps: rung assignment, schedule invariants, energy drift,
and repair-vs-rebuild bitwise trajectory equality (ISSUE 9)."""

import numpy as np
import pytest

from repro.bh.blockstep import BlockTimestepper, assign_rungs
from repro.bh.distributions import plummer
from repro.bh.integrator import total_energy
from repro.bh.particles import Box, ParticleSet


def clone(ps):
    return ParticleSet(positions=ps.positions.copy(),
                       masses=ps.masses.copy(),
                       velocities=ps.velocities.copy())


def make_plummer(n=256, seed=3):
    ps = plummer(n, seed=seed, max_radius=4.0)
    box = Box(np.zeros(3), float(np.abs(ps.positions).max()) * 1.2 + 0.5)
    return ps, box


class TestAssignRungs:
    def test_deterministic_and_clipped(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 5.0, (500, 3))
        r1 = assign_rungs(a, 0.05, 0.2, 0.05, 4)
        r2 = assign_rungs(a.copy(), 0.05, 0.2, 0.05, 4)
        np.testing.assert_array_equal(r1, r2)
        assert r1.min() >= 0 and r1.max() <= 3

    def test_larger_accel_never_gets_longer_dt(self):
        a = np.zeros((6, 3))
        a[:, 0] = [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0]
        r = assign_rungs(a, 0.1, 0.2, 0.05, 8)
        assert (np.diff(r) >= 0).all()

    def test_zero_accel_gets_rung_zero(self):
        a = np.zeros((4, 3))
        a[2] = [50.0, 0.0, 0.0]
        r = assign_rungs(a, 0.1, 0.2, 0.01, 6)
        assert r[0] == r[1] == r[3] == 0
        assert r[2] > 0

    def test_requires_softening(self):
        with pytest.raises(ValueError, match="softening"):
            assign_rungs(np.ones((3, 3)), 0.1, 0.2, 0.0, 4)

    def test_halving_dt_drops_rung_by_one(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 3.0, (200, 3))
        r_full = assign_rungs(a, 0.2, 0.2, 0.05, 10)
        r_half = assign_rungs(a, 0.1, 0.2, 0.05, 10)
        busy = (r_full > 0) & (r_full < 9)
        np.testing.assert_array_equal(r_half[busy], r_full[busy] - 1)


class TestSchedule:
    def test_max_rungs_one_is_plain_kdk(self):
        """max_rungs=1 degenerates to one global KDK step per macro."""
        ps, box = make_plummer(200)
        st = BlockTimestepper(clone(ps), 0.01, softening=0.05,
                              max_rungs=1, box=box, tree_mode="rebuild")
        st.run(3)
        assert st.stats["timestep.substeps"] == 3
        assert st.stats["timestep.force_targets"] == ps.n * 3
        assert st.active_fraction == 1.0

    def test_macro_step_synchronizes_all_rungs(self):
        """Every particle accumulates exactly dt of drift per macro step:
        the per-substep drift counts sum to n * 2^r over each period."""
        ps, box = make_plummer(300)
        st = BlockTimestepper(clone(ps), 0.04, softening=0.02,
                              max_rungs=4, box=box, tree_mode="rebuild")
        assert st.rungs.max() > 0, "test needs a multi-rung population"
        st.macro_step()
        # each particle on rung r starts 2^r substeps -> drift count
        # equals sum over initial-rung schedule; at least every particle
        # started once and finished at the sync point
        assert st.stats["timestep.drifted"] >= ps.n
        assert st.stats["timestep.substeps"] == 1 << int(st.rungs.max())\
            or st.stats["timestep.substeps"] >= 1

    def test_active_fraction_below_one_with_spread_rungs(self):
        ps, box = make_plummer(400, seed=5)
        st = BlockTimestepper(clone(ps), 0.08, softening=0.01,
                              max_rungs=5, box=box, tree_mode="rebuild")
        assert st.rungs.max() >= 2
        st.run(2)
        assert st.active_fraction < 1.0

    def test_bin_metrics_accumulate(self):
        ps, box = make_plummer(200)
        st = BlockTimestepper(clone(ps), 0.04, softening=0.02,
                              max_rungs=3, box=box)
        st.run(2)
        total = sum(st.stats[f"timestep.bin_{r}"] for r in range(3))
        assert total == 2 * ps.n


class TestRepairVsRebuild:
    @pytest.mark.parametrize("collapse", [True, False])
    def test_bitwise_identical_trajectories(self, collapse):
        """repair mode must reproduce the full-rebuild oracle exactly."""
        ps, box = make_plummer(300, seed=7)
        a = BlockTimestepper(clone(ps), 0.05, softening=0.02,
                             max_rungs=4, box=box, tree_mode="repair",
                             collapse_chains=collapse)
        b = BlockTimestepper(clone(ps), 0.05, softening=0.02,
                             max_rungs=4, box=box, tree_mode="rebuild",
                             collapse_chains=collapse)
        assert a.rungs.max() > 0
        for _ in range(3):
            a.macro_step()
            b.macro_step()
            np.testing.assert_array_equal(a.particles.positions,
                                          b.particles.positions)
            np.testing.assert_array_equal(a.particles.velocities,
                                          b.particles.velocities)
            np.testing.assert_array_equal(a.rungs, b.rungs)
            np.testing.assert_array_equal(a.accel, b.accel)
        assert a.stats["repair.repairs"] > 0
        assert a.stats["repair.nodes_reused"] > 0

    def test_repair_reuses_most_nodes_when_few_active(self):
        ps, box = make_plummer(600, seed=11)
        st = BlockTimestepper(clone(ps), 0.03, softening=0.01,
                              max_rungs=5, box=box, tree_mode="repair")
        assert st.rungs.max() >= 1
        st.macro_step()
        # substep 0 drifts the whole population (all rungs start
        # together) and correctly falls back to a full rebuild; the
        # remaining substeps move only the active bins and must repair
        assert st.stats["repair.repairs"] > st.stats["repair.full_rebuilds"]
        assert st.stats["repair.nodes_reused"] \
            > st.stats["repair.nodes_rebuilt"]


class TestEnergyDrift:
    def test_block_drift_bounded_and_comparable(self):
        """>=100 macro steps on a Plummer model: block-timestep energy
        drift stays bounded and comparable to the fixed-dt run."""
        ps, box = make_plummer(192, seed=2)
        soft = 0.05
        e0 = total_energy(ps, softening=soft)
        assert e0 < 0  # bound system

        fixed = BlockTimestepper(clone(ps), 0.01, softening=soft,
                                 max_rungs=1, alpha=0.6, box=box,
                                 tree_mode="rebuild")
        block = BlockTimestepper(clone(ps), 0.01, softening=soft,
                                 max_rungs=4, alpha=0.6, box=box,
                                 tree_mode="repair")
        fixed.run(100)
        block.run(100)
        drift_f = abs(total_energy(fixed.particles, softening=soft)
                      - e0) / abs(e0)
        drift_b = abs(total_energy(block.particles, softening=soft)
                      - e0) / abs(e0)
        assert drift_f < 0.05, f"fixed-dt drift {drift_f:.2e}"
        assert drift_b < 0.05, f"block drift {drift_b:.2e}"
        # comparable: block no worse than a small multiple of fixed
        # (floored: both may sit at force-error noise level)
        assert drift_b <= max(5.0 * drift_f, 5e-3), \
            f"block {drift_b:.2e} vs fixed {drift_f:.2e}"
