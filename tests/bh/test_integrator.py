"""Tests for the leapfrog integrator and energy diagnostics."""

import numpy as np
import pytest

from repro.bh.integrator import (
    direct_accelerations,
    kinetic_energy,
    leapfrog_step,
    potential_energy,
    total_energy,
)
from repro.bh.particles import ParticleSet


def circular_binary():
    """Two equal masses on a circular orbit about their barycenter.

    Separation 2, masses 1 each: orbital speed of each body is
    v = sqrt(G m_other * r_body / sep^2) = sqrt(1 * 1 / 4) = 0.5.
    """
    ps = ParticleSet(
        positions=np.array([[-1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
        masses=np.array([1.0, 1.0]),
        velocities=np.array([[0.0, -0.5, 0.0], [0.0, 0.5, 0.0]]),
    )
    return ps


class TestEnergies:
    def test_kinetic(self):
        ps = circular_binary()
        assert kinetic_energy(ps) == pytest.approx(0.5 * (0.25 + 0.25))

    def test_potential(self):
        ps = circular_binary()
        assert potential_energy(ps) == pytest.approx(-0.5)

    def test_total(self):
        ps = circular_binary()
        assert total_energy(ps) == pytest.approx(0.25 - 0.5)


class TestLeapfrog:
    def test_energy_conservation_binary(self):
        ps = circular_binary()
        e0 = total_energy(ps)
        accel = direct_accelerations()
        a = None
        for _ in range(200):
            a = leapfrog_step(ps, accel, dt=0.01, accel_now=a)
        assert total_energy(ps) == pytest.approx(e0, abs=1e-5)

    def test_circular_orbit_radius_stable(self):
        ps = circular_binary()
        accel = direct_accelerations()
        a = None
        for _ in range(500):
            a = leapfrog_step(ps, accel, dt=0.01, accel_now=a)
        sep = np.linalg.norm(ps.positions[1] - ps.positions[0])
        assert sep == pytest.approx(2.0, rel=1e-3)

    def test_momentum_conserved(self):
        rng = np.random.default_rng(0)
        ps = ParticleSet(positions=rng.normal(0, 1, (20, 3)),
                         masses=rng.uniform(0.5, 1.5, 20),
                         velocities=rng.normal(0, 0.1, (20, 3)))
        p0 = (ps.masses[:, None] * ps.velocities).sum(axis=0)
        accel = direct_accelerations(softening=0.05)
        a = None
        for _ in range(20):
            a = leapfrog_step(ps, accel, dt=0.01, accel_now=a)
        p1 = (ps.masses[:, None] * ps.velocities).sum(axis=0)
        np.testing.assert_allclose(p1, p0, atol=1e-10)

    def test_time_reversibility(self):
        """Leapfrog is symmetric: integrating forward then backward with
        negated velocities returns to the start."""
        ps = circular_binary()
        accel = direct_accelerations()
        x0 = ps.positions.copy()
        for _ in range(50):
            leapfrog_step(ps, accel, dt=0.02)
        ps.velocities *= -1.0
        for _ in range(50):
            leapfrog_step(ps, accel, dt=0.02)
        np.testing.assert_allclose(ps.positions, x0, atol=1e-9)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            leapfrog_step(circular_binary(), direct_accelerations(), dt=0.0)

    def test_accel_shape_checked(self):
        ps = circular_binary()
        with pytest.raises(ValueError):
            leapfrog_step(ps, lambda p: np.zeros((1, 3)), dt=0.1)

    def test_returns_new_accelerations(self):
        ps = circular_binary()
        accel = direct_accelerations()
        a1 = leapfrog_step(ps, accel, dt=0.01)
        np.testing.assert_allclose(a1, accel(ps))
