"""Tree repair must be bitwise-exactly a full rebuild (ISSUE 9)."""

import numpy as np
import pytest

from repro.bh.distributions import plummer
from repro.bh.morton import morton_keys
from repro.bh.multipole import TreeMultipoles
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import build_tree
from repro.bh.tree_repair import (RepairResult, refresh_multipoles,
                                  repair_tree, subtree_extents)

BITS = {2: 12, 3: 10}


def make_state(n, d, seed=0, clustered=False):
    rng = np.random.default_rng(seed)
    if clustered:
        ps = plummer(n, seed=seed) if d == 3 else None
    if not clustered or ps is None:
        ps = ParticleSet(positions=rng.uniform(-0.9, 0.9, (n, d)),
                         masses=rng.uniform(0.5, 1.5, n))
    box = Box(np.zeros(d), float(np.abs(ps.positions).max()) * 1.5 + 1.0)
    return ps, box


def keys_of(ps, box, bits):
    return morton_keys(ps.positions, box.lo, box.side, bits)


def perturb(ps, box, seed, frac=0.1, scale=0.05, jump_frac=0.3):
    """Move ``frac`` of the particles; of those, ``jump_frac`` jump to a
    random spot (guaranteed key churn), the rest jiggle locally."""
    rng = np.random.default_rng(seed)
    n = ps.n
    moved = rng.choice(n, size=max(1, int(frac * n)), replace=False)
    moved.sort()
    pos = ps.positions.copy()
    njump = int(jump_frac * moved.size)
    jump, jiggle = moved[:njump], moved[njump:]
    pos[jump] = rng.uniform(box.lo + 0.01, box.lo + box.side - 0.01,
                            (jump.size, ps.dims))
    pos[jiggle] += rng.normal(0.0, scale * box.half, (jiggle.size, ps.dims))
    np.clip(pos, box.lo + 1e-9, box.lo + box.side - 1e-9, out=pos)
    return ParticleSet(positions=pos, masses=ps.masses), moved


def assert_trees_equal(a, b):
    assert a.nnodes == b.nnodes
    for f in ("children", "depth", "path_key", "start", "end", "order"):
        np.testing.assert_array_equal(getattr(a, f), getattr(b, f), err_msg=f)
    for f in ("center", "half", "mass", "com"):
        x, y = getattr(a, f), getattr(b, f)
        assert np.array_equal(x, y), f"{f} differs"


def roundtrip(n, d, cap, collapse, seed=0, frac=0.1, scale=0.05,
              clustered=False, jump_frac=0.3):
    ps, box = make_state(n, d, seed, clustered)
    bits = BITS[d]
    k0 = keys_of(ps, box, bits)
    tree = build_tree(ps, box=box, leaf_capacity=cap, max_depth=bits,
                      collapse_chains=collapse, keys=k0)
    ps2, moved = perturb(ps, box, seed + 1, frac, scale, jump_frac)
    k1 = keys_of(ps2, box, bits)
    res = repair_tree(tree, ps2, k0, k1, moved, collapse_chains=collapse)
    oracle = build_tree(ps2, box=box, leaf_capacity=cap, max_depth=bits,
                        collapse_chains=collapse, keys=k1)
    assert_trees_equal(res.tree, oracle)
    return tree, ps2, res, oracle


class TestRepairExactEquality:
    @pytest.mark.parametrize("d", [2, 3])
    @pytest.mark.parametrize("cap", [1, 8, 32])
    @pytest.mark.parametrize("collapse", [True, False])
    def test_matches_full_rebuild(self, d, cap, collapse):
        roundtrip(600, d, cap, collapse)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_seeds_3d(self, seed):
        roundtrip(500, 3, 8, True, seed=seed, frac=0.2)

    def test_clustered_plummer(self):
        roundtrip(800, 3, 8, True, clustered=True, frac=0.05)

    def test_all_jumps(self):
        roundtrip(400, 2, 4, True, frac=0.15, jump_frac=1.0)

    def test_local_jiggles_only(self):
        roundtrip(400, 3, 8, True, frac=0.2, jump_frac=0.0, scale=0.02)

    def test_large_dirty_fraction_falls_back(self):
        ps, box = make_state(600, 3)
        k0 = keys_of(ps, box, BITS[3])
        tree = build_tree(ps, box=box, leaf_capacity=8, max_depth=BITS[3],
                          keys=k0)
        ps2, moved = perturb(ps, box, 7, frac=0.9, jump_frac=1.0)
        k1 = keys_of(ps2, box, BITS[3])
        res = repair_tree(tree, ps2, k0, k1, moved)
        assert res.rebuilt
        oracle = build_tree(ps2, box=box, leaf_capacity=8,
                            max_depth=BITS[3], keys=k1)
        assert_trees_equal(res.tree, oracle)

    def test_no_key_change_refreshes_monopoles(self):
        ps, box = make_state(500, 3)
        bits = BITS[3]
        k0 = keys_of(ps, box, bits)
        tree = build_tree(ps, box=box, leaf_capacity=8, max_depth=bits,
                          keys=k0)
        # perturb, then revert every particle whose key changed: movers
        # remain but the key set is untouched
        ps2, moved = perturb(ps, box, 3, frac=0.3, jump_frac=0.0,
                             scale=0.01)
        k1 = keys_of(ps2, box, bits)
        pos = ps2.positions.copy()
        pos[k1 != k0] = ps.positions[k1 != k0]
        ps2 = ParticleSet(positions=pos, masses=ps.masses)
        k1 = keys_of(ps2, box, bits)
        assert np.array_equal(k0, k1)
        res = repair_tree(tree, ps2, k0, k1, moved)
        assert not res.rebuilt and res.nodes_rebuilt == 0
        oracle = build_tree(ps2, box=box, leaf_capacity=8, max_depth=bits,
                            keys=k1)
        assert_trees_equal(res.tree, oracle)

    def test_reuses_nodes(self):
        _, _, res, oracle = roundtrip(2000, 3, 8, True, frac=0.02)
        assert res.nodes_reused > 0
        assert res.nodes_reused + res.nodes_rebuilt == oracle.nnodes


class TestRepairBookkeeping:
    def test_id_map_points_at_same_cells(self):
        old, _, res, _ = roundtrip(800, 3, 8, True, frac=0.1)
        new = res.tree
        mapped = np.flatnonzero(res.id_map >= 0)
        tgt = res.id_map[mapped]
        np.testing.assert_array_equal(old.depth[mapped], new.depth[tgt])
        np.testing.assert_array_equal(old.path_key[mapped],
                                      new.path_key[tgt])
        assert np.array_equal(old.center[mapped], new.center[tgt])
        assert np.array_equal(old.half[mapped], new.half[tgt])

    def test_value_dirty_is_sound(self):
        """Every mapped node whose stored monopole differs in the new
        tree must be flagged value-dirty (no false negatives)."""
        old, _, res, _ = roundtrip(800, 3, 8, True, frac=0.1)
        new = res.tree
        mapped = np.flatnonzero(res.id_map >= 0)
        tgt = res.id_map[mapped]
        differs = (old.mass[mapped] != new.mass[tgt]) \
            | (old.com[mapped] != new.com[tgt]).any(axis=1)
        assert np.array_equal(res.value_dirty[mapped], differs)

    def test_children_and_count_flags(self):
        old, _, res, _ = roundtrip(800, 3, 8, True, frac=0.15)
        new = res.tree
        mapped = np.flatnonzero(res.id_map >= 0)
        for o in mapped[:: max(1, mapped.size // 200)]:
            nid = res.id_map[o]
            oc = old.children[o]
            nc = new.children[nid]
            ocells = {(int(old.depth[c]), int(old.path_key[c]), s)
                      for s, c in enumerate(oc) if c >= 0}
            ncells = {(int(new.depth[c]), int(new.path_key[c]), s)
                      for s, c in enumerate(nc) if c >= 0}
            assert res.children_changed[o] == (ocells != ncells)
            assert res.count_changed[o] == (old.count(int(o))
                                            != new.count(int(nid)))

    def test_subtree_extents(self):
        ps, box = make_state(400, 3)
        tree = build_tree(ps, box=box, leaf_capacity=4)
        ext = subtree_extents(tree)

        def span(node):
            hi = node + 1
            for c in tree.children[node]:
                if c >= 0:
                    hi = max(hi, span(int(c)))
            return hi

        for node in range(tree.nnodes):
            assert ext[node] == span(node)


class TestIncrementalMultipoles:
    @pytest.mark.parametrize("degree", [0, 2])
    def test_refresh_matches_full_build(self, degree):
        old, ps2, res, oracle = roundtrip(600, 3, 8, True, frac=0.1)
        mp_old = TreeMultipoles(old, None, degree)
        # build from the *pre-perturbation* particles the old tree saw
        ps0, box = make_state(600, 3)
        mp_old._build(ps0)
        mp_new = refresh_multipoles(mp_old, res, ps2)
        mp_oracle = TreeMultipoles(oracle, ps2, degree)
        assert np.array_equal(mp_new.coeffs, mp_oracle.coeffs)

    def test_refresh_after_full_rebuild_fallback(self):
        ps, box = make_state(600, 3)
        k0 = keys_of(ps, box, BITS[3])
        tree = build_tree(ps, box=box, leaf_capacity=8, max_depth=BITS[3],
                          keys=k0)
        mp_old = TreeMultipoles(tree, ps, 1)
        ps2, moved = perturb(ps, box, 5, frac=0.9, jump_frac=1.0)
        k1 = keys_of(ps2, box, BITS[3])
        res = repair_tree(tree, ps2, k0, k1, moved)
        assert res.rebuilt
        mp_new = refresh_multipoles(mp_old, res, ps2)
        mp_oracle = TreeMultipoles(res.tree, ps2, 1)
        assert np.array_equal(mp_new.coeffs, mp_oracle.coeffs)

    def test_restricted_monopole_pass_is_noop_when_valid(self):
        ps, box = make_state(500, 3)
        tree = build_tree(ps, box=box, leaf_capacity=8)
        mass0, com0 = tree.mass.copy(), tree.com.copy()
        tree.compute_monopoles(ps, nodes=np.arange(tree.nnodes))
        assert np.array_equal(tree.mass, mass0)
        assert np.array_equal(tree.com, com0)
