"""Tests for distribution generators and the paper's named instances."""

import numpy as np
import pytest

from repro.bh.distributions import (
    DOMAIN_SIDE,
    INSTANCES,
    gaussian_blobs,
    make_instance,
    plummer,
    random_centers,
    uniform_cube,
)


class TestUniform:
    def test_count_and_bounds(self):
        ps = uniform_cube(500, side=2.0, seed=1)
        assert ps.n == 500
        assert ps.positions.min() >= 0.0
        assert ps.positions.max() < 2.0

    def test_unit_total_mass(self):
        assert uniform_cube(100).total_mass == pytest.approx(1.0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_cube(0)

    def test_reproducible(self):
        a = uniform_cube(10, seed=7)
        b = uniform_cube(10, seed=7)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestPlummer:
    def test_half_mass_radius(self):
        """The Plummer half-mass radius is ~1.3 scale radii."""
        ps = plummer(20000, scale_radius=1.0, seed=2)
        r = np.linalg.norm(ps.positions, axis=1)
        assert np.median(r) == pytest.approx(1.305, rel=0.05)

    def test_truncation(self):
        ps = plummer(5000, scale_radius=1.0, max_radius=3.0, seed=3)
        r = np.linalg.norm(ps.positions, axis=1)
        assert r.max() <= 3.0 + 1e-9

    def test_velocities_bound(self):
        """No particle exceeds its local escape speed."""
        ps = plummer(5000, seed=4)
        r = np.linalg.norm(ps.positions, axis=1)
        v = np.linalg.norm(ps.velocities, axis=1)
        v_esc = np.sqrt(2.0) * (1.0 + r ** 2) ** -0.25
        assert np.all(v <= v_esc + 1e-9)

    def test_velocity_isotropy(self):
        ps = plummer(20000, seed=5)
        mean_v = ps.velocities.mean(axis=0)
        assert np.abs(mean_v).max() < 0.02

    def test_without_velocities(self):
        ps = plummer(100, with_velocities=False, seed=6)
        np.testing.assert_array_equal(ps.velocities, 0.0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            plummer(10, dims=2)

    def test_mass_normalised(self):
        ps = plummer(1000, total_mass=5.0, seed=7)
        assert ps.total_mass == pytest.approx(5.0)


class TestGaussianBlobs:
    def test_blob_containment(self):
        centers = np.array([[50.0, 50.0, 50.0]])
        ps = gaussian_blobs(10000, centers, sigma=0.5, seed=8)
        r = np.linalg.norm(ps.positions - centers[0], axis=1)
        # 2-sigma (=1.0) should contain the bulk in each axis; radially
        # ~2.5 sigma contains >90%
        assert np.mean(r < 2.5 * 0.5) > 0.85

    def test_multiple_blobs_split_evenly(self):
        centers = np.array([[20.0] * 3, [80.0] * 3])
        ps = gaussian_blobs(101, centers, sigma=1.0, seed=9)
        near_first = np.linalg.norm(ps.positions - centers[0], axis=1) < 30
        assert abs(int(near_first.sum()) - 51) <= 1

    def test_positions_clipped_to_domain(self):
        centers = np.array([[0.0, 0.0, 0.0]])  # at the corner
        ps = gaussian_blobs(1000, centers, sigma=5.0, seed=10)
        assert ps.positions.min() >= 0.0
        assert ps.positions.max() < DOMAIN_SIDE

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_blobs(10, np.zeros((1, 2)), 1.0, dims=3)
        with pytest.raises(ValueError):
            gaussian_blobs(1, np.zeros((2, 3)), 1.0)
        with pytest.raises(ValueError):
            gaussian_blobs(10, np.zeros((1, 3)), 0.0)


class TestInstances:
    def test_registry_covers_paper_tables(self):
        for name in ["g_160535", "g_326214", "g_657499", "g_1192768",
                     "p_63192", "p_353992",
                     "s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b", "g_28131"]:
            assert name in INSTANCES

    def test_counts_match_names(self):
        assert INSTANCES["g_160535"].n == 160535
        assert INSTANCES["p_353992"].n == 353992
        assert INSTANCES["s_1g_a"].n == 25130

    def test_s_instances_follow_section_511(self):
        """s_1g_* have 1 blob, s_10g_* have 10; 'a' variants fit in a
        2^3 subdomain, 'b' variants in 4^3."""
        assert INSTANCES["s_1g_a"].blobs == 1
        assert INSTANCES["s_10g_a"].blobs == 10
        assert INSTANCES["s_1g_a"].containment == 2.0
        assert INSTANCES["s_1g_b"].containment == 4.0

    def test_scaled_instance_count(self):
        ps = make_instance("g_160535", scale=0.01)
        assert ps.n == round(160535 * 0.01)

    def test_instance_inside_domain(self):
        for name in ["s_1g_a", "s_10g_b", "p_63192"]:
            ps = make_instance(name, scale=0.05)
            assert ps.positions.min() >= 0.0
            assert ps.positions.max() < DOMAIN_SIDE

    def test_tight_variant_is_denser(self):
        a = make_instance("s_1g_a", scale=0.2, seed=3)
        b = make_instance("s_1g_b", scale=0.2, seed=3)
        assert a.positions.std(axis=0).mean() < b.positions.std(axis=0).mean()

    def test_ten_blob_instance_spread_wider(self):
        one = make_instance("s_1g_a", scale=0.2, seed=4)
        ten = make_instance("s_10g_a", scale=0.2, seed=4)
        assert ten.positions.std(axis=0).mean() > one.positions.std(axis=0).mean()

    def test_generic_name_synthesis(self):
        ps = make_instance("g_5000", scale=1.0)
        assert ps.n == 5000
        ps = make_instance("p_2000", scale=1.0)
        assert ps.n == 2000

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_instance("q_123")

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            make_instance("g_160535", scale=0.0)
        with pytest.raises(ValueError):
            make_instance("g_160535", scale=1.5)

    def test_sigma_requires_gaussian(self):
        with pytest.raises(ValueError):
            INSTANCES_SPEC = INSTANCES["p_63192"].sigma()


class TestRandomCenters:
    def test_margin_respected(self):
        rng = np.random.default_rng(0)
        c = random_centers(50, 3, rng, margin=0.1)
        assert c.min() >= 0.1 * DOMAIN_SIDE
        assert c.max() <= 0.9 * DOMAIN_SIDE
