"""Tests for the MAC and the batched traversal."""

import numpy as np
import pytest

from repro.bh.distributions import plummer, uniform_cube
from repro.bh.direct import direct_forces, direct_potentials
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MonopoleExpansion, TreeMultipoles
from repro.bh.particles import ParticleSet
from repro.bh.traversal import (
    TraversalResult,
    compute_forces,
    compute_potentials,
    traverse,
)
from repro.bh.tree import build_tree


class TestMAC:
    def _single_node_tree(self):
        rng = np.random.default_rng(0)
        ps = ParticleSet(positions=rng.uniform(0.4, 0.6, (10, 3)),
                         masses=np.ones(10))
        # root box [0,1)^3, node side 1
        from repro.bh.particles import Box
        return build_tree(ps, box=Box(np.full(3, 0.5), 0.5),
                          leaf_capacity=100)

    def test_far_point_accepted(self):
        tree = self._single_node_tree()
        mac = BarnesHutMAC(alpha=0.67)
        far = np.array([[10.0, 0.5, 0.5]])
        assert mac.accept(tree, 0, far)[0]

    def test_near_point_rejected(self):
        tree = self._single_node_tree()
        mac = BarnesHutMAC(alpha=0.67)
        near = np.array([[1.2, 0.5, 0.5]])  # dist ~0.7 < side/alpha = 1.49
        assert not mac.accept(tree, 0, near)[0]

    def test_inside_box_always_rejected(self):
        tree = self._single_node_tree()
        # huge alpha would accept by the ratio test alone
        mac = BarnesHutMAC(alpha=100.0)
        inside = np.array([[0.9, 0.9, 0.9]])
        assert not mac.accept(tree, 0, inside)[0]

    def test_threshold_scales_with_alpha(self):
        tree = self._single_node_tree()
        pt = np.array([[2.0, 0.5, 0.5]])
        assert not BarnesHutMAC(0.5).accept(tree, 0, pt)[0]
        assert BarnesHutMAC(0.8).accept(tree, 0, pt)[0]

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            BarnesHutMAC(0.0)

    def test_flop_count_matches_paper(self):
        assert BarnesHutMAC(0.67).flops_per_test() == 14


class TestTraversal:
    def test_monopole_force_approximates_direct(self):
        ps = plummer(800, seed=1)
        res = compute_forces(ps, alpha=0.5)
        fd = direct_forces(ps)
        rel = (np.linalg.norm(res.values - fd, axis=1)
               / np.linalg.norm(fd, axis=1))
        assert np.median(rel) < 5e-3
        assert rel.max() < 0.2

    def test_smaller_alpha_is_more_accurate(self):
        ps = plummer(600, seed=2)
        pd = direct_potentials(ps)
        errs = []
        for alpha in (0.4, 0.8, 1.5):
            res = compute_potentials(ps, alpha=alpha)
            errs.append(np.linalg.norm(res.values - pd) / np.linalg.norm(pd))
        assert errs[0] < errs[1] < errs[2]

    def test_smaller_alpha_does_more_work(self):
        ps = plummer(600, seed=3)
        tree = build_tree(ps)
        strict = compute_potentials(ps, alpha=0.4, tree=tree)
        loose = compute_potentials(ps, alpha=1.2, tree=tree)
        assert (strict.cluster_interactions + strict.p2p_interactions
                > loose.cluster_interactions + loose.p2p_interactions)

    def test_higher_degree_is_more_accurate(self):
        ps = plummer(500, seed=4)
        tree = build_tree(ps, leaf_capacity=16)
        pd = direct_potentials(ps)
        errs = []
        for k in (1, 3, 5):
            res = compute_potentials(ps, alpha=0.9, degree=k, tree=tree)
            errs.append(np.linalg.norm(res.values - pd) / np.linalg.norm(pd))
        assert errs[0] > errs[1] > errs[2]

    def test_alpha_zero_limit_is_exact(self):
        """With a tiny alpha nothing is ever accepted: pure direct sums."""
        ps = plummer(120, seed=5)
        res = compute_potentials(ps, alpha=1e-9)
        np.testing.assert_allclose(res.values, direct_potentials(ps),
                                   atol=1e-10)
        assert res.cluster_interactions == 0

    def test_counters_consistency(self):
        ps = plummer(300, seed=6)
        res = compute_potentials(ps, alpha=0.7)
        assert res.mac_tests > 0
        assert res.cluster_interactions > 0
        assert res.p2p_interactions > 0
        assert res.flops(0) > 0

    def test_flops_model(self):
        r = TraversalResult(values=np.zeros(1), mac_tests=2,
                            cluster_interactions=3, p2p_interactions=5)
        # degree 4: 14*2 + (13+16*16)*3 + 29*5
        assert r.flops(4) == pytest.approx(28 + 269 * 3 + 145)
        # degree 0 charges clusters as k=1
        assert r.flops(0) == pytest.approx(28 + 29 * 3 + 145)

    def test_merge_counters(self):
        a = TraversalResult(values=np.zeros(1), mac_tests=1,
                            cluster_interactions=2, p2p_interactions=3)
        b = TraversalResult(values=np.zeros(1), mac_tests=10,
                            cluster_interactions=20, p2p_interactions=30)
        a.merge_counters(b)
        assert (a.mac_tests, a.cluster_interactions, a.p2p_interactions) \
            == (11, 22, 33)

    def test_interaction_counting_for_dpda(self):
        ps = plummer(200, seed=7)
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.7)
        ev = MonopoleExpansion(tree)
        res = traverse(tree, ps, ps.positions, mac, ev,
                       count_node_interactions=True)
        total = res.cluster_interactions + \
            sum(res.values.shape[0] for _ in ())  # placeholder no-op
        # every accepted cluster interaction and every leaf visit counted
        assert tree.interactions.sum() > 0
        tree.sum_interactions_up()
        assert tree.interactions[0] >= res.cluster_interactions

    def test_external_targets(self):
        ps = plummer(300, seed=8)
        tree = build_tree(ps)
        mac = BarnesHutMAC(0.6)
        ev = MonopoleExpansion(tree)
        targets = np.array([[50.0, 0.0, 0.0], [0.0, 50.0, 0.0]])
        res = traverse(tree, ps, targets, mac, ev, mode="potential")
        exact = direct_potentials(ps, targets)
        np.testing.assert_allclose(res.values, exact, rtol=1e-3)

    def test_multipole_potential_beats_monopole_far_field(self):
        ps = plummer(400, seed=9)
        tree = build_tree(ps, leaf_capacity=16)
        pd = direct_potentials(ps)
        mono = compute_potentials(ps, alpha=0.9, degree=0, tree=tree)
        multi = compute_potentials(ps, alpha=0.9, degree=4, tree=tree)
        err_mono = np.linalg.norm(mono.values - pd)
        err_multi = np.linalg.norm(multi.values - pd)
        assert err_multi < err_mono

    def test_empty_targets(self):
        ps = plummer(50, seed=10)
        tree = build_tree(ps)
        res = traverse(tree, ps, np.zeros((0, 3)), BarnesHutMAC(0.7),
                       MonopoleExpansion(tree))
        assert res.values.shape == (0,)

    def test_invalid_mode(self):
        ps = plummer(20, seed=11)
        tree = build_tree(ps)
        with pytest.raises(ValueError):
            traverse(tree, ps, ps.positions, BarnesHutMAC(0.7),
                     MonopoleExpansion(tree), mode="energy")

    def test_remote_leaf_collects_targets(self):
        ps = plummer(100, seed=12)
        tree = build_tree(ps, leaf_capacity=8)
        # mark one internal child as remote
        child = int(tree.children[0][tree.children[0] >= 0][0])
        tree.remote_owner[child] = 3
        tree.remote_key[child] = 42
        # force descent everywhere so the remote leaf is reached
        res = traverse(tree, ps, ps.positions, BarnesHutMAC(1e-9),
                       MonopoleExpansion(tree))
        assert child in res.remote_targets
        assert res.remote_targets[child].size > 0

    def test_2d_traversal(self):
        rng = np.random.default_rng(13)
        ps = ParticleSet(positions=rng.uniform(0, 1, (200, 2)),
                         masses=np.ones(200) / 200)
        tree = build_tree(ps, leaf_capacity=8)
        res = traverse(tree, ps, ps.positions, BarnesHutMAC(0.6),
                       MonopoleExpansion(tree), mode="force")
        assert res.values.shape == (200, 2)
        assert np.isfinite(res.values).all()
