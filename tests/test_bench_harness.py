"""The perf-regression harness: schema, trajectory, regression compare.

``benchmarks/harness.py`` is a standalone script (it shells out to the
benches), so these tests import it by path and exercise the pure
pieces: schema-v1 validation over synthetic and committed documents,
trajectory append/read round-trips, and the direction-aware regression
comparison — including that an injected synthetic regression is
flagged.
"""

import glob
import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location(
        "bench_harness", os.path.join(BENCH_DIR, "harness.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def good_doc():
    return {
        "schema_version": 1,
        "bench": "demo",
        "repro_version": "1.0.0",
        "python": "3.11.7",
        "entries": [{
            "case": "spda/p4",
            "params": {"scheme": "spda", "p": 4, "n": 600},
            "metrics": {"wall_seconds": 1.25, "wall_speedup": 2.0},
            "validated": True,
            "context": {"cpu_count": 8},
        }],
    }


# ---------------------------------------------------------- validation

def test_good_doc_validates(harness):
    assert harness.validate_doc(good_doc(), "x.json") == []


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.pop("schema_version"), "schema_version"),
    (lambda d: d.update(schema_version=2), "schema_version"),
    (lambda d: d.update(bench=""), "bench"),
    (lambda d: d.update(entries=[]), "entries"),
    (lambda d: d["entries"][0].pop("case"), "case"),
    (lambda d: d["entries"][0].update(metrics={}), "metrics"),
    (lambda d: d["entries"][0]["metrics"].update(ok=True), "not a number"),
    (lambda d: d["entries"][0]["metrics"].update(note="hi"),
     "not a number"),
    (lambda d: d["entries"][0]["params"].update(vec=[1, 2]),
     "not a scalar"),
    (lambda d: d["entries"][0].update(validated="yes"), "validated"),
    (lambda d: d["entries"][0].update(extra_key=1), "unknown entry keys"),
])
def test_schema_violations_rejected(harness, mutate, fragment):
    doc = good_doc()
    mutate(doc)
    errors = harness.validate_doc(doc, "x.json")
    assert errors, f"expected errors after {fragment!r} mutation"
    assert any(fragment in e for e in errors)


def test_duplicate_cases_rejected(harness):
    doc = good_doc()
    doc["entries"].append(json.loads(json.dumps(doc["entries"][0])))
    errors = harness.validate_doc(doc, "x.json")
    assert any("duplicate case" in e for e in errors)


def test_committed_results_validate(harness):
    """Every BENCH_*.json and trajectory record committed to the repo
    must satisfy schema v1 — the same check CI runs."""
    paths = sorted(glob.glob(
        os.path.join(BENCH_DIR, "results", "BENCH_*.json")))
    assert paths, "no committed bench results found"
    for path in paths:
        with open(path) as fh:
            doc = json.load(fh)
        assert harness.validate_doc(doc, os.path.basename(path)) == []
    trajectory = os.path.join(BENCH_DIR, "results", "trajectory.jsonl")
    assert os.path.exists(trajectory), "trajectory.jsonl not seeded"
    with open(trajectory) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    assert records
    for i, rec in enumerate(records):
        assert harness.validate_trajectory_line(rec, f"line {i}") == []


def test_bench_util_refuses_invalid_entries(tmp_path, monkeypatch):
    sys.path.insert(0, BENCH_DIR)
    try:
        import bench_util
        monkeypatch.setattr(bench_util, "RESULTS_DIR", str(tmp_path))
        with pytest.raises(SystemExit, match="schema-invalid"):
            bench_util.emit_bench_json("demo", [{"case": "a"}])
        path = bench_util.emit_bench_json("demo", [
            bench_util.bench_case("a", {"n": 1}, {"seconds": 0.5})])
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["schema_version"] == 1
        assert doc["entries"][0]["validated"] is True
    finally:
        sys.path.remove(BENCH_DIR)


# ---------------------------------------------------------- trajectory

def test_trajectory_round_trip(harness, tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    monkeypatch.setattr(harness, "TRAJECTORY",
                        str(tmp_path / "trajectory.jsonl"))
    n = harness._append_trajectory(good_doc(), source="smoke")
    assert n == 1
    records = harness._read_trajectory()
    assert len(records) == 1
    rec = records[0]
    assert rec["bench"] == "demo" and rec["case"] == "spda/p4"
    assert rec["source"] == "smoke"
    assert harness.validate_trajectory_line(rec, "line 0") == []
    # Appending again grows the series in order.
    harness._append_trajectory(good_doc(), source="smoke")
    assert len(harness._read_trajectory()) == 2


# ------------------------------------------------------------- compare

def _record(metrics, source="smoke", params=None):
    return {
        "schema_version": 1, "bench": "demo", "case": "spda/p4",
        "repro_version": "1.0.0", "python": "3.11.7",
        "params": params or {"n": 600}, "metrics": metrics,
        "validated": True, "source": source,
    }


def test_metric_direction_heuristics(harness):
    assert harness.metric_direction("wall_seconds_process") == "lower"
    assert harness.metric_direction("parallel_time") == "lower"
    assert harness.metric_direction("checkpoint_overhead") == "lower"
    assert harness.metric_direction("load_imbalance") == "lower"
    assert harness.metric_direction("total_bytes") == "lower"
    assert harness.metric_direction("wall_speedup") == "higher"
    assert harness.metric_direction("steps_per_s") == "higher"
    assert harness.metric_direction("mac_tests") is None


def test_injected_regression_is_flagged(harness):
    records = [
        _record({"wall_seconds": 1.0, "wall_speedup": 2.0}),
        # Injected synthetic regression: 50% slower, speedup halved.
        _record({"wall_seconds": 1.5, "wall_speedup": 1.0}),
    ]
    report, regressions = harness.compare_records(records, threshold=10.0)
    assert len(regressions) == 2
    assert any("wall_seconds" in line for line in regressions)
    assert any("wall_speedup" in line for line in regressions)
    assert all("REGRESSION" in line for line in regressions)


def test_improvement_and_noise_not_flagged(harness):
    records = [
        _record({"wall_seconds": 2.0, "max_abs_diff": 1e-15,
                 "mac_tests": 100.0}),
        _record({"wall_seconds": 1.0, "max_abs_diff": 5e-15,
                 "mac_tests": 500.0}),
    ]
    report, regressions = harness.compare_records(records, threshold=10.0)
    assert regressions == []
    # Untracked metrics appear in the report but never regress.
    assert any("mac_tests" in line and "untracked" in line
               for line in report)
    # Sub-noise-floor metrics are skipped entirely.
    assert not any("max_abs_diff" in line for line in report)


def test_threshold_respected(harness):
    records = [_record({"wall_seconds": 1.0}),
               _record({"wall_seconds": 1.15})]
    _, loose = harness.compare_records(records, threshold=20.0)
    assert loose == []
    _, tight = harness.compare_records(records, threshold=10.0)
    assert len(tight) == 1


def test_series_split_by_params(harness):
    """Smoke and full runs of the same case never compare against each
    other: params are part of the series identity."""
    records = [
        _record({"wall_seconds": 1.0}, params={"n": 20000}),
        _record({"wall_seconds": 100.0}, params={"n": 600}),
    ]
    report, regressions = harness.compare_records(records, threshold=10.0)
    assert report == [] and regressions == []


# ------------------------------------------------------------ CLI glue

def test_repro_bench_subcommand_parses():
    from repro.__main__ import build_parser
    args = build_parser().parse_args(
        ["bench", "--smoke", "--report-only", "--bench",
         "traversal_engine", "--threshold", "15", "--no-append"])
    assert args.command == "bench"
    assert args.smoke and args.report_only and args.no_append
    assert args.bench == ["traversal_engine"]
    assert args.threshold == 15.0


def test_run_flags_parse():
    from repro.__main__ import build_parser
    args = build_parser().parse_args(
        ["run", "--backend", "process", "--live", "--events-out",
         "ev.jsonl"])
    assert args.live and args.events_out == "ev.jsonl"


def test_harness_registry_scripts_exist(harness):
    for name, spec in harness.BENCHES.items():
        path = os.path.join(BENCH_DIR, spec["script"])
        assert os.path.exists(path), f"{name}: missing {spec['script']}"
        assert spec.keys() >= {"script", "smoke", "full"}
