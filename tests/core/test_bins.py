"""Tests for the function-shipping bin protocol."""

import numpy as np
import pytest

from repro.core.bins import BinManager, RequestBin, ResultBin
from repro.machine.costmodel import PARTICLE_RECORD_BYTES
from repro.machine.engine import Engine
from repro.machine.profiles import NCUBE2, ZERO_COST


def records(n, key=7, start=0):
    return (np.arange(start, start + n, dtype=np.int64),
            np.full(n, key, dtype=np.int64),
            np.zeros((n, 3)))


class TestBinRecords:
    def test_request_bin_wire_size(self):
        s, k, c = records(10)
        assert RequestBin(s, k, c).nbytes == 10 * PARTICLE_RECORD_BYTES

    def test_result_bin_wire_size(self):
        r_pot = ResultBin(np.arange(5), np.zeros(5))
        r_force = ResultBin(np.arange(5), np.zeros((5, 3)))
        assert r_pot.nbytes == 20
        assert r_force.nbytes == 60


def run(p, main, profile=ZERO_COST):
    return Engine(p, profile, recv_timeout=30.0).run(main)


class TestBinManagerProtocol:
    def test_round_trip_two_ranks(self):
        """Rank 0 ships requests; rank 1 serves with value = slot * 10."""
        def main(comm):
            got = {}

            def serve(bin_):
                return bin_.slots.astype(float) * 10.0

            def accumulate(slots, vals):
                for s, v in zip(slots, vals):
                    got[int(s)] = float(v)

            mgr = BinManager(comm, capacity=4, dims=3, serve=serve,
                             accumulate=accumulate)
            if comm.rank == 0:
                s, k, c = records(10)
                mgr.add_requests(1, s, k, c)
            mgr.complete()
            return got if comm.rank == 0 else mgr.records_served

        rep = run(2, main)
        assert rep.values[0] == {i: i * 10.0 for i in range(10)}
        assert rep.values[1] == 10

    def test_bins_ship_at_capacity(self):
        def main(comm):
            mgr = BinManager(comm, capacity=3, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            sent_bins = None
            if comm.rank == 0:
                s, k, c = records(7)
                mgr.add_requests(1, s, k, c)
                # 7 records, capacity 3 -> two full bins shipped, 1 pending
                sent_bins = mgr.stats.request_bins_sent
            mgr.complete()
            return sent_bins, mgr.stats.request_bins_sent

        rep = run(2, main)
        assert rep.values[0] == (2, 3)

    def test_flow_control_stalls_counted(self):
        def main(comm):
            mgr = BinManager(comm, capacity=2, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            if comm.rank == 0:
                s, k, c = records(8)
                mgr.add_requests(1, s, k, c)  # 4 bins to same dst
            mgr.complete()
            return mgr.stats.flow_control_stalls

        rep = run(2, main)
        assert rep.values[0] >= 3  # every bin after the first stalls

    def test_mutual_exchange_no_deadlock(self):
        """All ranks ship to all others and serve each other."""
        def main(comm):
            total = [0.0]

            def serve(bin_):
                return np.full(bin_.n, float(comm.rank))

            def accumulate(slots, vals):
                total[0] += vals.sum()

            mgr = BinManager(comm, capacity=5, dims=3, serve=serve,
                             accumulate=accumulate)
            for dst in range(comm.size):
                if dst != comm.rank:
                    s, k, c = records(12)
                    mgr.add_requests(dst, s, k, c)
            mgr.complete()
            return total[0]

        rep = run(4, main)
        for rank, v in enumerate(rep.values):
            expected = 12.0 * sum(r for r in range(4) if r != rank)
            assert v == pytest.approx(expected)

    def test_deterministic_virtual_time(self):
        def main(comm):
            def serve(bin_):
                comm.compute(float(100 * (comm.rank + 1)))
                return np.zeros(bin_.n)

            mgr = BinManager(comm, capacity=3, dims=3, serve=serve,
                             accumulate=lambda s, v: None)
            comm.compute(50.0 * comm.rank)
            for dst in range(comm.size):
                if dst != comm.rank:
                    mgr.add_requests(dst, *records(8))
            mgr.complete()
            return comm.now

        times = [run(8, main, profile=NCUBE2).values for _ in range(3)]
        assert times[0] == times[1] == times[2]

    def test_self_shipping_rejected(self):
        def main(comm):
            mgr = BinManager(comm, capacity=2, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            s, k, c = records(1)
            mgr.add_requests(comm.rank, s, k, c)

        with pytest.raises(RuntimeError, match="not shipped"):
            run(1, main)

    def test_mismatched_arrays_rejected(self):
        def main(comm):
            mgr = BinManager(comm, capacity=2, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            mgr.add_requests(1, np.arange(3), np.arange(2), np.zeros((3, 3)))

        with pytest.raises(RuntimeError, match="disagree"):
            run(2, main)

    def test_invalid_capacity(self):
        def main(comm):
            BinManager(comm, capacity=0, dims=3,
                       serve=lambda b: np.zeros(b.n),
                       accumulate=lambda s, v: None)

        with pytest.raises(RuntimeError, match="capacity"):
            run(1, main)

    def test_empty_add_is_noop(self):
        def main(comm):
            mgr = BinManager(comm, capacity=2, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            mgr.add_requests(1, np.zeros(0, dtype=np.int64),
                             np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
            mgr.complete()
            return mgr.records_sent

        assert run(2, main).values == [0, 0]

    def test_mixed_keys_in_one_bin_preserved(self):
        """Records for different branch keys share a bin; duplicate slots
        must both round-trip (the np.add.at regression case)."""
        def main(comm):
            seen = {}

            def serve(bin_):
                return bin_.keys.astype(float)

            def accumulate(slots, vals):
                for s, v in zip(slots, vals):
                    seen.setdefault(int(s), []).append(float(v))

            mgr = BinManager(comm, capacity=100, dims=3, serve=serve,
                             accumulate=accumulate)
            if comm.rank == 0:
                mgr.add_requests(1, *records(3, key=11, start=0))
                mgr.add_requests(1, *records(3, key=22, start=0))
            mgr.complete()
            return seen if comm.rank == 0 else None

        rep = run(2, main)
        assert rep.values[0] == {0: [11.0, 22.0], 1: [11.0, 22.0],
                                 2: [11.0, 22.0]}

    def test_request_bytes_follow_record_size(self):
        def main(comm):
            mgr = BinManager(comm, capacity=10, dims=3,
                             serve=lambda b: np.zeros(b.n),
                             accumulate=lambda s, v: None)
            if comm.rank == 0:
                mgr.add_requests(1, *records(25))
            mgr.complete()
            return mgr.stats.request_bytes_sent

        rep = run(2, main)
        assert rep.values[0] == 25 * PARTICLE_RECORD_BYTES
