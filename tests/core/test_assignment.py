"""Tests for the SPSA Gray-code modular assignment and the SPDA / DPDA
load balancers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import axis_split, clusters_of_rank, \
    spsa_assignment
from repro.core.costzones import costzones_owners, split_by_key_boundaries
from repro.core.morton_assign import (
    balance_clusters,
    morton_partition,
    partition_imbalance,
)
from repro.core.partition import cluster_coords


class TestAxisSplit:
    def test_even_split(self):
        assert axis_split(16, 2) == [4, 4]
        assert axis_split(64, 3) == [4, 4, 4]

    def test_uneven_split_favors_first_axes(self):
        assert axis_split(8, 2) == [4, 2]
        assert axis_split(32, 3) == [4, 2, 4] or axis_split(32, 3) == [4, 4, 2]

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            axis_split(12, 2)


class TestSPSAAssignment:
    def test_every_processor_gets_equal_clusters(self):
        owners = spsa_assignment(3, 16, 2)  # 64 clusters, 16 procs
        counts = np.bincount(owners, minlength=16)
        assert (counts == 4).all()

    def test_paper_figure5_shape(self):
        """r = 16 clusters on 4 processors in 2-D: each processor gets 4
        clusters scattered modularly (not one contiguous block)."""
        owners = spsa_assignment(2, 4, 2)
        coords = cluster_coords(np.arange(16, dtype=np.int64), 2)
        for rank in range(4):
            mine = coords[owners == rank]
            # scattered: the 4 clusters of a rank span both halves
            assert mine[:, 0].max() - mine[:, 0].min() >= 2

    def test_adjacent_clusters_on_neighbor_processors(self):
        """The Gray-code property: clusters adjacent along an axis map to
        processors at hypercube distance <= 1 (same or neighbor)."""
        level, p, dims = 3, 16, 2
        owners = spsa_assignment(level, p, dims)
        coords = cluster_coords(np.arange(64, dtype=np.int64), 2)
        lookup = {(int(c[0]), int(c[1])): int(owners[i])
                  for i, c in enumerate(coords)}
        for (x, y), o in lookup.items():
            if (x + 1, y) in lookup:
                dist = bin(o ^ lookup[(x + 1, y)]).count("1")
                assert dist <= 1

    def test_3d_assignment_covers_all_ranks(self):
        owners = spsa_assignment(2, 8, 3)  # 64 clusters, 8 procs
        assert set(owners.tolist()) == set(range(8))

    def test_requires_enough_clusters(self):
        with pytest.raises(ValueError, match="too coarse"):
            spsa_assignment(1, 64, 2)  # 4 clusters for 64 procs

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            spsa_assignment(2, 6, 2)

    def test_clusters_of_rank(self):
        owners = spsa_assignment(2, 4, 2)
        mine = clusters_of_rank(owners, 2)
        assert (owners[mine] == 2).all()
        assert np.all(np.diff(mine) > 0)  # Morton sorted


class TestMortonPartition:
    def test_uniform_loads_even_split(self):
        owners = morton_partition(np.ones(16), 4)
        assert np.bincount(owners).tolist() == [4, 4, 4, 4]
        assert (np.diff(owners) >= 0).all()  # contiguous runs

    def test_skewed_loads_balance(self):
        loads = np.array([100.0] + [1.0] * 15)
        owners = morton_partition(loads, 4)
        # the heavy cluster sits alone (or nearly) on its processor
        heavy_owner = owners[0]
        assert (owners == heavy_owner).sum() <= 2
        imb = partition_imbalance(loads, owners, 4)
        naive = partition_imbalance(loads, np.arange(16) * 4 // 16, 4)
        assert imb <= naive

    def test_zero_total_load_spreads_by_count(self):
        owners = morton_partition(np.zeros(8), 4)
        assert np.bincount(owners, minlength=4).tolist() == [2, 2, 2, 2]

    def test_contiguity_always(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            loads = rng.exponential(1.0, size=64)
            owners = morton_partition(loads, 8)
            assert (np.diff(owners) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            morton_partition(np.array([]), 2)
        with pytest.raises(ValueError):
            morton_partition(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            morton_partition(np.ones(4), 0)

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100),
           st.integers(1, 16))
    def test_owner_range_valid(self, loads, p):
        owners = morton_partition(np.array(loads), p)
        assert owners.min() >= 0 and owners.max() < p
        assert (np.diff(owners) >= 0).all()


class TestBalanceClusters:
    def test_first_call_moves_everything(self):
        owners, moved = balance_clusters(np.ones(8), None, 2)
        assert moved == 8

    def test_stable_loads_move_nothing(self):
        loads = np.ones(8)
        owners, _ = balance_clusters(loads, None, 2)
        owners2, moved = balance_clusters(loads, owners, 2)
        assert moved == 0
        np.testing.assert_array_equal(owners, owners2)

    def test_shifted_load_moves_few(self):
        loads = np.ones(32)
        owners, _ = balance_clusters(loads, None, 4)
        loads[0] = 3.0  # small perturbation
        _, moved = balance_clusters(loads, owners, 4)
        assert moved <= 4

    def test_length_checked(self):
        with pytest.raises(ValueError):
            balance_clusters(np.ones(8), np.zeros(7, dtype=int), 2)


class TestCostzones:
    def test_even_loads(self):
        owners = costzones_owners(np.ones(100), 4)
        assert np.bincount(owners).tolist() == [25, 25, 25, 25]

    def test_empty(self):
        assert costzones_owners(np.zeros(0), 4).size == 0

    def test_heavy_head(self):
        loads = np.concatenate((np.full(10, 50.0), np.ones(90)))
        owners = costzones_owners(loads, 2)
        # boundary must fall inside the heavy head region
        assert (owners == 0).sum() < 20

    def test_validation(self):
        with pytest.raises(ValueError):
            costzones_owners(np.ones((2, 2)), 2)
        with pytest.raises(ValueError):
            costzones_owners(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            costzones_owners(np.ones(4), 0)

    def test_split_by_key_boundaries_keeps_runs_together(self):
        keys = np.array([0, 0, 1, 1, 1, 2])
        owners = np.array([0, 0, 0, 1, 1, 1])
        snapped = split_by_key_boundaries(keys, owners, 2)
        np.testing.assert_array_equal(snapped, [0, 0, 0, 0, 0, 1])

    def test_split_by_key_requires_sorted(self):
        with pytest.raises(ValueError):
            split_by_key_boundaries(np.array([2, 1]), np.array([0, 0]), 2)

    def test_split_by_key_empty(self):
        out = split_by_key_boundaries(np.zeros(0, dtype=int),
                                      np.zeros(0, dtype=int), 2)
        assert out.size == 0
