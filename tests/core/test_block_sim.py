"""Distributed block timesteps: the KDK macro-step path of the
simulation orchestrator.

What must hold:

- the default config (``integrator="euler"``, ``timestep="fixed"``)
  never enters the new path (the legacy loop stays bitwise — covered by
  the pre-existing regression suite running unchanged);
- block-mode runs are deterministic bit for bit, per scheme, including
  mid-macro domain-boundary crossings (stray exchanges);
- the virtual and process backends produce bitwise-identical results;
- checkpoint/resume restores the rung/acceleration bin state verbatim,
  so a resumed run is bitwise identical to an uninterrupted one;
- the ``repair.*`` / ``timestep.*`` counters actually fire.
"""

import numpy as np
import pytest

from repro import ParallelBarnesHut, SchemeConfig, plummer
from repro.machine.profiles import NCUBE2

P = 4
N = 240
DT = 5e-3


def block_config(scheme, **kw):
    kw.setdefault("alpha", 0.8)
    kw.setdefault("softening", 0.05)
    kw.setdefault("integrator", "kdk")
    kw.setdefault("timestep", "block")
    kw.setdefault("max_rungs", 3)
    kw.setdefault("dt_eta", 0.3)
    return SchemeConfig(scheme=scheme, mode="force", **kw)


def run_sim(cfg, steps=2, n=N, seed=5, dt=DT, backend="virtual", **kw):
    sim = ParallelBarnesHut(plummer(n, seed=seed), cfg, p=P,
                            profile=NCUBE2, backend=backend, **kw)
    return sim.run(steps=steps, dt=dt)


def assert_bitwise_equal(a, b):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.velocities, b.velocities)
    assert np.array_equal(a.values, b.values)
    assert a.parallel_time == b.parallel_time


# ------------------------------------------------------------ validation

class TestConfigValidation:
    def test_block_requires_kdk(self):
        with pytest.raises(ValueError, match="kdk"):
            SchemeConfig(timestep="block", softening=0.05)

    def test_block_requires_softening(self):
        with pytest.raises(ValueError, match="softening"):
            SchemeConfig(timestep="block", integrator="kdk")

    def test_block_requires_force_mode(self):
        with pytest.raises(ValueError, match="force"):
            SchemeConfig(timestep="block", integrator="kdk",
                         softening=0.05, mode="potential", degree=2)

    def test_bad_integrator_and_timestep_rejected(self):
        with pytest.raises(ValueError, match="integrator"):
            SchemeConfig(integrator="rk4")
        with pytest.raises(ValueError, match="timestep"):
            SchemeConfig(timestep="adaptive")

    def test_rung_parameters_validated(self):
        with pytest.raises(ValueError, match="dt_eta"):
            SchemeConfig(dt_eta=0.0)
        with pytest.raises(ValueError, match="max_rungs"):
            SchemeConfig(max_rungs=0)
        with pytest.raises(ValueError, match="max_rungs"):
            SchemeConfig(max_rungs=17)

    def test_defaults_stay_legacy(self):
        cfg = SchemeConfig()
        assert cfg.integrator == "euler"
        assert cfg.timestep == "fixed"


# ---------------------------------------------------------- determinism

class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["spsa", "spda", "dpda"])
    def test_block_run_is_deterministic(self, scheme):
        cfg = block_config(scheme)
        assert_bitwise_equal(run_sim(cfg), run_sim(cfg))

    def test_fixed_kdk_is_deterministic_without_softening(self):
        # timestep="fixed" + kdk short-circuits the rung criterion, so
        # softening=0 must be accepted on this path.
        cfg = SchemeConfig(scheme="spda", mode="force", alpha=0.8,
                           integrator="kdk", timestep="fixed")
        assert_bitwise_equal(run_sim(cfg), run_sim(cfg))

    def test_block_metrics_fire(self):
        cfg = block_config("dpda")
        result = run_sim(cfg, steps=3)
        snap = result.metrics_summary().snapshot()

        def counter(name):
            return snap.get(name, {}).get("value", 0)

        assert counter("timestep.macro_steps") == 3 * P
        assert counter("timestep.substeps") >= 3 * P
        assert counter("timestep.bootstraps") == P   # first macro only
        assert counter("timestep.force_targets") > 0
        # every particle is binned at each macro end, on exactly one rung
        bins = sum(counter(f"timestep.bin_{r}") for r in range(16))
        assert bins == 3 * N
        # the forest machinery ran every substep: either refreshed in
        # place (repair counters) or rebuilt after a stray exchange
        assert (counter("repair.nodes_reused")
                + counter("repair.nodes_rebuilt")
                + counter("timestep.midmacro_exchanges")) > 0

    def test_repair_path_fires_distributed(self):
        """Clusters sitting inside their own octants keep domain
        membership stable across substeps, so the per-subtree repair
        (not the stray-exchange rebuild) carries the forest — and the
        walk-cache invalidation counters move with it."""
        from repro.bh.particles import Box, ParticleSet

        rng = np.random.default_rng(1)
        n = 2000
        c1 = rng.normal(size=(n // 2, 3)) * 0.3 + 2.5
        c2 = rng.normal(size=(n // 2, 3)) * 0.3 + 7.5
        pos = np.vstack([c1, c2])
        vel = rng.normal(size=(n, 3)) * 0.01
        masses = np.full(n, 1.0 / n)

        def make():
            return ParticleSet(pos.copy(), masses.copy(), vel.copy())

        cfg = block_config("dpda", softening=0.01, max_rungs=5,
                           dt_eta=0.1)
        box = Box(np.zeros(3), 10.0)
        sim = ParallelBarnesHut(make(), cfg, p=P, profile=NCUBE2,
                                root=box)
        result = sim.run(steps=2, dt=0.05)
        snap = result.metrics_summary().snapshot()

        def counter(name):
            return snap.get(name, {}).get("value", 0)

        assert counter("repair.repairs") > 0
        assert counter("repair.nodes_reused") > 0
        assert counter("repair.walks_retained") > 0
        # several rungs occupied: the active-subset machinery was real
        occupied = sum(counter(f"timestep.bin_{r}") > 0 for r in range(5))
        assert occupied >= 2
        # and the run stays deterministic despite all of it
        sim2 = ParallelBarnesHut(make(), cfg, p=P, profile=NCUBE2,
                                 root=box)
        assert_bitwise_equal(result, sim2.run(steps=2, dt=0.05))

    def test_kdk_advances_differently_from_euler(self):
        euler = SchemeConfig(scheme="spda", mode="force", alpha=0.8)
        kdk = SchemeConfig(scheme="spda", mode="force", alpha=0.8,
                           integrator="kdk", timestep="fixed")
        a = run_sim(euler)
        b = run_sim(kdk)
        # Different integrators, same initial data: trajectories differ
        # but remain finite and comparable in magnitude.
        assert not np.array_equal(a.positions, b.positions)
        assert np.all(np.isfinite(b.positions))
        assert np.max(np.abs(a.positions - b.positions)) < 1.0


# -------------------------------------------------------- cross-backend

class TestCrossBackend:
    def test_virtual_and_process_backends_bitwise_identical(self):
        cfg = block_config("spda")
        a = run_sim(cfg)
        b = run_sim(cfg, backend="process")
        assert_bitwise_equal(a, b)
        for ra, rb in zip(a.run.ranks, b.run.ranks):
            assert ra.time == rb.time
            assert ra.timings == rb.timings


# --------------------------------------------------- checkpoint / resume

class TestCheckpointResume:
    def test_resume_restores_bin_state_bitwise(self, tmp_path):
        """Stop a block run at a checkpoint boundary and resume it: the
        finished trajectory must equal an uninterrupted run exactly —
        which requires the checkpointed rungs/accelerations to be
        restored verbatim (a re-bootstrap would re-derive the schedule
        from freshly-computed forces at the *wrong* positions)."""
        cfg = block_config("dpda")
        full = run_sim(cfg, steps=4, checkpoint_dir=str(tmp_path / "a"),
                       checkpoint_every=2)
        run_sim(cfg, steps=2, checkpoint_dir=str(tmp_path / "b"),
                checkpoint_every=2)
        resumed = ParallelBarnesHut(
            plummer(N, seed=5), cfg, p=P, profile=NCUBE2,
            checkpoint_dir=str(tmp_path / "b"), checkpoint_every=2,
            resume=True,
        ).run(steps=4, dt=DT)
        assert resumed.resumed_from == 2
        assert_bitwise_equal(full, resumed)
        # No re-bootstrap after the resume: metric accounting rides the
        # checkpoint, so the resumed run reports exactly the one
        # bootstrap of macro step 0 — same as the uninterrupted run.
        # (A re-bootstrap would also add collective force evaluations
        # and break the parallel_time equality asserted above.)
        snap = resumed.metrics_summary().snapshot()
        full_snap = full.metrics_summary().snapshot()
        assert snap["timestep.bootstraps"] == full_snap["timestep.bootstraps"]
        assert snap["timestep.bootstraps"]["value"] == P
