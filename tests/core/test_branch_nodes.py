"""Tests for branch keys and the two lookup schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.branch_nodes import (
    BranchInfo,
    HashedBranchIndex,
    SortedBranchIndex,
    branch_key,
    cell_of_branch_key,
    make_branch_index,
)
from repro.core.partition import Cell


def info(key, owner=0):
    return BranchInfo(key=key, owner=owner, cell=cell_of_branch_key(key, 3),
                      count=1, mass=1.0, com=np.zeros(3))


class TestBranchKey:
    def test_uniqueness_across_depths(self):
        """Cell 0 at depth 1 and depth 2 must get different keys."""
        assert branch_key(Cell(1, 0), 3) != branch_key(Cell(2, 0), 3)
        assert branch_key(Cell(0, 0), 3) == 1

    def test_round_trip(self):
        for depth in range(5):
            for pk in {0, 1, (1 << (3 * depth)) - 1}:
                if pk >= (1 << (3 * depth)):
                    continue  # path key out of range at this depth
                c = Cell(depth, pk)
                assert cell_of_branch_key(branch_key(c, 3), 3) == c

    @settings(deadline=None, max_examples=50)
    @given(st.integers(0, 6), st.integers(0, 10**5), st.integers(2, 3))
    def test_round_trip_random(self, depth, pk, dims):
        pk = pk % (1 << (dims * depth)) if depth else 0
        c = Cell(depth, pk)
        assert cell_of_branch_key(branch_key(c, dims), dims) == c

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            cell_of_branch_key(0, 3)


class TestSortedIndex:
    def test_lookup(self):
        idx = SortedBranchIndex([info(9), info(17), info(73)])
        assert idx.lookup(17).key == 17
        assert len(idx) == 3

    def test_missing_key(self):
        idx = SortedBranchIndex([info(9)])
        with pytest.raises(KeyError):
            idx.lookup(10)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SortedBranchIndex([info(9), info(9)])

    def test_probe_count_is_logarithmic(self):
        branches = [info(branch_key(Cell(3, k), 3), owner=k % 4)
                    for k in range(256)]
        idx = SortedBranchIndex(branches)
        idx.lookup(branches[100].key)
        assert idx.probes <= 10  # ~log2(256) + 1

    def test_iteration(self):
        idx = SortedBranchIndex([info(9), info(3)])
        assert [b.key for b in idx] == [3, 9]


class TestHashedIndex:
    def test_lookup(self):
        idx = HashedBranchIndex([info(9), info(17), info(73)])
        assert idx.lookup(73).key == 73

    def test_missing_key(self):
        idx = HashedBranchIndex([info(9)])
        with pytest.raises(KeyError):
            idx.lookup(99)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            HashedBranchIndex([info(5), info(5)])

    def test_dense_table_has_chains(self):
        """Squeezing many keys into few buckets produces the chaining the
        paper warns about."""
        branches = [info(branch_key(Cell(4, k), 3), owner=0)
                    for k in range(64)]
        idx = HashedBranchIndex(branches, n_buckets=8)
        assert idx.max_chain >= 4

    def test_move_to_front_reduces_probes_for_hot_key(self):
        branches = [info(branch_key(Cell(4, k), 3)) for k in range(64)]
        hot = branches[37].key
        mtf = HashedBranchIndex(branches, n_buckets=4, move_to_front=True)
        plain = HashedBranchIndex(branches, n_buckets=4, move_to_front=False)
        for idx in (mtf, plain):
            for _ in range(50):
                idx.lookup(hot)
        assert mtf.probes < plain.probes

    def test_iteration_covers_all(self):
        branches = [info(k) for k in (3, 9, 27)]
        idx = HashedBranchIndex(branches)
        assert sorted(b.key for b in idx) == [3, 9, 27]


class TestFactoryAndInfo:
    def test_factory(self):
        assert isinstance(make_branch_index([info(1)], "hashed"),
                          HashedBranchIndex)
        assert isinstance(make_branch_index([info(1)], "sorted"),
                          SortedBranchIndex)
        with pytest.raises(ValueError):
            make_branch_index([info(1)], "trie")

    def test_wire_bytes_grow_with_coeffs(self):
        plain = info(9)
        rich = info(9)
        rich.coeffs = np.zeros(25, dtype=np.complex128)
        assert rich.wire_bytes(4) > plain.wire_bytes(4)
        assert rich.nbytes > plain.nbytes

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(0, 10**4), min_size=1, max_size=200,
                    unique=True))
    def test_both_schemes_agree(self, raw_keys):
        keys = [k + 1 for k in raw_keys]  # branch keys are >= 1
        branches = [BranchInfo(key=k, owner=k % 7, cell=Cell(0, 0),
                               count=0, mass=0.0, com=np.zeros(3))
                    for k in keys]
        hashed = HashedBranchIndex(branches)
        sorted_ = SortedBranchIndex(branches)
        for k in keys:
            assert hashed.lookup(k).owner == sorted_.lookup(k).owner
