"""DPDA decomposition degenerate boundary cases.

The Costzones boundary location assumes every load target ``i W / p``
lands inside some rank's cumulative load range.  All-zero loads, loads
concentrated on a single particle, and zero-load gaps all break that
assumption and must fall through the padding path (missing boundaries
collapse to the end of key space, leaving ranks with empty key ranges)
without deadlocking or losing particles.
"""

import numpy as np
import pytest

from repro.bh.particles import ParticleSet
from repro.core.config import SchemeConfig
from repro.core.simulation import ParallelBarnesHut, _RankState
from repro.machine.engine import Engine
from repro.machine.profiles import ZERO_COST

BITS = 6


def _particles(n, seed=0, dims=3):
    rng = np.random.default_rng(seed)
    return ParticleSet(
        positions=rng.random((n, dims)),
        masses=np.ones(n),
        velocities=np.zeros((n, dims)),
    )


def _decompose_with_loads(p, shards, loads_fn):
    """Run one DPDA re-decomposition (step > 0) with crafted measured
    loads and return each rank's (boundaries, n_local, n_cells)."""
    cfg = SchemeConfig(scheme="dpda", alpha=0.7, degree=0, mode="potential")
    root = ParticleSet.concatenate(
        [s for s in shards if s.n]
    ).bounding_box()

    def main(comm, shard):
        state = _RankState(comm, cfg, root, BITS, shard)
        state.my_particle_loads = loads_fn(comm.rank, shard.n)
        cells = state.decompose(1)
        return (state.key_boundaries.tolist(), state.particles.n,
                len(cells))

    rep = Engine(p, ZERO_COST, recv_timeout=30.0).run(
        main, rank_args=[(s,) for s in shards]
    )
    return rep.values


class TestDegenerateLoads:
    def test_all_zero_loads(self):
        """W == 0: every boundary pads to the end of key space; all
        particles collapse onto rank 0 and the others go empty."""
        p, n = 4, 24
        shards = [_particles(n // p, seed=r) for r in range(p)]
        out = _decompose_with_loads(p, shards,
                                    lambda r, m: np.zeros(m))
        span = 1 << (3 * BITS)
        for boundaries, _, _ in out:
            assert boundaries == [span] * (p - 1)
        counts = [n_local for _, n_local, _ in out]
        assert counts[0] == n and counts[1:] == [0] * (p - 1)
        # Empty key ranges produce empty cover-cell lists, not errors.
        assert [c for _, _, c in out][1:] == [0] * (p - 1)

    def test_boundary_target_in_zero_load_gap(self):
        """One rank holds all the load: the other rank's cumulative range
        is empty, so it reports no boundary and the single report from
        the loaded rank still splits the key space."""
        p = 2
        shards = [_particles(10, seed=1), _particles(10, seed=2)]

        def loads(rank, m):
            return (np.linspace(1.0, 2.0, m) if rank == 0
                    else np.zeros(m))

        out = _decompose_with_loads(p, shards, loads)
        assert all(len(b) == p - 1 for b, _, _ in out)
        assert sum(n_local for _, n_local, _ in out) == 20

    def test_single_heavy_particle_leaves_empty_ranks(self):
        """All load on one particle: both targets resolve to the same
        key, the middle rank gets an empty key range and zero cells."""
        p = 3
        shards = [_particles(8, seed=r + 3) for r in range(p)]

        def loads(rank, m):
            arr = np.zeros(m)
            if rank == 0 and m:
                arr[0] = 100.0
            return arr

        out = _decompose_with_loads(p, shards, loads)
        boundaries = out[0][0]
        assert boundaries[0] == boundaries[1]
        counts = [n_local for _, n_local, _ in out]
        assert sum(counts) == 24
        assert 0 in counts[1:]

    def test_more_ranks_than_particles_full_pipeline(self):
        """p > n forces empty key ranges through the whole per-step
        pipeline (tree build, merge, function shipping), twice."""
        ps = _particles(3, seed=9)
        cfg = SchemeConfig(scheme="dpda", alpha=0.7, degree=0,
                           mode="potential")
        sim = ParallelBarnesHut(ps, cfg, p=4, profile=ZERO_COST,
                                bits=BITS, recv_timeout=60.0)
        result = sim.run(steps=2)
        assert np.all(np.isfinite(result.values))
        assert sum(sr.n_local for sr in result.steps[-1]) == 3


class TestMovedInCounter:
    def test_moved_in_reports_balancing_exchange(self):
        """The count must be taken before decompose() runs the exchange
        (it used to always read 0)."""
        ps = _particles(64, seed=4)
        cfg = SchemeConfig(scheme="spsa", alpha=0.7, degree=0,
                           mode="potential", grid_level=1)
        sim = ParallelBarnesHut(ps, cfg, p=4, profile=ZERO_COST,
                                bits=BITS, recv_timeout=60.0)
        result = sim.run(steps=1)
        moved = [sr.moved_in for sr in result.steps[0]]
        # The Gray-code cluster placement differs from the host's
        # Morton-contiguous deal, so some rank must gain or lose.
        assert any(m != 0 for m in moved)
        # Net gains and losses cancel machine-wide.
        assert sum(moved) == 0
