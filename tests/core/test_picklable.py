"""Pickle round-trip safety for everything the process backend ships.

The process runtime moves these objects across OS process boundaries
(worker arguments, result envelopes); any unpicklable field — a lock, a
lambda, an open handle — would only surface as a crash deep inside a
parallel run.  This pins down, object by object, that a round trip
through pickle is lossless.
"""

import pickle

import numpy as np

from repro import ParticleSet, SchemeConfig, plummer
from repro.core.bins import ShipStats
from repro.core.checkpoint import RankCheckpoint
from repro.core.function_shipping import ForceResult
from repro.core.simulation import StepResult
from repro.machine.clock import PhaseTimings
from repro.machine.comm import CommStats
from repro.machine.faults import FaultPlan, ReliableConfig
from repro.machine.metrics import MetricsRegistry


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


def assert_particles_equal(a: ParticleSet, b: ParticleSet):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.masses, b.masses)
    assert np.array_equal(a.velocities, b.velocities)
    assert np.array_equal(a.ids, b.ids)


def test_particle_set_roundtrip():
    ps = plummer(50, seed=3)
    assert_particles_equal(ps, roundtrip(ps))
    empty = ParticleSet.empty(3)
    assert roundtrip(empty).n == 0


def test_scheme_config_roundtrip():
    cfg = SchemeConfig(scheme="dpda", alpha=0.55, degree=2,
                       mode="potential", grid_level=2, leaf_capacity=8)
    assert roundtrip(cfg) == cfg


def test_fault_plan_roundtrip():
    plan = FaultPlan(seed=77, drop_rate=0.1, dup_rate=0.05,
                     delay_rate=0.2, delay_seconds=1e-3,
                     crash={2: 0.5}, slowdown={1: 2.0})
    back = roundtrip(plan)
    assert back == plan
    # Decisions derive from the plan's hash seed: they must survive too.
    from repro.machine.faults import FaultInjector
    a, b = FaultInjector(plan, 4), FaultInjector(back, 4)
    for _ in range(20):
        da, db = a.decide(0, 1, 3), b.decide(0, 1, 3)
        assert (da.drop, da.duplicate, da.extra_delay) == \
               (db.drop, db.duplicate, db.extra_delay)


def test_reliable_config_roundtrip():
    rc = ReliableConfig(timeout=2e-3, backoff=1.5, max_retries=9)
    assert roundtrip(rc) == rc


def _step_result() -> StepResult:
    force = ForceResult(values=np.random.default_rng(0).random((5, 3)),
                        mac_tests=10, cluster_interactions=20,
                        p2p_interactions=30, records_shipped=4,
                        records_served=2,
                        ship=ShipStats(request_bins_sent=1,
                                       request_records_sent=7),
                        walks_built=3, walks_reused=1)
    return StepResult(n_local=5, force=force, moved_in=1,
                      virtual_seconds=0.25)


def test_step_and_force_results_roundtrip():
    sr = _step_result()
    back = roundtrip(sr)
    assert back.n_local == sr.n_local
    assert back.moved_in == sr.moved_in
    assert back.virtual_seconds == sr.virtual_seconds
    assert np.array_equal(back.force.values, sr.force.values)
    assert back.force.ship == sr.force.ship
    assert back.force.p2p_interactions == sr.force.p2p_interactions


def test_rank_checkpoint_roundtrip():
    ps = plummer(20, seed=4)
    ckpt = RankCheckpoint(
        rank=1, step=3, particles=ps,
        cluster_owners=np.arange(8),
        cluster_load=np.linspace(0, 1, 8),
        key_boundaries=np.array([0, 100, 200]),
        my_particle_loads=np.ones(20),
        last_values=np.zeros((20, 3)),
        clock_now=12.5,
        phase_seconds={"force computation": 9.0, "tree build": 2.5},
        results=[_step_result()],
    )
    back = roundtrip(ckpt)
    assert (back.rank, back.step, back.clock_now) == (1, 3, 12.5)
    assert_particles_equal(back.particles, ps)
    assert np.array_equal(back.cluster_owners, ckpt.cluster_owners)
    assert np.array_equal(back.cluster_load, ckpt.cluster_load)
    assert np.array_equal(back.key_boundaries, ckpt.key_boundaries)
    assert np.array_equal(back.my_particle_loads, ckpt.my_particle_loads)
    assert np.array_equal(back.last_values, ckpt.last_values)
    assert back.phase_seconds == ckpt.phase_seconds
    assert len(back.results) == 1
    # None-able fields stay None through the trip.
    sparse = RankCheckpoint(rank=0, step=0, particles=ps,
                            cluster_owners=None, cluster_load=None,
                            key_boundaries=None, my_particle_loads=None,
                            last_values=None, clock_now=0.0,
                            phase_seconds={})
    back = roundtrip(sparse)
    assert back.cluster_load is None and back.last_values is None


def test_rank_checkpoint_accounting_fields_roundtrip(tmp_path):
    """The recovery-era fields (comm accounting, sequence counters)
    survive both pickle and the durable on-disk format."""
    from repro.core.checkpoint import DiskCheckpointStore

    ps = plummer(10, seed=6)
    reg = MetricsRegistry()
    reg.counter("comm.retransmissions").inc(4)
    reg.histogram("comm.recv_wait_seconds").observe(0.125)
    ckpt = RankCheckpoint(
        rank=2, step=5, particles=ps,
        cluster_owners=None, cluster_load=None, key_boundaries=None,
        my_particle_loads=None, last_values=None, clock_now=3.5,
        phase_seconds={},
        comm_stats=CommStats(messages_sent=9, bytes_sent=512,
                             bytes_by_tag={7: 512}),
        metrics=reg, coll_seq=17, xmit_seq=42,
    )
    back = roundtrip(ckpt)
    assert back.comm_stats == ckpt.comm_stats
    assert back.metrics.snapshot() == reg.snapshot()
    assert (back.coll_seq, back.xmit_seq) == (17, 42)

    store = DiskCheckpointStore(tmp_path / "ckpt", size=3)
    store.save(ckpt)
    disk = DiskCheckpointStore(tmp_path / "ckpt", size=3).get(2, 5)
    assert disk.comm_stats == ckpt.comm_stats
    assert disk.metrics.snapshot() == reg.snapshot()
    assert (disk.coll_seq, disk.xmit_seq) == (17, 42)
    # Pre-recovery-era checkpoints default the new fields.
    legacy = RankCheckpoint(rank=0, step=0, particles=ps,
                            cluster_owners=None, cluster_load=None,
                            key_boundaries=None, my_particle_loads=None,
                            last_values=None, clock_now=0.0,
                            phase_seconds={})
    assert legacy.comm_stats is None and legacy.metrics is None
    assert (legacy.coll_seq, legacy.xmit_seq) == (0, 0)


def test_machine_accounting_objects_roundtrip():
    stats = CommStats(messages_sent=3, bytes_sent=100,
                      bytes_by_tag={1: 60, 2: 40},
                      retransmissions=2)
    assert roundtrip(stats) == stats
    timings = PhaseTimings({"force computation": 1.5, "other": 0.25})
    assert roundtrip(timings) == timings
    reg = MetricsRegistry()
    reg.counter("c").inc(5)
    reg.gauge("g").set(2.0)
    reg.histogram("h").observe(0.5)
    assert roundtrip(reg).snapshot() == reg.snapshot()
