"""Morton-key reuse across the distributed pipeline.

Quantization happens once per rank per step; every later consumer —
cluster binning, cell assignment, per-cell subtree construction, and the
keys carried through the particle exchange — derives its keys by bit
arithmetic on that one array.  These tests pin the identities that make
the reuse exact and check that carrying keys is bitwise-neutral
end-to-end.
"""

import numpy as np
import pytest

import repro.core.simulation as simulation
from repro.bh.distributions import plummer
from repro.bh.morton import morton_keys
from repro.bh.particles import Box
from repro.core.config import SchemeConfig
from repro.core.partition import Cell
from repro.core.simulation import ParallelBarnesHut, _Shard
from repro.core.tree_build import build_local_trees
from repro.machine.comm import estimate_nbytes

ROOT3 = Box(np.full(3, 50.0), 50.0)

TREE_FIELDS = ("children", "depth", "path_key", "center", "half",
               "start", "end", "order", "mass", "com")


class TestShiftIdentity:
    """floor(x * 2^b) >> (b - g) == floor(x * 2^g): coarse keys are a
    right-shift of fine keys, never a re-quantization."""

    @pytest.mark.parametrize("dims", [2, 3])
    def test_coarse_keys_are_shifted_fine_keys(self, dims):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0.0, 100.0, (5000, dims))
        pos[0] = 0.0                      # exact lower corner
        pos[1] = np.nextafter(100.0, 0)   # just inside the upper corner
        lo, side, bits = np.zeros(dims), 100.0, 16
        fine = morton_keys(pos, lo, side, bits)
        for g in (1, 2, 4, 8, 15):
            coarse = morton_keys(pos, lo, side, g)
            np.testing.assert_array_equal(coarse,
                                          fine >> (dims * (bits - g)))


class TestBuildLocalTrees:
    def test_precomputed_keys_change_nothing(self):
        ps = plummer(2000, seed=1)
        cells = [Cell(1, k) for k in range(8)]
        cfg = SchemeConfig(scheme="spsa", alpha=0.67, mode="force",
                           degree=0, leaf_capacity=8)
        bits = 16
        fresh = build_local_trees(ps, cells, ROOT3, cfg, bits)
        keys = morton_keys(ps.positions, ROOT3.lo, ROOT3.side, bits)
        carried = build_local_trees(ps, cells, ROOT3, cfg, bits,
                                    keys=keys)
        assert len(fresh) == len(carried)
        for a, b in zip(fresh, carried):
            assert a.key == b.key
            np.testing.assert_array_equal(a.local_idx, b.local_idx)
            for f in TREE_FIELDS:
                np.testing.assert_array_equal(getattr(a.tree, f),
                                              getattr(b.tree, f),
                                              err_msg=f)


class TestShard:
    def test_charges_only_particle_bytes(self):
        """Carried keys are recomputable from the positions, so the
        virtual machine must not bill them as extra wire traffic."""
        ps = plummer(100, seed=0)
        shard = _Shard(ps, np.arange(100, dtype=np.int64))
        assert estimate_nbytes(shard) == estimate_nbytes(ps)


class TestCarryToggle:
    @pytest.mark.parametrize("scheme", ["spsa", "spda", "dpda"])
    def test_bitwise_neutral_end_to_end(self, scheme, monkeypatch):
        ps = plummer(600, seed=4)
        cfg = SchemeConfig(scheme=scheme, alpha=0.7, mode="force",
                           degree=0, leaf_capacity=8)

        def run():
            sim = ParallelBarnesHut(ps, cfg, p=4)
            return sim.run(steps=2, dt=0.005)

        monkeypatch.setattr(simulation, "CARRY_MORTON_KEYS", True)
        on = run()
        monkeypatch.setattr(simulation, "CARRY_MORTON_KEYS", False)
        off = run()

        np.testing.assert_array_equal(on.values, off.values)
        np.testing.assert_array_equal(on.positions, off.positions)
        assert on.parallel_time == off.parallel_time
        assert on.force_computations() == off.force_computations()
