"""Simulation-level fault-tolerance acceptance tests.

These exercise the full parallel Barnes-Hut pipeline (host shard,
tree merge, function shipping, balancing exchange) under injected
faults, checking the ISSUE acceptance criteria: reliable delivery
keeps answers within 1e-12 of the fault-free run, crash recovery is
bitwise identical, slow ranks shed load, and zero-fault reliable runs
leave timings untouched.
"""

import numpy as np
import pytest

from repro.bh.distributions import make_instance
from repro.core.config import SchemeConfig
from repro.core.simulation import ParallelBarnesHut
from repro.core.bins import TAG_REQUEST, TAG_RESULT
from repro.machine.faults import FaultPlan
from repro.machine.profiles import NCUBE2

P = 4
STEPS = 2


def _particles():
    return make_instance("g_160535", scale=0.0008, seed=3)


def _config():
    return SchemeConfig(scheme="dpda", alpha=0.7, degree=0,
                        mode="potential")


def _sim(**kw):
    kw.setdefault("recv_timeout", 120.0)
    return ParallelBarnesHut(_particles(), _config(), p=P,
                             profile=NCUBE2, **kw)


@pytest.fixture(scope="module")
def baseline():
    return _sim().run(steps=STEPS)


class TestReliableDelivery:
    def test_drops_and_dup_on_shipping_tags(self, baseline):
        """5% drops plus a forced duplicate on the function-shipping
        tags: the run completes, values match to 1e-12, and retry
        counters land in the RunReport."""
        plan = FaultPlan(seed=7, drop_rate=0.05,
                         tags={TAG_REQUEST, TAG_RESULT},
                         duplicate_first=(0, 1, TAG_REQUEST))
        res = _sim(fault_plan=plan, reliable=True).run(steps=STEPS)

        np.testing.assert_allclose(res.values, baseline.values,
                                   rtol=1e-12, atol=0.0)
        fs = res.fault_summary()
        assert fs["drops_injected"] > 0
        assert fs["retransmissions"] == fs["drops_injected"]
        assert fs["duplicates_injected"] == 1
        assert fs["duplicates_suppressed"] == 1
        assert fs["messages_lost"] == 0
        assert res.run.total_retransmissions == fs["retransmissions"]

    def test_identical_plans_identical_runs(self):
        """Same seed, same plan: makespans and counters are bitwise
        reproducible across runs."""
        plan = FaultPlan(seed=7, drop_rate=0.05,
                         tags={TAG_REQUEST, TAG_RESULT})
        a = _sim(fault_plan=plan, reliable=True).run(steps=STEPS)
        b = _sim(fault_plan=plan, reliable=True).run(steps=STEPS)
        assert a.parallel_time == b.parallel_time
        assert a.fault_summary() == b.fault_summary()
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.positions, b.positions)

    def test_zero_fault_reliable_is_timing_neutral(self, baseline):
        """Turning the reliable layer on without any faults must not
        move the makespan by a single ulp."""
        res = _sim(fault_plan=FaultPlan(), reliable=True).run(steps=STEPS)
        assert res.parallel_time == baseline.parallel_time
        assert np.array_equal(res.values, baseline.values)
        assert all(v == 0 for v in res.fault_summary().values())


class TestCrashRecovery:
    def test_crash_recovery_is_bitwise_identical(self, baseline):
        """A mid-run crash with per-step checkpoints rolls back and
        re-executes to the exact fault-free trajectory."""
        crash_at = 0.5 * baseline.parallel_time
        plan = FaultPlan(crash={1: crash_at})
        res = _sim(fault_plan=plan,
                   checkpoint_every=1).run(steps=STEPS)
        assert res.recoveries == 1
        assert np.array_equal(res.values, baseline.values)
        assert np.array_equal(res.positions, baseline.positions)
        assert np.array_equal(res.velocities, baseline.velocities)

    def test_crash_without_checkpoints_is_fatal(self):
        from repro.machine.faults import RankCrashedError
        plan = FaultPlan(crash={1: 1e-6})
        with pytest.raises(RankCrashedError):
            _sim(fault_plan=plan).run(steps=STEPS)


class TestGracefulDegradation:
    def test_slow_rank_sheds_load(self):
        """With rank 0 running 4x slow, the dynamic balancer must end
        up less imbalanced than the static scheme, which keeps feeding
        the slow rank its full share."""
        plan = FaultPlan(slowdown={0: 4.0})
        static_cfg = SchemeConfig(scheme="spsa", alpha=0.7, degree=0,
                                  mode="potential", grid_level=1)
        ps = _particles()
        static = ParallelBarnesHut(ps, static_cfg, p=P, profile=NCUBE2,
                                   recv_timeout=120.0,
                                   fault_plan=plan).run(steps=3)
        dynamic = _sim(fault_plan=plan).run(steps=3)
        assert dynamic.load_imbalance() < static.load_imbalance()
        # Shedding also shortens the tail iteration itself.
        assert dynamic.last_step_time < static.last_step_time
