"""Tests for cells, cluster keys, and canonical Morton-range covers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bh.particles import Box
from repro.core.partition import (
    Cell,
    cluster_coords,
    cluster_grid_size,
    cluster_keys,
    cover_cells,
    owned_cells_grid,
)

ROOT2 = Box(np.array([0.5, 0.5]), 0.5)
ROOT3 = Box(np.array([0.5, 0.5, 0.5]), 0.5)


class TestCell:
    def test_ordering_and_equality(self):
        assert Cell(1, 0) < Cell(1, 1) < Cell(2, 0)
        assert Cell(2, 5) == Cell(2, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cell(-1, 0)
        with pytest.raises(ValueError):
            Cell(0, -2)

    def test_key_range(self):
        # depth-1 cell 3 of a 2-D depth-3 key space covers 16 keys
        assert Cell(1, 3).key_range(3, 2) == (48, 64)
        assert Cell(0, 0).key_range(3, 2) == (0, 64)

    def test_key_range_depth_checked(self):
        with pytest.raises(ValueError):
            Cell(4, 0).key_range(3, 2)

    def test_contains_cell(self):
        parent = Cell(1, 2)
        assert parent.contains_cell(Cell(2, 2 * 4 + 1), 2)
        assert parent.contains_cell(parent, 2)
        assert not parent.contains_cell(Cell(2, 3 * 4), 2)
        assert not parent.contains_cell(Cell(0, 0), 2)

    def test_parent(self):
        assert Cell(2, 0b0111).parent(2) == Cell(1, 0b01)
        with pytest.raises(ValueError):
            Cell(0, 0).parent(2)

    def test_box(self):
        b = Cell(1, 0b11).box(ROOT2)
        np.testing.assert_allclose(b.center, [0.75, 0.75])


class TestClusterKeys:
    def test_grid_size(self):
        assert cluster_grid_size(2, 2) == 16
        assert cluster_grid_size(2, 3) == 64
        with pytest.raises(ValueError):
            cluster_grid_size(-1, 2)

    def test_level_zero_single_cluster(self):
        pos = np.random.default_rng(0).uniform(0, 1, (10, 3))
        np.testing.assert_array_equal(cluster_keys(pos, ROOT3, 0),
                                      np.zeros(10))

    def test_keys_match_cell_boxes(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 1, (100, 2))
        keys = cluster_keys(pos, ROOT2, 2)
        for i in range(100):
            cell = Cell(2, int(keys[i]))
            assert cell.box(ROOT2).contains(pos[i:i + 1])[0]

    def test_coords_round_trip(self):
        keys = np.arange(16, dtype=np.int64)
        coords = cluster_coords(keys, 2)
        from repro.bh.morton import morton_key_2d
        back = morton_key_2d(coords[:, 0], coords[:, 1])
        np.testing.assert_array_equal(back, keys)

    def test_coords_bad_dims(self):
        with pytest.raises(ValueError):
            cluster_coords(np.zeros(1, dtype=np.int64), 4)

    def test_owned_cells_grid_sorted(self):
        cells = owned_cells_grid(np.array([5, 2, 9]), 2)
        assert [c.path_key for c in cells] == [2, 5, 9]
        assert all(c.depth == 2 for c in cells)


class TestCoverCells:
    def test_full_range_is_root(self):
        assert cover_cells(0, 64, 3, 2) == [Cell(0, 0)]

    def test_single_key(self):
        assert cover_cells(5, 6, 3, 2) == [Cell(3, 5)]

    def test_empty_range(self):
        assert cover_cells(7, 7, 3, 2) == []

    def test_known_decomposition(self):
        # [1, 8) in a 2-D depth-3 space: keys 1,2,3 (depth 3), 4..8 (depth 2)
        cells = cover_cells(1, 8, 3, 2)
        assert cells == [Cell(3, 1), Cell(3, 2), Cell(3, 3), Cell(2, 1)]

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            cover_cells(-1, 4, 3, 2)
        with pytest.raises(ValueError):
            cover_cells(0, 65, 3, 2)
        with pytest.raises(ValueError):
            cover_cells(5, 4, 3, 2)

    @settings(deadline=None, max_examples=100)
    @given(st.integers(0, 4096), st.integers(0, 4096), st.integers(2, 3))
    def test_cover_exactly_tiles_range(self, a, b, dims):
        bits = 4 if dims == 3 else 6
        span = 1 << (dims * bits)
        lo, hi = sorted((a % (span + 1), b % (span + 1)))
        cells = cover_cells(lo, hi, bits, dims)
        # ranges must be consecutive and exactly tile [lo, hi)
        pos = lo
        for c in cells:
            clo, chi = c.key_range(bits, dims)
            assert clo == pos
            pos = chi
        assert pos == hi

    @settings(deadline=None, max_examples=50)
    @given(st.integers(0, 4095), st.integers(0, 4095))
    def test_cover_is_minimal_aligned(self, a, b):
        lo, hi = sorted((a, b + 1))
        cells = cover_cells(lo, hi, 6, 2)
        # every cell is maximal: doubling it would overflow the range or
        # break alignment
        for c in cells:
            clo, chi = c.key_range(6, 2)
            if c.depth > 0:
                parent_lo, parent_hi = c.parent(2).key_range(6, 2)
                assert parent_lo < lo or parent_hi > hi
