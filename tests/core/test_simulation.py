"""End-to-end tests of the parallel Barnes-Hut simulation.

The key correctness property: for fixed-depth cluster schemes (SPSA,
SPDA) the parallel result is *bitwise equal* to the single-processor
result for any processor count — partitioning must never change the
physics.  DPDA's cell geometry legitimately differs (cover cells of load
boundaries), so it is held to an accuracy tolerance instead.
"""

import numpy as np
import pytest

from repro.bh.direct import direct_forces, direct_potentials
from repro.bh.distributions import make_instance, plummer, uniform_cube
from repro.core.config import SchemeConfig
from repro.core.simulation import ParallelBarnesHut
from repro.machine.profiles import CM5, NCUBE2, ZERO_COST

PS = plummer(800, seed=42)
PD = direct_potentials(PS)


def run(scheme="spda", p=4, mode="potential", degree=0, alpha=0.67,
        profile=ZERO_COST, particles=PS, steps=1, dt=None, **cfg_kw):
    cfg = SchemeConfig(scheme=scheme, alpha=alpha, mode=mode, degree=degree,
                       **cfg_kw)
    sim = ParallelBarnesHut(particles, cfg, p=p, profile=profile)
    return sim.run(steps=steps, dt=dt)


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme", ["spsa", "spda"])
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_grid_schemes_match_single_processor(self, scheme, p):
        base = run(scheme=scheme, p=1).values
        vals = run(scheme=scheme, p=p).values
        np.testing.assert_allclose(vals, base, atol=1e-10)

    def test_spsa_equals_spda(self):
        np.testing.assert_allclose(run(scheme="spsa", p=4).values,
                                   run(scheme="spda", p=4).values,
                                   atol=1e-10)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_dpda_within_treecode_accuracy(self, p):
        vals = run(scheme="dpda", p=p).values
        err = np.linalg.norm(vals - PD) / np.linalg.norm(PD)
        assert err < 5e-3  # same magnitude as the serial treecode error

    def test_force_mode_matches_direct(self):
        vals = run(mode="force", p=4).values
        fd = direct_forces(PS)
        rel = np.linalg.norm(vals - fd, axis=1) / np.linalg.norm(fd, axis=1)
        assert np.median(rel) < 1e-2

    def test_multipole_run_more_accurate_than_monopole(self):
        mono = run(p=4, degree=0, alpha=1.0).values
        multi = run(p=4, degree=4, alpha=1.0).values
        err_mono = np.linalg.norm(mono - PD)
        err_multi = np.linalg.norm(multi - PD)
        assert err_multi < err_mono

    def test_nonreplicated_merge_same_values(self):
        a = run(p=4, merge="broadcast").values
        b = run(p=4, merge="nonreplicated").values
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_sorted_lookup_same_values(self):
        a = run(p=4, branch_lookup="hashed").values
        b = run(p=4, branch_lookup="sorted").values
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestSchemeBehaviour:
    def test_spda_beats_spsa_on_irregular_instance(self):
        """The paper's headline: SPDA's load-driven assignment beats
        SPSA's randomized one on irregular distributions (Table 1)."""
        ps = make_instance("s_10g_a", scale=0.08, seed=7)
        t_spsa = run(scheme="spsa", p=8, profile=NCUBE2, particles=ps,
                     grid_level=2).parallel_time
        t_spda = run(scheme="spda", p=8, profile=NCUBE2, particles=ps,
                     grid_level=2).parallel_time
        assert t_spda < t_spsa

    def test_parallel_time_decreases_with_p(self):
        ps = plummer(2500, seed=3)
        t4 = run(p=4, profile=NCUBE2, particles=ps).parallel_time
        t16 = run(p=16, profile=NCUBE2, particles=ps).parallel_time
        assert t16 < t4

    def test_phase_breakdown_contains_paper_phases(self):
        res = run(p=4, scheme="spda", profile=NCUBE2)
        phases = res.phase_breakdown()
        assert "force computation" in phases
        assert "local tree construction" in phases
        assert "all-to-all broadcast" in phases
        assert phases["force computation"] > phases["local tree construction"]

    def test_spsa_spends_nothing_on_load_balancing(self):
        res = run(p=4, scheme="spsa", profile=NCUBE2)
        assert res.phase_breakdown().get("load balancing", 0.0) == 0.0

    def test_spda_pays_small_balancing_overhead(self):
        res = run(p=4, scheme="spda", profile=NCUBE2, steps=2, mode="force",
                  dt=1e-6)
        phases = res.phase_breakdown()
        assert phases.get("load balancing", 0.0) > 0.0
        assert phases["load balancing"] < phases["force computation"]

    def test_force_computation_counter(self):
        res = run(p=4)
        assert res.force_computations() > PS.n  # at least ~n log n

    def test_load_imbalance_reported(self):
        assert run(p=4, profile=NCUBE2).load_imbalance() >= 1.0

    def test_deterministic_virtual_time(self):
        t1 = run(p=8, profile=NCUBE2).parallel_time
        t2 = run(p=8, profile=NCUBE2).parallel_time
        assert t1 == t2


class TestMultiStep:
    def test_two_steps_with_advance(self):
        ps = plummer(400, seed=5)
        res = run(mode="force", p=4, particles=ps, steps=2, dt=1e-3,
                  softening=0.05)
        assert len(res.steps) == 2
        assert np.isfinite(res.positions).all()
        # particles moved
        assert not np.allclose(res.positions, ps.positions)

    def test_ids_preserved_across_steps(self):
        ps = plummer(300, seed=6)
        res = run(scheme="dpda", mode="force", p=4, particles=ps, steps=3,
                  dt=1e-4, softening=0.05)
        # host reassembly touched every original particle exactly once
        assert np.isfinite(res.values).all()
        assert res.positions.shape == ps.positions.shape

    def test_advance_requires_force_mode(self):
        with pytest.raises(RuntimeError, match="force"):
            run(mode="potential", p=2, steps=1, dt=0.01)

    def test_spda_rebalances_after_first_step(self):
        ps = make_instance("s_1g_a", scale=0.05, seed=8)
        res = run(scheme="spda", mode="force", p=4, particles=ps, steps=2,
                  dt=1e-6, profile=NCUBE2, grid_level=3)
        # step 2 force phase should not be grossly imbalanced
        assert res.load_imbalance() < 3.0


class TestTwoDimensional:
    """The paper illustrates with 2-D quad-trees; the whole pipeline
    supports dims=2 (monopole only — the spherical-harmonic expansions
    are 3-D)."""

    def _ps2d(self, n=500, seed=9):
        from repro.bh.particles import ParticleSet
        rng = np.random.default_rng(seed)
        return ParticleSet(positions=rng.uniform(0, 1, (n, 2)),
                           masses=np.full(n, 1.0 / n))

    @pytest.mark.parametrize("scheme", ["spsa", "spda", "dpda"])
    def test_2d_matches_direct(self, scheme):
        ps = self._ps2d()
        res = run(scheme=scheme, p=4, mode="force", particles=ps,
                  grid_level=2)
        fd = direct_forces(ps)
        rel = np.linalg.norm(res.values - fd, axis=1) \
            / np.linalg.norm(fd, axis=1)
        assert np.median(rel) < 5e-2

    def test_2d_grid_schemes_match_serial(self):
        ps = self._ps2d()
        base = run(scheme="spda", p=1, mode="force", particles=ps,
                   grid_level=2).values
        par = run(scheme="spda", p=4, mode="force", particles=ps,
                  grid_level=2).values
        np.testing.assert_allclose(par, base, atol=1e-10)

    def test_2d_multipole_rejected(self):
        ps = self._ps2d()
        with pytest.raises(RuntimeError, match="3-D"):
            run(p=2, mode="potential", degree=3, particles=ps)


class TestStepTiming:
    def test_step_times_cover_run(self):
        res = run(p=4, profile=NCUBE2, steps=3, mode="force", dt=1e-6,
                  softening=0.01)
        per_step = [res.step_time(s) for s in range(3)]
        assert all(t > 0 for t in per_step)
        assert res.last_step_time == per_step[-1]
        # the sum of per-rank step spans equals each rank's final clock
        for r in range(4):
            total = sum(res.steps[s][r].virtual_seconds for s in range(3))
            assert total == pytest.approx(res.run.ranks[r].time)


class TestValidation:
    def test_zero_particles(self):
        from repro.bh.particles import ParticleSet
        with pytest.raises(ValueError):
            ParallelBarnesHut(ParticleSet.empty(3), SchemeConfig(), p=2)

    def test_bad_p(self):
        with pytest.raises(ValueError):
            ParallelBarnesHut(PS, SchemeConfig(), p=0)

    def test_spsa_needs_enough_clusters(self):
        with pytest.raises(ValueError, match="r >= p"):
            ParallelBarnesHut(PS, SchemeConfig(scheme="spsa", grid_level=1),
                              p=64)

    def test_bad_steps(self):
        sim = ParallelBarnesHut(PS, SchemeConfig(), p=2)
        with pytest.raises(ValueError):
            sim.run(steps=0)

    def test_cm5_profile_runs(self):
        res = run(p=4, profile=CM5)
        assert res.parallel_time > 0


class TestStepTimeEdgeCases:
    """step_time / last_step_time on degenerate runs (satellite of the
    observability PR)."""

    def test_single_rank_single_step(self):
        res = run(p=1, steps=1)
        assert res.step_time(0) > 0
        assert res.last_step_time == res.step_time(0)
        # With one rank there is no straggler: the step IS the run.
        assert res.step_time(0) == pytest.approx(res.parallel_time)

    def test_out_of_range_step_raises(self):
        res = run(p=2, steps=1)
        with pytest.raises(IndexError):
            res.step_time(5)

    def test_step_time_is_max_over_ranks(self):
        res = run(p=4, profile=NCUBE2, steps=2, mode="force", dt=1e-6,
                  softening=0.01)
        for s in range(2):
            per_rank = [sr.virtual_seconds for sr in res.steps[s]]
            assert res.step_time(s) == max(per_rank)

    def test_step_seconds_metric_matches_step_times(self):
        """The sim.step_seconds histogram aggregates exactly the same
        per-rank step spans the StepResults carry."""
        res = run(p=4, profile=NCUBE2, steps=3, mode="force", dt=1e-6,
                  softening=0.01)
        h = res.metrics_summary().histogram("sim.step_seconds")
        assert h.count == 4 * 3
        total = sum(sr.virtual_seconds
                    for step in res.steps for sr in step)
        assert h.total == pytest.approx(total)
