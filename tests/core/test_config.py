"""Tests for SchemeConfig validation."""

import pytest

from repro.core.config import SchemeConfig


class TestSchemeConfig:
    def test_defaults_valid(self):
        cfg = SchemeConfig()
        assert cfg.scheme == "spda"
        assert cfg.bin_capacity == 100

    def test_clusters(self):
        assert SchemeConfig(grid_level=2).clusters(2) == 16
        assert SchemeConfig(grid_level=2).clusters(3) == 64
        assert SchemeConfig(grid_level=5).clusters(2) == 1024  # 32x32

    @pytest.mark.parametrize("field,value", [
        ("scheme", "static"),
        ("alpha", 0.0),
        ("alpha", -1.0),
        ("degree", -1),
        ("mode", "energy"),
        ("leaf_capacity", 0),
        ("grid_level", -1),
        ("bin_capacity", 0),
        ("merge", "gather"),
        ("branch_lookup", "btree"),
        ("softening", -0.1),
        ("working_set_bytes", 1024),
        ("kernel_tier", "cuda"),
        ("kernel_threads", 0),
        ("kernel_threads", -2),
    ])
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            SchemeConfig(**{field: value})

    def test_force_mode_requires_monopole(self):
        with pytest.raises(ValueError, match="monopole"):
            SchemeConfig(mode="force", degree=4)

    def test_potential_mode_allows_multipole(self):
        cfg = SchemeConfig(mode="potential", degree=4)
        assert cfg.degree == 4

    def test_kernel_tier_values(self):
        for tier in ("numpy", "numba", "auto"):
            assert SchemeConfig(kernel_tier=tier).kernel_tier == tier
        cfg = SchemeConfig(kernel_threads=4)
        assert cfg.kernel_threads == 4
        assert SchemeConfig().kernel_threads is None

    def test_frozen(self):
        cfg = SchemeConfig()
        with pytest.raises(Exception):
            cfg.alpha = 1.0
