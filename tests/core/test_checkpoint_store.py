"""Checkpoint store semantics: eviction, common-step logic, durability.

The in-memory store backs virtual-backend recovery; the disk store is
the durable half of the crash-tolerant process runtime.  Both share one
API, so the host's recovery path (``latest_common_step`` -> ``get``)
must behave identically over them — and the disk store must additionally
survive reopening, detect corruption instead of unpickling garbage, and
refuse files from a future format version.
"""

import os
import pickle

import numpy as np
import pytest

from repro import plummer
from repro.core.checkpoint import (
    CHECKPOINT_MAGIC,
    DISK_FORMAT_VERSION,
    CheckpointCorruptError,
    CheckpointStore,
    CheckpointVersionError,
    DiskCheckpointStore,
    RankCheckpoint,
)


def ckpt(rank: int, step: int, n: int = 8) -> RankCheckpoint:
    ps = plummer(n, seed=rank * 100 + step)
    return RankCheckpoint(
        rank=rank, step=step, particles=ps,
        cluster_owners=np.arange(4), cluster_load=np.ones(4),
        key_boundaries=np.array([0, 10, 20]),
        my_particle_loads=np.ones(n),
        last_values=np.zeros((n, 3)),
        clock_now=float(step), phase_seconds={"force computation": 1.0},
    )


@pytest.fixture(params=["memory", "disk"])
def make_store(request, tmp_path):
    def factory(size, keep=2):
        if request.param == "memory":
            return CheckpointStore(size, keep=keep)
        return DiskCheckpointStore(tmp_path / "ckpt", size, keep=keep)
    return factory


# ------------------------------------------------------ shared API contract

def test_latest_common_step_uneven_progress(make_store):
    store = make_store(3, keep=3)
    # Rank 0 reached boundary 3, rank 1 boundary 2, rank 2 boundary 1.
    for rank, top in ((0, 3), (1, 2), (2, 1)):
        for step in range(1, top + 1):
            store.save(ckpt(rank, step))
    assert store.latest_common_step() == 1
    store.save(ckpt(2, 2))
    assert store.latest_common_step() == 2


def test_latest_common_step_none_when_any_rank_empty(make_store):
    store = make_store(2)
    store.save(ckpt(0, 1))
    assert store.latest_common_step() is None


def test_latest_common_step_none_when_no_overlap(make_store):
    store = make_store(2, keep=1)
    store.save(ckpt(0, 1))
    store.save(ckpt(1, 2))
    assert store.latest_common_step() is None


def test_keep_evicts_oldest_levels(make_store):
    store = make_store(1, keep=2)
    for step in (1, 2, 3, 4):
        store.save(ckpt(0, step))
    assert store.steps_for(0) == [3, 4]
    with pytest.raises(KeyError):
        store.get(0, 1)


def test_keep_one_retains_only_newest(make_store):
    store = make_store(2, keep=1)
    for step in (1, 2):
        store.save(ckpt(0, step))
        store.save(ckpt(1, step))
    assert store.steps_for(0) == [2]
    assert store.latest_common_step() == 2


def test_discard_step_drops_level_for_all_ranks(make_store):
    store = make_store(2, keep=3)
    for rank in (0, 1):
        for step in (1, 2):
            store.save(ckpt(rank, step))
    store.discard_step(2)
    assert store.steps_for(0) == [1]
    assert store.steps_for(1) == [1]
    assert store.latest_common_step() == 1
    store.discard_step(7)   # absent level is a no-op


def test_store_validates_construction(make_store):
    with pytest.raises(ValueError, match="rank"):
        make_store(0)
    with pytest.raises(ValueError, match="keep"):
        make_store(2, keep=0)


# -------------------------------------------------------------- disk extras

def test_disk_store_survives_reopen(tmp_path):
    root = tmp_path / "ckpt"
    store = DiskCheckpointStore(root, 2, keep=2)
    for rank in (0, 1):
        store.save(ckpt(rank, 3))
    # A fresh store over the same directory (new host process after a
    # crash) sees everything and reloads bitwise-equal state.
    reopened = DiskCheckpointStore(root, 2, keep=2)
    assert reopened.latest_common_step() == 3
    back = reopened.get(1, 3)
    orig = store.get(1, 3)
    assert np.array_equal(back.particles.positions, orig.particles.positions)
    assert back.clock_now == orig.clock_now


def test_disk_pruning_deletes_files(tmp_path):
    root = tmp_path / "ckpt"
    store = DiskCheckpointStore(root, 1, keep=2)
    for step in (1, 2, 3):
        store.save(ckpt(0, step))
    names = sorted(n for n in os.listdir(root) if n.endswith(".ckpt"))
    assert names == ["r0000.s00000002.ckpt", "r0000.s00000003.ckpt"]


def test_disk_corruption_detected(tmp_path):
    root = tmp_path / "ckpt"
    store = DiskCheckpointStore(root, 1)
    store.save(ckpt(0, 1))
    path = root / "r0000.s00000001.ckpt"

    # Flip one payload byte: the digest must catch it.
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    fresh = DiskCheckpointStore(root, 1)
    with pytest.raises(CheckpointCorruptError, match="digest"):
        fresh.get(0, 1)

    # Truncation below the header is caught before unpacking.
    path.write_bytes(b"RP")
    with pytest.raises(CheckpointCorruptError, match="truncated"):
        fresh.get(0, 1)

    # A foreign file is rejected by magic, not unpickled.
    path.write_bytes(b"not a checkpoint at all, padded out to length")
    with pytest.raises(CheckpointCorruptError, match="magic"):
        fresh.get(0, 1)


def test_disk_future_version_rejected(tmp_path):
    import struct

    from repro.core.checkpoint import _HEADER

    root = tmp_path / "ckpt"
    store = DiskCheckpointStore(root, 1)
    store.save(ckpt(0, 1))
    path = root / "r0000.s00000001.ckpt"
    blob = path.read_bytes()
    _, _, digest = _HEADER.unpack(blob[:_HEADER.size])
    header = _HEADER.pack(CHECKPOINT_MAGIC, DISK_FORMAT_VERSION + 1, digest)
    path.write_bytes(header + blob[_HEADER.size:])
    fresh = DiskCheckpointStore(root, 1)
    with pytest.raises(CheckpointVersionError, match="upgrade"):
        fresh.get(0, 1)


def test_disk_meta_guards_directory_reuse(tmp_path):
    import json

    root = tmp_path / "ckpt"
    DiskCheckpointStore(root, 4)
    # Opening the directory for a different rank count is an error —
    # resuming a 4-rank run with p=2 would silently drop state.
    with pytest.raises(ValueError, match="4-rank"):
        DiskCheckpointStore(root, 2)
    # A directory stamped by a newer build is refused outright.
    meta = json.loads((root / "meta.json").read_text())
    meta["format_version"] = DISK_FORMAT_VERSION + 1
    (root / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(CheckpointVersionError, match="upgrade"):
        DiskCheckpointStore(root, 4)


def test_disk_store_pickles_to_coordinates_only(tmp_path):
    root = tmp_path / "ckpt"
    store = DiskCheckpointStore(root, 2, keep=3, fsync=False)
    store.save(ckpt(0, 1))
    back = pickle.loads(pickle.dumps(store))
    assert (back.root, back.size, back.keep, back.fsync) == \
        (store.root, store.size, store.keep, False)
    # The clone reads the same directory (fresh cache, same files).
    assert back.steps_for(0) == [1]
    assert np.array_equal(back.get(0, 1).particles.positions,
                          store.get(0, 1).particles.positions)


def test_disk_missing_checkpoint_is_keyerror(tmp_path):
    store = DiskCheckpointStore(tmp_path / "ckpt", 1)
    with pytest.raises(KeyError):
        store.get(0, 5)
