"""Tests for distributed tree construction and the top-tree merge."""

import numpy as np
import pytest

from repro.bh.distributions import plummer, uniform_cube
from repro.bh.multipole import MultipoleExpansion3D
from repro.bh.particles import Box, ParticleSet
from repro.core.branch_nodes import branch_key
from repro.core.config import SchemeConfig
from repro.core.partition import Cell
from repro.core.tree_build import (
    assign_to_cells,
    build_local_trees,
    local_branch_infos,
)
from repro.core.tree_merge import build_top_tree, merge_broadcast, \
    merge_nonreplicated
from repro.machine.engine import Engine
from repro.machine.profiles import ZERO_COST

ROOT = Box(np.array([0.5, 0.5, 0.5]), 0.5)
BITS = 8


def level1_cells():
    return [Cell(1, k) for k in range(8)]


class TestAssignToCells:
    def test_level1_octants(self):
        pos = np.array([[0.1, 0.1, 0.1], [0.9, 0.1, 0.1], [0.9, 0.9, 0.9]])
        slots = assign_to_cells(pos, level1_cells(), ROOT, BITS)
        assert slots.tolist() == [0, 1, 7]

    def test_outside_any_cell(self):
        pos = np.array([[0.6, 0.6, 0.6]])
        slots = assign_to_cells(pos, [Cell(1, 0)], ROOT, BITS)
        assert slots.tolist() == [-1]

    def test_no_cells(self):
        assert assign_to_cells(np.zeros((3, 3)) + 0.1, [], ROOT,
                               BITS).tolist() == [-1, -1, -1]

    def test_overlapping_cells_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            assign_to_cells(np.zeros((1, 3)) + 0.1,
                            [Cell(0, 0), Cell(1, 3)], ROOT, BITS)

    def test_mixed_depth_cells(self):
        cells = [Cell(1, 0), Cell(2, 8)]  # octant 0 and a sub-cell of oct 1
        pos = np.array([[0.2, 0.2, 0.2], [0.6, 0.1, 0.1]])
        slots = assign_to_cells(pos, cells, ROOT, BITS)
        assert slots[0] == 0
        assert slots[1] in (1, -1)


class TestBuildLocalTrees:
    def test_partition_of_particles(self):
        ps = uniform_cube(300, seed=0)
        cfg = SchemeConfig()
        subs = build_local_trees(ps, level1_cells(), ROOT, cfg, BITS)
        assert sum(st.count for st in subs) == 300
        ids = np.concatenate([st.particles.ids for st in subs])
        assert sorted(ids.tolist()) == list(range(300))

    def test_empty_cells_skipped(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0.0, 0.49, (50, 3))  # all in octant 0
        ps = ParticleSet(positions=pos, masses=np.ones(50))
        subs = build_local_trees(ps, level1_cells(), ROOT, SchemeConfig(),
                                 BITS)
        assert len(subs) == 1
        assert subs[0].cell == Cell(1, 0)

    def test_small_cell_still_gets_tree(self):
        """A cell with fewer than s particles still produces a branch node
        at the cell's own level (the paper's 'tree adjustment')."""
        pos = np.array([[0.1, 0.1, 0.1]])
        ps = ParticleSet(positions=pos, masses=np.ones(1))
        subs = build_local_trees(ps, level1_cells(), ROOT,
                                 SchemeConfig(leaf_capacity=8), BITS)
        assert len(subs) == 1
        st = subs[0]
        assert st.tree.nnodes >= 1
        assert st.key == branch_key(Cell(1, 0), 3)

    def test_unowned_particle_rejected(self):
        ps = uniform_cube(10, seed=2)
        with pytest.raises(ValueError, match="outside all owned"):
            build_local_trees(ps, [Cell(1, 0)], ROOT, SchemeConfig(), BITS)

    def test_multipoles_built_when_degree_positive(self):
        ps = uniform_cube(100, seed=3)
        cfg = SchemeConfig(mode="potential", degree=3)
        subs = build_local_trees(ps, level1_cells(), ROOT, cfg, BITS)
        assert all(st.multipoles is not None for st in subs)

    def test_local_idx_maps_back(self):
        ps = uniform_cube(100, seed=4)
        subs = build_local_trees(ps, level1_cells(), ROOT, SchemeConfig(),
                                 BITS)
        for st in subs:
            np.testing.assert_array_equal(ps.ids[st.local_idx],
                                          st.particles.ids)


class TestBranchInfos:
    def test_monopole_summary(self):
        ps = uniform_cube(200, seed=5)
        subs = build_local_trees(ps, level1_cells(), ROOT, SchemeConfig(),
                                 BITS)
        infos = local_branch_infos(subs, rank=3, root=ROOT, degree=0)
        assert all(b.owner == 3 for b in infos)
        assert sum(b.count for b in infos) == 200
        assert sum(b.mass for b in infos) == pytest.approx(ps.total_mass)

    def test_multipole_shifted_to_cell_center(self):
        """The published expansion must be about the *cell* center even
        when chain collapsing moved the subtree root deeper."""
        rng = np.random.default_rng(6)
        pos = rng.uniform(0.01, 0.05, (40, 3))  # tight corner cluster
        ps = ParticleSet(positions=pos, masses=np.ones(40))
        cfg = SchemeConfig(mode="potential", degree=4)
        subs = build_local_trees(ps, level1_cells(), ROOT, cfg, BITS)
        infos = local_branch_infos(subs, rank=0, root=ROOT, degree=4)
        exp = MultipoleExpansion3D(4)
        cell_center = Cell(1, 0).box(ROOT).center
        direct = exp.p2m(pos - cell_center, ps.masses)
        np.testing.assert_allclose(infos[0].coeffs, direct, atol=1e-9)


class TestBuildTopTree:
    def _infos(self, ps, degree=0):
        subs = build_local_trees(ps, level1_cells(), ROOT,
                                 SchemeConfig(mode="potential",
                                              degree=degree), BITS)
        infos = []
        for i, st in enumerate(subs):
            part = local_branch_infos([st], rank=i % 4, root=ROOT,
                                      degree=degree)
            infos.extend(part)
        return infos

    def test_root_monopole(self):
        ps = uniform_cube(300, seed=7)
        top = build_top_tree(self._infos(ps), ROOT, degree=0)
        assert top.tree.mass[0] == pytest.approx(ps.total_mass)
        np.testing.assert_allclose(top.tree.com[0], ps.center_of_mass(),
                                   atol=1e-9)

    def test_branch_leaves_flagged_remote(self):
        ps = uniform_cube(300, seed=8)
        infos = self._infos(ps)
        top = build_top_tree(infos, ROOT, degree=0)
        for b in infos:
            node = top.node_of_branch[b.key]
            assert top.tree.is_remote(node)
            assert top.tree.remote_owner[node] == b.owner
            assert top.tree.count(node) == b.count

    def test_multipole_root_matches_direct(self):
        ps = uniform_cube(200, seed=9)
        top = build_top_tree(self._infos(ps, degree=4), ROOT, degree=4)
        exp = MultipoleExpansion3D(4)
        direct = exp.p2m(ps.positions - ROOT.center, ps.masses)
        np.testing.assert_allclose(top.coeffs[0], direct, atol=1e-8)

    def test_varying_depth_branches(self):
        """DPDA-style: branch cells at different depths merge fine."""
        rng = np.random.default_rng(10)
        ps = ParticleSet(positions=rng.uniform(0, 1, (100, 3)),
                         masses=np.ones(100))
        cells = [Cell(1, k) for k in range(4)] + \
                [Cell(2, k) for k in range(32, 64)]
        subs = build_local_trees(ps, cells, ROOT, SchemeConfig(), BITS)
        infos = []
        for i, st in enumerate(subs):
            infos.extend(local_branch_infos([st], rank=i % 3, root=ROOT,
                                            degree=0))
        top = build_top_tree(infos, ROOT, degree=0)
        assert top.tree.mass[0] == pytest.approx(100.0)

    def test_overlapping_branches_rejected(self):
        ps = uniform_cube(100, seed=11)
        infos = self._infos(ps)
        bad = local_branch_infos(
            build_local_trees(ps, [Cell(0, 0)], ROOT, SchemeConfig(), BITS),
            rank=9, root=ROOT, degree=0)
        with pytest.raises(ValueError, match="overlap"):
            build_top_tree(infos + bad, ROOT, degree=0)

    def test_empty_branch_list_rejected(self):
        with pytest.raises(ValueError):
            build_top_tree([], ROOT, degree=0)

    def test_missing_coeffs_rejected(self):
        ps = uniform_cube(50, seed=12)
        infos = self._infos(ps, degree=0)
        with pytest.raises(ValueError, match="lacks multipole"):
            build_top_tree(infos, ROOT, degree=3)


class TestDistributedMerge:
    def _run(self, merge_kind, p=4):
        ps = uniform_cube(400, seed=13)

        def main(comm, merge_kind):
            # rank owns octants rank*2 and rank*2+1
            cells = [Cell(1, comm.rank * 2), Cell(1, comm.rank * 2 + 1)]
            from repro.core.tree_build import assign_to_cells
            slots = assign_to_cells(ps.positions, cells, ROOT, BITS)
            mine = ps.subset(slots >= 0)
            subs = build_local_trees(mine, cells, ROOT, SchemeConfig(),
                                     BITS)
            infos = local_branch_infos(subs, comm.rank, ROOT, degree=0)
            if merge_kind == "broadcast":
                top = merge_broadcast(comm, infos, ROOT, degree=0)
            else:
                top = merge_nonreplicated(comm, infos, ROOT, degree=0)
            return (float(top.tree.mass[0]), top.tree.com[0].copy(),
                    len(top.node_of_branch), comm.clock.timings.seconds)

        return ps, Engine(p, ZERO_COST, recv_timeout=30.0).run(
            main, merge_kind)

    @pytest.mark.parametrize("kind", ["broadcast", "nonreplicated"])
    def test_all_ranks_agree_on_root(self, kind):
        ps, rep = self._run(kind)
        masses = [v[0] for v in rep.values]
        assert all(m == pytest.approx(ps.total_mass) for m in masses)
        for v in rep.values:
            np.testing.assert_allclose(v[1], ps.center_of_mass(),
                                       atol=1e-9)

    def test_both_merges_identical_results(self):
        _, rep_b = self._run("broadcast")
        _, rep_n = self._run("nonreplicated")
        for vb, vn in zip(rep_b.values, rep_n.values):
            assert vb[0] == pytest.approx(vn[0])
            np.testing.assert_allclose(vb[1], vn[1], atol=1e-12)
            assert vb[2] == vn[2]

    def test_phases_charged(self):
        _, rep = self._run("broadcast")
        phases = rep.values[0][3]
        assert "tree merging" in phases
        assert "all-to-all broadcast" in phases
