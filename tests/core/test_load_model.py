"""Tests for load accounting: cluster loads, particle loads, requester
weights."""

import numpy as np
import pytest

from repro.bh.distributions import plummer, uniform_cube
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MonopoleExpansion
from repro.bh.particles import Box, ParticleSet
from repro.bh.traversal import traverse
from repro.bh.tree import build_tree
from repro.core.config import SchemeConfig
from repro.core.costzones import particle_loads_from_tree
from repro.core.load_model import (
    cluster_loads,
    particle_loads,
    reset_interaction_counters,
)
from repro.core.partition import Cell
from repro.core.tree_build import build_local_trees

ROOT = Box(np.array([0.5, 0.5, 0.5]), 0.5)


def traversed_subtrees(n=400, seed=0):
    ps = uniform_cube(n, seed=seed)
    subs = build_local_trees(ps, [Cell(1, k) for k in range(8)], ROOT,
                             SchemeConfig(), 8)
    mac = BarnesHutMAC(0.7)
    for st in subs:
        traverse(st.tree, st.particles, ps.positions, mac,
                 MonopoleExpansion(st.tree), count_node_interactions=True)
    return ps, subs


class TestClusterLoads:
    def test_all_owned_clusters_reported(self):
        ps, subs = traversed_subtrees()
        loads = cluster_loads(subs)
        assert set(loads) == {st.cell.path_key for st in subs}
        assert all(v > 0 for v in loads.values())

    def test_reset(self):
        _, subs = traversed_subtrees()
        reset_interaction_counters(subs)
        assert all(st.tree.interactions.sum() == 0 for st in subs)

    def test_denser_cluster_has_higher_load(self):
        rng = np.random.default_rng(1)
        # octant 0 holds 90% of the particles
        pos = np.concatenate((
            rng.uniform(0.0, 0.49, (360, 3)),
            rng.uniform(0.51, 0.99, (40, 3)),
        ))
        ps = ParticleSet(positions=pos, masses=np.ones(400))
        subs = build_local_trees(ps, [Cell(1, 0), Cell(1, 7)], ROOT,
                                 SchemeConfig(), 8)
        mac = BarnesHutMAC(0.7)
        for st in subs:
            traverse(st.tree, st.particles, ps.positions, mac,
                     MonopoleExpansion(st.tree),
                     count_node_interactions=True)
        loads = cluster_loads(subs)
        assert loads[0] > loads[7]


class TestParticleLoads:
    def test_alignment_with_local_arrays(self):
        ps, subs = traversed_subtrees()
        loads = particle_loads(subs, ps.n)
        assert loads.shape == (ps.n,)
        assert np.all(loads >= 0)
        assert loads.sum() > 0

    def test_attribution_conserves_tree_totals(self):
        ps, subs = traversed_subtrees()
        total_counters = sum(float(st.tree.interactions.sum())
                             for st in subs)
        loads = particle_loads(subs, ps.n)
        assert loads.sum() == pytest.approx(total_counters)

    def test_particle_loads_from_tree_spreads_node_counts(self):
        ps = plummer(100, seed=2)
        tree = build_tree(ps, leaf_capacity=8)
        tree.interactions[0] = 100  # root: every particle shares it
        loads = particle_loads_from_tree(tree)
        assert loads.sum() == pytest.approx(100.0)
        assert np.allclose(loads, 1.0)


class TestRequesterWeights:
    def test_weights_sum_matches_flop_model(self):
        """Per-target weights must add up to the traversal's flop count."""
        ps = plummer(300, seed=3)
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.7)
        weights = np.zeros(ps.n)
        res = traverse(tree, ps, ps.positions, mac,
                       MonopoleExpansion(tree), target_weights=weights)
        assert weights.sum() == pytest.approx(res.flops(0))

    def test_central_particles_cost_more(self):
        """In a Plummer sphere the central particles traverse deeper."""
        ps = plummer(2000, seed=4)
        tree = build_tree(ps, leaf_capacity=8)
        mac = BarnesHutMAC(0.7)
        weights = np.zeros(ps.n)
        traverse(tree, ps, ps.positions, mac, MonopoleExpansion(tree),
                 target_weights=weights)
        r = np.linalg.norm(ps.positions - ps.center_of_mass(), axis=1)
        inner = weights[r < np.median(r)].mean()
        outer = weights[r >= np.median(r)].mean()
        assert inner > outer

    def test_weights_optional(self):
        ps = plummer(50, seed=5)
        tree = build_tree(ps)
        res = traverse(tree, ps, ps.positions, BarnesHutMAC(0.7),
                       MonopoleExpansion(tree))
        assert res.values.shape == (50,)
