"""Regression tests for bugs found (and fixed) during development.

Each test pins a specific failure mode observed while building the
reproduction; see DESIGN.md section 6 for the narrative.
"""

import numpy as np
import pytest

from repro.bh.distributions import plummer, uniform_cube
from repro.bh.particles import Box, ParticleSet
from repro.core.config import SchemeConfig
from repro.core.data_shipping import _node_cell
from repro.core.partition import Cell
from repro.core.simulation import ParallelBarnesHut
from repro.core.tree_build import build_local_trees
from repro.machine.profiles import NCUBE2, ZERO_COST


class TestDuplicateSlotAccumulation:
    """Bug 1: a result bin carrying two records for the same local
    particle (two branch keys shipped to one owner) lost one addition
    under fancy-index +=.  Scattered (SPSA) ownership triggers it."""

    def test_spsa_scattered_ownership_exact(self):
        ps = plummer(1200, seed=101)
        cfg = SchemeConfig(scheme="spsa", mode="potential", grid_level=2,
                           bin_capacity=7)  # tiny bins force mixing
        serial = ParallelBarnesHut(ps, cfg, p=1, profile=ZERO_COST).run()
        par = ParallelBarnesHut(ps, cfg, p=8, profile=ZERO_COST).run()
        np.testing.assert_allclose(par.values, serial.values, atol=1e-10)


class TestLocalTreeGlobalAddressing:
    """Bug 2: local subtrees store cell-relative path keys; exporting
    them without composing with the owning cell's address produced
    colliding global keys (data-shipping cache corruption)."""

    def test_node_cell_composition(self):
        root = Box(np.array([0.5, 0.5, 0.5]), 0.5)
        rng = np.random.default_rng(102)
        # particles confined to octant 5
        base = Cell(1, 5).box(root)
        pos = rng.uniform(base.lo + 1e-6, base.hi - 1e-6, (64, 3))
        ps = ParticleSet(positions=pos, masses=np.ones(64))
        subs = build_local_trees(ps, [Cell(1, 5)], root,
                                 SchemeConfig(leaf_capacity=4), 8)
        st = subs[0]
        # every node's global cell must be a descendant of the owned cell
        for node in range(st.tree.nnodes):
            cell = _node_cell(st, node, 3)
            assert Cell(1, 5).contains_cell(cell, 3), (node, cell)
        # the root composes exactly to the cell (no collapse here at the
        # top: the cell holds all particles spread across octants)
        root_cell = _node_cell(st, 0, 3)
        assert Cell(1, 5).contains_cell(root_cell, 3)

    def test_distinct_subtrees_distinct_keys(self):
        root = Box(np.array([0.5, 0.5, 0.5]), 0.5)
        ps = uniform_cube(200, seed=103)
        subs = build_local_trees(ps, [Cell(1, k) for k in range(8)], root,
                                 SchemeConfig(leaf_capacity=4), 8)
        seen = set()
        for st in subs:
            for node in range(st.tree.nnodes):
                key = _node_cell(st, node, 3)
                assert key not in seen, "global cell addresses collide"
                seen.add(key)


class TestLeafLoadUnits:
    """Bug 3: counting leaf *visits* instead of *pairs* under-weighted
    dense clusters and made SPDA's balancer diverge."""

    def test_leaf_counter_counts_pairs(self):
        from repro.bh.mac import BarnesHutMAC
        from repro.bh.multipole import MonopoleExpansion
        from repro.bh.traversal import traverse
        from repro.bh.tree import build_tree

        ps = uniform_cube(64, seed=104)
        tree = build_tree(ps, leaf_capacity=64)  # single leaf node
        res = traverse(tree, ps, ps.positions, BarnesHutMAC(0.7),
                       MonopoleExpansion(tree),
                       count_node_interactions=True)
        # 64 targets x 64 particles in the one leaf
        assert tree.interactions[0] == 64 * 64
        assert res.p2p_interactions == 64 * 64


class TestVirtualTimeDeterminism:
    """Bug 4: opportunistic (real-time-ordered) bin service made virtual
    clocks depend on host thread scheduling."""

    def test_force_phase_times_reproducible(self):
        ps = plummer(600, seed=105)
        cfg = SchemeConfig(scheme="spda", mode="force", grid_level=3)
        times = [
            ParallelBarnesHut(ps, cfg, p=8, profile=NCUBE2).run()
            .parallel_time
            for _ in range(3)
        ]
        assert times[0] == times[1] == times[2]
