"""Tests for the data-shipping (hashed octree) baseline."""

import numpy as np
import pytest

from repro.bh.direct import direct_potentials
from repro.bh.distributions import plummer
from repro.core.config import SchemeConfig
from repro.core.data_shipping import DataShippingEngine, HashedOctreeCache, \
    CachedNode
from repro.core.partition import Cell
from repro.core.tree_build import assign_to_cells, build_local_trees, \
    local_branch_infos
from repro.core.tree_merge import merge_broadcast
from repro.machine.engine import Engine
from repro.machine.profiles import NCUBE2, ZERO_COST

PS = plummer(500, seed=11)
ROOT = PS.bounding_box()
BITS = 10
PD = direct_potentials(PS)


def run_data_shipping(p, degree=0, alpha=0.67, profile=ZERO_COST):
    cells_per = 8 // p

    def main(comm):
        cells = [Cell(1, comm.rank * cells_per + j)
                 for j in range(cells_per)]
        slots = assign_to_cells(PS.positions, cells, ROOT, BITS)
        mine = PS.subset(slots >= 0)
        cfg = SchemeConfig(mode="potential", alpha=alpha, degree=degree)
        subs = build_local_trees(mine, cells, ROOT, cfg, BITS)
        infos = local_branch_infos(subs, comm.rank, ROOT, degree)
        top = merge_broadcast(comm, infos, ROOT, degree)
        eng = DataShippingEngine(comm, cfg, top, subs, mine)
        vals = eng.run()
        return mine.ids, vals, eng.stats

    rep = Engine(p, profile, recv_timeout=120.0).run(main)
    all_vals = np.zeros(PS.n)
    for ids, vals, _ in rep.values:
        all_vals[ids] = vals
    return all_vals, [v[2] for v in rep.values], rep


class TestCache:
    def _node(self, key, **kw):
        base = dict(key=key, owner=0, mass=1.0, com=np.zeros(3),
                    center=np.zeros(3), half=1.0, count=1, is_leaf=False)
        base.update(kw)
        return CachedNode(**base)

    def test_put_get(self):
        c = HashedOctreeCache()
        c.put(self._node(5))
        assert c.get(5).key == 5
        assert c.get(6) is None
        assert len(c) == 1

    def test_merge_keeps_summary_stable(self):
        """Re-fetching a node must not change its MAC geometry."""
        c = HashedOctreeCache()
        c.put(self._node(5, half=2.0, mass=3.0))
        c.put(self._node(5, half=0.5, mass=9.0, children_known=True,
                         child_keys=[40, 41]))
        got = c.get(5)
        assert got.half == 2.0
        assert got.mass == 3.0
        assert got.children_known
        assert got.child_keys == [40, 41]

    def test_merge_adds_leaf_payload(self):
        c = HashedOctreeCache()
        c.put(self._node(5))
        c.put(self._node(5, positions=np.zeros((3, 3)), masses=np.ones(3)))
        assert c.get(5).positions.shape == (3, 3)
        assert c.get(5).is_leaf

    def test_access_counter(self):
        c = HashedOctreeCache()
        c.put(self._node(1))
        c.get(1)
        c.get(2)
        assert c.accesses == 3


class TestDataShippingCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_direct_within_treecode_error(self, p):
        vals, _, _ = run_data_shipping(p)
        err = np.linalg.norm(vals - PD) / np.linalg.norm(PD)
        assert err < 5e-3

    def test_result_independent_of_p(self):
        v1, _, _ = run_data_shipping(1)
        v4, _, _ = run_data_shipping(4)
        np.testing.assert_allclose(v1, v4, atol=1e-10)

    def test_multipole_more_accurate(self):
        v0, _, _ = run_data_shipping(4, degree=0)
        v3, _, _ = run_data_shipping(4, degree=3)
        assert (np.linalg.norm(v3 - PD) < np.linalg.norm(v0 - PD))


class TestSection42Signals:
    def test_fetch_volume_grows_with_degree(self):
        """The paper's 4.2.1 claim: data-shipping communication volume is
        Theta(k^2) in the multipole degree."""
        _, s2, _ = run_data_shipping(4, degree=2)
        _, s5, _ = run_data_shipping(4, degree=5)
        b2 = sum(s.fetch_bytes for s in s2)
        b5 = sum(s.fetch_bytes for s in s5)
        assert b5 > b2

    def test_looser_mac_fetches_less(self):
        _, tight, _ = run_data_shipping(4, alpha=0.5)
        _, loose, _ = run_data_shipping(4, alpha=1.2)
        assert sum(s.nodes_fetched for s in loose) < \
            sum(s.nodes_fetched for s in tight)

    def test_hash_accesses_counted(self):
        _, stats, _ = run_data_shipping(2)
        assert all(s.hash_accesses > 0 for s in stats)

    def test_cache_size_reported(self):
        _, stats, _ = run_data_shipping(2)
        assert all(s.cache_nodes > 8 for s in stats)

    def test_rounds_bounded_by_tree_depth(self):
        _, stats, _ = run_data_shipping(4)
        assert all(0 < s.fetch_rounds < 20 for s in stats)

    def test_virtual_time_charged(self):
        _, _, rep = run_data_shipping(4, profile=NCUBE2)
        assert rep.parallel_time > 0
        assert rep.phase_max()["force computation"] > 0
