"""Tests for interconnect topologies and Gray-code utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import (
    CompleteTopology,
    FatTreeTopology,
    HypercubeTopology,
    MeshTopology,
    gray_code,
    gray_code_rank,
    is_power_of_two,
    log2_exact,
    make_topology,
)


class TestGrayCode:
    def test_first_entries(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_codes_differ_in_one_bit(self):
        for i in range(255):
            diff = gray_code(i) ^ gray_code(i + 1)
            assert diff.bit_count() == 1

    def test_bijection_on_range(self):
        codes = {gray_code(i) for i in range(256)}
        assert codes == set(range(256))

    @given(st.integers(min_value=0, max_value=10**9))
    def test_rank_inverts_code(self, i):
        assert gray_code_rank(gray_code(i)) == i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_code_rank(-3)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(256)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(256) == 8
        with pytest.raises(ValueError):
            log2_exact(6)


class TestHypercube:
    def test_hops_is_hamming_distance(self):
        t = HypercubeTopology(16)
        assert t.hops(0b0000, 0b1111) == 4
        assert t.hops(5, 5) == 0
        assert t.hops(0b0101, 0b0100) == 1

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            HypercubeTopology(12)

    def test_neighbors_differ_in_one_bit(self):
        t = HypercubeTopology(32)
        for nb in t.neighbors(13):
            assert (nb ^ 13).bit_count() == 1
        assert len(t.neighbors(13)) == 5

    def test_diameter_is_dimension(self):
        assert HypercubeTopology(256).diameter == 8

    def test_subcube_partner(self):
        t = HypercubeTopology(8)
        assert t.subcube_partner(0b010, 0) == 0b011
        assert t.subcube_partner(0b010, 1) == 0b000
        with pytest.raises(ValueError):
            t.subcube_partner(0, 3)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_hops_triangle_inequality(self, a, b, c):
        t = HypercubeTopology(256)
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_hops_symmetry(self, a, b):
        t = HypercubeTopology(256)
        assert t.hops(a, b) == t.hops(b, a)


class TestMesh:
    def test_manhattan_distance(self):
        t = MeshTopology(4, 4)
        assert t.hops(t.rank_of(0, 0), t.rank_of(3, 3)) == 6
        assert t.hops(t.rank_of(1, 2), t.rank_of(1, 2)) == 0

    def test_coords_round_trip(self):
        t = MeshTopology(3, 5)
        for rank in range(t.size):
            r, c = t.coords(rank)
            assert t.rank_of(r, c) == rank

    def test_corner_has_two_neighbors(self):
        t = MeshTopology(4, 4)
        assert len(t.neighbors(0)) == 2
        assert len(t.neighbors(t.rank_of(1, 1))) == 4

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4)


class TestFatTree:
    def test_same_switch_leaves_two_hops(self):
        t = FatTreeTopology(64, arity=4)
        assert t.hops(0, 1) == 2
        assert t.hops(0, 3) == 2

    def test_distant_leaves_climb_higher(self):
        t = FatTreeTopology(64, arity=4)
        assert t.hops(0, 4) == 4
        assert t.hops(0, 63) == 6

    def test_self_hop_zero(self):
        t = FatTreeTopology(64)
        assert t.hops(17, 17) == 0

    def test_neighbors_share_block(self):
        t = FatTreeTopology(16, arity=4)
        assert t.neighbors(5) == [4, 6, 7]

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            FatTreeTopology(16, arity=1)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_hops_symmetric_and_even(self, a, b):
        t = FatTreeTopology(64, arity=4)
        assert t.hops(a, b) == t.hops(b, a)
        assert t.hops(a, b) % 2 == 0


class TestComplete:
    def test_unit_hops(self):
        t = CompleteTopology(7)
        assert t.hops(0, 6) == 1
        assert t.hops(3, 3) == 0
        assert len(t.neighbors(2)) == 6


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_topology("hypercube", 8), HypercubeTopology)
        assert isinstance(make_topology("fattree", 8), FatTreeTopology)
        assert isinstance(make_topology("complete", 5), CompleteTopology)

    def test_mesh_auto_factoring(self):
        t = make_topology("mesh", 12)
        assert isinstance(t, MeshTopology)
        assert t.rows * t.cols == 12
        assert t.rows in (3, 4) or t.cols in (3, 4)

    def test_mesh_explicit_dims(self):
        t = make_topology("mesh", 12, rows=2, cols=6)
        assert (t.rows, t.cols) == (2, 6)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_topology("torus", 8)

    def test_rank_bounds_checked(self):
        t = make_topology("hypercube", 8)
        with pytest.raises(ValueError):
            t.hops(0, 8)
        with pytest.raises(ValueError):
            t.neighbors(-1)
