"""Tests for the span tracer and Chrome trace export."""

import json
import math

import pytest

from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.faults import FaultPlan
from repro.machine.profiles import NCUBE2, ZERO_COST
from repro.machine.trace import Tracer

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


def _pingpong(comm):
    with comm.phase("work"):
        comm.compute(5.0 * (comm.rank + 1))
    if comm.rank == 0:
        comm.send(b"abcd", dst=1, tag=3)
    elif comm.rank == 1:
        comm.recv(src=0, tag=3)
    return comm.now


class TestTracerOffByDefault:
    def test_untraced_report_has_no_trace(self):
        rep = Engine(2, TOY).run(_pingpong)
        assert rep.trace is None

    def test_virtual_times_identical_with_and_without_tracer(self):
        """The overhead-neutrality guarantee: tracing must not perturb
        any virtual clock, bitwise."""
        plain = Engine(8, NCUBE2).run(_pingpong)
        traced = Engine(8, NCUBE2).run(_pingpong, tracer=True)
        assert plain.values == traced.values          # exact, not approx
        assert [r.time for r in plain.ranks] == \
            [r.time for r in traced.ranks]
        assert [r.timings.seconds for r in plain.ranks] == \
            [r.timings.seconds for r in traced.ranks]

    def test_tracer_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sized for"):
            Engine(4).run(_pingpong, tracer=Tracer(2))

    def test_bad_tracer_size(self):
        with pytest.raises(ValueError):
            Tracer(0)


class TestPhaseSpans:
    def test_span_times_and_names(self):
        def main(comm):
            with comm.phase("outer"):
                comm.compute(10.0)
                with comm.phase("inner"):
                    comm.compute(5.0)

        rep = Engine(1, TOY).run(main, tracer=True)
        spans = {s.name: s for s in rep.trace.phases[0]}
        assert spans["inner"].t0 == 10.0 and spans["inner"].t1 == 15.0
        assert spans["outer"].t0 == 0.0 and spans["outer"].t1 == 15.0
        assert spans["inner"].depth == 2 and spans["outer"].depth == 1

    def test_spans_recorded_per_rank(self):
        rep = Engine(4, TOY).run(_pingpong, tracer=True)
        for r in range(4):
            names = [s.name for s in rep.trace.phases[r]]
            assert names == ["work"]

    def test_final_times_match_report(self):
        rep = Engine(4, TOY).run(_pingpong, tracer=True)
        assert rep.trace.final_times == [r.time for r in rep.ranks]
        assert rep.trace.parallel_time == rep.parallel_time


class TestMessageEvents:
    def test_send_event_fields(self):
        rep = Engine(2, TOY).run(_pingpong, tracer=True)
        sends = rep.trace.sends[0]
        assert len(sends) == 1
        ev = sends[0]
        assert (ev.src, ev.dst, ev.tag, ev.nbytes) == (0, 1, 3, 4)
        # Channel charge t_s + nbytes * t_w = 10 + 2; one hop of t_h = 1.
        assert ev.t_end - ev.t_begin == pytest.approx(12.0)
        assert ev.arrival == pytest.approx(ev.t_end + 1.0)
        assert not ev.lost and not ev.duplicate

    def test_recv_event_waited_flag(self):
        rep = Engine(2, TOY).run(_pingpong, tracer=True)
        recvs = rep.trace.recvs[1]
        assert len(recvs) == 1
        ev = recvs[0]
        assert (ev.rank, ev.src, ev.tag) == (1, 0, 3)
        # Rank 1 computed 10 s; the message arrives at 5+12+1 = 18 s,
        # so the receive genuinely waited.
        assert ev.waited and ev.arrival > ev.t_begin
        # Copy-out charge nbytes * t_w = 2 after the wait.
        assert ev.t_end == pytest.approx(ev.arrival + 2.0)

    def test_seq_links_send_to_recv(self):
        rep = Engine(2, TOY).run(_pingpong, tracer=True)
        send = rep.trace.sends[0][0]
        recv = rep.trace.recvs[1][0]
        assert send.seq == recv.seq
        assert rep.trace.sends_by_seq()[recv.seq] is send

    def test_local_send_traced(self):
        def main(comm):
            comm.send(b"xy", dst=comm.rank, tag=9)
            comm.recv(src=comm.rank, tag=9)

        rep = Engine(1, TOY).run(main, tracer=True)
        ev = rep.trace.sends[0][0]
        assert ev.t_begin == ev.t_end == ev.arrival
        assert not rep.trace.recvs[0][0].waited

    def test_collectives_produce_matched_flows(self):
        def main(comm):
            comm.allgather(comm.rank)
            comm.barrier()

        rep = Engine(4, NCUBE2).run(main, tracer=True)
        sends = rep.trace.sends_by_seq()
        for recv in rep.trace.all_recvs():
            assert recv.seq in sends


class TestFaultDispositions:
    def test_drops_and_retries_recorded(self):
        plan = FaultPlan(seed=7, drop_rate=0.5)
        rep = Engine(2, TOY, fault_plan=plan, reliable=True).run(
            _pingpong, tracer=True)
        total_drops = sum(ev.drops for ev in rep.trace.all_sends())
        assert total_drops == sum(r.stats.drops_injected for r in rep.ranks)
        retries = sum(ev.retries for ev in rep.trace.all_sends())
        assert retries == rep.total_retransmissions

    def test_lost_message_traced_as_lost(self):
        # Force every transmission on the unreliable machine to drop.
        plan = FaultPlan(seed=7, drop_rate=1.0)

        def main(comm):
            if comm.rank == 0:
                comm.send(b"gone", dst=1, tag=5)

        rep = Engine(2, TOY, fault_plan=plan, reliable=None).run(
            main, tracer=True)
        ev = rep.trace.sends[0][0]
        assert ev.lost and ev.seq is None
        assert math.isinf(ev.arrival)


class TestChromeExport:
    def _trace(self):
        return Engine(4, TOY).run(_pingpong, tracer=True).trace

    def test_valid_json_round_trip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.json"
        trace.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["ranks"] == 4

    def test_phase_spans_for_every_rank(self):
        doc = self._trace().to_chrome()
        span_tids = {e["tid"] for e in doc["traceEvents"]
                     if e["ph"] == "X"}
        assert span_tids == {0, 1, 2, 3}

    def test_flow_events_paired_by_id(self):
        doc = self._trace().to_chrome()
        starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
        ends = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
        assert ends <= starts and ends

    def test_timestamps_microseconds(self):
        trace = self._trace()
        doc = trace.to_chrome()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        span = trace.phases[0][0]
        match = [e for e in xs if e["tid"] == 0 and e["name"] == "work"]
        assert match[0]["ts"] == pytest.approx(span.t0 * 1e6)
        assert match[0]["dur"] == pytest.approx(span.duration * 1e6)

    def test_export_byte_identical_across_runs(self):
        """Flow ids are canonicalised in (rank, send index) order, so
        identical runs export identical bytes even though Message.seq
        allocation order depends on host thread scheduling."""
        docs = [json.dumps(self._trace().to_chrome(), sort_keys=True)
                for _ in range(2)]
        assert docs[0] == docs[1]

    def test_zero_cost_machine_traces_cleanly(self):
        def main(comm):
            with comm.phase("free"):
                if comm.rank == 0:
                    comm.send(b"abcd", dst=1, tag=3)
                elif comm.rank == 1:
                    comm.recv(src=0, tag=3)

        rep = Engine(2, ZERO_COST).run(main, tracer=True)
        doc = rep.trace.to_chrome()
        assert doc["otherData"]["parallel_time"] == 0.0
