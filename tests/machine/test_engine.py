"""Tests for the SPMD engine and run reports."""

import pytest

from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine, RunReport, RankResult
from repro.machine.clock import PhaseTimings
from repro.machine.comm import CommStats
from repro.machine.profiles import NCUBE2, ZERO_COST

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


class TestEngine:
    def test_rank_identity(self):
        rep = Engine(4).run(lambda comm: (comm.rank, comm.size))
        assert rep.values == [(r, 4) for r in range(4)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Engine(0)

    def test_shared_args(self):
        rep = Engine(3).run(lambda comm, a, b: a + b + comm.rank, 10, 20)
        assert rep.values == [30, 31, 32]

    def test_rank_args(self):
        rep = Engine(3).run(lambda comm, x: x * 2,
                            rank_args=[(1,), (2,), (3,)])
        assert rep.values == [2, 4, 6]

    def test_rank_args_length_checked(self):
        with pytest.raises(ValueError):
            Engine(3).run(lambda comm, x: x, rank_args=[(1,)])

    def test_exception_propagates_with_rank(self):
        def main(comm):
            if comm.rank == 2:
                raise ValueError("bad physics")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2.*bad physics"):
            Engine(4, recv_timeout=10.0).run(main)

    def test_exception_does_not_hang_other_ranks(self):
        """Ranks blocked in recv must be released when a peer dies."""
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.recv(src=0)

        with pytest.raises(RuntimeError):
            Engine(2, recv_timeout=30.0).run(main)

    def test_large_rank_count(self):
        def main(comm):
            return comm.allreduce(1, lambda a, b: a + b)

        rep = Engine(128, NCUBE2).run(main)
        assert rep.values == [128] * 128


class TestRunReport:
    def _report(self):
        def main(comm):
            with comm.phase("tree"):
                comm.compute(10.0 * (comm.rank + 1))
            with comm.phase("force"):
                comm.compute(100.0)
            if comm.rank == 0:
                comm.send(b"xxxx", dst=1)
            elif comm.rank == 1:
                comm.recv(src=0)
            return comm.rank

        return Engine(4, TOY).run(main)

    def test_parallel_time_is_makespan(self):
        rep = self._report()
        assert rep.parallel_time == max(r.time for r in rep.ranks)

    def test_phase_max(self):
        rep = self._report()
        assert rep.phase_max()["tree"] == pytest.approx(40.0)
        assert rep.phase_max()["force"] == pytest.approx(100.0)

    def test_phase_mean(self):
        rep = self._report()
        assert rep.phase_mean()["tree"] == pytest.approx(25.0)

    def test_traffic_totals(self):
        rep = self._report()
        assert rep.total_messages == 1
        assert rep.total_bytes == 4

    def test_load_imbalance_overall(self):
        rep = self._report()
        assert rep.load_imbalance() > 1.0

    def test_load_imbalance_balanced_phase(self):
        rep = self._report()
        assert rep.load_imbalance("force") == pytest.approx(1.0)

    def test_size_property(self):
        assert self._report().size == 4

    def test_load_imbalance_empty_phase(self):
        rep = RunReport(ranks=[
            RankResult(rank=0, value=None, time=0.0,
                       timings=PhaseTimings(), stats=CommStats())
        ])
        assert rep.load_imbalance() == 1.0


class TestDeterminism:
    def test_virtual_times_reproducible(self):
        def main(comm):
            comm.compute(float(comm.rank) * 3.0)
            comm.allgather(comm.rank)
            comm.alltoall(list(range(comm.size)))
            comm.barrier()
            return comm.now

        runs = [Engine(16, NCUBE2).run(main).values for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]


class TestReportEdgeCases:
    """phase_mean / load_imbalance on degenerate reports (satellite of
    the observability PR): missing phases, single ranks, zero-time
    phases must all come back well-defined, never raise."""

    def test_phase_mean_missing_on_some_ranks(self):
        """A phase only some ranks enter still averages over ALL ranks —
        absent ranks contribute zero, they are not skipped."""
        def main(comm):
            if comm.rank == 0:
                with comm.phase("solo"):
                    comm.compute(8.0)

        rep = Engine(4, TOY).run(main)
        assert rep.phase_mean()["solo"] == pytest.approx(2.0)

    def test_phase_mean_unknown_phase_absent(self):
        rep = Engine(2, TOY).run(lambda comm: comm.compute(1.0))
        assert "no such phase" not in rep.phase_mean()

    def test_load_imbalance_missing_phase_is_balanced(self):
        """Asking about a phase nobody recorded: every rank reports 0,
        the mean is 0, and the ratio degrades gracefully to 1.0."""
        rep = Engine(4, TOY).run(lambda comm: comm.compute(1.0))
        assert rep.load_imbalance("does not exist") == 1.0

    def test_single_rank_never_imbalanced(self):
        rep = Engine(1, TOY).run(lambda comm: comm.compute(37.0))
        assert rep.load_imbalance() == 1.0
        assert rep.phase_mean()["other"] == pytest.approx(37.0)

    def test_zero_time_phase(self):
        """A phase entered but charged nothing (all ranks): ratio 1.0."""
        def main(comm):
            with comm.phase("empty"):
                pass
            comm.compute(1.0)

        rep = Engine(4, TOY).run(main)
        assert rep.load_imbalance("empty") == 1.0
        assert rep.phase_mean().get("empty", 0.0) == 0.0

    def test_partial_phase_imbalance_ratio(self):
        """One rank works 4 s in a phase the rest skip: max/mean = 4."""
        def main(comm):
            if comm.rank == 0:
                with comm.phase("lopsided"):
                    comm.compute(4.0)

        rep = Engine(4, TOY).run(main)
        assert rep.load_imbalance("lopsided") == pytest.approx(4.0)
