"""Tests for deterministic fault injection and the reliable layer."""

import pytest

from repro.machine.comm import DeadlockError
from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.faults import (
    FaultInjector,
    FaultPlan,
    RankCrashedError,
    ReliableConfig,
    ReliableDeliveryError,
)
from repro.machine.profiles import ZERO_COST

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.any_message_faults
        assert plan.crash == {} and plan.slowdown == {}

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError, match="negative"):
            FaultPlan(crash={0: -1.0})
        with pytest.raises(ValueError, match="slowdown"):
            FaultPlan(slowdown={0: 0.5})

    def test_json_round_trip(self):
        plan = FaultPlan(seed=42, drop_rate=0.1, dup_rate=0.05,
                         delay_rate=0.2, delay_seconds=1e-3,
                         tags={7001, 7002}, crash={2: 1.5},
                         slowdown={0: 3.0},
                         duplicate_first=(0, 1, 7001))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"drop_probability": 0.1})

    def test_without_crash(self):
        plan = FaultPlan(crash={0: 1.0, 1: 2.0})
        left = plan.without_crash(0)
        assert left.crash == {1: 2.0}
        assert plan.crash == {0: 1.0, 1: 2.0}  # original untouched

    def test_load_from_file(self, tmp_path):
        p = tmp_path / "plan.json"
        p.write_text(FaultPlan(seed=9, drop_rate=0.25).to_json())
        assert FaultPlan.load(str(p)) == FaultPlan(seed=9, drop_rate=0.25)

    def test_process_faults_round_trip(self):
        plan = FaultPlan(seed=3, kill={1: 2}, stall_heartbeat={3: 0})
        assert plan.any_process_faults
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.kill == {1: 2} and again.stall_heartbeat == {3: 0}
        assert not FaultPlan(crash={0: 1.0}).any_process_faults

    def test_process_fault_validation(self):
        with pytest.raises(ValueError, match="kill"):
            FaultPlan(kill={0: -1})
        with pytest.raises(ValueError, match="stall"):
            FaultPlan(stall_heartbeat={0: -2})

    def test_without_process_faults(self):
        plan = FaultPlan(kill={0: 1, 1: 2}, stall_heartbeat={0: 3},
                         crash={2: 1.0})
        left = plan.without_process_faults(0)
        assert left.kill == {1: 2}
        assert left.stall_heartbeat == {}
        assert left.crash == {2: 1.0}          # virtual faults untouched
        assert plan.kill == {0: 1, 1: 2}       # original untouched


class TestInjectorDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=3, drop_rate=0.3, dup_rate=0.2,
                         delay_rate=0.5, delay_seconds=1.0)
        a = FaultInjector(plan, 4)
        b = FaultInjector(plan, 4)
        seq_a = [a.decide(0, 1, 5) for _ in range(50)]
        seq_b = [b.decide(0, 1, 5) for _ in range(50)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1, drop_rate=0.5), 2)
        b = FaultInjector(FaultPlan(seed=2, drop_rate=0.5), 2)
        assert ([a.decide(0, 1, 0).drop for _ in range(64)]
                != [b.decide(0, 1, 0).drop for _ in range(64)])

    def test_tag_filter(self):
        inj = FaultInjector(FaultPlan(drop_rate=1.0, tags={7}), 2)
        assert not inj.decide(0, 1, 8).drop
        assert inj.decide(0, 1, 7).drop

    def test_unknown_rank_rejected(self):
        with pytest.raises(ValueError, match="rank 9"):
            FaultInjector(FaultPlan(crash={9: 1.0}), 4)


class TestMessageFaults:
    def test_drop_without_reliability_loses_message(self):
        """A certain drop deadlocks the naive receiver — and the watchdog
        turns that into a structured DeadlockError, not a hang."""
        def main(comm):
            if comm.rank == 0:
                comm.send(123, dst=1, tag=4)
            else:
                comm.recv(src=0, tag=4)

        plan = FaultPlan(drop_rate=1.0)
        with pytest.raises(DeadlockError):
            Engine(2, ZERO_COST, recv_timeout=0.3,
                   fault_plan=plan).run(main)

    def test_reliable_layer_recovers_drops(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dst=1, tag=4)
            else:
                return [comm.recv(src=0, tag=4) for _ in range(20)]

        plan = FaultPlan(seed=11, drop_rate=0.4)
        rep = Engine(2, TOY, recv_timeout=30.0, fault_plan=plan,
                     reliable=True).run(main)
        assert rep.values[1] == list(range(20))
        assert rep.total_drops_injected > 0
        assert rep.total_retransmissions == rep.total_drops_injected
        assert rep.total_messages_lost == 0

    def test_retries_cost_virtual_time(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"xxxx", dst=1, tag=4)
            else:
                comm.recv(src=0, tag=4)
            return comm.now

        clean = Engine(2, TOY, fault_plan=FaultPlan(drop_rate=0.0),
                       reliable=True).run(main)
        # seed chosen so the first transmission drops and the retry lands
        plan = FaultPlan(seed=1, drop_rate=0.5)
        faulty = Engine(2, TOY, fault_plan=plan, reliable=True).run(main)
        assert faulty.total_retransmissions > 0
        assert faulty.values[0] > clean.values[0]  # extra channel charges
        assert faulty.values[1] > clean.values[1]  # timeout pushed arrival

    def test_retry_budget_exhaustion(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dst=1, tag=4)
            else:
                comm.recv(src=0, tag=4)

        plan = FaultPlan(drop_rate=1.0)
        rel = ReliableConfig(timeout=1e-3, max_retries=3)
        with pytest.raises(RuntimeError, match="undelivered"):
            Engine(2, ZERO_COST, recv_timeout=10.0, fault_plan=plan,
                   reliable=rel).run(main)

    def test_duplicate_suppressed_under_reliability(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("only-once", dst=1, tag=9)
                comm.send("second", dst=1, tag=9)
            else:
                a = comm.recv(src=0, tag=9)
                b = comm.recv(src=0, tag=9)
                return (a, b)

        plan = FaultPlan(duplicate_first=(0, 1, 9))
        rep = Engine(2, ZERO_COST, recv_timeout=10.0, fault_plan=plan,
                     reliable=True).run(main)
        assert rep.values[1] == ("only-once", "second")
        assert rep.fault_summary()["duplicates_injected"] == 1
        assert rep.total_duplicates_suppressed == 1

    def test_duplicate_visible_without_reliability(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("dup", dst=1, tag=9)
            else:
                return (comm.recv(src=0, tag=9), comm.recv(src=0, tag=9))

        plan = FaultPlan(duplicate_first=(0, 1, 9))
        rep = Engine(2, ZERO_COST, recv_timeout=10.0,
                     fault_plan=plan).run(main)
        assert rep.values[1] == ("dup", "dup")

    def test_delay_pushes_arrival(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dst=1, tag=2)
            else:
                comm.recv(src=0, tag=2)
                return comm.now

        plan = FaultPlan(delay_rate=1.0, delay_seconds=50.0)
        rep = Engine(2, ZERO_COST, recv_timeout=10.0,
                     fault_plan=plan).run(main)
        # jitter keeps the delay within [0.5, 1.5) * delay_seconds
        assert 25.0 <= rep.values[1] < 75.0
        assert rep.fault_summary()["delays_injected"] == 1


class TestCrashAndSlowdown:
    def test_crash_raises_typed_error(self):
        def main(comm):
            comm.compute(100.0)
            comm.barrier()

        with pytest.raises(RankCrashedError) as ei:
            Engine(2, ZERO_COST, recv_timeout=10.0,
                   fault_plan=FaultPlan(crash={0: 40.0})).run(main)
        assert ei.value.rank == 0
        assert ei.value.at_time == pytest.approx(40.0)

    def test_crash_releases_other_ranks(self):
        def main(comm):
            if comm.rank == 0:
                comm.compute(100.0)
            comm.recv(src=0, tag=1)  # never sent: rank 1 must be released

        with pytest.raises(RankCrashedError):
            Engine(2, ZERO_COST, recv_timeout=30.0,
                   fault_plan=FaultPlan(crash={0: 10.0})).run(main)

    def test_slowdown_degrades_compute(self):
        def main(comm):
            comm.compute(100.0)
            return comm.now

        plan = FaultPlan(slowdown={1: 2.5})
        rep = Engine(2, ZERO_COST, fault_plan=plan).run(main)
        assert rep.values[0] == pytest.approx(100.0)
        assert rep.values[1] == pytest.approx(250.0)

    def test_effective_flops_reflects_slowdown(self):
        def main(comm):
            return comm.effective_flops_per_second()

        rep = Engine(2, ZERO_COST,
                     fault_plan=FaultPlan(slowdown={0: 4.0})).run(main)
        assert rep.values == [0.25, 1.0]


class TestZeroFaultNeutrality:
    def test_reliable_layer_is_free_when_clean(self):
        """Benchmark timings must be unchanged by the recovery machinery."""
        def main(comm):
            comm.compute(float(comm.rank) * 3.0)
            comm.allgather(comm.rank)
            comm.alltoall(list(range(comm.size)))
            comm.barrier()
            return comm.now

        base = Engine(8, TOY).run(main)
        guarded = Engine(8, TOY, fault_plan=FaultPlan(),
                         reliable=True).run(main)
        assert guarded.values == base.values
        assert guarded.fault_summary() == {
            k: 0 for k in guarded.fault_summary()
        }

    def test_fault_runs_reproducible(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dst=1, tag=3)
            else:
                for _ in range(10):
                    comm.recv(src=0, tag=3)
            comm.barrier()
            return comm.now

        plan = FaultPlan(seed=5, drop_rate=0.3, delay_rate=0.2,
                         delay_seconds=7.0)
        reps = [Engine(2, TOY, recv_timeout=30.0, fault_plan=plan,
                       reliable=True).run(main) for _ in range(3)]
        assert (reps[0].values == reps[1].values == reps[2].values)
        assert (reps[0].fault_summary() == reps[1].fault_summary()
                == reps[2].fault_summary())
