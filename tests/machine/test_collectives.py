"""Tests for the collective operations (correctness + cost structure)."""

import operator

import pytest

from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.profiles import ZERO_COST

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)

SIZES = [1, 2, 3, 4, 7, 8, 16]


def run(p, main, profile=ZERO_COST):
    return Engine(p, profile, recv_timeout=15.0).run(main)


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    def test_all_ranks_get_root_value(self, p):
        def main(comm):
            v = {"data": 99} if comm.rank == 0 else None
            return comm.bcast(v, root=0)["data"]

        assert run(p, main).values == [99] * p

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        def main(comm):
            v = comm.rank if comm.rank == root else None
            return comm.bcast(v, root=root)

        assert run(4, main).values == [root] * 4

    def test_invalid_root(self):
        def main(comm):
            comm.bcast(1, root=9)

        with pytest.raises(RuntimeError, match="root"):
            run(4, main)

    def test_logarithmic_rounds(self):
        """Binomial bcast on a zero-compute machine finishes in about
        log2(p) message start-ups, not p of them."""
        def main(comm):
            comm.bcast(0.0, root=0)
            return comm.now

        t8 = max(run(8, main, TOY).values)
        t64 = max(run(64, main, TOY).values)
        # doubling log p (3 -> 6 rounds) should roughly double the time
        assert t64 < 3 * t8


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum_at_root(self, p):
        def main(comm):
            return comm.reduce(comm.rank + 1, operator.add, root=0)

        rep = run(p, main)
        assert rep.values[0] == p * (p + 1) // 2
        assert all(v is None for v in rep.values[1:])

    def test_nonzero_root(self):
        def main(comm):
            return comm.reduce(comm.rank, operator.add, root=2)

        rep = run(4, main)
        assert rep.values[2] == 6
        assert rep.values[0] is None

    def test_max_reduction(self):
        def main(comm):
            return comm.reduce((comm.rank * 7) % 5, max, root=0)

        assert run(5, main).values[0] == 4


class TestAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_everyone_gets_sum(self, p):
        def main(comm):
            return comm.allreduce(comm.rank, operator.add)

        assert run(p, main).values == [p * (p - 1) // 2] * p

    def test_clocks_synchronised_at_or_above_slowest(self):
        """After an allreduce every rank's clock must be at least the
        slowest participant's entry time."""
        def main(comm):
            comm.compute(1000.0 if comm.rank == 2 else 1.0)
            comm.allreduce(0, operator.add)
            return comm.now

        rep = run(8, main, TOY)
        assert min(rep.values) >= 1000.0


class TestBarrier:
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_barrier_completes(self, p):
        def main(comm):
            comm.barrier()
            return True

        assert all(run(p, main).values)

    def test_barrier_orders_virtual_time(self):
        def main(comm):
            comm.compute(500.0 * comm.rank)
            comm.barrier()
            return comm.now

        rep = run(4, main, TOY)
        assert min(rep.values) >= 1500.0


class TestGather:
    @pytest.mark.parametrize("p", SIZES)
    def test_rank_ordered_list_at_root(self, p):
        def main(comm):
            return comm.gather(comm.rank * 10, root=0)

        rep = run(p, main)
        assert rep.values[0] == [r * 10 for r in range(p)]
        assert all(v is None for v in rep.values[1:])

    def test_nonzero_root(self):
        def main(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=3)

        assert run(4, main).values[3] == ["a", "b", "c", "d"]


class TestAllgather:
    @pytest.mark.parametrize("p", SIZES)
    def test_everyone_gets_ordered_list(self, p):
        def main(comm):
            return comm.allgather(comm.rank ** 2)

        expected = [r ** 2 for r in range(p)]
        assert run(p, main).values == [expected] * p

    def test_payload_objects_survive(self):
        def main(comm):
            vals = comm.allgather({"rank": comm.rank})
            return [v["rank"] for v in vals]

        assert run(8, main).values[5] == list(range(8))


class TestAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    def test_personalized_exchange(self, p):
        def main(comm):
            out = [comm.rank * 100 + dst for dst in range(p)]
            return comm.alltoall(out)

        rep = run(p, main)
        for r in range(p):
            assert rep.values[r] == [src * 100 + r for src in range(p)]

    def test_wrong_length_rejected(self):
        def main(comm):
            comm.alltoall([0])

        with pytest.raises(RuntimeError, match="exactly"):
            run(4, main)


class TestScan:
    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive_prefix_sum(self, p):
        def main(comm):
            return comm.scan(comm.rank + 1, operator.add)

        assert run(p, main).values == [
            (r + 1) * (r + 2) // 2 for r in range(p)
        ]

    def test_noncommutative_order_is_rank_order(self):
        """Scan must combine values in rank order (string concat shows it)."""
        def main(comm):
            return comm.scan(str(comm.rank), operator.add)

        assert run(5, main).values == ["0", "01", "012", "0123", "01234"]


class TestTagIsolation:
    def test_collectives_do_not_steal_user_messages(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("user-data", dst=1, tag=0)
            comm.barrier()
            comm.allgather(comm.rank)
            if comm.rank == 1:
                return comm.recv(src=0, tag=0)

        assert run(4, main).values[1] == "user-data"

    def test_back_to_back_collectives_do_not_mix(self):
        def main(comm):
            a = comm.allgather(("first", comm.rank))
            b = comm.allgather(("second", comm.rank))
            return a[0][0], b[0][0]

        for vals in run(8, main).values:
            assert vals == ("first", "second")
