"""Tests for the metrics registry and its machine-layer wiring."""

import pytest

from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.metrics import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.high_water == 3.0

    def test_histogram_buckets_and_moments(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for x in (0.5, 5.0, 50.0, 500.0):
            h.observe(x)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.mean == pytest.approx(138.875)
        assert h.min == 0.5 and h.max == 500.0

    def test_histogram_boundary_goes_to_lower_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_histogram_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_snapshot_shapes(self):
        c, g, h = Counter(), Gauge(), Histogram(bounds=(1.0,))
        c.inc(2)
        g.set(7)
        h.observe(0.5)
        assert c.snapshot() == {"type": "counter", "value": 2}
        assert g.snapshot()["high_water"] == 7
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["buckets"] == [
            {"le": 1.0, "count": 1}]


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg and "b" not in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(5)
        b.gauge("g").set(3)
        b.counter("only_b").inc(7)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        m = MetricsRegistry.merged([a, b])
        assert m.counter("c").value == 3          # counters sum
        assert m.gauge("g").value == 5            # gauges take the max
        assert m.counter("only_b").value == 7
        assert m.histogram("h", bounds=(1.0,)).count == 2

    def test_merge_mismatched_histograms_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,))
        b.histogram("h", bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestMachineWiring:
    def _report(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"x" * 32, dst=1, tag=2)
            elif comm.rank == 1:
                comm.recv(src=0, tag=2)
            return comm.now

        return Engine(2, TOY).run(main)

    def test_message_size_histogram(self):
        rep = self._report()
        h = rep.ranks[0].metrics.histogram("comm.msg_bytes",
                                           bounds=BYTE_BUCKETS)
        assert h.count == 1 and h.total == 32.0

    def test_wait_histogram_on_receiver(self):
        rep = self._report()
        h = rep.ranks[1].metrics.histogram("comm.recv_wait_seconds")
        assert h.count == 1
        # Receiver idles from 0 until arrival at t_s + 32 t_w + t_h = 27.
        assert h.total == pytest.approx(27.0)

    def test_mailbox_high_water_gauge(self):
        rep = self._report()
        g = rep.ranks[1].metrics.gauge("mailbox.max_pending")
        assert g.value == 1

    def test_report_merges_ranks(self):
        rep = self._report()
        merged = rep.metrics_summary()
        assert merged.histogram("comm.msg_bytes",
                                bounds=BYTE_BUCKETS).count == 1
        snap = merged.snapshot()
        assert "comm.recv_wait_seconds" in snap
        assert snap["comm.msg_bytes"]["sum"] == 32.0
