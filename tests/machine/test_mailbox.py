"""Tests for the matched message queues."""

import threading

import pytest

from repro.machine.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message


def msg(src=0, tag=0, payload=None, arrival=0.0, nbytes=0):
    return Message(arrival=arrival, src=src, tag=tag,
                   payload=payload, nbytes=nbytes)


class TestMatching:
    def test_fifo_per_source_tag(self):
        box = Mailbox(0)
        box.put(msg(src=1, tag=7, payload="a", arrival=1.0))
        box.put(msg(src=1, tag=7, payload="b", arrival=2.0))
        assert box.get(src=1, tag=7).payload == "a"
        assert box.get(src=1, tag=7).payload == "b"

    def test_tag_filtering(self):
        box = Mailbox(0)
        box.put(msg(src=1, tag=1, payload="x"))
        box.put(msg(src=1, tag=2, payload="y"))
        assert box.get(src=1, tag=2).payload == "y"
        assert box.get(src=1, tag=1).payload == "x"

    def test_source_filtering(self):
        box = Mailbox(0)
        box.put(msg(src=2, payload="from2"))
        box.put(msg(src=3, payload="from3"))
        assert box.get(src=3).payload == "from3"

    def test_wildcard_picks_earliest_virtual_arrival(self):
        box = Mailbox(0)
        box.put(msg(src=5, payload="late", arrival=9.0))
        box.put(msg(src=2, payload="early", arrival=1.0))
        assert box.get(ANY_SOURCE, ANY_TAG).payload == "early"

    def test_wildcard_ties_broken_by_source(self):
        box = Mailbox(0)
        box.put(msg(src=5, payload="five", arrival=1.0))
        box.put(msg(src=2, payload="two", arrival=1.0))
        assert box.get().payload == "two"

    def test_poll_returns_none_when_empty(self):
        assert Mailbox(0).poll() is None

    def test_poll_respects_filter(self):
        box = Mailbox(0)
        box.put(msg(src=1, tag=4))
        assert box.poll(src=2) is None
        assert box.poll(src=1, tag=4) is not None

    def test_probe_does_not_consume(self):
        box = Mailbox(0)
        box.put(msg(src=1))
        assert box.probe(src=1)
        assert box.probe(src=1)
        assert box.pending_count() == 1


class TestBlockingAndTimeout:
    def test_get_blocks_until_put(self):
        box = Mailbox(0)
        got = []

        def receiver():
            got.append(box.get(src=1).payload)

        t = threading.Thread(target=receiver)
        t.start()
        box.put(msg(src=1, payload=42))
        t.join(timeout=5)
        assert got == [42]

    def test_timeout_raises(self):
        box = Mailbox(0)
        with pytest.raises(TimeoutError, match="deadlock"):
            box.get(src=1, timeout=0.05)

    def test_close_wakes_blocked_receiver(self):
        box = Mailbox(3)
        errors = []

        def receiver():
            try:
                box.get(src=1, timeout=5)
            except RuntimeError as e:
                errors.append(str(e))

        t = threading.Thread(target=receiver)
        t.start()
        box.close()
        t.join(timeout=5)
        assert errors and "closed" in errors[0]

    def test_put_after_close_rejected(self):
        box = Mailbox(0)
        box.close()
        with pytest.raises(RuntimeError):
            box.put(msg())
