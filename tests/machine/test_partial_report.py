"""Failed ranks still yield well-formed RankResults (both engines)."""

import pytest

from repro.machine.engine import Engine
from repro.machine.profiles import NCUBE2


def _early_death(comm):
    # Dies before ever touching its clock: the regression this pins is
    # that such a rank used to be indistinguishable from a missing one.
    if comm.rank == 1:
        raise KeyError("dead before the first tick")
    comm.compute(1000.0, phase="work")
    return "ok"


def test_rank_failing_before_first_tick_is_reported():
    with pytest.raises(RuntimeError, match="rank 1") as ei:
        Engine(4, NCUBE2, recv_timeout=5.0).run(_early_death)
    report = ei.value.partial_report
    assert report is not None
    assert report.size == 4
    failed = report.ranks[1]
    assert failed.rank == 1
    assert failed.value is None
    assert failed.error == "KeyError: 'dead before the first tick'"
    assert failed.time == 0.0
    assert failed.timings.seconds == {}
    assert failed.stats.messages_sent == 0
    # Survivors keep what they accumulated.
    assert report.ranks[0].value == "ok"
    assert report.ranks[0].error is None
    assert report.ranks[0].time > 0.0
    # Aggregates over the partial report stay computable.
    assert report.parallel_time == max(r.time for r in report.ranks)


def _late_death(comm):
    comm.compute(5000.0, phase="work")
    if comm.rank == 0:
        raise ValueError("died mid-run")
    return comm.rank


def test_failed_rank_keeps_accumulated_clock():
    with pytest.raises(RuntimeError) as ei:
        Engine(2, NCUBE2, recv_timeout=5.0).run(_late_death)
    failed = ei.value.partial_report.ranks[0]
    assert failed.error.startswith("ValueError")
    assert failed.time > 0.0
    assert failed.timings.get("work") > 0.0


def test_successful_run_has_no_error_fields():
    def ok(comm):
        return comm.rank

    report = Engine(2).run(ok)
    assert [r.error for r in report.ranks] == [None, None]
