"""Tests for the structured deadlock diagnostics and typed mailbox errors."""

import pytest

from repro.machine.comm import DeadlockError
from repro.machine.engine import Engine
from repro.machine.mailbox import Mailbox, MailboxClosedError, Message
from repro.machine.profiles import ZERO_COST


class TestDeadlockError:
    def test_deadlocked_program_raises_not_hangs(self):
        """A 2-rank cross-wait must raise and name the blocked (src, tag)."""
        def main(comm):
            if comm.rank == 0:
                comm.recv(src=1, tag=5)
            else:
                comm.recv(src=0, tag=6)

        with pytest.raises(DeadlockError) as ei:
            Engine(2, ZERO_COST, recv_timeout=0.3).run(main)
        err = ei.value
        assert "deadlock" in str(err)
        # The raising rank names its own blocked receive...
        assert (err.src, err.tag) in {(1, 5), (0, 6)}
        # ...and the report covers both ranks' waits.
        assert "recv(src=1, tag=5)" in str(err)
        assert "recv(src=0, tag=6)" in str(err)

    def test_report_includes_mailbox_holdings(self):
        """An unmatched queued message shows up in the deadlock report."""
        def main(comm):
            if comm.rank == 0:
                comm.send("stray", dst=1, tag=99)
                comm.recv(src=1, tag=5)
            else:
                comm.recv(src=0, tag=6)  # tag 99 sits unmatched

        with pytest.raises(DeadlockError) as ei:
            Engine(2, ZERO_COST, recv_timeout=0.3).run(main)
        assert "tag=99" in str(ei.value)

    def test_blocked_attribute_is_structured(self):
        def main(comm):
            comm.recv(src=(comm.rank + 1) % 2, tag=7)

        with pytest.raises(DeadlockError) as ei:
            Engine(2, ZERO_COST, recv_timeout=0.3).run(main)
        blocked = ei.value.blocked
        assert blocked is not None and len(blocked) == 2
        # The raising rank recorded its wait; every non-None entry is a
        # (src, tag) pair of this cross-wait.
        assert any(w is not None for w in blocked)
        for r, w in enumerate(blocked):
            if w is not None:
                assert w == ((r + 1) % 2, 7)

    def test_deadlock_error_is_runtime_error(self):
        """Old callers catching RuntimeError keep working."""
        assert issubclass(DeadlockError, RuntimeError)


class TestMailboxClosedError:
    def test_typed_error_on_closed_put_and_get(self):
        box = Mailbox(0)
        box.close()
        with pytest.raises(MailboxClosedError):
            box.put(Message(arrival=0.0, src=1))
        with pytest.raises(MailboxClosedError):
            box.get(src=1, timeout=1.0)

    def test_root_cause_selection_is_not_string_matched(self):
        """A user error whose message contains "mailbox" must still be
        chosen as the primary failure over secondary closed-mailbox
        releases (the old string match was defeated by this)."""
        def main(comm):
            if comm.rank == 0:
                raise ValueError("the mailbox gods are angry")
            comm.recv(src=0, tag=1)

        with pytest.raises(RuntimeError,
                           match="rank 0.*mailbox gods are angry"):
            Engine(2, ZERO_COST, recv_timeout=30.0).run(main)

    def test_pending_summary_counts_by_src_and_tag(self):
        box = Mailbox(0)
        box.put(Message(arrival=0.0, src=1, tag=4))
        box.put(Message(arrival=1.0, src=1, tag=4))
        box.put(Message(arrival=0.5, src=2, tag=9))
        assert box.pending_summary() == {(1, 4): 2, (2, 9): 1}
