"""Tests for point-to-point Comm semantics and virtual-time charging."""

import numpy as np
import pytest

from repro.machine.comm import estimate_nbytes
from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.profiles import ZERO_COST

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


def run(p, main, profile=ZERO_COST, **kw):
    return Engine(p, profile, recv_timeout=10.0, **kw).run(main)


class TestEstimateNbytes:
    def test_numpy_array(self):
        assert estimate_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars(self):
        assert estimate_nbytes(None) == 0
        assert estimate_nbytes(True) == 1
        assert estimate_nbytes(7) == 8
        assert estimate_nbytes(3.14) == 8
        assert estimate_nbytes(1 + 2j) == 16

    def test_containers_recursive(self):
        assert estimate_nbytes([1, 2.0, None]) == 16
        assert estimate_nbytes({"ab": 1}) == 10
        assert estimate_nbytes((np.zeros(2), 1)) == 24

    def test_string(self):
        assert estimate_nbytes("abcd") == 4

    def test_unknown_object_charged_token(self):
        class Thing:
            pass
        assert estimate_nbytes(Thing()) == 8


class TestSendRecv:
    def test_payload_round_trip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"v": 41}, dst=1, tag=5)
                return None
            if comm.rank == 1:
                return comm.recv(src=0, tag=5)["v"]
            return None

        assert run(2, main).values[1] == 41

    def test_numpy_payload_identity(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), dst=1)
            elif comm.rank == 1:
                return comm.recv(src=0).sum()

        assert run(2, main).values[1] == 10

    def test_invalid_destination(self):
        def main(comm):
            comm.send(1, dst=99)

        with pytest.raises(RuntimeError, match="out of range"):
            run(2, main)

    def test_self_send_is_free_and_works(self):
        def main(comm):
            comm.send("hello", dst=comm.rank, tag=1)
            v = comm.recv(src=comm.rank, tag=1)
            return (v, comm.now)

        rep = run(1, main, profile=TOY)
        assert rep.values[0] == ("hello", 0.0)

    def test_deadlock_detected(self):
        def main(comm):
            comm.recv(src=(comm.rank + 1) % comm.size, tag=9)

        with pytest.raises(RuntimeError, match="timed out|deadlock"):
            Engine(2, ZERO_COST, recv_timeout=0.1).run(main)


class TestVirtualTiming:
    def test_sender_charge(self):
        """send of 8 bytes: t_s + 8*t_w = 10 + 4 = 14 on the sender."""
        def main(comm):
            if comm.rank == 0:
                comm.send(1.0, dst=1)  # 0->1 is 1 hop
            elif comm.rank == 1:
                comm.recv(src=0)
            return comm.now

        rep = run(2, main, profile=TOY)
        assert rep.values[0] == pytest.approx(14.0)
        # receiver waits for arrival (14 + 1 hop) then pays copy 8*t_w
        assert rep.values[1] == pytest.approx(15.0 + 4.0)

    def test_receiver_not_delayed_if_busy_past_arrival(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1.0, dst=1)
            elif comm.rank == 1:
                comm.compute(1000.0)  # clock = 1000 >> arrival
                comm.recv(src=0)
            return comm.now

        rep = run(2, main, profile=TOY)
        assert rep.values[1] == pytest.approx(1000.0 + 4.0)

    def test_hop_term_uses_topology(self):
        """0->3 in a 4-cube is 2 hops; arrival is one t_h later than 0->1."""
        def main(comm):
            if comm.rank == 0:
                comm.send(1.0, dst=1)
                comm.send(1.0, dst=3)
            elif comm.rank in (1, 3):
                comm.recv(src=0)
            return comm.now

        rep = run(4, main, profile=TOY)
        # second send departs at 28; 2 hops -> arrival 30; copy 4
        assert rep.values[3] - rep.values[1] == pytest.approx(15.0)

    def test_compute_charges_flops(self):
        def main(comm):
            comm.compute(123.0)
            return comm.now

        assert run(1, main, profile=TOY).values[0] == pytest.approx(123.0)

    def test_explicit_nbytes_overrides_estimate(self):
        def main(comm):
            if comm.rank == 0:
                comm.send([1] * 100, dst=1, nbytes=4)
            elif comm.rank == 1:
                comm.recv(src=0)
            return comm.now

        rep = run(2, main, profile=TOY)
        assert rep.values[0] == pytest.approx(10.0 + 2.0)

    def test_determinism_across_runs(self):
        def main(comm):
            comm.compute(float(comm.rank))
            others = comm.allgather(comm.rank * 2)
            comm.send(sum(others), dst=(comm.rank + 1) % comm.size, tag=3)
            comm.recv(src=(comm.rank - 1) % comm.size, tag=3)
            return comm.now

        a = run(8, main, profile=TOY)
        b = run(8, main, profile=TOY)
        assert a.values == b.values


class TestPollProbe:
    def test_poll_hides_future_messages(self):
        """A rank cannot see a message before its virtual arrival."""
        def main(comm):
            if comm.rank == 0:
                comm.compute(100.0)
                comm.send("x", dst=1)  # virtual arrival ~ 111.5
            else:
                while not comm.probe(src=0):  # real-time wait, no clock move
                    pass
                early = comm.poll_msg(src=0) is not None  # clock still 0
                comm.compute(500.0)  # move past arrival
                late = comm.poll_msg(src=0) is not None
                return early, late

        rep = run(2, main, profile=TOY)
        early, late = rep.values[1]
        assert late and not early

    def test_probe_sees_queued_regardless_of_time(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dst=1)
                comm.barrier()
            else:
                comm.barrier()
                return comm.probe(src=0)

        assert run(2, main, profile=TOY).values[1] is True


class TestStats:
    def test_counters(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), dst=1, tag=2)   # 32 bytes
                comm.send(np.zeros(2), dst=1, tag=2)   # 16 bytes
            elif comm.rank == 1:
                comm.recv(src=0, tag=2)
                comm.recv(src=0, tag=2)
            return (comm.stats.messages_sent, comm.stats.bytes_sent,
                    comm.stats.messages_received, comm.stats.bytes_received,
                    dict(comm.stats.bytes_by_tag))

        rep = run(2, main)
        assert rep.values[0] == (2, 48, 0, 0, {2: 48})
        assert rep.values[1][2:4] == (2, 48)
