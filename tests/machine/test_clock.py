"""Tests for the virtual clock and phase accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.clock import PhaseTimings, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.now == pytest.approx(4.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_wait_until_future(self):
        c = VirtualClock()
        c.wait_until(3.0)
        assert c.now == 3.0

    def test_wait_until_past_is_noop(self):
        c = VirtualClock()
        c.advance(5.0)
        c.wait_until(3.0)
        assert c.now == 5.0

    def test_default_phase_attribution(self):
        c = VirtualClock()
        c.advance(2.0)
        assert c.timings.get("other") == pytest.approx(2.0)

    def test_phase_context(self):
        c = VirtualClock()
        with c.phase("force"):
            c.advance(1.0)
            with c.phase("comm"):
                c.advance(0.5)
            c.advance(0.25)
        c.advance(1.0)
        assert c.timings.get("force") == pytest.approx(1.25)
        assert c.timings.get("comm") == pytest.approx(0.5)
        assert c.timings.get("other") == pytest.approx(1.0)
        assert c.current_phase == "other"

    def test_phase_stack_restored_on_exception(self):
        c = VirtualClock()
        with pytest.raises(RuntimeError):
            with c.phase("bad"):
                raise RuntimeError("boom")
        assert c.current_phase == "other"

    def test_explicit_phase_override(self):
        c = VirtualClock()
        with c.phase("force"):
            c.advance(1.0, phase="io")
        assert c.timings.get("io") == pytest.approx(1.0)
        assert c.timings.get("force") == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_total_equals_now(self, steps):
        c = VirtualClock()
        for i, dt in enumerate(steps):
            c.advance(dt, phase=f"p{i % 3}")
        assert c.timings.total() == pytest.approx(c.now)


class TestPhaseTimings:
    def test_add_and_get(self):
        t = PhaseTimings()
        t.add("a", 1.0)
        t.add("a", 2.0)
        assert t.get("a") == pytest.approx(3.0)
        assert t.get("missing") == 0.0

    def test_merged_with(self):
        a = PhaseTimings({"x": 1.0, "y": 2.0})
        b = PhaseTimings({"y": 3.0, "z": 4.0})
        m = a.merged_with(b)
        assert m.seconds == {"x": 1.0, "y": 5.0, "z": 4.0}
        # inputs untouched
        assert a.seconds == {"x": 1.0, "y": 2.0}

    def test_total(self):
        assert PhaseTimings({"a": 1.0, "b": 2.5}).total() == pytest.approx(3.5)
