"""Tests for the LogGP-style cost model and machine profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.costmodel import (
    CostModel,
    MachineProfile,
    PARTICLE_RECORD_BYTES,
    multipole_series_bytes,
)
from repro.machine.profiles import CM5, NCUBE2, T3E, ZERO_COST, get_profile


def simple_profile(**over):
    base = dict(name="toy", topology_kind="hypercube",
                t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=2.0)
    base.update(over)
    return MachineProfile(**base)


class TestMachineProfile:
    def test_flop_time(self):
        assert simple_profile().flop_time == 0.5

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            simple_profile(t_s=-1.0)
        with pytest.raises(ValueError):
            simple_profile(flops_per_second=0.0)

    def test_topology_binding(self):
        topo = simple_profile().make_topology(16)
        assert topo.size == 16
        assert topo.hops(0, 15) == 4


class TestCostModel:
    def test_message_time_formula(self):
        cm = CostModel(simple_profile(), 16)
        # 0 -> 15 is 4 hops: t_s + 4*t_h + nbytes*t_w
        assert cm.message_time(0, 15, 100) == pytest.approx(10 + 4 + 50)

    def test_self_message_free(self):
        cm = CostModel(simple_profile(), 16)
        assert cm.message_time(3, 3, 10**6) == 0.0

    def test_compute_time(self):
        cm = CostModel(simple_profile(), 4)
        assert cm.compute_time(100) == pytest.approx(50.0)

    def test_negative_inputs_rejected(self):
        cm = CostModel(simple_profile(), 4)
        with pytest.raises(ValueError):
            cm.message_time(0, 1, -1)
        with pytest.raises(ValueError):
            cm.compute_time(-5)

    @given(st.integers(0, 15), st.integers(0, 15),
           st.integers(0, 10**6), st.integers(0, 10**6))
    def test_monotone_in_message_size(self, src, dst, m1, m2):
        cm = CostModel(simple_profile(), 16)
        lo, hi = sorted((m1, m2))
        assert cm.message_time(src, dst, lo) <= cm.message_time(src, dst, hi)


class TestProfiles:
    def test_lookup(self):
        assert get_profile("ncube2") is NCUBE2
        assert get_profile("CM5") is CM5
        assert get_profile("t3e") is T3E
        assert get_profile("zero") is ZERO_COST

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_profile("paragon")

    def test_relative_machine_balance(self):
        """CM5 has lower latency and higher bandwidth and flop rate than
        nCUBE2; T3E dwarfs both — the relations the paper's conclusion
        relies on."""
        assert CM5.t_s < NCUBE2.t_s
        assert CM5.t_w < NCUBE2.t_w
        assert CM5.flops_per_second > NCUBE2.flops_per_second
        assert T3E.flops_per_second > 10 * CM5.flops_per_second

    def test_ncube2_memory_is_4mb(self):
        assert NCUBE2.memory_bytes == 4 * 1024 * 1024


class TestWireSizes:
    def test_particle_record(self):
        # 3 x float32 coordinates + 1 x 32-bit branch key
        assert PARTICLE_RECORD_BYTES == 16

    def test_multipole_series_matches_paper_example(self):
        """Paper 4.2.1: a degree-6 3-D expansion is 36 complex numbers =
        72 floats; we add origin + mass (4 floats)."""
        assert multipole_series_bytes(6, dims=3) == 4 * (72 + 4)

    def test_grows_quadratically_in_3d(self):
        b3 = multipole_series_bytes(3)
        b6 = multipole_series_bytes(6)
        assert (b6 - 16) == pytest.approx(4 * (b3 - 16), rel=0.01)

    def test_linear_in_2d(self):
        assert multipole_series_bytes(6, dims=2) == 4 * (12 + 3)

    def test_degree_zero_monopole_small(self):
        assert multipole_series_bytes(0) < multipole_series_bytes(4)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            multipole_series_bytes(-1)
