"""Tests for arrival-ordered receives and raw collection."""

import pytest

from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine
from repro.machine.profiles import ZERO_COST

TOY = MachineProfile(name="toy", topology_kind="hypercube",
                     t_s=10.0, t_h=1.0, t_w=0.5, flops_per_second=1.0)


def run(p, main, profile=ZERO_COST):
    return Engine(p, profile, recv_timeout=15.0).run(main)


class TestRecvSorted:
    def test_yields_in_virtual_arrival_order(self):
        """Rank 2 is slow, rank 1 fast: rank 1's message must be handled
        first even though counts are requested in rank order."""
        def main(comm):
            if comm.rank == 1:
                comm.send("fast", dst=0, tag=5)
            elif comm.rank == 2:
                comm.compute(1000.0)
                comm.send("slow", dst=0, tag=5)
            elif comm.rank == 0:
                msgs = list(comm.recv_sorted({1: 1, 2: 1}, tag=5))
                return [m.payload for m in msgs]

        assert run(4, main, profile=TOY).values[0] == ["fast", "slow"]

    def test_clock_charged_per_message(self):
        """Work done between yields lands between arrival waits."""
        def main(comm):
            if comm.rank == 1:
                comm.send(b"x", dst=0, tag=5)        # arrives early
            elif comm.rank == 2:
                comm.compute(500.0)
                comm.send(b"y", dst=0, tag=5)        # arrives ~510
            elif comm.rank == 0:
                stamps = []
                for msg in comm.recv_sorted({1: 1, 2: 1}, tag=5):
                    stamps.append(comm.now)
                    comm.compute(50.0)               # service work
                return stamps

        stamps = run(4, main, profile=TOY).values[0]
        # first message handled well before the slow sender's arrival
        assert stamps[0] < 100.0
        assert stamps[1] >= 500.0

    def test_multiple_from_same_source_fifo(self):
        def main(comm):
            if comm.rank == 1:
                for i in range(3):
                    comm.send(i, dst=0, tag=7)
            elif comm.rank == 0:
                return [m.payload
                        for m in comm.recv_sorted({1: 3}, tag=7)]

        assert run(2, main).values[0] == [0, 1, 2]

    def test_empty_counts(self):
        def main(comm):
            return list(comm.recv_sorted({}, tag=9))

        assert run(1, main).values[0] == []


class TestCollectRaw:
    def test_collect_until_sentinel(self):
        def main(comm):
            if comm.rank == 1:
                comm.send("a", dst=0, tag=3)
                comm.send("b", dst=0, tag=3)
                comm.send({"sentinel": 2}, dst=0, tag=3)
            elif comm.rank == 0:
                msgs = comm.collect_raw(
                    1, 3, lambda p: isinstance(p, dict) and "sentinel" in p)
                return [m.payload for m in msgs], comm.now

        payloads, now = run(2, main, profile=TOY).values[0]
        assert payloads[:2] == ["a", "b"]
        assert "sentinel" in payloads[2]
        # collect_raw never touches the clock
        assert now == 0.0

    def test_charge_recv_after_collect(self):
        def main(comm):
            if comm.rank == 1:
                comm.compute(100.0)
                comm.send(b"xxxx", dst=0, tag=3)
                comm.send({"sentinel": 1}, dst=0, tag=3)
            elif comm.rank == 0:
                msgs = comm.collect_raw(
                    1, 3, lambda p: isinstance(p, dict) and "sentinel" in p)
                for m in msgs:
                    comm.charge_recv(m)
                return comm.now, comm.stats.messages_received

        now, nrecv = run(2, main, profile=TOY).values[0]
        assert now > 100.0  # waited for the slow sender's arrival
        assert nrecv == 2
