"""Shared-memory payload codec: exactness, aliasing, lifetime."""

import os

import numpy as np

from repro.runtime import shm


def _leftovers(prefix: str) -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]
    except OSError:  # pragma: no cover - non-POSIX fallback
        return []


def test_small_payload_stays_inline():
    data, block_info = shm.encode({"a": 1, "b": np.arange(4)},
                                  name_prefix="reprotest")
    assert block_info is None
    out = shm.decode(data, block_info)
    assert out["a"] == 1
    np.testing.assert_array_equal(out["b"], np.arange(4))


def test_large_array_round_trips_bitwise():
    rng = np.random.default_rng(7)
    a = rng.standard_normal(5000)          # 40 KB > 16 KiB threshold
    payload = {"x": a, "meta": ("tag", 3)}
    data, block_info = shm.encode(payload, name_prefix="reprotest")
    assert block_info is not None
    name, descs = block_info
    assert name.startswith("reprotest")
    assert len(descs) == 1
    out = shm.decode(data, block_info)
    assert out["meta"] == ("tag", 3)
    assert out["x"].tobytes() == a.tobytes()
    assert out["x"].dtype == a.dtype
    assert not _leftovers("reprotest"), "decode must unlink the block"


def test_aliased_array_decodes_to_one_object():
    a = np.ones(4096)                      # 32 KB
    data, block_info = shm.encode([a, a, {"again": a}],
                                  name_prefix="reprotest")
    out = shm.decode(data, block_info)
    assert out[0] is out[1] is out[2]["again"]


def test_noncontiguous_and_structured_payloads():
    base = np.arange(40000, dtype=np.float64).reshape(200, 200)
    view = base[::2, ::3]                  # non-contiguous, 53 KB
    recs = np.zeros(3000, dtype=[("k", "u8"), ("v", "f8")])
    recs["k"] = np.arange(3000)
    data, block_info = shm.encode((view, recs), name_prefix="reprotest")
    # Only the plain float view is extracted; the structured array must
    # ride the pickle stream (dtype.str cannot carry its fields).
    assert block_info is not None
    assert len(block_info[1]) == 1
    v, r = shm.decode(data, block_info)
    np.testing.assert_array_equal(v, view)
    np.testing.assert_array_equal(r, recs)


def test_threshold_none_disables_extraction():
    a = np.ones(1 << 16)
    data, block_info = shm.encode(a, threshold=None)
    assert block_info is None
    np.testing.assert_array_equal(shm.decode(data, block_info), a)


def test_object_dtype_never_extracted():
    a = np.array(["x" * 100, {"k": 1}] * 2000, dtype=object)
    data, block_info = shm.encode(a, threshold=8)
    assert block_info is None    # object arrays stay in the pickle path
    out = shm.decode(data, block_info)
    assert out[1] == {"k": 1}
    assert out.dtype == object


def test_cleanup_blocks_reclaims_orphans():
    from multiprocessing import shared_memory
    prefix = f"reprotestorphan{os.getpid()}"
    blocks = [shared_memory.SharedMemory(create=True, size=64,
                                         name=f"{prefix}_{i}")
              for i in range(3)]
    for b in blocks:
        shm._forget(b)   # simulate in-flight ownership transfer
        b.close()
    assert len(_leftovers(prefix)) == 3
    assert shm.cleanup_blocks(prefix) == 3
    assert not _leftovers(prefix)
    assert shm.cleanup_blocks(prefix) == 0
