"""Backend cross-validation: the acceptance gate of the process runtime.

For every scheme, running the full simulation on the virtual backend
(thread-per-rank) and the process backend (process-per-rank) must give
bitwise-identical particle states, virtual times, and interaction
counters.  Nothing about moving ranks into OS processes may perturb a
single bit of the physics or the virtual accounting.
"""

import numpy as np
import pytest

from repro import ParallelBarnesHut, SchemeConfig, gaussian_blobs, plummer
from repro.machine.profiles import NCUBE2

SCHEMES = ("spsa", "spda", "dpda")


def _instances():
    centers = np.array([[25.0, 25.0, 25.0], [75.0, 25.0, 60.0],
                        [40.0, 80.0, 30.0], [70.0, 70.0, 75.0]])
    return {
        "plummer": plummer(240, seed=5),
        "gaussian": gaussian_blobs(240, centers, sigma=6.0, seed=9),
    }


def _run(particles, scheme, backend, steps=2):
    cfg = SchemeConfig(scheme=scheme, alpha=0.67, mode="force")
    ps = particles.subset(np.arange(particles.n))   # private copy
    sim = ParallelBarnesHut(ps, cfg, p=4, profile=NCUBE2,
                            backend=backend)
    return sim.run(steps=steps, dt=1e-3)


@pytest.mark.parametrize("inst", ["plummer", "gaussian"])
@pytest.mark.parametrize("scheme", SCHEMES)
def test_backends_bitwise_identical(scheme, inst):
    particles = _instances()[inst]
    v = _run(particles, scheme, "virtual")
    p = _run(particles, scheme, "process")

    # Particle state: exact bit equality, not tolerance.
    assert np.array_equal(v.values, p.values)
    assert np.array_equal(v.positions, p.positions)
    assert np.array_equal(v.velocities, p.velocities)

    # Virtual clocks.
    assert v.parallel_time == p.parallel_time
    for rv, rp in zip(v.run.ranks, p.run.ranks):
        assert rv.time == rp.time
        assert rv.timings == rp.timings
        assert rv.stats == rp.stats

    # Interaction counters, per rank and per step.
    for sv, sp in zip(v.steps, p.steps):
        for rv, rp in zip(sv, sp):
            assert rv.n_local == rp.n_local
            assert rv.moved_in == rp.moved_in
            assert rv.virtual_seconds == rp.virtual_seconds
            fv, fp = rv.force, rp.force
            assert fv.mac_tests == fp.mac_tests
            assert fv.cluster_interactions == fp.cluster_interactions
            assert fv.p2p_interactions == fp.p2p_interactions
            assert fv.records_shipped == fp.records_shipped
            assert fv.records_served == fp.records_served


def test_potential_mode_cross_validates():
    particles = _instances()["plummer"]
    cfg = SchemeConfig(scheme="dpda", alpha=0.67, mode="potential")
    res = {}
    for backend in ("virtual", "process"):
        ps = particles.subset(np.arange(particles.n))
        res[backend] = ParallelBarnesHut(
            ps, cfg, p=4, profile=NCUBE2, backend=backend).run(steps=1)
    assert np.array_equal(res["virtual"].values, res["process"].values)
    assert res["virtual"].parallel_time == res["process"].parallel_time


def test_process_backend_checkpointing_is_observation_neutral():
    """Checkpointing on the process backend must not perturb one bit of
    the physics or the virtual accounting (it is pure observation)."""
    particles = _instances()["plummer"]
    plain = _run(particles, "spda", "process")
    ps = particles.subset(np.arange(particles.n))
    ckpt = ParallelBarnesHut(ps, SchemeConfig(scheme="spda", alpha=0.67,
                                              mode="force"),
                             p=4, profile=NCUBE2, backend="process",
                             checkpoint_every=1).run(steps=2, dt=1e-3)
    assert np.array_equal(plain.positions, ckpt.positions)
    assert np.array_equal(plain.velocities, ckpt.velocities)
    assert plain.parallel_time == ckpt.parallel_time
    assert ckpt.recoveries == 0
    # recovery.* counters exist and read zero on a clean run.
    snap = ckpt.metrics_summary().snapshot()
    assert snap["recovery.restarts"]["value"] == 0
    assert snap["recovery.rollback_steps"]["value"] == 0


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        ParallelBarnesHut(plummer(64, seed=1),
                          SchemeConfig(scheme="spda"), p=2,
                          backend="mpi")
