"""Wall-clock observability: neutrality, dual-clock traces, telemetry.

The acceptance bar of the observability work: with wall tracing and
live telemetry fully enabled, a process-backend run must stay
**bitwise identical** — positions, velocities, values, virtual clocks,
comm accounting — to the uninstrumented run, while the trace gains a
wall track per rank and the event stream records the run's life cycle.
A SIGKILL-recovered traced run must keep its *virtual* tracks identical
to the uninterrupted run's; only the wall tracks may differ (they
carry the ``recovery:restore`` marker).
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro import ParallelBarnesHut, SchemeConfig, plummer
from repro.analysis import (
    format_skew_report,
    per_rank_wall_seconds,
    phase_skew,
    wall_load_imbalance,
)
from repro.machine.faults import FaultPlan
from repro.machine.profiles import NCUBE2
from repro.machine.trace import PhaseSpan, Trace
from repro.runtime.supervision import (
    PHASE_NAMES,
    HeartbeatBoard,
    phase_id,
    phase_name,
)
from repro.runtime.telemetry import (
    EventLog,
    RankTelemetry,
    TelemetrySampler,
    format_live_line,
)

P = 4
STEPS = 2


def _run(scheme, *, trace=False, wall_trace=None, events_out=None,
         ckpt_dir=None, plan=None, engine_options=None):
    particles = plummer(240, seed=5)
    cfg = SchemeConfig(scheme=scheme, alpha=0.67, mode="force")
    sim = ParallelBarnesHut(
        particles, cfg, p=P, profile=NCUBE2, backend="process",
        fault_plan=plan, checkpoint_dir=ckpt_dir,
        checkpoint_every=1 if (ckpt_dir or plan) else None,
        restart_backoff=0.01, engine_options=engine_options,
        events_out=events_out)
    return sim.run(steps=STEPS, dt=1e-3, trace=trace,
                   wall_trace=wall_trace)


def assert_bitwise_equal(a, b):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.velocities, b.velocities)
    assert np.array_equal(a.values, b.values)
    assert a.parallel_time == b.parallel_time
    for ra, rb in zip(a.run.ranks, b.run.ranks):
        assert ra.time == rb.time
        assert ra.timings == rb.timings
        assert ra.stats == rb.stats


# ----------------------------------------------------------- neutrality

@pytest.mark.parametrize("scheme", ["spsa", "spda", "dpda"])
def test_instrumentation_is_bitwise_neutral(scheme, tmp_path):
    """Wall tracing + event stream + fast telemetry sampling must not
    perturb a single bit of the simulation's observable state."""
    plain = _run(scheme)
    events = tmp_path / "events.jsonl"
    instrumented = _run(
        scheme, trace=True, wall_trace=True, events_out=str(events),
        engine_options={"telemetry_interval": 0.02})
    assert_bitwise_equal(plain, instrumented)
    assert instrumented.trace is not None
    assert instrumented.trace.has_wall
    assert events.exists()


# --------------------------------------------------------- wall tracks

def test_wall_tracks_cover_every_rank():
    result = _run("spda", trace=True, wall_trace=True)
    trace = result.trace
    assert len(trace.wall_phases) == P
    for rank, spans in enumerate(trace.wall_phases):
        assert spans, f"rank {rank} has no wall spans"
        assert all(s.rank == rank for s in spans)
        assert all(s.t1 >= s.t0 >= 0.0 for s in spans)
    cats = {s.cat for s in trace.all_wall_phases()}
    assert "wall:phase" in cats
    assert "wall:step" in cats

    chrome = trace.to_chrome()
    pids = {e.get("pid") for e in chrome["traceEvents"]}
    assert pids == {0, 1}
    wall_threads = {
        e["tid"] for e in chrome["traceEvents"]
        if e.get("pid") == 1 and e.get("ph") == "M"
        and e.get("name") == "thread_name"}
    assert len(wall_threads) == P
    assert "wall_timebase" in chrome["otherData"]


def test_wall_trace_defaults_on_for_traced_process_runs():
    assert _run("spda", trace=True).trace.has_wall
    assert not _run("spda", trace=True, wall_trace=False).trace.has_wall


def test_wall_trace_requires_trace():
    particles = plummer(60, seed=5)
    sim = ParallelBarnesHut(
        particles, SchemeConfig(scheme="spda", alpha=0.67, mode="force"),
        p=2, profile=NCUBE2, backend="process")
    with pytest.raises(ValueError, match="requires trace"):
        sim.run(steps=1, dt=1e-3, trace=False, wall_trace=True)


# ------------------------------------------------ recovery continuity

def test_recovered_trace_virtual_tracks_identical(tmp_path):
    """SIGKILL rank 1 at step 1: the recovered run's *virtual* tracks
    must equal the uninterrupted checkpointed run's exactly; its wall
    track must carry the ``recovery:restore`` marker."""
    clean = _run("spda", trace=True, wall_trace=True,
                 ckpt_dir=tmp_path / "clean")
    hurt = _run("spda", trace=True, wall_trace=True,
                ckpt_dir=tmp_path / "crash",
                plan=FaultPlan(seed=7, kill={1: 1}))
    assert hurt.recoveries == 1
    assert_bitwise_equal(clean, hurt)

    tc, th = clean.trace, hurt.trace
    assert th.phases == tc.phases
    assert th.sends == tc.sends
    assert th.recvs == tc.recvs
    assert th.final_times == tc.final_times

    def virtual_events(trace):
        return [e for e in trace.to_chrome()["traceEvents"]
                if e.get("pid") == 0]

    assert virtual_events(th) == virtual_events(tc)

    wall_names = {(s.name, s.cat) for s in th.all_wall_phases()}
    assert ("recovery:restore", "wall:recovery") in wall_names
    assert any(cat == "wall:checkpoint" for _, cat in wall_names)
    clean_names = {(s.name, s.cat) for s in tc.all_wall_phases()}
    assert ("recovery:restore", "wall:recovery") not in clean_names


# ------------------------------------------------------- event stream

def test_event_stream_schema(tmp_path):
    events = tmp_path / "events.jsonl"
    _run("spda", events_out=str(events), ckpt_dir=tmp_path / "ckpt",
         engine_options={"telemetry_interval": 0.01})
    lines = [json.loads(line)
             for line in events.read_text().splitlines() if line]
    assert lines, "no events written"
    for rec in lines:
        assert isinstance(rec["t"], float) and rec["t"] >= 0.0
        assert isinstance(rec["event"], str)
    assert lines[0]["event"] == "run_start"
    assert lines[0]["backend"] == "process"
    assert lines[0]["p"] == P and lines[0]["steps"] == STEPS
    assert lines[-1]["event"] == "run_end"
    assert lines[-1]["ok"] is True
    assert lines[-1]["recoveries"] == 0
    assert lines[-1]["wall_seconds"] > 0.0
    # Timestamps are monotone non-decreasing down the file.
    ts = [rec["t"] for rec in lines]
    assert ts == sorted(ts)
    steps = [rec for rec in lines if rec["event"] == "step"]
    assert steps, "telemetry sampling produced no step events"
    for rec in steps:
        assert 0 <= rec["step"] < STEPS
        assert len(rec["ranks"]) == P
        for row in rec["ranks"]:
            assert set(row) == {
                "rank", "step", "phase", "wall_in_phase", "bytes_sent",
                "bytes_recv", "peak_rss", "steps_per_s", "ckpt_step"}
    ckpts = [rec for rec in lines if rec["event"] == "checkpoint"]
    assert all(rec["step"] >= 0 for rec in ckpts)


def test_worker_lost_and_recovery_events(tmp_path):
    events = tmp_path / "events.jsonl"
    _run("spda", events_out=str(events), ckpt_dir=tmp_path / "ckpt",
         plan=FaultPlan(seed=7, kill={1: 1}))
    lines = [json.loads(line)
             for line in events.read_text().splitlines() if line]
    kinds = [rec["event"] for rec in lines]
    assert "worker_lost" in kinds
    assert "recovery" in kinds
    lost = next(rec for rec in lines if rec["event"] == "worker_lost")
    assert isinstance(rec_detail := lost["detail"], list) and rec_detail
    recovery = next(rec for rec in lines if rec["event"] == "recovery")
    assert recovery["restart"] == 1
    assert recovery["resume_step"] >= 0
    assert lines[-1]["event"] == "run_end"
    assert lines[-1]["recoveries"] == 1


def test_events_require_process_backend():
    particles = plummer(60, seed=5)
    cfg = SchemeConfig(scheme="spda", alpha=0.67, mode="force")
    with pytest.raises(ValueError, match="backend='process'"):
        ParallelBarnesHut(particles, cfg, p=2, profile=NCUBE2,
                          backend="virtual", events_out="x.jsonl")


# -------------------------------------------------- board + telemetry

def test_phase_name_table_round_trips():
    for name in PHASE_NAMES:
        assert phase_name(phase_id(name)) == name
    assert phase_id(None) == -1
    assert phase_name(-1) is None
    assert phase_id("no such phase") == 0          # "other" bucket
    assert phase_name(999) is None                 # out of table range


def test_board_telemetry_round_trip():
    ctx = multiprocessing.get_context("spawn")
    board = HeartbeatBoard(ctx, 2)
    board.note_phase(0, "force computation")
    board.note_bytes(0, 123, 456)
    board.note_rss(0, 7 << 20)
    board.note_step(0, 1)
    board.note_checkpoint(0, 1)
    assert board.current_phase(0) == "force computation"
    assert board.current_phase(1) is None
    assert board.wall_in_phase(0) >= 0.0
    assert board.bytes_sent(0) == 123
    assert board.bytes_received(0) == 456
    assert board.peak_rss(0) == 7 << 20
    assert board.last_checkpoint_step(0) == 1

    sampler = TelemetrySampler(board, 2)
    rows = sampler.sample()
    assert [row.rank for row in rows] == [0, 1]
    assert rows[0].phase == "force computation"
    assert rows[0].bytes_sent == 123
    assert rows[0].ckpt_step == 1
    assert rows[1].step == -1 and rows[1].phase is None

    line = format_live_line(rows, total_steps=5)
    assert "r0:force computation" in line
    assert "sent 123B" in line


def test_event_log_writes_sorted_flushed_lines(tmp_path):
    path = tmp_path / "ev.jsonl"
    with EventLog(str(path)) as elog:
        elog.emit("run_start", p=2, n=10)
        elog.emit_step(0, [RankTelemetry(
            rank=0, step=0, phase="setup", wall_in_phase=0.1,
            bytes_sent=1, bytes_recv=2, peak_rss=3, steps_per_s=0.0)])
        raw = path.read_text().splitlines()
        assert len(raw) == 2          # flushed before close
    rec = json.loads(raw[0])
    # Keys are emitted sorted, so the stream diffs cleanly across runs.
    assert raw[0].index('"event"') < raw[0].index('"n"') \
        < raw[0].index('"p"') < raw[0].index('"t"')
    assert rec["event"] == "run_start"
    step = json.loads(raw[1])
    assert step["ranks"][0]["phase"] == "setup"


# --------------------------------------------------------- skew report

def _synthetic_trace():
    def span(rank, name, t0, t1, cat, depth=1):
        return PhaseSpan(rank=rank, name=name, t0=t0, t1=t1,
                         depth=depth, cat=cat)

    # Virtual: force dominates (80/20); wall: even split (50/50).
    phases = [[span(0, "force computation", 0.0, 8.0, "phase"),
               span(0, "tree merging", 8.0, 10.0, "phase")],
              [span(1, "force computation", 0.0, 8.0, "phase"),
               span(1, "tree merging", 8.0, 10.0, "phase")]]
    wall = [[span(0, "force computation", 0.0, 1.0, "wall:phase"),
             span(0, "tree merging", 1.0, 2.0, "wall:phase"),
             span(0, "step 0", 0.0, 2.0, "wall:step", depth=0)],
            [span(1, "force computation", 0.0, 3.0, "wall:phase"),
             span(1, "tree merging", 3.0, 6.0, "wall:phase")]]
    return Trace(size=2, phases=phases, sends=[[], []], recvs=[[], []],
                 final_times=[10.0, 10.0], wall_phases=wall)


def test_phase_skew_compares_shares():
    rows = phase_skew(_synthetic_trace())
    by_name = {r.name: r for r in rows}
    force = by_name["force computation"]
    assert force.virtual_share == pytest.approx(0.8)
    assert force.wall_share == pytest.approx(0.5)
    assert force.skew == pytest.approx(-0.3)       # over-modelled
    merge = by_name["tree merging"]
    assert merge.skew == pytest.approx(+0.3)       # under-modelled
    # Sorted by |skew| descending; wall:step spans never counted.
    assert abs(rows[0].skew) >= abs(rows[-1].skew)
    assert sum(r.wall_seconds for r in rows) == pytest.approx(8.0)


def test_wall_load_imbalance_and_per_rank_seconds():
    trace = _synthetic_trace()
    assert per_rank_wall_seconds(trace) == pytest.approx([2.0, 6.0])
    assert wall_load_imbalance(trace) == pytest.approx(6.0 / 4.0)
    assert wall_load_imbalance(trace, "force computation") \
        == pytest.approx(3.0 / 2.0)
    report = format_skew_report(trace)
    assert "force computation" in report
    assert "wall load imbalance" in report


def test_skew_requires_wall_tracks():
    trace = Trace(size=1, phases=[[]], sends=[[]], recvs=[[]])
    with pytest.raises(ValueError, match="no wall tracks"):
        phase_skew(trace)
    with pytest.raises(ValueError, match="no wall tracks"):
        wall_load_imbalance(trace)


# ------------------------------------------- metrics determinism (CLI)

def test_metrics_snapshot_is_deterministically_ordered():
    result = _run("spda")
    snap = result.metrics_summary().snapshot()
    assert list(snap) == sorted(snap)
    # The full JSON document is byte-stable under key sorting — what
    # --metrics-out writes.
    dumped = json.dumps(snap, indent=2, sort_keys=True)
    assert dumped == json.dumps(json.loads(dumped), indent=2,
                                sort_keys=True)
