"""Crash-tolerant process runtime: supervision and rollback recovery.

The acceptance bar of the crash-recovery work: a run whose worker is
SIGKILL'd mid-flight must recover automatically from the latest common
durable checkpoint and finish **bitwise identical** — positions,
velocities, virtual clocks, per-rank communication accounting — to a
run that was never interrupted.  Around that sit the supporting
guarantees: stalled (livelocked) workers are convicted by heartbeat,
restart budgets bound the respawn loop, killed workers leak nothing
into ``/dev/shm``, and watchdog errors carry per-rank diagnostics.
"""

import os

import numpy as np
import pytest

from repro import ParallelBarnesHut, SchemeConfig, plummer
from repro.machine.faults import FaultPlan, RankCrashedError
from repro.machine.profiles import NCUBE2
from repro.runtime.process_engine import WorkerLostError
from repro.runtime.supervision import RestartPolicy, classify_exit

P = 4
STEPS = 2


def _shm_names():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro-")}
    except OSError:  # pragma: no cover - non-POSIX
        return set()


def _run(scheme, ckpt_dir=None, plan=None, steps=STEPS, backend="process",
         **kw):
    particles = plummer(240, seed=5)
    cfg = SchemeConfig(scheme=scheme, alpha=0.67, mode="force")
    sim = ParallelBarnesHut(particles, cfg, p=P, profile=NCUBE2,
                            backend=backend, fault_plan=plan,
                            checkpoint_dir=ckpt_dir,
                            checkpoint_every=1 if (ckpt_dir or plan) else None,
                            restart_backoff=0.01, **kw)
    return sim.run(steps=steps, dt=1e-3)


def assert_bitwise_equal(a, b):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.velocities, b.velocities)
    assert np.array_equal(a.values, b.values)
    assert a.parallel_time == b.parallel_time
    for ra, rb in zip(a.run.ranks, b.run.ranks):
        assert ra.time == rb.time
        assert ra.timings == rb.timings
        assert ra.stats == rb.stats


# ------------------------------------------------------- rollback recovery

@pytest.mark.parametrize("scheme", ["spsa", "spda", "dpda"])
def test_sigkill_recovery_is_bitwise_identical(scheme, tmp_path):
    """SIGKILL rank 1 at the top of step 1: the run self-heals from the
    durable step-1 boundary and matches the uninterrupted run exactly."""
    baseline = _run(scheme)
    hurt = _run(scheme, ckpt_dir=tmp_path / scheme,
                plan=FaultPlan(seed=7, kill={1: 1}))
    assert hurt.recoveries == 1
    assert_bitwise_equal(baseline, hurt)
    snap = hurt.metrics_summary().snapshot()
    assert snap["recovery.restarts"]["value"] == 1
    assert snap["recovery.wall_seconds"]["count"] == 1
    assert snap["recovery.quiesce_seconds"]["count"] == 1


def test_sigkill_recovery_with_block_timesteps(tmp_path):
    """Crash recovery must restore the block-timestep bin state (rungs
    and stored accelerations) from the checkpoint: a SIGKILL'd block
    run finishes bitwise identical to an uninterrupted one, which only
    holds if the recovered ranks re-enter the exact same substep
    schedule."""
    def _block_run(plan=None, ckpt_dir=None):
        particles = plummer(240, seed=5)
        cfg = SchemeConfig(scheme="dpda", alpha=0.8, mode="force",
                           softening=0.05, integrator="kdk",
                           timestep="block", max_rungs=3, dt_eta=0.3)
        sim = ParallelBarnesHut(
            particles, cfg, p=P, profile=NCUBE2, backend="process",
            fault_plan=plan, checkpoint_dir=ckpt_dir,
            checkpoint_every=1 if (ckpt_dir or plan) else None,
            restart_backoff=0.01)
        return sim.run(steps=3, dt=5e-3)

    baseline = _block_run()
    hurt = _block_run(plan=FaultPlan(seed=7, kill={1: 2}),
                      ckpt_dir=tmp_path / "block")
    assert hurt.recoveries == 1
    assert_bitwise_equal(baseline, hurt)


def test_stalled_heartbeat_convicted_and_recovered(tmp_path):
    """A livelocked worker (heartbeat silenced, process alive) must be
    convicted by the heartbeat timeout and the run recovered."""
    baseline = _run("spda")
    hurt = _run("spda", ckpt_dir=tmp_path / "stall",
                plan=FaultPlan(seed=7, stall_heartbeat={2: 1}),
                engine_options={"heartbeat_timeout": 1.5,
                                "heartbeat_interval": 0.1})
    assert hurt.recoveries == 1
    assert_bitwise_equal(baseline, hurt)


def test_virtual_crash_recovers_on_process_backend(tmp_path):
    """The virtual-clock crash model (RankCrashedError inside a worker)
    keeps working across OS process boundaries."""
    baseline = _run("spda")
    hurt = _run("spda", ckpt_dir=tmp_path / "crash",
                plan=FaultPlan(seed=7, crash={1: 1e-9}))
    assert hurt.recoveries >= 1
    assert_bitwise_equal(baseline, hurt)


def test_restart_budget_bounds_recovery(tmp_path):
    """max_restarts=0 means the first worker loss is terminal, and the
    raised error carries the per-rank post-mortem."""
    with pytest.raises(WorkerLostError) as ei:
        _run("spda", ckpt_dir=tmp_path / "budget",
             plan=FaultPlan(seed=7, kill={1: 1}), max_restarts=0)
    err = ei.value
    assert err.rank == 1
    assert err.kind == "killed"
    assert "rank 1" in str(err)
    assert "SIGKILL" in str(err)
    # Diagnostics cover every rank and identify the dead one.
    assert err.diagnostics is not None
    assert sorted(d.rank for d in err.diagnostics) == list(range(P))
    dead = next(d for d in err.diagnostics if d.rank == 1)
    assert not dead.alive and dead.exitcode == -9
    assert err.quiesce_seconds is not None and err.quiesce_seconds >= 0.0


def test_killed_worker_leaks_no_shm(tmp_path):
    """No /dev/shm blocks may outlive a run that lost a worker —
    neither on the recovery path nor on the terminal-failure path."""
    before = _shm_names()
    res = _run("dpda", ckpt_dir=tmp_path / "leak",
               plan=FaultPlan(seed=7, kill={1: 1}))
    assert res.recoveries == 1
    assert _shm_names() == before
    with pytest.raises(WorkerLostError):
        _run("dpda", ckpt_dir=tmp_path / "leak2",
             plan=FaultPlan(seed=7, kill={2: 1}), max_restarts=0)
    assert _shm_names() == before


def test_rollback_metrics_account_lost_progress(tmp_path):
    """Killing at step 1 with the step-1 boundary already durable means
    zero steps of progress are re-executed; the counters must say so."""
    res = _run("spda", ckpt_dir=tmp_path / "metrics",
               plan=FaultPlan(seed=7, kill={1: 1}))
    snap = res.metrics_summary().snapshot()
    assert snap["recovery.restarts"]["value"] == 1
    assert snap["recovery.rollback_steps"]["value"] == 0


def test_process_faults_rejected_on_virtual_backend():
    with pytest.raises(ValueError, match="process"):
        _run("spda", plan=FaultPlan(seed=7, kill={1: 1}),
             backend="virtual")


# ----------------------------------------------------------- /dev/shm sweep

def test_crash_sweep_reclaims_registered_prefix():
    shm = pytest.importorskip("multiprocessing.shared_memory")
    from repro.runtime import shm as shm_codec

    block = shm.SharedMemory(name="repro-sweeptest-0", create=True, size=64)
    block.close()
    try:
        shm_codec.register_prefix("repro-sweeptest-")
        # The atexit hook body: sweeps every registered prefix.
        assert shm_codec._sweep_registered() >= 1
        assert "repro-sweeptest-0" not in _shm_names()
    finally:
        shm_codec.release_prefix("repro-sweeptest-")
        try:
            leftover = shm.SharedMemory(name="repro-sweeptest-0")
            leftover.close()
            leftover.unlink()
        except FileNotFoundError:
            pass
    # Released prefixes are not swept again.
    assert shm_codec._sweep_registered() == 0


# ------------------------------------------------------------- small units

def test_classify_exit():
    assert classify_exit(None) == "still running"
    assert classify_exit(0) == "exited cleanly"
    assert classify_exit(-9) == "killed by SIGKILL (exit -9)"
    assert classify_exit(-15) == "killed by SIGTERM (exit -15)"
    assert classify_exit(3) == "exited with status 3"


def test_restart_policy_backoff():
    pol = RestartPolicy(max_restarts=5, backoff_seconds=0.25,
                        factor=2.0, cap=1.0)
    assert pol.delay(0) == 0.25
    assert pol.delay(1) == 0.5
    assert pol.delay(2) == 1.0
    assert pol.delay(10) == 1.0   # capped
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=-1)
    with pytest.raises(ValueError):
        RestartPolicy(factor=0.5)
