"""Transport parity: the same program over LocalTransport (virtual
backend) and ProcessTransport (process backend) must produce identical
results AND identical virtual communication charges."""

import numpy as np
import pytest

from repro.machine.engine import Engine
from repro.machine.faults import FaultPlan
from repro.machine.profiles import NCUBE2, ZERO_COST
from repro.runtime import ProcessEngine


def run_both(size, main, *args, profile=NCUBE2, **engine_kw):
    v = Engine(size, profile, **engine_kw).run(main, *args)
    p = ProcessEngine(size, profile, **engine_kw).run(main, *args)
    return v, p


def assert_reports_match(v, p, values=True):
    if values:
        assert v.values == p.values
    for rv, rp in zip(v.ranks, p.ranks):
        assert rv.time == rp.time, f"rank {rv.rank} virtual clock differs"
        assert rv.stats == rp.stats, f"rank {rv.rank} comm charges differ"
        assert rv.timings == rp.timings
    assert v.parallel_time == p.parallel_time


def _bcast_prog(comm):
    rng = np.random.default_rng(11)
    payload = rng.standard_normal(3000) if comm.rank == 0 else None
    out = comm.bcast(payload, root=0)
    return float(out.sum()), out.tobytes()


def _allreduce_prog(comm):
    rng = np.random.default_rng(100 + comm.rank)
    local = float(rng.standard_normal(50).sum())
    s = comm.allreduce(local, lambda a, b: a + b)
    m = comm.allreduce(local, max)
    return s, m


def _alltoallv_prog(comm):
    # Variable-size exchange: rank r sends (r + dst + 1) elements to dst,
    # so every pairwise message has a different wire size.
    rng = np.random.default_rng(7 * (comm.rank + 1))
    outgoing = [rng.standard_normal(comm.rank + dst + 1)
                for dst in range(comm.size)]
    incoming = comm.alltoall(outgoing)
    return [x.tobytes() for x in incoming]


@pytest.mark.parametrize("size", [2, 4])
@pytest.mark.parametrize(
    "prog", [_bcast_prog, _allreduce_prog, _alltoallv_prog],
    ids=["bcast", "allreduce", "alltoallv"])
def test_collectives_identical_across_transports(size, prog):
    v, p = run_both(size, prog)
    assert_reports_match(v, p)


def test_point_to_point_ring_identical():
    def ring(comm):
        rng = np.random.default_rng(comm.rank)
        data = rng.standard_normal(comm.rank * 500 + 10)
        comm.send(data, dst=(comm.rank + 1) % comm.size, tag=5)
        got = comm.recv(src=(comm.rank - 1) % comm.size, tag=5)
        return got.tobytes()

    v, p = run_both(4, ring)
    assert_reports_match(v, p)


def test_large_payloads_cross_shm_path_bitwise():
    # 40 KB messages: the process transport routes these through shared
    # memory; the charge model and the bytes must still match exactly.
    def big(comm):
        rng = np.random.default_rng(comm.rank + 42)
        data = rng.standard_normal(5000)
        return comm.alltoall([data * (d + 1) for d in range(comm.size)])

    v = Engine(4, NCUBE2).run(big)
    p = ProcessEngine(4, NCUBE2).run(big)
    for rv, rp in zip(v.values, p.values):
        assert all(a.tobytes() == b.tobytes() for a, b in zip(rv, rp))
    assert_reports_match(v, p, values=False)


def test_fault_injection_and_reliable_layer_match():
    # Fault decisions are pure functions of (seed, src, dst, tag, count):
    # the per-worker injectors of the process backend make exactly the
    # decisions the shared injector of the virtual backend makes.
    plan = FaultPlan(seed=13, drop_rate=0.2, dup_rate=0.1)

    def chatter(comm):
        total = 0.0
        for round_ in range(4):
            comm.send(float(comm.rank * 10 + round_),
                      dst=(comm.rank + 1) % comm.size, tag=round_)
            total += comm.recv(src=(comm.rank - 1) % comm.size,
                               tag=round_)
        return total

    v, p = run_both(4, chatter, fault_plan=plan, reliable=True)
    assert_reports_match(v, p)
    assert v.total_retransmissions == p.total_retransmissions
    assert v.total_drops_injected > 0   # the plan actually fired
    assert v.fault_summary() == p.fault_summary()


def test_zero_cost_profile_matches_too():
    v, p = run_both(2, _allreduce_prog, profile=ZERO_COST)
    assert_reports_match(v, p)
    assert v.parallel_time == 0.0
