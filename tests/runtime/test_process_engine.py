"""ProcessEngine: RunReport contract, failure propagation, watchdog."""

import os
import time

import numpy as np
import pytest

from repro.machine.comm import DeadlockError
from repro.machine.engine import Engine
from repro.machine.faults import FaultPlan, RankCrashedError
from repro.machine.profiles import NCUBE2
from repro.runtime import (
    ProcessEngine,
    ProcessWatchdogError,
    RemoteRankError,
)


def _work(comm, n):
    comm.compute(n * 10.0, phase="work")
    return comm.allreduce(comm.rank, lambda a, b: a + b)


def test_run_report_contract():
    report = ProcessEngine(4, NCUBE2).run(_work, 100)
    assert report.size == 4
    assert report.values == [6, 6, 6, 6]
    assert report.parallel_time > 0
    for r, res in enumerate(report.ranks):
        assert res.rank == r
        assert res.error is None
        assert res.timings.get("work") > 0
        assert res.stats.messages_sent > 0
        assert res.metrics is not None
    assert report.metrics_summary().snapshot()
    assert report.load_imbalance() >= 1.0


def _per_rank(comm, base, bonus):
    return base + bonus * comm.rank


def test_rank_args_forwarded():
    report = ProcessEngine(2).run(
        _per_rank, 100, rank_args=[(1,), (2,)])
    assert report.values == [100, 102]


def test_rank_args_length_validated():
    with pytest.raises(ValueError, match="rank_args"):
        ProcessEngine(3).run(_per_rank, 0, rank_args=[(1,)])


def _boom(comm):
    if comm.rank == 1:
        raise ValueError("deliberate failure on rank 1")
    comm.send(comm.rank, dst=(comm.rank + 1) % comm.size, tag=1)
    return comm.recv(src=(comm.rank - 1) % comm.size, tag=1)


def test_remote_exception_rank_tagged_with_traceback():
    with pytest.raises(RemoteRankError) as ei:
        ProcessEngine(3, recv_timeout=10.0).run(_boom)
    err = ei.value
    assert err.rank == 1
    assert "ValueError: deliberate failure on rank 1" in str(err)
    assert "traceback from rank 1" in str(err)
    assert "_boom" in err.remote_traceback


def test_failed_run_attaches_partial_report():
    with pytest.raises(RemoteRankError) as ei:
        ProcessEngine(3, recv_timeout=10.0).run(_boom)
    partial = ei.value.partial_report
    assert partial is not None
    assert partial.size == 3
    assert partial.ranks[1].value is None
    assert partial.ranks[1].error.startswith("ValueError")
    # Every rank appears, even ones terminated before reporting.
    assert all(res.error is None or res.value is None
               for res in partial.ranks)


def _hang(comm):
    if comm.rank == 0:
        comm.send(b"x" * 64, dst=1, tag=3)
        return comm.recv(src=1, tag=99)   # never sent
    return comm.recv(src=0, tag=3)


def test_deadlock_detected_as_typed_error():
    with pytest.raises(DeadlockError) as ei:
        ProcessEngine(2, recv_timeout=2.0).run(_hang)
    err = ei.value
    assert err.rank == 0
    assert (err.src, err.tag) == (1, 99)
    assert "likely deadlock" in str(err)


def _crashy(comm):
    comm.compute(1e9)
    return comm.rank


def test_planned_crash_keeps_type_and_time():
    plan = FaultPlan(seed=1, crash={1: 0.05})
    with pytest.raises(RankCrashedError) as ei:
        ProcessEngine(2, NCUBE2, recv_timeout=10.0,
                      fault_plan=plan).run(_crashy)
    assert ei.value.rank == 1
    assert ei.value.at_time == 0.05


def _sleepy(comm):
    if comm.rank == 1:
        time.sleep(60.0)
    return comm.rank


def test_wall_clock_watchdog_fires():
    eng = ProcessEngine(2, recv_timeout=None, wall_timeout=2.0)
    t0 = time.monotonic()
    with pytest.raises(ProcessWatchdogError) as ei:
        eng.run(_sleepy)
    assert time.monotonic() - t0 < 30.0
    assert ei.value.missing == [1]
    assert "rank 1" in str(ei.value)


def _exiter(comm):
    if comm.rank == 1:
        os._exit(17)    # dies without reporting anything
    return comm.recv(src=1, tag=0)


def test_silently_dead_worker_detected():
    t0 = time.monotonic()
    with pytest.raises(ProcessWatchdogError) as ei:
        ProcessEngine(2, recv_timeout=300.0).run(_exiter)
    # Detection must come from the liveness check, not the full timeout.
    assert time.monotonic() - t0 < 60.0
    assert 1 in ei.value.missing


def _traced(comm):
    with comm.phase("p1"):
        comm.compute(1000.0)
    comm.send(np.arange(10), dst=(comm.rank + 1) % comm.size, tag=2)
    got = comm.recv(src=(comm.rank - 1) % comm.size, tag=2)
    return int(got.sum())


def test_trace_merge_matches_virtual_backend():
    v = Engine(2, NCUBE2).run(_traced, tracer=True)
    p = ProcessEngine(2, NCUBE2).run(_traced, tracer=True)
    assert p.trace is not None
    assert p.trace.size == 2
    assert v.trace.parallel_time == p.trace.parallel_time
    for r in range(2):
        assert [(s.name, s.t0, s.t1) for s in v.trace.phases[r]] == \
               [(s.name, s.t0, s.t1) for s in p.trace.phases[r]]
        assert [(s.dst, s.tag, s.nbytes, s.t_begin, s.t_end, s.arrival)
                for s in v.trace.sends[r]] == \
               [(s.dst, s.tag, s.nbytes, s.t_begin, s.t_end, s.arrival)
                for s in p.trace.sends[r]]
        assert [(e.src, e.tag, e.arrival, e.t_end, e.waited)
                for e in v.trace.recvs[r]] == \
               [(e.src, e.tag, e.arrival, e.t_end, e.waited)
                for e in p.trace.recvs[r]]
    # Sends and receives stitch by globally unique seq on both backends.
    assert set(p.trace.sends_by_seq()) >= {e.seq for e in p.trace.all_recvs()}


def test_no_shared_memory_leaks_after_runs():
    before = {f for f in os.listdir("/dev/shm") if f.startswith("repro")}
    ProcessEngine(2, NCUBE2).run(_traced)
    with pytest.raises(RemoteRankError):
        ProcessEngine(3, recv_timeout=10.0).run(_boom)
    after = {f for f in os.listdir("/dev/shm") if f.startswith("repro")}
    assert after <= before


def test_engine_size_validated():
    with pytest.raises(ValueError, match="positive"):
        ProcessEngine(0)
