"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "spda"
        assert args.machine == "ncube2"
        assert args.procs == 16

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "hashed"])


class TestCommands:
    def test_instances(self, capsys):
        assert main(["instances"]) == 0
        out = capsys.readouterr().out
        assert "g_160535" in out
        assert "s_10g_b" in out

    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "nCUBE2" in out and "CM5" in out and "T3E" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--instance", "g_5000", "--scale", "0.05",
            "--scheme", "dpda", "--procs", "4", "--machine", "zero",
            "--steps", "1", "--check",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "virtual parallel time" in out
        assert "force computation" in out
        assert "median force rel error" in out

    def test_run_potential_check(self, capsys):
        code = main([
            "run", "--instance", "p_2000", "--scale", "0.1",
            "--procs", "2", "--machine", "zero",
            "--mode", "potential", "--check",
        ])
        assert code == 0
        assert "fractional % error" in capsys.readouterr().out


class TestKernelCLI:
    def test_kernel_flag_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.kernels == "numpy"
        assert args.kernel_threads is None

    def test_trace_accepts_kernel_flags(self):
        args = build_parser().parse_args(
            ["trace", "--kernels", "auto", "--kernel-threads", "4"])
        assert args.kernels == "auto"
        assert args.kernel_threads == 4

    def test_bad_kernel_tier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernels", "cuda"])

    def test_run_with_kernel_tier(self, capsys):
        code = main([
            "run", "--instance", "g_5000", "--scale", "0.05",
            "--procs", "4", "--machine", "zero", "--steps", "1",
            "--kernels", "auto", "--kernel-threads", "2",
        ])
        assert code == 0
        assert "virtual parallel time" in capsys.readouterr().out


class TestRecoveryCLI:
    def test_run_accepts_recovery_flags(self, tmp_path):
        args = build_parser().parse_args([
            "run", "--checkpoint-dir", str(tmp_path / "ck"),
            "--resume", "--max-restarts", "5",
        ])
        assert args.checkpoint_dir.endswith("ck")
        assert args.resume is True
        assert args.max_restarts == 5

    def test_recovery_flag_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.max_restarts == 3

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        """A checkpointed run leaves a directory a second invocation can
        resume from — the host-restart half of crash tolerance."""
        ckdir = str(tmp_path / "ck")
        base = ["run", "--instance", "g_5000", "--scale", "0.05",
                "--scheme", "spda", "--procs", "4", "--machine", "zero",
                "--checkpoint-every", "1", "--checkpoint-dir", ckdir]
        assert main(base + ["--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "checkpoints:" in out

        assert main(base + ["--steps", "3", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "resumed from checkpointed step 2" in out


class TestTraceCLI:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scheme == "spda"
        assert args.out is None

    def test_run_accepts_trace_flags(self, tmp_path):
        args = build_parser().parse_args([
            "run", "--trace-out", str(tmp_path / "t.json"),
            "--metrics-out", str(tmp_path / "m.json"),
        ])
        assert args.trace_out.endswith("t.json")

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        import json
        tpath = tmp_path / "trace.json"
        mpath = tmp_path / "metrics.json"
        code = main([
            "run", "--instance", "g_5000", "--scale", "0.05",
            "--scheme", "dpda", "--procs", "4", "--machine", "ncube2",
            "--steps", "1", "--trace-out", str(tpath),
            "--metrics-out", str(mpath),
        ])
        assert code == 0
        doc = json.loads(tpath.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} >= {"X", "s", "f"}
        metrics = json.loads(mpath.read_text())
        assert "comm.msg_bytes" in metrics
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out

    def test_trace_command_report(self, tmp_path, capsys):
        import json
        tpath = tmp_path / "trace.json"
        code = main([
            "trace", "--instance", "g_5000", "--scale", "0.05",
            "--scheme", "dpda", "--procs", "4", "--machine", "ncube2",
            "--steps", "2", "--out", str(tpath),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "bytes matrix" in out or "src\\dst" in out
        assert "legend:" in out
        doc = json.loads(tpath.read_text())
        assert doc["otherData"]["ranks"] == 4
