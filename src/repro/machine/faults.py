"""Deterministic fault injection for the virtual machine.

The paper's machines (nCUBE2, CM5) are modelled as perfectly reliable;
this module lets a run declare, up front, exactly which imperfections the
virtual network and processors should exhibit:

* **message drop** — a transmission is charged to the sender but never
  deposited in the destination mailbox;
* **message duplication** — the network delivers a second copy of a
  packet (no extra sender charge: duplication happens in flight);
* **extra delay / jitter** — a deterministic extra latency is added to a
  message's virtual arrival time;
* **rank crash** — a rank's virtual clock trips a deadline and the rank
  dies at virtual time ``T`` (:class:`RankCrashedError`);
* **rank slowdown** — a rank's effective ``flops_per_second`` is divided
  by a factor, as if the node were thermally throttled or oversubscribed;
* **process kill** — on the process backend only, a rank worker
  SIGKILLs itself at the start of real step ``k`` (``kill``), modelling
  an OOM kill or node loss that the supervisor must recover from;
* **heartbeat stall** — on the process backend only, a rank worker
  stops heartbeating at step ``k`` and hangs (``stall_heartbeat``),
  modelling a livelocked or swapping node.

Every decision is a pure function of ``(plan.seed, src, dst, tag, n)``
where ``n`` is a per-channel transmission counter kept by the *sender's*
injector state.  Since each channel counter is touched only by its own
sender thread, the decisions are bit-reproducible across runs regardless
of real thread scheduling — the property all determinism tests pin.

Reliable delivery (:class:`ReliableConfig`) is the recovery half: with it
enabled, :meth:`Comm.send` retransmits dropped packets with exponential
backoff (each retry costs a full channel charge, and the accumulated
timeout waits push the message's virtual arrival time out), and the
destination mailbox suppresses duplicate copies by transmission id.  A
zero-fault run with the reliable layer enabled performs zero retries and
therefore charges exactly the same virtual times as a run without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from typing import Any


class RankCrashedError(RuntimeError):
    """A virtual rank died at its planned crash time."""

    def __init__(self, rank: int, at_time: float):
        self.rank = rank
        self.at_time = at_time
        super().__init__(
            f"rank {rank} crashed at virtual time {at_time:.6f}s"
        )


class ReliableDeliveryError(RuntimeError):
    """The retransmission budget was exhausted without a delivery."""


@dataclass(frozen=True)
class ReliableConfig:
    """Parameters of the ack/retransmit protocol (virtual-time units).

    ``timeout`` is the virtual time the sender waits before the first
    retransmission; each further retry multiplies it by ``backoff``.
    The waits accumulate into the message's arrival time (the sender's
    own clock is only charged the channel time of each transmission,
    modelling interrupt-driven retransmit hardware).
    """

    timeout: float = 1e-3
    backoff: float = 2.0
    max_retries: int = 16

    def __post_init__(self):
        if self.timeout < 0:
            raise ValueError("reliable timeout must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_retries < 1:
            raise ValueError("need at least one retry")


@dataclass
class FaultPlan:
    """Declarative, seeded description of every fault a run injects.

    Parameters
    ----------
    seed:
        Root of the decision hash; two runs with equal plans make
        identical per-message decisions.
    drop_rate, dup_rate, delay_rate:
        Per-transmission probabilities (applied only to matching tags).
    delay_seconds:
        Extra latency added to a delayed message's virtual arrival; the
        actual delay is jittered deterministically in
        ``[0.5, 1.5) * delay_seconds``.
    tags:
        Restrict drop/dup/delay to these message tags (``None`` = all).
    crash:
        ``rank -> virtual time`` at which that rank dies.
    slowdown:
        ``rank -> factor >= 1`` dividing that rank's effective
        ``flops_per_second``.
    kill:
        ``rank -> step`` at which that rank's *worker process* SIGKILLs
        itself (process backend only; the virtual backend rejects it).
    stall_heartbeat:
        ``rank -> step`` at which that rank's worker stops heartbeating
        and hangs (process backend only).
    duplicate_first:
        Optional ``(src, dst, tag)`` channel whose *first* transmission
        is duplicated exactly once — the deterministic "one duplicated
        message" scenario of the acceptance tests.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    tags: frozenset[int] | None = None
    crash: dict[int, float] = field(default_factory=dict)
    slowdown: dict[int, float] = field(default_factory=dict)
    duplicate_first: tuple[int, int, int] | None = None
    kill: dict[int, int] = field(default_factory=dict)
    stall_heartbeat: dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        for name in ("drop_rate", "dup_rate", "delay_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {v}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.tags is not None:
            self.tags = frozenset(int(t) for t in self.tags)
        self.crash = {int(r): float(t) for r, t in self.crash.items()}
        self.slowdown = {int(r): float(f)
                         for r, f in self.slowdown.items()}
        for r, t in self.crash.items():
            if t < 0:
                raise ValueError(f"crash time for rank {r} is negative")
        for r, f in self.slowdown.items():
            if f < 1.0:
                raise ValueError(
                    f"slowdown factor for rank {r} must be >= 1, got {f}"
                )
        if self.duplicate_first is not None:
            self.duplicate_first = tuple(
                int(x) for x in self.duplicate_first
            )
        self.kill = {int(r): int(s) for r, s in self.kill.items()}
        self.stall_heartbeat = {int(r): int(s)
                                for r, s in self.stall_heartbeat.items()}
        for name in ("kill", "stall_heartbeat"):
            for r, s in getattr(self, name).items():
                if s < 0:
                    raise ValueError(
                        f"{name} step for rank {r} is negative"
                    )

    # ------------------------------------------------------------- queries
    @property
    def any_message_faults(self) -> bool:
        return (self.drop_rate > 0 or self.dup_rate > 0
                or self.delay_rate > 0
                or self.duplicate_first is not None)

    @property
    def any_process_faults(self) -> bool:
        """True if the plan demands real OS-process actions (process
        backend only — the virtual machine cannot execute them)."""
        return bool(self.kill) or bool(self.stall_heartbeat)

    def matches_tag(self, tag: int) -> bool:
        return self.tags is None or tag in self.tags

    def without_crash(self, rank: int) -> "FaultPlan":
        """The plan after ``rank`` has been restarted (its crash spent)."""
        remaining = {r: t for r, t in self.crash.items() if r != rank}
        return replace(self, crash=remaining)

    def without_process_faults(self, rank: int) -> "FaultPlan":
        """The plan after ``rank``'s worker was respawned: its kill and
        heartbeat-stall actions are spent and must not fire again."""
        return replace(
            self,
            kill={r: s for r, s in self.kill.items() if r != rank},
            stall_heartbeat={r: s for r, s in self.stall_heartbeat.items()
                             if r != rank},
        )

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "dup_rate": self.dup_rate,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "tags": sorted(self.tags) if self.tags is not None else None,
            "crash": {str(r): t for r, t in self.crash.items()},
            "slowdown": {str(r): f for r, f in self.slowdown.items()},
            "duplicate_first": (list(self.duplicate_first)
                                if self.duplicate_first else None),
            "kill": {str(r): s for r, s in self.kill.items()},
            "stall_heartbeat": {str(r): s
                                for r, s in self.stall_heartbeat.items()},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        kw = dict(d)
        if kw.get("tags") is not None:
            kw["tags"] = frozenset(kw["tags"])
        if kw.get("duplicate_first") is not None:
            kw["duplicate_first"] = tuple(kw["duplicate_first"])
        return cls(**kw)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as f:
            return cls.from_json(f.read())


@dataclass(frozen=True)
class SendDecision:
    """The injector's verdict on one transmission attempt."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


_NO_FAULT = SendDecision()


def _unit_hash(seed: int, salt: str, src: int, dst: int, tag: int,
               n: int) -> float:
    """Uniform deviate in [0, 1) from a stable hash of the decision key."""
    key = f"{seed}:{salt}:{src}:{dst}:{tag}:{n}".encode()
    h = blake2b(key, digest_size=8).digest()
    return int.from_bytes(h, "big") / 2.0 ** 64


class FaultInjector:
    """Binds a :class:`FaultPlan` to one engine run.

    Per-channel transmission counters live here; each ``(src, dst, tag)``
    counter is only ever advanced by rank ``src``'s thread, so decision
    sequences are deterministic under any real-time interleaving.
    """

    def __init__(self, plan: FaultPlan, size: int):
        self.plan = plan
        self.size = size
        for r in (list(plan.crash) + list(plan.slowdown)
                  + list(plan.kill) + list(plan.stall_heartbeat)):
            if not 0 <= r < size:
                raise ValueError(
                    f"fault plan names rank {r}, machine has {size}"
                )
        self._counts: dict[tuple[int, int, int], int] = {}

    def decide(self, src: int, dst: int, tag: int) -> SendDecision:
        """Verdict for the next transmission on channel (src, dst, tag)."""
        plan = self.plan
        if not plan.any_message_faults:
            return _NO_FAULT
        key = (src, dst, tag)
        n = self._counts.get(key, 0)
        self._counts[key] = n + 1
        if not plan.matches_tag(tag):
            return _NO_FAULT
        drop = (plan.drop_rate > 0 and
                _unit_hash(plan.seed, "drop", src, dst, tag, n)
                < plan.drop_rate)
        dup = (plan.dup_rate > 0 and
               _unit_hash(plan.seed, "dup", src, dst, tag, n)
               < plan.dup_rate)
        if plan.duplicate_first == (src, dst, tag) and n == 0:
            dup = True
        delay = 0.0
        if (plan.delay_rate > 0 and plan.delay_seconds > 0 and
                _unit_hash(plan.seed, "delay", src, dst, tag, n)
                < plan.delay_rate):
            jitter = _unit_hash(plan.seed, "jitter", src, dst, tag, n)
            delay = plan.delay_seconds * (0.5 + jitter)
        if not (drop or dup or delay):
            return _NO_FAULT
        return SendDecision(drop=drop, duplicate=dup, extra_delay=delay)

    def crash_time(self, rank: int) -> float | None:
        return self.plan.crash.get(rank)

    def slowdown(self, rank: int) -> float:
        return self.plan.slowdown.get(rank, 1.0)
