"""Per-rank virtual clocks with named-phase accounting.

Every rank owns one :class:`VirtualClock`.  The clock only moves when the
algorithm charges it (compute flops, message start-ups, waits until a
message's virtual arrival).  Phase accounting attributes elapsed virtual
time to named phases ("tree build", "force", ...) so the engine can emit
the per-phase breakdown of the paper's Table 3.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTimings:
    """Accumulated virtual seconds per named phase for one rank."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, dt: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt

    def get(self, phase: str) -> float:
        return self.seconds.get(phase, 0.0)

    def total(self) -> float:
        return sum(self.seconds.values())

    def merged_with(self, other: "PhaseTimings") -> "PhaseTimings":
        out = PhaseTimings(dict(self.seconds))
        for phase, dt in other.seconds.items():
            out.add(phase, dt)
        return out


class VirtualClock:
    """Deterministic virtual clock for one rank.

    The clock starts at 0.  ``advance`` moves it forward by a duration;
    ``wait_until`` moves it forward to an absolute time (no-op if already
    past).  Each movement is attributed to the innermost active phase
    (default phase: ``"other"``).
    """

    DEFAULT_PHASE = "other"

    def __init__(self):
        self.now = 0.0
        self.timings = PhaseTimings()
        self._phase_stack: list[str] = []
        self._deadline: float | None = None
        self._deadline_exc: "Callable[[], BaseException] | None" = None
        #: Optional span tracer (set by Comm); never charges the clock.
        self._tracer = None
        #: Optional wall recorder (set by Comm): mirrors every phase
        #: block as a measured wall-clock span.  Never charges the clock.
        self._wall_tracer = None
        #: Optional ``listener(name_or_None)`` called on phase entry and
        #: exit (``None`` = back to the enclosing phase); used by the
        #: telemetry board.  Never charges the clock.
        self._phase_listener = None
        self._rank = 0

    def set_deadline(self, t: float, exc_factory) -> None:
        """Arm a one-shot deadline: the first charge that moves the clock
        to or past virtual time ``t`` stops exactly there and raises
        ``exc_factory()`` (used to model a rank crash at time ``t``)."""
        if t < self.now:
            raise ValueError(
                f"deadline {t} is already in the past (now={self.now})"
            )
        self._deadline = t
        self._deadline_exc = exc_factory

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else self.DEFAULT_PHASE

    def advance(self, dt: float, phase: str | None = None) -> None:
        """Move the clock forward by ``dt`` virtual seconds."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        self.now += dt
        name = phase or self.current_phase
        if self._deadline is not None and self.now >= self._deadline:
            # The rank dies mid-charge: clamp the clock to the deadline so
            # the reported crash time is exact, drop the overshoot from
            # the phase accounting, and disarm (one-shot).
            dt -= self.now - self._deadline
            self.now = self._deadline
            factory = self._deadline_exc
            self._deadline = self._deadline_exc = None
            self.timings.add(name, dt)
            raise factory()
        self.timings.add(name, dt)

    def wait_until(self, t: float, phase: str | None = None) -> None:
        """Move the clock to absolute virtual time ``t`` if it is behind."""
        if t > self.now:
            self.advance(t - self.now, phase=phase)

    @contextmanager
    def phase(self, name: str):
        """Attribute clock movement inside the block to phase ``name``.

        With a tracer attached, the block is also recorded as a
        :class:`~repro.machine.trace.PhaseSpan` from the virtual time at
        entry to the virtual time at exit (exceptional exits included,
        so a crashed rank's last phase still shows in the trace).
        """
        self._phase_stack.append(name)
        tracer = self._tracer
        wall = self._wall_tracer
        listener = self._phase_listener
        t0 = self.now
        w0 = wall.now() if wall is not None else 0.0
        depth = len(self._phase_stack)
        if listener is not None:
            listener(name)
        try:
            yield self
        finally:
            self._phase_stack.pop()
            if tracer is not None:
                tracer.phase_span(self._rank, name, t0, self.now,
                                  depth=depth)
            if wall is not None:
                wall.record(name, w0, wall.now(), depth=depth)
            if listener is not None:
                listener(self.current_phase)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self.now:.6f})"
