"""Calibrated machine profiles.

The nCUBE2 and CM5 numbers follow the widely published figures (also used
in Kumar et al., *Introduction to Parallel Computing*): the nCUBE2 had a
start-up latency of roughly 150 us and per-byte time around 0.6 us on its
hypercube network; the CM5's data network start-up was near 85 us with a
higher point-to-point bandwidth on a 4-ary fat tree.  Sustained scalar
flop rates are calibrated against the paper's own reported force-evaluation
rates (see EXPERIMENTS.md, "Calibration").
"""

from __future__ import annotations

from repro.machine.costmodel import MachineProfile

#: nCUBE2: d-dimensional hypercube, 4 MB per node.
NCUBE2 = MachineProfile(
    name="nCUBE2",
    topology_kind="hypercube",
    t_s=154e-6,
    t_h=7e-6,
    t_w=0.6e-6,
    flops_per_second=0.55e6,
    memory_bytes=4 * 1024 * 1024,
)

#: CM5: 4-ary fat tree, 32 MB per node, faster SPARC scalar units.
CM5 = MachineProfile(
    name="CM5",
    topology_kind="fattree",
    t_s=86e-6,
    t_h=3e-6,
    t_w=0.12e-6,
    flops_per_second=1.6e6,
    memory_bytes=32 * 1024 * 1024,
    topology_kwargs={"arity": 4},
)

#: Cray T3E (the "current machine" of the paper's conclusion): much higher
#: compute-to-communication ratio.
T3E = MachineProfile(
    name="T3E",
    topology_kind="mesh",
    t_s=8e-6,
    t_h=0.3e-6,
    t_w=0.003e-6,
    flops_per_second=120e6,
    memory_bytes=256 * 1024 * 1024,
)

#: A free machine: zero communication cost and unit flop time.  Useful in
#: tests that check message *content* and virtual-time *attribution*
#: separately.
ZERO_COST = MachineProfile(
    name="zero-cost",
    topology_kind="complete",
    t_s=0.0,
    t_h=0.0,
    t_w=0.0,
    flops_per_second=1.0,
)

_PROFILES = {
    "ncube2": NCUBE2,
    "cm5": CM5,
    "t3e": T3E,
    "zero": ZERO_COST,
    "zero-cost": ZERO_COST,
}


def get_profile(name: str) -> MachineProfile:
    """Look up a machine profile by case-insensitive name."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown machine profile {name!r}; "
            f"available: {sorted(set(_PROFILES))}"
        ) from None
