"""Virtual message-passing machine.

This subpackage simulates the message-passing multicomputers the paper ran
on (a 256-processor nCUBE2 hypercube and a 256-processor CM5 fat-tree).
Ranks execute real Python code, one thread per rank, and communicate through
an MPI-like :class:`~repro.machine.comm.Comm`.  Wall-clock time is *not*
what is reported; instead every rank carries a deterministic virtual clock
(:mod:`repro.machine.clock`) charged with

* compute time, via per-flop charges using the paper's own instruction
  counts, and
* communication time, via a LogGP-style model (start-up ``t_s``, per-hop
  ``t_h``, per-byte ``t_w``) parameterised by a
  :class:`~repro.machine.costmodel.MachineProfile`.

Collective operations are implemented *on top of* point-to-point messages
with the textbook hypercube algorithms, so their virtual cost reflects the
underlying topology, exactly as on the paper's machines.
"""

from repro.machine.topology import (
    Topology,
    HypercubeTopology,
    MeshTopology,
    FatTreeTopology,
    gray_code,
    gray_code_rank,
)
from repro.machine.costmodel import CostModel, MachineProfile
from repro.machine.profiles import NCUBE2, CM5, T3E, ZERO_COST, get_profile
from repro.machine.clock import VirtualClock, PhaseTimings
from repro.machine.comm import Comm, DeadlockError
from repro.machine.engine import Engine, RankResult, RunReport
from repro.machine.faults import (
    FaultInjector,
    FaultPlan,
    RankCrashedError,
    ReliableConfig,
    ReliableDeliveryError,
)
from repro.machine.mailbox import MailboxClosedError
from repro.machine.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.machine.trace import (
    PhaseSpan,
    RecvEvent,
    SendEvent,
    Trace,
    Tracer,
)

__all__ = [
    "Topology",
    "HypercubeTopology",
    "MeshTopology",
    "FatTreeTopology",
    "gray_code",
    "gray_code_rank",
    "CostModel",
    "MachineProfile",
    "NCUBE2",
    "CM5",
    "T3E",
    "ZERO_COST",
    "get_profile",
    "VirtualClock",
    "PhaseTimings",
    "Comm",
    "DeadlockError",
    "Engine",
    "RankResult",
    "RunReport",
    "FaultInjector",
    "FaultPlan",
    "RankCrashedError",
    "ReliableConfig",
    "ReliableDeliveryError",
    "MailboxClosedError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseSpan",
    "RecvEvent",
    "SendEvent",
    "Trace",
    "Tracer",
]
