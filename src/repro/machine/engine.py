"""Thread-per-rank SPMD runner.

``Engine(p, profile).run(main, args...)`` spawns ``p`` threads, each
executing ``main(comm, *args)`` against its own :class:`Comm`, and returns
a :class:`RunReport` with every rank's return value, virtual clock and
communication counters.  Real wall-clock time is irrelevant to the report;
all timings are virtual and deterministic (see :mod:`repro.machine.comm`).
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.machine.clock import PhaseTimings
from repro.machine.comm import Comm, CommStats, DeadlockError
from repro.machine.costmodel import CostModel, MachineProfile
from repro.machine.faults import (
    FaultInjector,
    FaultPlan,
    RankCrashedError,
    ReliableConfig,
)
from repro.machine.mailbox import MailboxClosedError
from repro.machine.metrics import MetricsRegistry
from repro.machine.profiles import ZERO_COST
from repro.machine.trace import Trace, Tracer, WallRecorder
from repro.machine.transport import LocalTransport


@dataclass
class RankResult:
    """What one rank produced: return value, clock, comm counters.

    A rank that failed still yields a well-formed result: ``value`` is
    ``None``, ``error`` carries ``"ExcType: message"``, and the clock /
    counters hold whatever the rank accumulated before dying (a rank
    that raises before its first clock tick reports time 0.0 and empty
    timings rather than being dropped from the report).
    """

    rank: int
    value: Any
    time: float
    timings: PhaseTimings
    stats: CommStats
    metrics: MetricsRegistry | None = None
    error: str | None = None


@dataclass
class RunReport:
    """Aggregate of one SPMD run."""

    ranks: list[RankResult]
    #: Structured event record when the engine ran with a tracer.
    trace: Trace | None = None

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def values(self) -> list[Any]:
        return [r.value for r in self.ranks]

    @property
    def parallel_time(self) -> float:
        """Virtual makespan: the last rank to finish defines it."""
        return max(r.time for r in self.ranks)

    def phase_max(self) -> dict[str, float]:
        """Per-phase time as the paper reports it: max over ranks."""
        out: dict[str, float] = {}
        for r in self.ranks:
            for phase, dt in r.timings.seconds.items():
                out[phase] = max(out.get(phase, 0.0), dt)
        return out

    def phase_mean(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.ranks:
            for phase, dt in r.timings.seconds.items():
                out[phase] = out.get(phase, 0.0) + dt
        return {k: v / self.size for k, v in out.items()}

    @property
    def total_messages(self) -> int:
        return sum(r.stats.messages_sent for r in self.ranks)

    @property
    def total_bytes(self) -> int:
        return sum(r.stats.bytes_sent for r in self.ranks)

    def metrics_summary(self) -> MetricsRegistry:
        """Machine-wide metrics: per-rank registries merged (counters and
        histograms summed, gauges max-merged)."""
        return MetricsRegistry.merged(
            [r.metrics for r in self.ranks if r.metrics is not None]
        )

    def load_imbalance(self, phase: str | None = None) -> float:
        """max/mean virtual time ratio (1.0 = perfectly balanced)."""
        if phase is None:
            times = [r.time for r in self.ranks]
        else:
            times = [r.timings.get(phase) for r in self.ranks]
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0

    # ------------------------------------------- fault / reliability totals
    @property
    def total_retransmissions(self) -> int:
        return sum(r.stats.retransmissions for r in self.ranks)

    @property
    def total_drops_injected(self) -> int:
        return sum(r.stats.drops_injected for r in self.ranks)

    @property
    def total_duplicates_suppressed(self) -> int:
        return sum(r.stats.duplicates_suppressed for r in self.ranks)

    @property
    def total_messages_lost(self) -> int:
        return sum(r.stats.messages_lost for r in self.ranks)

    def fault_summary(self) -> dict[str, int]:
        """Machine-wide fault/recovery counters (all zero when clean)."""
        return {
            "drops_injected": self.total_drops_injected,
            "retransmissions": self.total_retransmissions,
            "duplicates_injected": sum(r.stats.duplicates_injected
                                       for r in self.ranks),
            "duplicates_suppressed": self.total_duplicates_suppressed,
            "delays_injected": sum(r.stats.delays_injected
                                   for r in self.ranks),
            "messages_lost": self.total_messages_lost,
        }


@dataclass
class _RankState:
    value: Any = None
    error: BaseException | None = None


def raise_primary_error(errors: Sequence[tuple[int, BaseException]],
                        partial_report: RunReport | None = None):
    """Root-cause selection shared by the virtual and process engines.

    Secondary ``MailboxClosedError`` failures are just other ranks being
    released after the first rank died, so they lose to any other error.
    Planned crashes and deadlock reports keep their type so callers can
    drive recovery (checkpoint restart) from them, as does any error
    declaring itself ``rank_tagged`` (the process backend's remote
    errors); everything else is wrapped in a ``RuntimeError`` naming the
    failing rank.  When given,
    ``partial_report`` (a :class:`RunReport` covering every rank, failed
    ones included) is attached to the raised exception as
    ``partial_report``.
    """
    primary = [e for e in errors
               if not isinstance(e[1], MailboxClosedError)]
    chosen: BaseException | None = None
    for selection in (primary, errors):
        crashes = [e for e in selection
                   if isinstance(e[1], RankCrashedError)]
        if crashes:
            chosen = crashes[0][1]
            break
        if selection:
            break
    cause: BaseException | None = None
    if chosen is None:
        rank, err = (primary or list(errors))[0]
        if isinstance(err, DeadlockError) or getattr(err, "rank_tagged",
                                                     False):
            chosen = err
        else:
            chosen = RuntimeError(
                f"virtual rank {rank} failed: {type(err).__name__}: {err}"
            )
            cause = err
    chosen.partial_report = partial_report
    if cause is not None:
        raise chosen from cause
    raise chosen


class Engine:
    """Runs SPMD programs on the virtual machine.

    Parameters
    ----------
    size:
        Number of virtual processors.
    profile:
        Machine profile; defaults to the free :data:`ZERO_COST` machine.
    recv_timeout:
        Real-seconds watchdog for blocking receives; a deadlocked program
        raises a structured :class:`~repro.machine.comm.DeadlockError`
        instead of hanging the test suite.
    fault_plan:
        Optional :class:`~repro.machine.faults.FaultPlan` injecting
        deterministic message drops/duplicates/delays, rank crashes and
        rank slowdowns into the run.
    reliable:
        ``True`` (default parameters) or a
        :class:`~repro.machine.faults.ReliableConfig` to enable the
        ack/retransmit recovery layer; ``None``/``False`` leaves the
        machine as lossy as the plan makes it.
    """

    def __init__(self, size: int, profile: MachineProfile = ZERO_COST,
                 recv_timeout: float | None = 120.0,
                 fault_plan: FaultPlan | None = None,
                 reliable: ReliableConfig | bool | None = None):
        if size <= 0:
            raise ValueError(f"engine size must be positive, got {size}")
        self.size = size
        self.profile = profile
        self.cost = CostModel(profile, size)
        self.recv_timeout = recv_timeout
        if fault_plan is not None and fault_plan.any_process_faults:
            raise ValueError(
                "fault plan demands real process actions (kill / "
                "stall_heartbeat); only backend='process' can execute them"
            )
        self.fault_plan = fault_plan
        if reliable is True:
            reliable = ReliableConfig()
        elif reliable is False:
            reliable = None
        self.reliable = reliable

    def run(self, main: Callable[..., Any], *args: Any,
            rank_args: Sequence[Sequence[Any]] | None = None,
            tracer: Tracer | bool | None = None,
            wall_trace: bool = False) -> RunReport:
        """Execute ``main(comm, *args)`` on every rank.

        ``rank_args`` optionally provides per-rank extra positional
        arguments appended after the shared ``args``.  ``tracer`` attaches
        a span tracer (``True`` creates one sized to the engine); the
        finished :class:`~repro.machine.trace.Trace` lands on the report.
        Tracing never charges any virtual clock, so traced and untraced
        runs have bitwise-identical virtual times.  ``wall_trace=True``
        additionally records each rank thread's measured wall-clock
        phase spans (a shared epoch, one wall track per rank on the
        trace); requires a tracer.
        """
        if rank_args is not None and len(rank_args) != self.size:
            raise ValueError(
                f"rank_args must have {self.size} entries, got {len(rank_args)}"
            )
        if tracer is True:
            tracer = Tracer(self.size)
        elif tracer is False:
            tracer = None
        if tracer is not None and tracer.size != self.size:
            raise ValueError(
                f"tracer sized for {tracer.size} ranks, engine has {self.size}"
            )
        if wall_trace and tracer is None:
            raise ValueError("wall_trace requires tracing to be enabled")
        recorders = None
        if wall_trace:
            epoch = _time.monotonic()
            recorders = [WallRecorder(r, epoch) for r in range(self.size)]
        transport = LocalTransport(self.size)
        injector = (FaultInjector(self.fault_plan, self.size)
                    if self.fault_plan is not None else None)
        comms = [Comm(r, self.size, self.cost, transport.endpoint(r),
                      recv_timeout=self.recv_timeout,
                      injector=injector, reliable=self.reliable,
                      tracer=tracer,
                      wall_tracer=(recorders[r] if recorders else None))
                 for r in range(self.size)]
        if injector is not None:
            for r in range(self.size):
                t = injector.crash_time(r)
                if t is not None:
                    comms[r].clock.set_deadline(
                        t, lambda r=r, t=t: RankCrashedError(r, t)
                    )
        states = [_RankState() for _ in range(self.size)]

        def runner(rank: int) -> None:
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                states[rank].value = main(comms[rank], *args, *extra)
            except BaseException as exc:  # propagate to the caller
                states[rank].error = exc
                transport.close_all()

        threads = [
            threading.Thread(target=runner, args=(r,),
                             name=f"vrank-{r}", daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for r in range(self.size):
            # += because a checkpoint restore may have seeded the
            # counter with suppressions from before a rollback boundary.
            comms[r].stats.duplicates_suppressed += \
                comms[r].endpoint.duplicates_suppressed
            g = comms[r].metrics.gauge("mailbox.max_pending")
            g.set(max(g.value, comms[r].endpoint.max_pending))

        def build_report(trace_done: bool) -> RunReport:
            trace = None
            if tracer is not None and trace_done:
                tracer.final_times = [c.clock.now for c in comms]
                if recorders is not None:
                    for r in range(self.size):
                        tracer.adopt_wall_spans(r, recorders[r].spans)
                trace = tracer.finish()
            return RunReport(ranks=[
                RankResult(rank=r, value=states[r].value,
                           time=comms[r].clock.now,
                           timings=comms[r].clock.timings,
                           stats=comms[r].stats,
                           metrics=comms[r].metrics,
                           error=(None if states[r].error is None else
                                  f"{type(states[r].error).__name__}: "
                                  f"{states[r].error}"))
                for r in range(self.size)
            ], trace=trace)

        errors = [(r, s.error) for r, s in enumerate(states) if s.error]
        if errors:
            # Even a failed run yields a well-formed report — every rank
            # appears, including ranks that died before their first clock
            # tick — attached to the raised error for diagnostics.
            raise_primary_error(errors, partial_report=build_report(False))
        return build_report(True)
