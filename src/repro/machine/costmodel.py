"""Communication and computation cost model for the virtual machine.

The model is LogGP-flavoured and matches the one used throughout
Kumar, Grama, Gupta & Karypis, *Introduction to Parallel Computing* (the
paper's reference [20]): a point-to-point message of ``m`` bytes travelling
``l`` hops costs

    t_s + l * t_h + m * t_w            (seconds of virtual time)

on both the sending and receiving rank's clock (the sender is released
after the start-up; the message *arrives* at
``send_clock + t_s + l*t_h + m*t_w``).  Computation is charged explicitly
by the algorithm in floating-point operations; one flop costs
``1 / flops_per_second``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.topology import Topology, make_topology


@dataclass(frozen=True)
class MachineProfile:
    """Calibrated parameters of a target machine.

    Parameters
    ----------
    name:
        Human-readable machine name (``"nCUBE2"``, ``"CM5"``...).
    topology_kind:
        ``"hypercube"``, ``"mesh"`` or ``"fattree"``.
    t_s:
        Message start-up latency in seconds.
    t_h:
        Per-hop latency in seconds.
    t_w:
        Per-byte transfer time in seconds.
    flops_per_second:
        Sustained scalar floating-point rate of one processing element on
        treecode-like (branchy, non-vectorizable) inner loops.  This is
        deliberately far below peak: the paper's own measured force rates
        imply a sustained rate well under 1 MFLOPS on the nCUBE2.
    memory_bytes:
        Per-node memory (the nCUBE2 nodes had only 4 MB, which limited the
        paper's problem sizes).
    topology_kwargs:
        Extra arguments forwarded to the topology factory (e.g. fat-tree
        arity).
    """

    name: str
    topology_kind: str
    t_s: float
    t_h: float
    t_w: float
    flops_per_second: float
    memory_bytes: int = 4 * 1024 * 1024
    topology_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.t_s < 0 or self.t_h < 0 or self.t_w < 0:
            raise ValueError("cost parameters must be non-negative")
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")

    def make_topology(self, size: int) -> Topology:
        return make_topology(self.topology_kind, size, **self.topology_kwargs)

    @property
    def flop_time(self) -> float:
        """Seconds of virtual time per floating-point operation."""
        return 1.0 / self.flops_per_second


class CostModel:
    """Binds a :class:`MachineProfile` to a concrete machine size."""

    def __init__(self, profile: MachineProfile, size: int):
        self.profile = profile
        self.topology = profile.make_topology(size)
        self.size = size

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """End-to-end latency of one ``nbytes`` message from src to dst."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if src == dst:
            return 0.0
        hops = self.topology.hops(src, dst)
        p = self.profile
        return p.t_s + hops * p.t_h + nbytes * p.t_w

    def compute_time(self, flops: float, slowdown: float = 1.0) -> float:
        """Virtual seconds for ``flops`` floating-point operations.

        ``slowdown >= 1`` models a degraded node whose effective
        ``flops_per_second`` is the profile's rate divided by the factor
        (fault injection: thermal throttling, an oversubscribed core...).
        """
        if flops < 0:
            raise ValueError(f"negative flop count {flops}")
        if slowdown < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {slowdown}")
        return flops * self.profile.flop_time * slowdown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel({self.profile.name}, p={self.size})"


#: Bytes occupied by one particle coordinate record in a function-shipping
#: bin: three 32-bit coordinates plus a 32-bit branch-node key, as in the
#: paper ("the particle coordinates and the key").
PARTICLE_RECORD_BYTES = 16

#: Bytes occupied by one returned potential (a float) or force (3 floats).
POTENTIAL_RECORD_BYTES = 4
FORCE_RECORD_BYTES = 12


def multipole_series_bytes(degree: int, dims: int = 3) -> int:
    """Wire size of one multipole expansion plus its origin.

    The paper (Section 4.2.1): in 2-D the series has ``O(k)`` terms, in 3-D
    ``O(k^2)`` -- "a 6 degree multipole expansion consists of 36 complex
    numbers or 72 floating point numbers".  We count ``k^2`` complex terms
    (i.e. ``2 k^2`` floats) plus a 3-float origin and a 1-float total mass,
    using 32-bit floats as on the paper's machines.
    """
    if degree < 0:
        raise ValueError(f"negative multipole degree {degree}")
    if dims == 2:
        nterms = max(degree, 1)
        return 4 * (2 * nterms + 3)
    nterms = max(degree * degree, 1)
    return 4 * (2 * nterms + 4)
