"""MPI-like communicator bound to one virtual rank.

Timing rules (documented once here, relied on everywhere):

* ``send``: the sender's clock advances by ``t_s + nbytes * t_w`` (it owns
  the channel for the start-up and the transfer).  The message's virtual
  *arrival* time is the sender's clock after that charge plus the per-hop
  network term ``hops(src, dst) * t_h``.
* ``recv``: the receiver first waits (virtually) until the message's
  arrival time, then pays a copy-out charge of ``nbytes * t_w``.
* ``compute(flops)``: advances the clock by ``flops / flops_per_second``.

All collectives are implemented over these primitives
(:mod:`repro.machine.collectives`), so their virtual cost automatically
reflects the machine's topology and parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

import numpy as np

from repro.machine.clock import VirtualClock
from repro.machine.costmodel import CostModel
from repro.machine.faults import (
    FaultInjector,
    ReliableConfig,
    ReliableDeliveryError,
)
from repro.machine.mailbox import ANY_SOURCE, ANY_TAG, Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.transport import Endpoint
from repro.machine.metrics import BYTE_BUCKETS, MetricsRegistry
from repro.machine.trace import RecvEvent, SendEvent, Tracer, WallRecorder
from repro.machine import collectives as _coll


def _format_pending(held: dict) -> str:
    if not held:
        return "empty"
    return ", ".join(f"(src={s}, tag={t}) x{n}"
                     for (s, t), n in sorted(held.items()))


class DeadlockError(RuntimeError):
    """A blocking receive hit the watchdog: likely deadlock.

    Carries a structured picture of the machine at detection time: for
    every rank the transport can see, the ``(src, tag)`` it is blocked
    on (if any) and what its mailbox still holds, so the blocked cycle
    can be read straight off the message instead of reverse-engineered
    from a bare timeout.  The in-process transport reports the whole
    machine; a process-per-rank transport reports the raising rank only
    (the host engine stitches the per-rank views together).
    """

    def __init__(self, rank: int, src: int, tag: int,
                 waits: "list[tuple[int, int] | None] | None" = None,
                 summaries: "dict[int, dict] | None" = None,
                 timeout: float | None = None):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.blocked = list(waits) if waits is not None else None
        self.summaries = dict(summaries) if summaries is not None else None
        lines = [
            f"rank {rank}: recv(src={src}, tag={tag}) timed out after "
            f"{timeout}s — likely deadlock"
        ]
        if waits is not None:
            for r, w in enumerate(waits):
                state = (f"blocked on recv(src={w[0]}, tag={w[1]})"
                         if w is not None else "not blocked in recv")
                held = (summaries or {}).get(r, {})
                lines.append(f"  rank {r}: {state}; mailbox holds "
                             f"{_format_pending(held)}")
        elif summaries:
            for r in sorted(summaries):
                lines.append(f"  rank {r}: mailbox holds "
                             f"{_format_pending(summaries[r])}")
        super().__init__("\n".join(lines))


def estimate_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    Algorithms that care about exact wire sizes (function-shipping bins,
    multipole series) pass ``nbytes`` explicitly; this estimator covers
    control messages.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, dict):
        return sum(estimate_nbytes(k) + estimate_nbytes(v)
                   for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(v) for v in payload)
    if hasattr(payload, "nbytes"):
        nb = payload.nbytes
        return int(nb() if callable(nb) else nb)
    # Unknown object: charge a pointer-sized token.  Tests pin this.
    return 8


@dataclass
class CommStats:
    """Per-rank communication counters (payload bytes, not headers)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    bytes_by_tag: dict[int, int] = field(default_factory=dict)
    recv_bytes_by_tag: dict[int, int] = field(default_factory=dict)
    # Fault-injection / reliable-delivery counters (all zero on a
    # fault-free run, so existing accounting is unchanged).
    drops_injected: int = 0          # transmissions the network ate
    retransmissions: int = 0         # recovery resends (reliable layer)
    duplicates_injected: int = 0     # extra copies the network delivered
    duplicates_suppressed: int = 0   # copies this rank's mailbox dropped
    delays_injected: int = 0         # messages given extra latency
    messages_lost: int = 0           # drops never recovered (no reliability)

    def record_send(self, tag: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + nbytes

    def record_recv(self, tag: int, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes
        self.recv_bytes_by_tag[tag] = \
            self.recv_bytes_by_tag.get(tag, 0) + nbytes


class Comm:
    """Communicator handed to each rank's main function."""

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(self, rank: int, size: int, cost: CostModel,
                 endpoint: "Endpoint",
                 recv_timeout: float | None = 120.0,
                 injector: FaultInjector | None = None,
                 reliable: ReliableConfig | None = None,
                 tracer: Tracer | None = None,
                 wall_tracer: "WallRecorder | None" = None):
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self.cost = cost
        self.clock = VirtualClock()
        self.stats = CommStats()
        self.tracer = tracer
        self.clock._tracer = tracer
        self.clock._rank = rank
        #: Optional wall-clock recorder: mirrors phase blocks as measured
        #: wall spans.  Pure observation — never charges the clock.
        self.wall_tracer = wall_tracer
        self.clock._wall_tracer = wall_tracer
        #: Per-rank metrics registry (merged machine-wide by the engine).
        self.metrics = MetricsRegistry()
        self._m_msg_bytes = self.metrics.histogram(
            "comm.msg_bytes", bounds=BYTE_BUCKETS)
        self._m_wait = self.metrics.histogram("comm.recv_wait_seconds")
        #: Transport endpoint: how messages physically move.  Everything
        #: virtual-time related happens here in Comm; the endpoint only
        #: stores and forwards already-priced messages.
        self.endpoint = endpoint
        self._recv_timeout = recv_timeout
        self._injector = injector
        self._reliable = reliable
        self._xmit_seq = 0
        self.slowdown = injector.slowdown(rank) if injector else 1.0

    def adopt_accounting(self, stats: CommStats,
                         metrics: MetricsRegistry) -> None:
        """Replace this comm's accounting with checkpointed state.

        Rollback recovery restores a rank's communication statistics and
        metrics from the last checkpoint so a recovered run reports the
        same totals as an uninterrupted one.  The cached histogram
        handles must be rebound to the adopted registry — they are the
        hot-path shortcuts around registry lookups.
        """
        self.stats = stats
        self.metrics = metrics
        self._m_msg_bytes = metrics.histogram("comm.msg_bytes",
                                              bounds=BYTE_BUCKETS)
        self._m_wait = metrics.histogram("comm.recv_wait_seconds")

    # ----------------------------------------------------------------- time
    def compute(self, flops: float, phase: str | None = None) -> None:
        """Charge ``flops`` floating-point operations of local work.

        A rank under an injected slowdown pays ``slowdown`` times the
        profile's flop time — its effective ``flops_per_second`` is
        degraded, which the load balancers observe and respond to.
        """
        self.clock.advance(
            self.cost.compute_time(flops, slowdown=self.slowdown),
            phase=phase,
        )

    def effective_flops_per_second(self) -> float:
        """This rank's measured effective compute rate (faults included)."""
        return self.cost.profile.flops_per_second / self.slowdown

    def phase(self, name: str):
        """Context manager attributing virtual time to phase ``name``."""
        return self.clock.phase(name)

    @property
    def now(self) -> float:
        return self.clock.now

    # ----------------------------------------------------- point to point
    def send(self, payload: Any, dst: int, tag: int = 0,
             nbytes: int | None = None) -> None:
        """Send ``payload`` to rank ``dst`` (non-blocking buffered send).

        With a fault injector attached, each transmission may be dropped,
        duplicated or delayed.  Under the reliable layer a drop triggers
        retransmission with exponential backoff: every retry costs the
        sender another channel charge and pushes the message's virtual
        arrival out by the timeout wait; duplicate copies carry the same
        transmission id and are suppressed at the destination mailbox.
        Without the reliable layer a dropped message is simply lost.
        """
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range")
        if nbytes is None:
            nbytes = estimate_nbytes(payload)
        p = self.cost.profile
        tracer = self.tracer
        self._m_msg_bytes.observe(nbytes)
        if dst == self.rank:
            # Local delivery is free and never faulted.
            self.stats.record_send(tag, nbytes)
            msg = Message(arrival=self.clock.now, src=self.rank, tag=tag,
                          payload=payload, nbytes=nbytes)
            self.endpoint.deliver(dst, msg)
            if tracer is not None:
                tracer.send_event(SendEvent(
                    seq=msg.seq, src=self.rank, dst=dst, tag=tag,
                    nbytes=nbytes, t_begin=self.clock.now,
                    t_end=self.clock.now, arrival=msg.arrival,
                ))
            return
        hops = self.cost.topology.hops(self.rank, dst)
        inj = self._injector
        t_begin = self.clock.now
        if inj is None:
            self.clock.advance(p.t_s + nbytes * p.t_w)
            self.stats.record_send(tag, nbytes)
            msg = Message(arrival=self.clock.now + hops * p.t_h,
                          src=self.rank, tag=tag,
                          payload=payload, nbytes=nbytes)
            self.endpoint.deliver(dst, msg)
            if tracer is not None:
                tracer.send_event(SendEvent(
                    seq=msg.seq, src=self.rank, dst=dst, tag=tag,
                    nbytes=nbytes, t_begin=t_begin,
                    t_end=self.clock.now, arrival=msg.arrival,
                ))
            return

        rel = self._reliable
        penalty = 0.0      # timeout waits accumulated by retransmissions
        retries = 0
        drops = 0
        while True:
            decision = inj.decide(self.rank, dst, tag)
            self.clock.advance(p.t_s + nbytes * p.t_w)
            if not decision.drop:
                break
            drops += 1
            self.stats.drops_injected += 1
            self.metrics.counter("comm.drops").inc()
            if rel is None:
                # Unreliable machine: the message is silently lost (the
                # sender still paid for the transmission).
                self.stats.messages_lost += 1
                self.stats.record_send(tag, nbytes)
                if tracer is not None:
                    tracer.send_event(SendEvent(
                        seq=None, src=self.rank, dst=dst, tag=tag,
                        nbytes=nbytes, t_begin=t_begin,
                        t_end=self.clock.now, arrival=float("inf"),
                        drops=drops, lost=True,
                    ))
                return
            if retries >= rel.max_retries:
                raise ReliableDeliveryError(
                    f"rank {self.rank} -> {dst} tag {tag}: message still "
                    f"undelivered after {retries} retransmissions"
                )
            penalty += rel.timeout * rel.backoff ** retries
            retries += 1
            self.stats.retransmissions += 1
            self.metrics.counter("comm.retransmissions").inc()
        if decision.extra_delay > 0:
            self.stats.delays_injected += 1
        self.stats.record_send(tag, nbytes)
        xmit_id = None
        if rel is not None:
            xmit_id = self._xmit_seq
            self._xmit_seq += 1
        arrival = (self.clock.now + hops * p.t_h
                   + penalty + decision.extra_delay)
        msg = Message(arrival=arrival, src=self.rank, tag=tag,
                      payload=payload, nbytes=nbytes, xmit_id=xmit_id)
        self.endpoint.deliver(dst, msg)
        if tracer is not None:
            tracer.send_event(SendEvent(
                seq=msg.seq, src=self.rank, dst=dst, tag=tag,
                nbytes=nbytes, t_begin=t_begin, t_end=self.clock.now,
                arrival=arrival, drops=drops, retries=retries,
                extra_delay=decision.extra_delay,
            ))
        if decision.duplicate:
            # The network delivered a second copy in flight: no extra
            # sender charge; same transmission id, so a reliable receiver
            # suppresses it (an unreliable one sees it twice).
            self.stats.duplicates_injected += 1
            dup = Message(arrival=arrival, src=self.rank, tag=tag,
                          payload=payload, nbytes=nbytes, xmit_id=xmit_id)
            self.endpoint.deliver(dst, dup)
            if tracer is not None:
                tracer.send_event(SendEvent(
                    seq=dup.seq, src=self.rank, dst=dst, tag=tag,
                    nbytes=nbytes, t_begin=t_begin, t_end=self.clock.now,
                    arrival=arrival, duplicate=True,
                ))

    # ``isend`` is an alias: the buffered send above never blocks in real
    # time, and its virtual charge models an eager-protocol send.
    isend = send

    def _blocking_get(self, src: int, tag: int) -> Message:
        """Matched receive with the deadlock watchdog: the wait is
        advertised on the transport's board, and a timeout raises a
        structured :class:`DeadlockError` instead of a bare timeout."""
        self.endpoint.set_wait((src, tag))
        try:
            msg = self.endpoint.get(src, tag, timeout=self._recv_timeout)
        except TimeoutError as exc:
            # Leave this rank's board entry in place: it IS still blocked,
            # and concurrent timeouts on other ranks snapshot the board
            # for their own reports.
            waits, summaries = self.endpoint.deadlock_snapshot()
            raise DeadlockError(
                self.rank, src, tag, waits=waits, summaries=summaries,
                timeout=self._recv_timeout,
            ) from exc
        self.endpoint.set_wait(None)
        return msg

    def recv_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Blocking matched receive returning the full message record."""
        msg = self._blocking_get(src, tag)
        self._finish_recv(msg)
        return msg

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking matched receive returning just the payload."""
        return self.recv_msg(src, tag).payload

    def poll_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Non-blocking receive.

        Only messages whose virtual arrival time is at or before this
        rank's current clock are visible — a rank cannot react to a message
        "from the future".  Returns ``None`` when nothing has arrived.
        """
        msg = self.endpoint.poll(src, tag)
        if msg is None:
            return None
        if msg.arrival > self.clock.now:
            self.endpoint.requeue(msg)  # not virtually here yet
            return None
        self._finish_recv(msg)
        return msg

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is queued (regardless of arrival)."""
        return self.endpoint.probe(src, tag)

    def recv_sorted(self, counts: dict[int, int], tag: int):
        """Receive an exact multiset of messages in virtual-arrival order.

        ``counts`` maps source rank -> number of messages to receive with
        ``tag``.  The messages are first collected (blocking in real time
        only — senders have already fired them, so this cannot deadlock),
        sorted by virtual arrival, and then *yielded* one at a time with
        the clock charged per message — modelling a processor that polls
        its queue and handles work FIFO by arrival.  Work the caller does
        between yields lands between the arrival waits, exactly like
        service time would on the real machine.
        """
        raw: list[Message] = []
        for src in sorted(counts):
            for _ in range(counts[src]):
                raw.append(self._blocking_get(src, tag))
        raw.sort()
        for msg in raw:
            self._finish_recv(msg)
            yield msg

    def collect_raw(self, src: int, tag: int, stop) -> list[Message]:
        """Collect messages from ``src`` without charging the clock,
        until ``stop(payload)`` is true (the stop message is included).

        Real-time blocking only; the caller is responsible for charging
        the clock later via :meth:`charge_recv`, typically after sorting
        a whole batch by virtual arrival.  Safe only for fire-and-forget
        streams whose completion does not depend on this rank acting.
        """
        out: list[Message] = []
        while True:
            msg = self._blocking_get(src, tag)
            out.append(msg)
            if stop(msg.payload):
                return out

    def charge_recv(self, msg: Message) -> None:
        """Charge the clock and counters for a message obtained through
        :meth:`collect_raw` (wait until arrival + copy-out)."""
        self._finish_recv(msg)

    def _finish_recv(self, msg: Message) -> None:
        t_begin = self.clock.now
        self.clock.wait_until(msg.arrival)
        if msg.src != self.rank:
            self.clock.advance(msg.nbytes * self.cost.profile.t_w)
        self.stats.record_recv(msg.tag, msg.nbytes)
        self._m_wait.observe(max(0.0, msg.arrival - t_begin))
        if self.tracer is not None:
            self.tracer.recv_event(RecvEvent(
                seq=msg.seq, rank=self.rank, src=msg.src, tag=msg.tag,
                nbytes=msg.nbytes, t_begin=t_begin, arrival=msg.arrival,
                t_end=self.clock.now, waited=msg.arrival > t_begin,
            ))

    # ------------------------------------------------------- collectives
    def barrier(self) -> None:
        _coll.barrier(self)

    def bcast(self, payload: Any, root: int = 0, nbytes: int | None = None) -> Any:
        return _coll.bcast(self, payload, root=root, nbytes=nbytes)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        return _coll.reduce(self, value, op, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return _coll.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return _coll.gather(self, value, root=root)

    def allgather(self, value: Any) -> list[Any]:
        return _coll.allgather(self, value)

    def alltoall(self, values: list[Any]) -> list[Any]:
        return _coll.alltoall(self, values)

    def scan(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return _coll.scan(self, value, op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self.rank}, size={self.size})"
