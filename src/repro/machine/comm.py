"""MPI-like communicator bound to one virtual rank.

Timing rules (documented once here, relied on everywhere):

* ``send``: the sender's clock advances by ``t_s + nbytes * t_w`` (it owns
  the channel for the start-up and the transfer).  The message's virtual
  *arrival* time is the sender's clock after that charge plus the per-hop
  network term ``hops(src, dst) * t_h``.
* ``recv``: the receiver first waits (virtually) until the message's
  arrival time, then pays a copy-out charge of ``nbytes * t_w``.
* ``compute(flops)``: advances the clock by ``flops / flops_per_second``.

All collectives are implemented over these primitives
(:mod:`repro.machine.collectives`), so their virtual cost automatically
reflects the machine's topology and parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.machine.clock import VirtualClock
from repro.machine.costmodel import CostModel
from repro.machine.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, Message
from repro.machine import collectives as _coll


def estimate_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    Algorithms that care about exact wire sizes (function-shipping bins,
    multipole series) pass ``nbytes`` explicitly; this estimator covers
    control messages.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, dict):
        return sum(estimate_nbytes(k) + estimate_nbytes(v)
                   for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(v) for v in payload)
    if hasattr(payload, "nbytes"):
        nb = payload.nbytes
        return int(nb() if callable(nb) else nb)
    # Unknown object: charge a pointer-sized token.  Tests pin this.
    return 8


@dataclass
class CommStats:
    """Per-rank communication counters (payload bytes, not headers)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    bytes_by_tag: dict[int, int] = field(default_factory=dict)

    def record_send(self, tag: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + nbytes

    def record_recv(self, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes


class Comm:
    """Communicator handed to each rank's main function."""

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(self, rank: int, size: int, cost: CostModel,
                 mailboxes: list[Mailbox], recv_timeout: float | None = 120.0):
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self.cost = cost
        self.clock = VirtualClock()
        self.stats = CommStats()
        self._mailboxes = mailboxes
        self._recv_timeout = recv_timeout

    # ----------------------------------------------------------------- time
    def compute(self, flops: float, phase: str | None = None) -> None:
        """Charge ``flops`` floating-point operations of local work."""
        self.clock.advance(self.cost.compute_time(flops), phase=phase)

    def phase(self, name: str):
        """Context manager attributing virtual time to phase ``name``."""
        return self.clock.phase(name)

    @property
    def now(self) -> float:
        return self.clock.now

    # ----------------------------------------------------- point to point
    def send(self, payload: Any, dst: int, tag: int = 0,
             nbytes: int | None = None) -> None:
        """Send ``payload`` to rank ``dst`` (non-blocking buffered send)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range")
        if nbytes is None:
            nbytes = estimate_nbytes(payload)
        p = self.cost.profile
        if dst == self.rank:
            arrival = self.clock.now  # local delivery is free
        else:
            self.clock.advance(p.t_s + nbytes * p.t_w)
            hops = self.cost.topology.hops(self.rank, dst)
            arrival = self.clock.now + hops * p.t_h
        self.stats.record_send(tag, nbytes)
        self._mailboxes[dst].put(
            Message(arrival=arrival, src=self.rank, tag=tag,
                    payload=payload, nbytes=nbytes)
        )

    # ``isend`` is an alias: the buffered send above never blocks in real
    # time, and its virtual charge models an eager-protocol send.
    isend = send

    def recv_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Blocking matched receive returning the full message record."""
        msg = self._mailboxes[self.rank].get(src, tag,
                                             timeout=self._recv_timeout)
        self._finish_recv(msg)
        return msg

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking matched receive returning just the payload."""
        return self.recv_msg(src, tag).payload

    def poll_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Non-blocking receive.

        Only messages whose virtual arrival time is at or before this
        rank's current clock are visible — a rank cannot react to a message
        "from the future".  Returns ``None`` when nothing has arrived.
        """
        box = self._mailboxes[self.rank]
        msg = box.poll(src, tag)
        if msg is None:
            return None
        if msg.arrival > self.clock.now:
            box.put(msg)  # not virtually here yet; put it back
            return None
        self._finish_recv(msg)
        return msg

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is queued (regardless of arrival)."""
        return self._mailboxes[self.rank].probe(src, tag)

    def recv_sorted(self, counts: dict[int, int], tag: int):
        """Receive an exact multiset of messages in virtual-arrival order.

        ``counts`` maps source rank -> number of messages to receive with
        ``tag``.  The messages are first collected (blocking in real time
        only — senders have already fired them, so this cannot deadlock),
        sorted by virtual arrival, and then *yielded* one at a time with
        the clock charged per message — modelling a processor that polls
        its queue and handles work FIFO by arrival.  Work the caller does
        between yields lands between the arrival waits, exactly like
        service time would on the real machine.
        """
        raw: list[Message] = []
        box = self._mailboxes[self.rank]
        for src in sorted(counts):
            for _ in range(counts[src]):
                raw.append(box.get(src, tag, timeout=self._recv_timeout))
        raw.sort()
        for msg in raw:
            self._finish_recv(msg)
            yield msg

    def collect_raw(self, src: int, tag: int, stop) -> list[Message]:
        """Collect messages from ``src`` without charging the clock,
        until ``stop(payload)`` is true (the stop message is included).

        Real-time blocking only; the caller is responsible for charging
        the clock later via :meth:`charge_recv`, typically after sorting
        a whole batch by virtual arrival.  Safe only for fire-and-forget
        streams whose completion does not depend on this rank acting.
        """
        box = self._mailboxes[self.rank]
        out: list[Message] = []
        while True:
            msg = box.get(src, tag, timeout=self._recv_timeout)
            out.append(msg)
            if stop(msg.payload):
                return out

    def charge_recv(self, msg: Message) -> None:
        """Charge the clock and counters for a message obtained through
        :meth:`collect_raw` (wait until arrival + copy-out)."""
        self._finish_recv(msg)

    def _finish_recv(self, msg: Message) -> None:
        self.clock.wait_until(msg.arrival)
        if msg.src != self.rank:
            self.clock.advance(msg.nbytes * self.cost.profile.t_w)
        self.stats.record_recv(msg.nbytes)

    # ------------------------------------------------------- collectives
    def barrier(self) -> None:
        _coll.barrier(self)

    def bcast(self, payload: Any, root: int = 0, nbytes: int | None = None) -> Any:
        return _coll.bcast(self, payload, root=root, nbytes=nbytes)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        return _coll.reduce(self, value, op, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return _coll.allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return _coll.gather(self, value, root=root)

    def allgather(self, value: Any) -> list[Any]:
        return _coll.allgather(self, value)

    def alltoall(self, values: list[Any]) -> list[Any]:
        return _coll.alltoall(self, values)

    def scan(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return _coll.scan(self, value, op)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm(rank={self.rank}, size={self.size})"
