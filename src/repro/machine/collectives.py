"""Collective operations built on point-to-point messages.

The paper's schemes lean on two collectives — the *all-to-all broadcast*
(branch-node exchange) and the *all-to-all personalized communication*
(DPDA particle movement), both straight out of Kumar et al. [20].  The
implementations here are the textbook algorithms (binomial trees,
recursive doubling, pairwise exchange), so their virtual cost has the
right ``t_s log p + t_w m p``-type structure on the simulated machines.

Tag discipline: every collective call consumes a fresh tag above
``COLL_TAG_BASE`` from a per-communicator sequence counter.  Since ranks
execute collectives in the same program order (SPMD), call *i* on one rank
matches call *i* everywhere, and collective traffic can never be confused
with user point-to-point traffic.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.comm import Comm

COLL_TAG_BASE = 1 << 30


def _next_tag(comm: "Comm") -> int:
    seq = getattr(comm, "_coll_seq", 0) + 1
    comm._coll_seq = seq
    return COLL_TAG_BASE + seq


def bcast(comm: "Comm", payload: Any, root: int = 0,
          nbytes: int | None = None) -> Any:
    """Binomial-tree one-to-all broadcast; returns the payload everywhere."""
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    if not 0 <= root < p:
        raise ValueError(f"broadcast root {root} out of range")
    if p == 1:
        return payload
    vrank = (rank - root) % p
    mask = 1
    while mask < p:
        if vrank < mask:
            dst = vrank + mask
            if dst < p:
                comm.send(payload, (dst + root) % p, tag=tag, nbytes=nbytes)
        elif vrank < 2 * mask:
            payload = comm.recv(src=(vrank - mask + root) % p, tag=tag)
        mask <<= 1
    return payload


def reduce(comm: "Comm", value: Any, op: Callable[[Any, Any], Any],
           root: int = 0) -> Any:
    """Binomial-tree all-to-one reduction; result valid only at ``root``."""
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    if not 0 <= root < p:
        raise ValueError(f"reduce root {root} out of range")
    vrank = (rank - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            comm.send(value, (vrank - mask + root) % p, tag=tag)
            return None
        src = vrank + mask
        if src < p:
            value = op(value, comm.recv(src=(src + root) % p, tag=tag))
        mask <<= 1
    return value


def allreduce(comm: "Comm", value: Any, op: Callable[[Any, Any], Any]) -> Any:
    """All-reduce as reduce-to-0 followed by broadcast (works for any p)."""
    return bcast(comm, reduce(comm, value, op, root=0), root=0)


def barrier(comm: "Comm") -> None:
    """Synchronise all ranks; every clock leaves at >= the max entry time."""
    allreduce(comm, None, lambda a, b: None)


def gather(comm: "Comm", value: Any, root: int = 0) -> list[Any] | None:
    """Binomial-tree gather; returns rank-ordered list at ``root``."""
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    if not 0 <= root < p:
        raise ValueError(f"gather root {root} out of range")
    vrank = (rank - root) % p
    bucket: dict[int, Any] = {rank: value}
    mask = 1
    while mask < p:
        if vrank & mask:
            comm.send(bucket, (vrank - mask + root) % p, tag=tag)
            return None
        src = vrank + mask
        if src < p:
            bucket.update(comm.recv(src=(src + root) % p, tag=tag))
        mask <<= 1
    return [bucket[r] for r in range(p)]


def allgather(comm: "Comm", value: Any) -> list[Any]:
    """All-to-all broadcast (recursive doubling; ring for non-power-of-2).

    This is the operation the paper uses to make branch nodes and the top
    tree levels "available to all the processors".
    """
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    bucket: dict[int, Any] = {rank: value}
    if p & (p - 1) == 0:
        mask = 1
        while mask < p:
            partner = rank ^ mask
            comm.send(bucket, partner, tag=tag)
            bucket = {**bucket, **comm.recv(src=partner, tag=tag)}
            mask <<= 1
    else:
        chunk: dict[int, Any] = {rank: value}
        for _ in range(p - 1):
            comm.send(chunk, (rank + 1) % p, tag=tag)
            chunk = comm.recv(src=(rank - 1) % p, tag=tag)
            bucket.update(chunk)
    return [bucket[r] for r in range(p)]


def alltoall(comm: "Comm", values: list[Any]) -> list[Any]:
    """All-to-all personalized communication via pairwise exchange.

    ``values[j]`` is delivered to rank ``j``; the return list holds what
    every rank sent to this one, rank-ordered.  This is the collective the
    DPDA scheme uses to move particles to their new owners.
    """
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    if len(values) != p:
        raise ValueError(
            f"alltoall needs exactly {p} entries, got {len(values)}"
        )
    result: list[Any] = [None] * p
    result[rank] = values[rank]
    for i in range(1, p):
        dst = (rank + i) % p
        src = (rank - i) % p
        comm.send(values[dst], dst, tag=tag)
        result[src] = comm.recv(src=src, tag=tag)
    return result


def scan(comm: "Comm", value: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Inclusive prefix scan over ranks (recursive doubling, any p)."""
    tag = _next_tag(comm)
    p, rank = comm.size, comm.rank
    result = value
    mask = 1
    while mask < p:
        dst = rank + mask
        if dst < p:
            comm.send(result, dst, tag=tag)
        src = rank - mask
        if src >= 0:
            result = op(comm.recv(src=src, tag=tag), result)
        mask <<= 1
    return result
