"""Transport abstraction: how messages move between ranks.

:class:`~repro.machine.comm.Comm` charges virtual time for every send
and receive, but the mechanics of moving a :class:`Message` from one
rank to another are a separate concern — in-process mailboxes for the
thread-per-rank virtual engine, OS pipes plus shared memory for the
process-per-rank runtime (:mod:`repro.runtime`).  This module defines
the seam between the two:

* :class:`Endpoint` — the per-rank interface ``Comm`` talks to: deposit
  a message at a destination, matched blocking/non-blocking receives on
  the own queue, a wait advertisement for deadlock reports, and the
  mailbox counters the engine reads after a run.
* :class:`LocalTransport` — the original in-process backend: one
  :class:`~repro.machine.mailbox.Mailbox` per rank behind each endpoint,
  plus the shared machine-wide "who is blocked on what" board.

Virtual-cost neutrality is the design invariant: a transport only moves
already-priced messages, it never charges any clock.  Two backends fed
the same program therefore produce bitwise-identical virtual times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.machine.mailbox import Mailbox, Message


class Endpoint(ABC):
    """One rank's view of a transport.

    ``Comm`` is written against exactly this surface; any backend that
    implements it (and preserves per-``(src, tag)`` FIFO order between a
    sender and a receiver) can run the rank programs unchanged.
    """

    rank: int
    size: int

    # ------------------------------------------------------------- sending
    @abstractmethod
    def deliver(self, dst: int, msg: Message) -> None:
        """Deposit ``msg`` at rank ``dst`` (called from the sender)."""

    # ----------------------------------------------------------- receiving
    @abstractmethod
    def get(self, src: int, tag: int, timeout: float | None) -> Message:
        """Blocking matched receive from the own queue.

        Raises ``TimeoutError`` when ``timeout`` real seconds elapse
        (the deadlock watchdog) and
        :class:`~repro.machine.mailbox.MailboxClosedError` after engine
        teardown.
        """

    @abstractmethod
    def poll(self, src: int, tag: int) -> Message | None:
        """Non-blocking matched receive; ``None`` when nothing matches."""

    @abstractmethod
    def requeue(self, msg: Message) -> None:
        """Re-deposit a message previously removed by :meth:`poll`."""

    @abstractmethod
    def probe(self, src: int, tag: int) -> bool:
        """True when a matching message is queued (not removed)."""

    # ------------------------------------------------- deadlock diagnostics
    def set_wait(self, wait: tuple[int, int] | None) -> None:
        """Advertise that this rank is blocked on ``(src, tag)`` (or not).

        Backends without a shared board may ignore this.
        """

    def deadlock_snapshot(self):
        """``(waits, summaries)`` for a deadlock report.

        ``waits`` is a per-rank list of blocked ``(src, tag)`` pairs (or
        ``None`` where unknown / not blocked); ``summaries`` maps rank ->
        ``(src, tag) -> count`` of queued messages.  A backend with no
        machine-wide view returns what it knows about its own rank only.
        """
        return None, {}

    # ------------------------------------------------------------ counters
    @property
    @abstractmethod
    def duplicates_suppressed(self) -> int:
        """Reliable-layer duplicate copies discarded on deposit."""

    @property
    @abstractmethod
    def max_pending(self) -> int:
        """Queue-depth high-water mark."""


class LocalTransport:
    """The in-process backend: one shared mailbox array, one waits board.

    This is the transport the thread-per-rank virtual
    :class:`~repro.machine.engine.Engine` runs on; it is exactly the old
    hard-wired ``list[Mailbox]`` plumbing behind the :class:`Endpoint`
    interface.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"transport size must be positive, got {size}")
        self.size = size
        self.mailboxes = [Mailbox(r) for r in range(size)]
        #: per-rank "currently blocked on (src, tag)" board.
        self.waits: list[tuple[int, int] | None] = [None] * size

    def endpoint(self, rank: int) -> "LocalEndpoint":
        return LocalEndpoint(self, rank)

    def close_all(self) -> None:
        """Wake every blocked receiver with an error (engine teardown)."""
        for box in self.mailboxes:
            box.close()


class LocalEndpoint(Endpoint):
    """One rank's handle on a :class:`LocalTransport`."""

    def __init__(self, transport: LocalTransport, rank: int):
        if not 0 <= rank < transport.size:
            raise ValueError(
                f"rank {rank} out of range for size {transport.size}"
            )
        self._transport = transport
        self._box = transport.mailboxes[rank]
        self.rank = rank
        self.size = transport.size

    def deliver(self, dst: int, msg: Message) -> None:
        self._transport.mailboxes[dst].put(msg)

    def get(self, src: int, tag: int, timeout: float | None) -> Message:
        return self._box.get(src, tag, timeout=timeout)

    def poll(self, src: int, tag: int) -> Message | None:
        return self._box.poll(src, tag)

    def requeue(self, msg: Message) -> None:
        self._box.requeue(msg)

    def probe(self, src: int, tag: int) -> bool:
        return self._box.probe(src, tag)

    def set_wait(self, wait: tuple[int, int] | None) -> None:
        self._transport.waits[self.rank] = wait

    def deadlock_snapshot(self):
        t = self._transport
        return (list(t.waits),
                {r: t.mailboxes[r].pending_summary()
                 for r in range(t.size)})

    @property
    def duplicates_suppressed(self) -> int:
        return self._box.duplicates_suppressed

    @property
    def max_pending(self) -> int:
        return self._box.max_pending
