"""Span tracing for the virtual machine, on the virtual timebase.

A :class:`Tracer` attached to an :class:`~repro.machine.engine.Engine`
turns every phase interval and every message into a structured event:

* :class:`PhaseSpan` — one ``clock.phase(...)`` block on one rank, from
  the virtual time at entry to the virtual time at exit (nested blocks
  produce nested spans; ``cat="step"`` spans mark whole time-steps).
* :class:`SendEvent` — one ``Comm.send``: channel-charge begin/end on
  the sender's clock, the message's virtual arrival at the destination,
  and its fault disposition (drops eaten by the network, retransmission
  count, duplication, extra delay, or outright loss).
* :class:`RecvEvent` — one matched receive: the receiver's clock before
  the arrival wait, the arrival itself, the clock after the copy-out
  charge, and whether the receive actually *waited* (i.e. the arrival
  bound the receiver's clock rather than the other way round).

Send and receive events of the same message share the message's global
``seq``, so the event graph can be stitched across ranks — that is what
:mod:`repro.analysis.critical_path` walks.

Overhead neutrality: tracing never charges any virtual clock.  The
default is no tracer at all (``tracer=None`` throughout the machine);
every hook is behind an ``is not None`` check, so an untraced run
executes the exact same sequence of clock charges as before the tracer
existed and its virtual times are bitwise identical.

Each rank's thread appends only to its own per-rank event lists, so the
tracer needs no locking and adds no cross-thread synchronisation.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any


@dataclass
class PhaseSpan:
    """One phase block on one rank's virtual timeline."""

    rank: int
    name: str
    t0: float
    t1: float
    depth: int = 1          # nesting depth (1 = outermost)
    cat: str = "phase"      # "phase" | "step"

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class SendEvent:
    """One ``Comm.send`` as seen from the sender."""

    seq: int | None         # Message.seq of the delivered copy; None if lost
    src: int
    dst: int
    tag: int
    nbytes: int
    t_begin: float          # sender clock before the channel charge(s)
    t_end: float            # sender clock after the charge(s)
    arrival: float          # virtual arrival at dst (== t_end for local)
    drops: int = 0          # transmissions the network ate before success
    retries: int = 0        # reliable-layer retransmissions performed
    duplicate: bool = False  # this event IS the extra network copy
    extra_delay: float = 0.0
    lost: bool = False      # dropped with no reliable layer: never arrives


@dataclass
class RecvEvent:
    """One matched receive as seen from the receiver."""

    seq: int
    rank: int               # receiving rank
    src: int
    tag: int
    nbytes: int
    t_begin: float          # receiver clock before the arrival wait
    arrival: float
    t_end: float            # receiver clock after the copy-out charge
    waited: bool            # arrival > t_begin: the message bound the clock


class WallRecorder:
    """Collects wall-clock :class:`PhaseSpan` events for one rank.

    The second half of the dual-clock trace: where the virtual tracer
    records what the *cost model* says a phase took, a wall recorder
    records what the *hardware* said.  Spans are measured on
    ``time.monotonic()`` relative to a run epoch the host fixes before
    spawning workers — ``CLOCK_MONOTONIC`` is system-wide on Linux, so
    every rank process shares one timeline and the per-rank wall tracks
    line up in the exported trace.

    Wall recording never touches a virtual clock; an instrumented run's
    virtual accounting is bitwise identical to an uninstrumented one.
    """

    __slots__ = ("rank", "epoch", "spans")

    def __init__(self, rank: int, epoch: float | None = None):
        self.rank = rank
        self.epoch = time.monotonic() if epoch is None else epoch
        self.spans: list[PhaseSpan] = []

    def now(self) -> float:
        """Wall seconds since the run epoch."""
        return time.monotonic() - self.epoch

    def record(self, name: str, t0: float, t1: float, depth: int = 1,
               cat: str = "wall:phase") -> None:
        self.spans.append(PhaseSpan(rank=self.rank, name=name, t0=t0,
                                    t1=t1, depth=depth, cat=cat))

    def mark(self, name: str, cat: str = "wall:phase") -> None:
        """Record a zero-duration marker span at the current wall time."""
        t = self.now()
        self.record(name, t, t, cat=cat)

    @contextmanager
    def timed(self, name: str, depth: int = 1, cat: str = "wall:phase"):
        """Record the block as one wall span (exceptional exits too)."""
        t0 = self.now()
        try:
            yield self
        finally:
            self.record(name, t0, self.now(), depth=depth, cat=cat)


@dataclass
class Trace:
    """The finished event record of one engine run.

    ``phases``/``sends``/``recvs`` live on the virtual timebase;
    ``wall_phases`` (empty unless wall recording was enabled) holds each
    rank's measured wall-clock spans on the run-epoch timebase.
    """

    size: int
    phases: list[list[PhaseSpan]]
    sends: list[list[SendEvent]]
    recvs: list[list[RecvEvent]]
    final_times: list[float] = field(default_factory=list)
    wall_phases: list[list[PhaseSpan]] = field(default_factory=list)

    # ------------------------------------------------------------ queries
    def all_phases(self) -> list[PhaseSpan]:
        return [s for per_rank in self.phases for s in per_rank]

    def all_sends(self) -> list[SendEvent]:
        return [s for per_rank in self.sends for s in per_rank]

    def all_recvs(self) -> list[RecvEvent]:
        return [r for per_rank in self.recvs for r in per_rank]

    def all_wall_phases(self) -> list[PhaseSpan]:
        return [s for per_rank in self.wall_phases for s in per_rank]

    @property
    def has_wall(self) -> bool:
        return any(self.wall_phases)

    def sends_by_seq(self) -> dict[int, SendEvent]:
        """Delivered-copy send events keyed by message seq."""
        out: dict[int, SendEvent] = {}
        for ev in self.all_sends():
            if ev.seq is not None:
                out[ev.seq] = ev
        return out

    def step_spans(self) -> dict[int, list[PhaseSpan]]:
        """``step index -> spans`` for the ``cat="step"`` markers."""
        out: dict[int, list[PhaseSpan]] = {}
        for span in self.all_phases():
            if span.cat == "step":
                out.setdefault(int(span.name.split()[-1]), []).append(span)
        return out

    @property
    def parallel_time(self) -> float:
        return max(self.final_times) if self.final_times else 0.0

    # ------------------------------------------------------------- export
    def to_chrome(self) -> dict[str, Any]:
        """Chrome trace-event JSON (Perfetto / chrome://tracing loadable).

        One thread track per rank; phase blocks as complete ("X") slices,
        messages as flow arrows ("s"/"f") anchored on instant events, and
        fault dispositions as instant events.  Timestamps are the virtual
        times in microseconds.

        When wall spans were recorded, a second process (pid 1, "wall
        clock") carries one wall track per rank on the run-epoch
        timebase, so the cost model and the hardware sit side by side in
        one Perfetto view.
        """
        us = 1e6
        # Message.seq values come from a process-global counter, so their
        # interleaving across ranks depends on host thread scheduling.
        # Each rank's own send list is in deterministic program order, so
        # renumbering flow ids in (rank, send index) order keeps the
        # exported file byte-identical across identical runs.
        flow_id: dict[int, int] = {}
        for per_rank in self.sends:
            for send in per_rank:
                if send.seq is not None and send.seq not in flow_id:
                    flow_id[send.seq] = len(flow_id)
        events: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "virtual machine"}},
        ]
        for r in range(self.size):
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": r, "args": {"name": f"rank {r}"}})
            events.append({"name": "thread_sort_index", "ph": "M",
                           "pid": 0, "tid": r, "args": {"sort_index": r}})
        for span in self.all_phases():
            events.append({
                "name": span.name, "cat": span.cat, "ph": "X",
                "ts": span.t0 * us, "dur": span.duration * us,
                "pid": 0, "tid": span.rank,
                "args": {"depth": span.depth},
            })
        for ev in self.all_sends():
            name = f"send tag={ev.tag}"
            args = {"dst": ev.dst, "nbytes": ev.nbytes,
                    "drops": ev.drops, "retries": ev.retries}
            events.append({"name": name, "cat": "msg", "ph": "i", "s": "t",
                           "ts": ev.t_end * us, "pid": 0, "tid": ev.src,
                           "args": args})
            if ev.lost:
                events.append({"name": f"LOST tag={ev.tag}", "cat": "fault",
                               "ph": "i", "s": "g", "ts": ev.t_end * us,
                               "pid": 0, "tid": ev.src,
                               "args": {"dst": ev.dst}})
            elif not ev.duplicate:
                events.append({"name": f"msg tag={ev.tag}", "cat": "msg",
                               "ph": "s", "id": flow_id[ev.seq],
                               "ts": ev.t_end * us,
                               "pid": 0, "tid": ev.src, "args": args})
        for ev in self.all_recvs():
            events.append({"name": f"recv tag={ev.tag}", "cat": "msg",
                           "ph": "i", "s": "t", "ts": ev.t_end * us,
                           "pid": 0, "tid": ev.rank,
                           "args": {"src": ev.src, "nbytes": ev.nbytes,
                                    "waited": ev.waited}})
            events.append({"name": f"msg tag={ev.tag}", "cat": "msg",
                           "ph": "f", "bp": "e",
                           "id": flow_id.get(ev.seq, ev.seq),
                           "ts": ev.arrival * us, "pid": 0,
                           "tid": ev.rank, "args": {}})
        if self.has_wall:
            events.append({"name": "process_name", "ph": "M", "pid": 1,
                           "args": {"name": "wall clock"}})
            events.append({"name": "process_sort_index", "ph": "M",
                           "pid": 1, "args": {"sort_index": 1}})
            for r in range(self.size):
                events.append({"name": "thread_name", "ph": "M", "pid": 1,
                               "tid": r,
                               "args": {"name": f"rank {r} (wall)"}})
                events.append({"name": "thread_sort_index", "ph": "M",
                               "pid": 1, "tid": r,
                               "args": {"sort_index": r}})
            for span in self.all_wall_phases():
                events.append({
                    "name": span.name, "cat": span.cat, "ph": "X",
                    "ts": span.t0 * us, "dur": span.duration * us,
                    "pid": 1, "tid": span.rank,
                    "args": {"depth": span.depth},
                })
        events.sort(key=lambda e: (e.get("ts", -1.0), e.get("pid", -1),
                                   e.get("tid", -1)))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "timebase": "virtual seconds (x 1e6 -> trace us)",
                "wall_timebase": ("wall seconds since run epoch "
                                  "(x 1e6 -> trace us)"
                                  if self.has_wall else None),
                "ranks": self.size,
                "parallel_time": self.parallel_time,
            },
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)


class Tracer:
    """Collects events during a run; :meth:`finish` yields the Trace.

    One instance serves all ranks of one engine run.  Per-rank lists are
    only ever appended to by that rank's own thread (a send is recorded
    by the *sender*), so no locking is needed.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"tracer size must be positive, got {size}")
        self.size = size
        self.phases: list[list[PhaseSpan]] = [[] for _ in range(size)]
        self.sends: list[list[SendEvent]] = [[] for _ in range(size)]
        self.recvs: list[list[RecvEvent]] = [[] for _ in range(size)]
        self.wall_phases: list[list[PhaseSpan]] = [[] for _ in range(size)]
        self.final_times: list[float] = [0.0] * size

    # Hooks — called from the machine layer, never charging any clock.
    def phase_span(self, rank: int, name: str, t0: float, t1: float,
                   depth: int = 1, cat: str = "phase") -> None:
        self.phases[rank].append(
            PhaseSpan(rank=rank, name=name, t0=t0, t1=t1,
                      depth=depth, cat=cat)
        )

    def send_event(self, ev: SendEvent) -> None:
        self.sends[ev.src].append(ev)

    def recv_event(self, ev: RecvEvent) -> None:
        self.recvs[ev.rank].append(ev)

    def adopt_wall_spans(self, rank: int,
                         spans: list[PhaseSpan]) -> None:
        """Install one rank's wall spans (shipped home by a worker)."""
        self.wall_phases[rank] = list(spans)

    def finish(self) -> Trace:
        return Trace(size=self.size, phases=self.phases, sends=self.sends,
                     recvs=self.recvs, final_times=list(self.final_times),
                     wall_phases=self.wall_phases)
