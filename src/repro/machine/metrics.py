"""Lightweight metrics registry for the virtual machine.

Three metric kinds, mirroring the usual monitoring vocabulary:

* :class:`Counter` — monotonically increasing total.
* :class:`Gauge` — last-set value, with a high-water convenience.
* :class:`Histogram` — fixed-boundary distribution with count/sum, so
  message sizes and wait times can be summarised without retaining every
  observation.

Each rank owns one :class:`MetricsRegistry` (created by its ``Comm``),
touched only from that rank's thread; the engine merges them into a
machine-wide registry on :class:`~repro.machine.engine.RunReport`.
Metric updates never charge any virtual clock, so they cannot perturb
virtual timings.

Metric names used by the machine and the simulation driver:

``comm.msg_bytes``            histogram of sent payload sizes (bytes)
``comm.recv_wait_seconds``    histogram of virtual arrival waits
``comm.retransmissions``      counter (reliable-layer resends)
``comm.drops``                counter (transmissions eaten by the network)
``mailbox.max_pending``       gauge, queue depth high-water mark
``sim.step_seconds``          histogram of per-rank per-step virtual time
``sim.particles_shipped``     counter, particles sent to another owner
``sim.particles_moved_in``    counter, particles gained in rebalancing
``recovery.restarts``         counter, crash/worker-loss recoveries (host)
``recovery.rollback_steps``   counter, step progress lost to rollbacks
``recovery.wall_seconds``     histogram, real seconds per recovery
``recovery.quiesce_seconds``  histogram, real seconds quiescing workers

The ``recovery.*`` family is host-side (kept by the simulation driver,
not any rank) and measures *real* time — recovery is a property of the
physical run, invisible to virtual clocks.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: Default byte-size buckets: powers of four from 1 B to ~1 GB.
BYTE_BUCKETS = tuple(4 ** k for k in range(16))
#: Default duration buckets: powers of four from 1 us up to ~18 min.
TIME_BUCKETS = tuple(1e-6 * 4 ** k for k in range(16))


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    __slots__ = ("value", "high_water")

    def __init__(self):
        self.value = 0.0
        self.high_water = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.high_water:
            self.high_water = v

    def merge_from(self, other: "Gauge") -> None:
        # Merging ranks: the machine-wide gauge reports the maximum.
        self.value = max(self.value, other.value)
        self.high_water = max(self.high_water, other.high_water)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value,
                "high_water": self.high_water}


class Histogram:
    """Fixed upper-boundary histogram (last bucket is +inf overflow)."""

    __slots__ = ("bounds", "counts", "total", "count", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = TIME_BUCKETS):
        self.bounds = tuple(bounds)
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.counts[bisect_left(self.bounds, x)] += 1
        self.total += x
        self.count += 1
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": le, "count": c}
                for le, c in zip(list(self.bounds) + ["+inf"], self.counts)
                if c
            ],
        }


class MetricsRegistry:
    """Get-or-create store of named metrics for one rank (or one run)."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind, factory):
        m = self._metrics.get(name)
        if m is None:
            m = factory()
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(m).__name__}, not {kind.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        return self._get(
            name, Histogram,
            lambda: Histogram(bounds) if bounds is not None else Histogram()
        )

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def merge_from(self, other: "MetricsRegistry") -> None:
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                mine = type(metric)() if not isinstance(metric, Histogram) \
                    else Histogram(metric.bounds)
                self._metrics[name] = mine
            mine.merge_from(metric)

    @classmethod
    def merged(cls, registries: "list[MetricsRegistry]") -> "MetricsRegistry":
        out = cls()
        for reg in registries:
            out.merge_from(reg)
        return out

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready ``{name: {type, ...}}`` view of every metric."""
        return {name: m.snapshot()
                for name, m in sorted(self._metrics.items())}
