"""Interconnect topologies and processor-numbering utilities.

The paper's SPSA scheme maps subdomain ``(i, j)`` to processor
``(gray(i, d/2), gray(j, d/2))`` of a ``d``-dimensional hypercube so that
spatially adjacent subdomains land on hypercube neighbours.  The topology
classes below provide the hop-count metric the cost model charges for each
point-to-point message, plus neighbour enumeration used by the hypercube
collective algorithms.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


def gray_code(i: int) -> int:
    """Return the ``i``-th binary-reflected Gray code."""
    if i < 0:
        raise ValueError(f"gray_code requires i >= 0, got {i}")
    return i ^ (i >> 1)


def gray_code_rank(g: int) -> int:
    """Inverse of :func:`gray_code`: position of code ``g`` in the table."""
    if g < 0:
        raise ValueError(f"gray_code_rank requires g >= 0, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return ``log2(n)`` for a power of two ``n``; raise otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


class Topology(ABC):
    """Abstract interconnect: a set of ``size`` nodes and a hop metric."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"topology size must be positive, got {size}")
        self.size = size

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between two processors."""

    @abstractmethod
    def neighbors(self, rank: int) -> list[int]:
        """Directly connected processors of ``rank``."""

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    @property
    def diameter(self) -> int:
        """Maximum hop distance between any pair of processors."""
        return max(
            self.hops(0, dst) for dst in range(self.size)
        ) if self.size > 1 else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size})"


class HypercubeTopology(Topology):
    """A ``d``-dimensional binary hypercube (the nCUBE2 interconnect).

    Processor labels are ``d``-bit integers; two processors are adjacent
    iff their labels differ in exactly one bit, and the hop distance is the
    Hamming distance.
    """

    def __init__(self, size: int):
        super().__init__(size)
        self.dim = log2_exact(size)

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return (src ^ dst).bit_count()

    def neighbors(self, rank: int) -> list[int]:
        self.check_rank(rank)
        return [rank ^ (1 << d) for d in range(self.dim)]

    @property
    def diameter(self) -> int:
        return self.dim

    def subcube_partner(self, rank: int, dimension: int) -> int:
        """Partner of ``rank`` across hypercube ``dimension``."""
        if not 0 <= dimension < self.dim:
            raise ValueError(f"dimension {dimension} out of range")
        return rank ^ (1 << dimension)


class MeshTopology(Topology):
    """A 2-D ``rows x cols`` mesh (no wraparound links)."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(rows * cols)
        self.rows = rows
        self.cols = cols

    def coords(self, rank: int) -> tuple[int, int]:
        self.check_rank(rank)
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coords ({row}, {col}) out of range")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        r0, c0 = self.coords(src)
        r1, c1 = self.coords(dst)
        return abs(r0 - r1) + abs(c0 - c1)

    def neighbors(self, rank: int) -> list[int]:
        r, c = self.coords(rank)
        out = []
        if r > 0:
            out.append(self.rank_of(r - 1, c))
        if r + 1 < self.rows:
            out.append(self.rank_of(r + 1, c))
        if c > 0:
            out.append(self.rank_of(r, c - 1))
        if c + 1 < self.cols:
            out.append(self.rank_of(r, c + 1))
        return out


class FatTreeTopology(Topology):
    """A ``k``-ary fat tree (the CM5 data network is a 4-ary fat tree).

    Processors are leaves; the hop count between two leaves is twice the
    depth of their lowest common ancestor measured from the leaves (up to
    the LCA and back down).
    """

    def __init__(self, size: int, arity: int = 4):
        if arity < 2:
            raise ValueError(f"fat-tree arity must be >= 2, got {arity}")
        super().__init__(size)
        self.arity = arity
        self.depth = max(1, math.ceil(math.log(size, arity))) if size > 1 else 1

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        if src == dst:
            return 0
        # Climb until both leaves fall in the same arity^level block.
        level = 0
        a, b = src, dst
        while a != b:
            a //= self.arity
            b //= self.arity
            level += 1
        return 2 * level

    def neighbors(self, rank: int) -> list[int]:
        """Leaves sharing the lowest-level switch with ``rank``."""
        self.check_rank(rank)
        block = (rank // self.arity) * self.arity
        return [
            r for r in range(block, min(block + self.arity, self.size))
            if r != rank
        ]


class CompleteTopology(Topology):
    """Fully connected graph: every pair one hop apart.

    Not a real machine; used by the zero-cost test profile so generic
    engine tests can run on any processor count.
    """

    def hops(self, src: int, dst: int) -> int:
        self.check_rank(src)
        self.check_rank(dst)
        return 0 if src == dst else 1

    def neighbors(self, rank: int) -> list[int]:
        self.check_rank(rank)
        return [r for r in range(self.size) if r != rank]


def make_topology(kind: str, size: int, **kwargs) -> Topology:
    """Factory used by machine profiles.

    ``kind`` is one of ``"hypercube"``, ``"mesh"``, ``"fattree"``.  For a
    mesh, the node count is factored into the most-square ``rows x cols``
    grid unless ``rows``/``cols`` are given.
    """
    kind = kind.lower()
    if kind == "complete":
        return CompleteTopology(size)
    if kind == "hypercube":
        return HypercubeTopology(size)
    if kind == "fattree":
        return FatTreeTopology(size, arity=kwargs.get("arity", 4))
    if kind == "mesh":
        rows = kwargs.get("rows")
        cols = kwargs.get("cols")
        if rows is None or cols is None:
            rows = int(math.sqrt(size))
            while rows > 1 and size % rows:
                rows -= 1
            cols = size // rows
        return MeshTopology(rows, cols)
    raise ValueError(f"unknown topology kind {kind!r}")
