"""Thread-safe, tag-matched message queues for the virtual machine.

One :class:`Mailbox` per rank.  A message carries its payload, its wire
size in bytes and its *virtual arrival time* (computed by the sender from
its own clock and the cost model), so receivers can charge their clocks
deterministically regardless of real thread scheduling.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

#: Wildcard source / tag, mirroring ``MPI.ANY_SOURCE`` / ``MPI.ANY_TAG``.
ANY_SOURCE = -1
ANY_TAG = -1

class SeqCounter:
    """An ``itertools.count`` whose next value can be read and re-seeded.

    The process backend gives each rank worker its own counter (seeded at
    ``rank << SEQ_SHIFT``), and rollback recovery must continue numbering
    exactly where the crashed attempt's checkpoint left off — otherwise
    restored pre-boundary trace events and re-executed post-boundary
    events would collide on ``seq``.  ``itertools.count`` cannot be
    inspected, so workers swap in this class; the iterator protocol is
    all ``Message`` needs.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def __iter__(self):
        return self

    def __next__(self) -> int:
        v = self.value
        self.value = v + 1
        return v


_seq_counter = itertools.count()


class MailboxClosedError(RuntimeError):
    """Raised for any operation on a mailbox after engine teardown.

    Typed (rather than a bare ``RuntimeError``) so the engine's root-cause
    selection can distinguish the rank that *caused* a failure from the
    ranks that merely got released by the subsequent mailbox close.
    """


@dataclass(order=True)
class Message:
    """One in-flight message.

    Ordered by ``(arrival, src, seq)`` so that wildcard receives pick the
    earliest *virtual* arrival among the matching messages present, which
    keeps virtual timing independent of thread interleaving in the common
    consume-everything patterns.
    """

    arrival: float
    src: int
    seq: int = field(default_factory=lambda: next(_seq_counter))
    tag: int = field(compare=False, default=0)
    payload: Any = field(compare=False, default=None)
    nbytes: int = field(compare=False, default=0)
    #: Reliable-delivery transmission id (src-local); duplicate copies of
    #: one logical message share it so the destination mailbox can
    #: suppress all but the first.  ``None`` outside the reliable layer.
    xmit_id: int | None = field(compare=False, default=None)


class Mailbox:
    """Blocking, (src, tag)-matched FIFO message store for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self._messages: list[Message] = []
        self._cond = threading.Condition()
        self._closed = False
        self._seen_xmits: set[tuple[int, int]] = set()
        #: Duplicate copies discarded on deposit (reliable layer).
        self.duplicates_suppressed = 0
        #: Queue-depth high-water mark (surfaced as a metrics gauge).
        self.max_pending = 0

    def put(self, msg: Message) -> None:
        """Deposit a message (called from the sender's thread).

        Messages carrying a reliable-delivery ``xmit_id`` are
        deduplicated here: the network may deliver several copies of one
        logical message, but only the first reaches the matching queues.
        The receiver pays nothing for a suppressed copy (a header-only
        discard); the sender already paid its channel charge.
        """
        with self._cond:
            if self._closed:
                raise MailboxClosedError(
                    f"mailbox of rank {self.rank} is closed (engine shut down)"
                )
            if msg.xmit_id is not None:
                key = (msg.src, msg.xmit_id)
                if key in self._seen_xmits:
                    self.duplicates_suppressed += 1
                    return
                self._seen_xmits.add(key)
            self._messages.append(msg)
            if len(self._messages) > self.max_pending:
                self.max_pending = len(self._messages)
            self._cond.notify_all()

    def requeue(self, msg: Message) -> None:
        """Re-deposit a message previously removed by :meth:`poll`.

        Unlike :meth:`put`, this bypasses duplicate suppression — the
        message already passed it on first deposit and would otherwise be
        destroyed by its own ``xmit_id``.
        """
        with self._cond:
            if self._closed:
                raise MailboxClosedError(
                    f"mailbox of rank {self.rank} is closed (engine shut down)"
                )
            self._messages.append(msg)
            if len(self._messages) > self.max_pending:
                self.max_pending = len(self._messages)
            self._cond.notify_all()

    def _match_index(self, src: int, tag: int) -> int | None:
        best: int | None = None
        for i, m in enumerate(self._messages):
            if src != ANY_SOURCE and m.src != src:
                continue
            if tag != ANY_TAG and m.tag != tag:
                continue
            if best is None or m < self._messages[best]:
                best = i
        return best

    def get(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
            timeout: float | None = None) -> Message:
        """Block until a matching message is available and remove it.

        Raises
        ------
        TimeoutError
            When ``timeout`` (real seconds) elapses first — the engine uses
            this as a deadlock watchdog.
        """
        with self._cond:
            while True:
                i = self._match_index(src, tag)
                if i is not None:
                    return self._messages.pop(i)
                if self._closed:
                    raise MailboxClosedError(
                        f"rank {self.rank}: receive on closed mailbox"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.rank}: recv(src={src}, tag={tag}) "
                        f"timed out after {timeout}s — likely deadlock"
                    )

    def poll(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Non-blocking matched receive; ``None`` when nothing matches."""
        with self._cond:
            i = self._match_index(src, tag)
            return self._messages.pop(i) if i is not None else None

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is queued (does not remove it)."""
        with self._cond:
            return self._match_index(src, tag) is not None

    def pending_count(self) -> int:
        with self._cond:
            return len(self._messages)

    def pending_summary(self) -> dict[tuple[int, int], int]:
        """``(src, tag) -> count`` of queued messages (deadlock reports)."""
        with self._cond:
            out: dict[tuple[int, int], int] = {}
            for m in self._messages:
                key = (m.src, m.tag)
                out[key] = out.get(key, 0) + 1
            return out

    def close(self) -> None:
        """Wake all blocked receivers with an error (engine teardown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
