"""Measurement and modelling utilities for the reproduction.

* :mod:`~repro.analysis.flops` — the paper's instruction-count model and
  serial-time extrapolation (the paper computes efficiencies "by
  extrapolating force computation rates on a single processor").
* :mod:`~repro.analysis.error` — fractional percentage error (Section 5.2.2).
* :mod:`~repro.analysis.metrics` — speedup/efficiency/phase breakdowns.
* :mod:`~repro.analysis.kruskal_weiss` — the Section 4.1 load-imbalance
  bound and the r >= p log p cluster-count rule.
* :mod:`~repro.analysis.tables` — paper-style text tables for benches.
* :mod:`~repro.analysis.critical_path` — longest send/wait/compute chain
  through a machine trace.
* :mod:`~repro.analysis.trace_report` — src x dst traffic matrix and the
  text phase waterfall.
* :mod:`~repro.analysis.skew_report` — per-phase virtual-vs-wall skew
  and measured wall load imbalance from a dual-clock trace.
"""

from repro.analysis.flops import (
    FLOPS_PER_MAC,
    interaction_flops,
    serial_time_estimate,
)
from repro.analysis.error import fractional_error, fractional_percent_error
from repro.analysis.metrics import (
    efficiency,
    speedup,
    phase_table,
)
from repro.analysis.kruskal_weiss import (
    expected_completion_time,
    imbalance_overhead,
    min_clusters,
)
from repro.analysis.tables import format_table
from repro.analysis.critical_path import (
    CriticalPath,
    Segment,
    critical_path,
    format_critical_path,
    step_critical_paths,
)
from repro.analysis.trace_report import (
    bytes_matrix,
    format_bytes_matrix,
    phase_waterfall,
)
from repro.analysis.skew_report import (
    PhaseSkew,
    format_skew_report,
    per_rank_wall_seconds,
    phase_skew,
    wall_load_imbalance,
)

__all__ = [
    "FLOPS_PER_MAC",
    "interaction_flops",
    "serial_time_estimate",
    "fractional_error",
    "fractional_percent_error",
    "efficiency",
    "speedup",
    "phase_table",
    "expected_completion_time",
    "imbalance_overhead",
    "min_clusters",
    "format_table",
    "CriticalPath",
    "Segment",
    "critical_path",
    "format_critical_path",
    "step_critical_paths",
    "bytes_matrix",
    "format_bytes_matrix",
    "phase_waterfall",
    "PhaseSkew",
    "format_skew_report",
    "per_rank_wall_seconds",
    "phase_skew",
    "wall_load_imbalance",
]
