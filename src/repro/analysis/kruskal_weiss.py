"""The Kruskal-Weiss bound of Section 4.1.

For r independent subtasks with mean mu and standard deviation sigma,
allocated r/p at a time to p processors, the expected completion time is

    T_p ~= r mu / p + sigma sqrt(2 (r/p) log p)

The first term is essential work, the second is load-imbalance overhead.
Requiring the overhead to grow slower than the work yields the paper's
rule r >= p log p: Theta(log p) clusters per processor balance the load.
"""

from __future__ import annotations

import math


def expected_completion_time(r: int, p: int, mean: float,
                             std: float) -> float:
    """Kruskal-Weiss expected makespan for r tasks on p processors."""
    if r <= 0 or p <= 0:
        raise ValueError("r and p must be positive")
    if mean < 0 or std < 0:
        raise ValueError("mean and std must be non-negative")
    work = r * mean / p
    log_p = math.log(p) if p > 1 else 0.0
    overhead = std * math.sqrt(2.0 * (r / p) * log_p)
    return work + overhead


def imbalance_overhead(r: int, p: int, mean: float, std: float) -> float:
    """Ratio of the imbalance term to the essential-work term."""
    if r <= 0 or p <= 0:
        raise ValueError("r and p must be positive")
    if mean <= 0:
        raise ValueError("mean must be positive to form the ratio")
    log_p = math.log(p) if p > 1 else 0.0
    work = r * mean / p
    overhead = std * math.sqrt(2.0 * (r / p) * log_p)
    return overhead / work


def min_clusters(p: int) -> int:
    """The paper's rule of thumb: r >= p log p clusters keep the
    imbalance term asymptotically below the work term."""
    if p <= 0:
        raise ValueError("p must be positive")
    if p == 1:
        return 1
    return math.ceil(p * math.log(p))
