"""Fractional (percentage) error, as defined in Section 5.2.2.

"If x_k is the potential vector returned by the k-degree polynomial
approximation and x is the accurate potential vector, then the fractional
error is defined as ||x - x_k|| / ||x||.  When expressed as a percentage,
we refer to this as the fractional percentage error of the treecode."
"""

from __future__ import annotations

import numpy as np


def fractional_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """||exact - approx|| / ||exact|| over flattened vectors."""
    approx = np.asarray(approx, dtype=np.float64).ravel()
    exact = np.asarray(exact, dtype=np.float64).ravel()
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    denom = np.linalg.norm(exact)
    if denom == 0.0:
        raise ValueError("exact vector has zero norm")
    return float(np.linalg.norm(exact - approx) / denom)


def fractional_percent_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """The paper's tabulated quantity: 100 * fractional error."""
    return 100.0 * fractional_error(approx, exact)
