"""Paper-style plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, precision: int = 2) -> str:
    """Render an aligned text table (floats at fixed precision)."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells
        else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
