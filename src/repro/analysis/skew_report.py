"""Virtual-vs-wall skew analysis of a dual-clock trace.

A dual-clock trace (process backend, ``wall_trace``) records every
phase twice: once on the virtual clock (what the cost model charged)
and once on the wall clock (what the hardware measured).  The *skew* of
a phase is the disagreement between the two — the places the model says
are expensive but the machine finds cheap, and vice versa.  This is the
measured-profile view Valdarnini-style treecode papers ground their
scaling claims in, computed from our own trace artifact.

Wall seconds and virtual seconds are different units, so raw ratios
mean little across machines; the reports therefore compare *shares*:
each phase's fraction of total virtual time against its fraction of
total wall time.  A phase whose wall share exceeds its virtual share is
under-modelled (the cost model flatters it); the reverse means
over-modelled.

Everything operates on the :class:`~repro.machine.trace.Trace`
artifact only, so reports can be produced from a saved trace without
re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.trace import PhaseSpan, Trace

#: Wall-span categories that correspond to clock phases (transport /
#: checkpoint / recovery spans are wall-only mechanics with no virtual
#: counterpart, so skew is undefined for them).
_WALL_PHASE_CAT = "wall:phase"


@dataclass
class PhaseSkew:
    """One phase's virtual-vs-wall comparison, machine-wide."""

    name: str
    virtual_seconds: float     # summed over all ranks (depth-1 spans)
    wall_seconds: float
    virtual_share: float       # fraction of total virtual seconds
    wall_share: float          # fraction of total wall seconds

    @property
    def skew(self) -> float:
        """``wall_share - virtual_share``: positive = under-modelled."""
        return self.wall_share - self.virtual_share


def _sum_by_phase(spans: list[PhaseSpan], cat: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for s in spans:
        if s.cat != cat or s.depth != 1:
            # Depth-1 only: nested spans double-count their parents.
            continue
        out[s.name] = out.get(s.name, 0.0) + s.duration
    return out


def phase_skew(trace: Trace) -> list[PhaseSkew]:
    """Per-phase virtual-vs-wall skew, sorted by |skew| descending.

    Raises ``ValueError`` on a trace without wall tracks — skew needs
    both clocks.
    """
    if not trace.has_wall:
        raise ValueError(
            "trace has no wall tracks; run with wall tracing enabled "
            "(process backend, wall_trace=True)"
        )
    virt = _sum_by_phase(trace.all_phases(), "phase")
    wall = _sum_by_phase(trace.all_wall_phases(), _WALL_PHASE_CAT)
    v_total = sum(virt.values())
    w_total = sum(wall.values())
    rows = []
    for name in sorted(set(virt) | set(wall)):
        v = virt.get(name, 0.0)
        w = wall.get(name, 0.0)
        rows.append(PhaseSkew(
            name=name, virtual_seconds=v, wall_seconds=w,
            virtual_share=(v / v_total if v_total else 0.0),
            wall_share=(w / w_total if w_total else 0.0),
        ))
    rows.sort(key=lambda r: (-abs(r.skew), r.name))
    return rows


def wall_load_imbalance(trace: Trace,
                        phase: str | None = None) -> float:
    """Measured wall-time load imbalance: ``max/mean`` of per-rank wall
    seconds (1.0 = perfectly balanced), over one phase or all phases.

    The wall analogue of ``RunReport.load_imbalance`` — the virtual
    number says how imbalanced the *model* thinks the ranks are; this
    says how imbalanced the hardware found them.
    """
    if not trace.has_wall:
        raise ValueError(
            "trace has no wall tracks; run with wall tracing enabled"
        )
    per_rank = []
    for spans in trace.wall_phases:
        total = sum(s.duration for s in spans
                    if s.cat == _WALL_PHASE_CAT and s.depth == 1
                    and (phase is None or s.name == phase))
        per_rank.append(total)
    mean = sum(per_rank) / len(per_rank) if per_rank else 0.0
    if mean == 0.0:
        return 1.0
    return max(per_rank) / mean


def per_rank_wall_seconds(trace: Trace) -> list[float]:
    """Total depth-1 wall phase seconds per rank."""
    return [
        sum(s.duration for s in spans
            if s.cat == _WALL_PHASE_CAT and s.depth == 1)
        for spans in trace.wall_phases
    ]


def format_skew_report(trace: Trace) -> str:
    """The skew analysis as an aligned text table."""
    rows = phase_skew(trace)
    lines = [
        "virtual-vs-wall phase skew (shares of each clock's total;",
        "positive skew = phase is under-modelled by the cost model):",
        f"{'phase':<26s} {'virt s':>12s} {'wall s':>10s} "
        f"{'virt %':>8s} {'wall %':>8s} {'skew':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<26s} {r.virtual_seconds:>12.6f} "
            f"{r.wall_seconds:>10.4f} {100 * r.virtual_share:>7.1f}% "
            f"{100 * r.wall_share:>7.1f}% {100 * r.skew:>+7.1f}%"
        )
    imb = wall_load_imbalance(trace)
    per_rank = per_rank_wall_seconds(trace)
    lines.append("")
    lines.append("per-rank wall seconds (clock phases): "
                 + "  ".join(f"r{r}={t:.4f}"
                             for r, t in enumerate(per_rank)))
    lines.append(f"wall load imbalance (max/mean): {imb:.3f}")
    return "\n".join(lines)
