"""Text-mode views of a machine trace: traffic matrix and waterfall.

These operate on the :class:`~repro.machine.trace.Trace` artifact only,
so they can be produced from a saved trace without re-running anything.
"""

from __future__ import annotations

import numpy as np

from repro.machine.trace import Trace


def bytes_matrix(trace: Trace, include_lost: bool = False) -> np.ndarray:
    """``(p, p)`` payload-byte totals: entry ``[src, dst]``.

    The diagonal is local (free) traffic.  Lost transmissions are
    excluded unless ``include_lost`` (their bytes never arrived); the
    duplicate copies the network injected are always excluded, so the
    matrix matches the receiver-side per-tag accounting on a reliable
    machine.
    """
    m = np.zeros((trace.size, trace.size), dtype=np.int64)
    for ev in trace.all_sends():
        if ev.duplicate:
            continue
        if ev.lost and not include_lost:
            continue
        m[ev.src, ev.dst] += ev.nbytes
    return m


def format_bytes_matrix(trace: Trace, include_lost: bool = False) -> str:
    """The src x dst byte matrix as an aligned text table."""
    m = bytes_matrix(trace, include_lost=include_lost)
    p = trace.size
    width = max(8, max(len(str(int(v))) for v in m.flat) + 1)
    head = "src\\dst " + "".join(f"{d:>{width}d}" for d in range(p)) \
        + f"{'total':>{width + 2}s}"
    lines = ["bytes sent (payload), by source and destination:", head]
    for s in range(p):
        row = "".join(f"{int(m[s, d]):>{width}d}" for d in range(p))
        lines.append(f"{s:>7d} {row}{int(m[s].sum()):>{width + 2}d}")
    col_tot = "".join(f"{int(m[:, d].sum()):>{width}d}" for d in range(p))
    lines.append(f"{'total':>7s} {col_tot}{int(m.sum()):>{width + 2}d}")
    return "\n".join(lines)


#: Waterfall glyphs for the paper's phase names; other phases get letters
#: assigned on the fly.
_GLYPHS = {
    "setup": "s",
    "load balancing": "b",
    "local tree construction": "t",
    "tree merging": "m",
    "all-to-all broadcast": "a",
    "force computation": "F",
    "particle advance": "v",
    "other": ".",
}


def phase_waterfall(trace: Trace, width: int = 72) -> str:
    """One row per rank, time binned left to right; each cell shows the
    phase the rank spent most of that bin in (innermost span wins ties
    toward deeper nesting; blank = outside any phase block).

    This is the flamegraph squint-view: load imbalance appears as ragged
    right edges, phase skew as misaligned columns.
    """
    t_end = trace.parallel_time
    if t_end <= 0 or width <= 0:
        return "(empty trace)"
    glyphs = dict(_GLYPHS)
    spare = iter("ABCDEGHIJKLMNOPQRSTUWXYZ")
    dt = t_end / width
    lines = [f"phase waterfall  [0, {t_end:.6f}] s, "
             f"{width} bins of {dt:.3e} s:"]
    used: dict[str, str] = {}
    for rank in range(trace.size):
        spans = [sp for sp in trace.phases[rank] if sp.cat == "phase"]
        row = []
        final = trace.final_times[rank] if trace.final_times else t_end
        for i in range(width):
            b0, b1 = i * dt, (i + 1) * dt
            if b0 >= final:
                row.append(" ")
                continue
            # Deepest-first so nested (more specific) phases win the bin.
            best_name, best_score = None, 0.0
            for sp in spans:
                overlap = min(sp.t1, b1) - max(sp.t0, b0)
                if overlap <= 0:
                    continue
                score = overlap * (1 + 1e-9 * sp.depth)
                if score > best_score:
                    best_name, best_score = sp.name, score
            if best_name is None:
                row.append("-")
            else:
                g = glyphs.get(best_name)
                if g is None:
                    g = next(spare, "?")
                    glyphs[best_name] = g
                used[best_name] = g
                row.append(g)
        lines.append(f"rank {rank:>3d} |{''.join(row)}|")
    legend = ", ".join(f"{g}={name}" for name, g in sorted(
        used.items(), key=lambda kv: kv[1]))
    lines.append(f"legend: {legend or '(no phases recorded)'}; "
                 f"-=untracked, blank=finished")
    return "\n".join(lines)
