"""The paper's instruction-count model (Section 5.2.1).

"In our code, each particle-cluster interaction requires 13 + k^2 * 16
floating point instructions, where k is the degree of polynomial used.
The MAC routine requires 14 floating point instructions."

These counts are what the virtual machine charges for treecode work, and
what the serial-time extrapolation uses — exactly how the paper computed
efficiencies for problems too large to run on one node.
"""

from __future__ import annotations

from repro.machine.costmodel import MachineProfile

#: Flops per multipole-acceptance test.
FLOPS_PER_MAC = 14.0


def interaction_flops(degree: int) -> float:
    """Flops for one particle-cluster interaction at multipole degree k.

    Monopole interactions (degree 0) and leaf-level particle-particle
    interactions are charged as the k = 1 case (a point-mass interaction
    still needs the distance, the kernel and the accumulate).
    """
    if degree < 0:
        raise ValueError(f"negative degree {degree}")
    k = max(degree, 1)
    return 13.0 + 16.0 * k * k


def traversal_flops(mac_tests: int, cluster_interactions: int,
                    p2p_interactions: int, degree: int) -> float:
    """Total flops of a traversal per the paper's model."""
    return (FLOPS_PER_MAC * mac_tests
            + interaction_flops(degree) * cluster_interactions
            + interaction_flops(0) * p2p_interactions)


def serial_time_estimate(total_flops: float,
                         profile: MachineProfile) -> float:
    """Virtual single-processor time for the given amount of treecode
    work: the denominator of every efficiency in Tables 5-7."""
    if total_flops < 0:
        raise ValueError(f"negative flop count {total_flops}")
    return total_flops / profile.flops_per_second
