"""Critical-path extraction from a machine trace.

The virtual machine's event graph has a simple causal structure: a
rank's clock only ever moves by *local charges* (compute, channel and
copy-out time) or by *waiting* for a message's virtual arrival.  A
receive that actually waited (``RecvEvent.waited``) means the receiver's
clock was bound by the sender's chain at that moment; every other moment
is locally bound.  The critical path is therefore recovered by walking
backwards from the last rank to finish:

1. on the current rank, find the latest waited receive completed before
   the current time ``t`` — everything from its arrival to ``t`` is a
   local ("compute") segment;
2. the interval from the sender's channel-charge end to the arrival is a
   "network" segment (per-hop latency, retransmission penalties, injected
   delays);
3. hop to the sender at its send time and repeat, until virtual time 0
   (or the requested window start).

The segments tile the walked interval, so the chain length equals the
run's ``parallel_time`` (up to floating-point summation error) — that
identity is the extractor's self-check and is pinned by the tests.

Compute segments are attributed to the innermost phase span covering
them, splitting segments at phase boundaries, so the report can say "the
critical path spends 42 % of its time in force computation on rank 3".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.trace import PhaseSpan, Trace

_EPS = 1e-15


@dataclass
class Segment:
    """One link of the critical path, on one rank's timeline."""

    rank: int
    kind: str               # "compute" | "network"
    t0: float
    t1: float
    phase: str | None = None   # innermost covering phase (compute only)
    tag: int | None = None     # message tag (network only)
    src: int | None = None     # sender rank (network only)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPath:
    """The longest send/wait/compute chain ending at ``end``."""

    segments: list[Segment]    # chronological
    start: float
    end: float

    @property
    def length(self) -> float:
        return sum(s.duration for s in self.segments)

    def by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    def by_phase(self) -> dict[str, float]:
        """Compute time on the chain per phase ("(untracked)" outside any
        phase block); network time under the "(network)" key."""
        out: dict[str, float] = {}
        for s in self.segments:
            key = ("(network)" if s.kind == "network"
                   else s.phase or "(untracked)")
            out[key] = out.get(key, 0.0) + s.duration
        return out

    def hops(self) -> int:
        """Number of cross-rank message edges on the chain."""
        return sum(1 for s in self.segments if s.kind == "network")


def _innermost_phase(spans: list[PhaseSpan], t0: float,
                     t1: float) -> list[tuple[float, float, str | None]]:
    """Split ``[t0, t1]`` at phase boundaries; attribute each piece to the
    innermost (deepest) covering span.  ``spans`` are one rank's."""
    cuts = {t0, t1}
    for sp in spans:
        if sp.cat != "phase":
            continue
        if t0 < sp.t0 < t1:
            cuts.add(sp.t0)
        if t0 < sp.t1 < t1:
            cuts.add(sp.t1)
    edges = sorted(cuts)
    pieces: list[tuple[float, float, str | None]] = []
    for a, b in zip(edges, edges[1:]):
        mid = 0.5 * (a + b)
        best: PhaseSpan | None = None
        for sp in spans:
            if sp.cat != "phase" or not (sp.t0 <= mid <= sp.t1):
                continue
            if best is None or sp.depth > best.depth:
                best = sp
        pieces.append((a, b, best.name if best is not None else None))
    return pieces


def critical_path(trace: Trace, rank: int | None = None,
                  start: float = 0.0,
                  end: float | None = None) -> CriticalPath:
    """Walk the event graph backwards from ``(rank, end)``.

    Defaults to the last rank to finish at its final time, i.e. the chain
    that *defines* ``parallel_time``.  ``start``/``end`` clip the walk to
    a window (used for per-step chains).
    """
    if rank is None:
        rank = max(range(trace.size),
                   key=lambda r: trace.final_times[r])
    if end is None:
        end = trace.final_times[rank]
    sends = trace.sends_by_seq()
    raw: list[Segment] = []
    r, t = rank, end
    guard = sum(len(evs) for evs in trace.recvs) + 2
    while t > start + _EPS and guard > 0:
        guard -= 1
        bind = None
        for ev in reversed(trace.recvs[r]):
            if ev.waited and start + _EPS < ev.arrival <= t + _EPS:
                bind = ev
                break
        if bind is None:
            raw.append(Segment(rank=r, kind="compute", t0=start, t1=t))
            break
        if t > bind.arrival:
            raw.append(Segment(rank=r, kind="compute",
                               t0=bind.arrival, t1=t))
        send = sends.get(bind.seq)
        if send is None:
            # Untraceable edge (shouldn't happen): close out as network.
            raw.append(Segment(rank=r, kind="network", t0=start,
                               t1=bind.arrival, tag=bind.tag, src=bind.src))
            break
        net_t0 = max(start, send.t_end)
        raw.append(Segment(rank=r, kind="network", t0=net_t0,
                           t1=bind.arrival, tag=bind.tag, src=send.src))
        r, t = send.src, send.t_end
    raw.reverse()
    segments: list[Segment] = []
    for seg in raw:
        if seg.duration <= 0:
            continue
        if seg.kind == "compute":
            for a, b, phase in _innermost_phase(trace.phases[seg.rank],
                                                seg.t0, seg.t1):
                if b > a:
                    segments.append(Segment(rank=seg.rank, kind="compute",
                                            t0=a, t1=b, phase=phase))
        else:
            segments.append(seg)
    return CriticalPath(segments=segments, start=start, end=end)


def step_critical_paths(trace: Trace) -> dict[int, CriticalPath]:
    """Per-step chains, windowed by the ``cat="step"`` marker spans."""
    out: dict[int, CriticalPath] = {}
    for step, spans in sorted(trace.step_spans().items()):
        t0 = min(sp.t0 for sp in spans)
        last = max(spans, key=lambda sp: sp.t1)
        out[step] = critical_path(trace, rank=last.rank,
                                  start=t0, end=last.t1)
    return out


def format_critical_path(cp: CriticalPath, max_segments: int = 30) -> str:
    """Human-readable chain: one line per segment, newest last."""
    lines = [
        f"critical path: {cp.length:.6f} s over [{cp.start:.6f}, "
        f"{cp.end:.6f}], {cp.hops()} message hop(s)"
    ]
    for kind, dt in sorted(cp.by_kind().items()):
        lines.append(f"  {kind:<8s} {dt:12.6f} s")
    lines.append("  chain (oldest first):")
    segs = cp.segments
    shown = segs if len(segs) <= max_segments else segs[-max_segments:]
    if shown is not segs:
        lines.append(f"    ... {len(segs) - len(shown)} earlier "
                     f"segment(s) elided ...")
    for s in shown:
        what = (f"{s.phase or '(untracked)'}" if s.kind == "compute"
                else f"msg tag={s.tag} from rank {s.src}")
        lines.append(
            f"    rank {s.rank:>3d}  {s.kind:<8s} "
            f"{s.t0:12.6f} -> {s.t1:12.6f}  ({s.duration:10.6f} s)  {what}"
        )
    return "\n".join(lines)
