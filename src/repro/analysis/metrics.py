"""Speedup, efficiency, and phase-breakdown helpers.

The paper's efficiency figures come from extrapolated serial times
(Section 5: "it is impossible to run these instances on a single
processor...  we use the force evaluation rates of the serial and
parallel versions to compute parallel efficiency").  ``efficiency`` takes
exactly those two ingredients: an extrapolated serial time and the
measured (virtual) parallel time.
"""

from __future__ import annotations

from repro.machine.engine import RunReport


def speedup(serial_time: float, parallel_time: float) -> float:
    if serial_time < 0:
        raise ValueError(f"negative serial time {serial_time}")
    if parallel_time <= 0:
        raise ValueError(f"parallel time must be positive, got {parallel_time}")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, p: int) -> float:
    """E = S / p = T_serial / (p * T_parallel)."""
    if p <= 0:
        raise ValueError(f"processor count must be positive, got {p}")
    return speedup(serial_time, parallel_time) / p


#: Phase names in the paper's Table 3 order.
TABLE3_PHASES = [
    "local tree construction",
    "tree merging",
    "all-to-all broadcast",
    "force computation",
    "load balancing",
]


def phase_table(report: RunReport,
                phases: list[str] | None = None) -> dict[str, float]:
    """Per-phase max-over-ranks times in a fixed order (Table 3 layout).

    Phases the run never entered are reported as 0, as the paper does
    for SPSA's load-balancing row ("the SPSA scheme spends no time in
    balancing load since load balance is implicit").
    """
    measured = report.phase_max()
    names = TABLE3_PHASES if phases is None else phases
    out = {name: measured.get(name, 0.0) for name in names}
    extras = {k: v for k, v in measured.items() if k not in out}
    out.update(extras)
    return out
