"""Gravitational interaction kernels (vectorized, optionally softened).

Sign conventions: the potential of a point mass ``m`` at distance ``r`` is
``phi = -G m / r``; the acceleration on a unit-mass test particle is
``a = -G m r_vec / r^3`` where ``r_vec`` points from source to target...
i.e. attraction.  All kernels broadcast a batch of targets against a batch
of sources.
"""

from __future__ import annotations

import numpy as np

#: Gravitational constant in simulation units (G = 1, the n-body custom).
G = 1.0

#: Default bound on the pair kernels' (chunk, ns, d) temporaries, bytes.
DEFAULT_WORKING_SET_BYTES = 16 * 2 ** 20


def _target_chunk(nt: int, ns: int, d: int,
                  working_set_bytes: int | None) -> int:
    """Targets per chunk so live temporaries stay inside the working set.

    The widest pass holds the (chunk, ns, d) difference tensor plus a
    few (chunk, ns) scalars — about ``(d + 3)`` float64 per pair.
    """
    ws = (DEFAULT_WORKING_SET_BYTES if working_set_bytes is None
          else int(working_set_bytes))
    row_bytes = max(1, ns) * 8 * (d + 3)
    return max(1, ws // row_bytes)


def _pair_potential_block(t: np.ndarray, s: np.ndarray,
                          source_masses: np.ndarray,
                          softening: float) -> np.ndarray:
    diff = t[:, None, :] - s[None, :, :]                    # (nt, ns, d)
    r2 = np.einsum("ijk,ijk->ij", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[r2 == 0.0] = 0.0
    return -G * inv_r @ source_masses


def _pair_force_block(t: np.ndarray, s: np.ndarray,
                      source_masses: np.ndarray,
                      softening: float) -> np.ndarray:
    diff = t[:, None, :] - s[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r3 = r2 ** -1.5
    inv_r3[r2 == 0.0] = 0.0
    w = source_masses[None, :] * inv_r3                     # (nt, ns)
    return -G * np.einsum("ij,ijk->ik", w, diff)


def pair_potential(targets: np.ndarray, sources: np.ndarray,
                   source_masses: np.ndarray,
                   softening: float = 0.0,
                   working_set_bytes: int | None = None) -> np.ndarray:
    """Potential at each target from every source: shape (ntargets,).

    Coincident target/source pairs contribute nothing (they are the
    self-interaction case; the softened kernel also makes them finite).
    Targets are processed in chunks so peak temporary memory is bounded
    by ``working_set_bytes`` (default 16 MB) instead of O(nt·ns·d);
    each target row is computed with identical arithmetic either way.
    """
    t = np.atleast_2d(targets)
    s = np.atleast_2d(sources)
    nt, ns = t.shape[0], s.shape[0]
    chunk = _target_chunk(nt, ns, t.shape[1], working_set_bytes)
    if nt <= chunk:
        return _pair_potential_block(t, s, source_masses, softening)
    out = np.empty(nt)
    for lo in range(0, nt, chunk):
        hi = min(lo + chunk, nt)
        out[lo:hi] = _pair_potential_block(t[lo:hi], s, source_masses,
                                           softening)
    return out


def pair_force(targets: np.ndarray, sources: np.ndarray,
               source_masses: np.ndarray,
               softening: float = 0.0,
               working_set_bytes: int | None = None) -> np.ndarray:
    """Acceleration at each target from every source: shape (nt, d).

    Chunked over targets like :func:`pair_potential`.
    """
    t = np.atleast_2d(targets)
    s = np.atleast_2d(sources)
    nt, ns = t.shape[0], s.shape[0]
    chunk = _target_chunk(nt, ns, t.shape[1], working_set_bytes)
    if nt <= chunk:
        return _pair_force_block(t, s, source_masses, softening)
    out = np.empty((nt, t.shape[1]))
    for lo in range(0, nt, chunk):
        hi = min(lo + chunk, nt)
        out[lo:hi] = _pair_force_block(t[lo:hi], s, source_masses,
                                       softening)
    return out


def point_mass_potential(targets: np.ndarray, center: np.ndarray,
                         mass: float, softening: float = 0.0) -> np.ndarray:
    """Monopole potential of one aggregated mass at ``center``."""
    diff = np.atleast_2d(targets) - np.asarray(center)
    r2 = np.einsum("ij,ij->i", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[r2 == 0.0] = 0.0
    return -G * mass * inv_r


def point_mass_force(targets: np.ndarray, center: np.ndarray,
                     mass: float, softening: float = 0.0) -> np.ndarray:
    """Monopole acceleration of one aggregated mass at ``center``."""
    diff = np.atleast_2d(targets) - np.asarray(center)
    r2 = np.einsum("ij,ij->i", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r3 = r2 ** -1.5
    inv_r3[r2 == 0.0] = 0.0
    return -G * mass * diff * inv_r3[:, None]
