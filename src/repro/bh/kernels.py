"""Gravitational interaction kernels (vectorized, optionally softened).

Sign conventions: the potential of a point mass ``m`` at distance ``r`` is
``phi = -G m / r``; the acceleration on a unit-mass test particle is
``a = -G m r_vec / r^3`` where ``r_vec`` points from source to target...
i.e. attraction.  All kernels broadcast a batch of targets against a batch
of sources.
"""

from __future__ import annotations

import numpy as np

#: Gravitational constant in simulation units (G = 1, the n-body custom).
G = 1.0


def pair_potential(targets: np.ndarray, sources: np.ndarray,
                   source_masses: np.ndarray,
                   softening: float = 0.0) -> np.ndarray:
    """Potential at each target from every source: shape (ntargets,).

    Coincident target/source pairs contribute nothing (they are the
    self-interaction case; the softened kernel also makes them finite).
    """
    t = np.atleast_2d(targets)
    s = np.atleast_2d(sources)
    diff = t[:, None, :] - s[None, :, :]                    # (nt, ns, d)
    r2 = np.einsum("ijk,ijk->ij", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[r2 == 0.0] = 0.0
    return -G * inv_r @ source_masses


def pair_force(targets: np.ndarray, sources: np.ndarray,
               source_masses: np.ndarray,
               softening: float = 0.0) -> np.ndarray:
    """Acceleration at each target from every source: shape (nt, d)."""
    t = np.atleast_2d(targets)
    s = np.atleast_2d(sources)
    diff = t[:, None, :] - s[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r3 = r2 ** -1.5
    inv_r3[r2 == 0.0] = 0.0
    w = source_masses[None, :] * inv_r3                     # (nt, ns)
    return -G * np.einsum("ij,ijk->ik", w, diff)


def point_mass_potential(targets: np.ndarray, center: np.ndarray,
                         mass: float, softening: float = 0.0) -> np.ndarray:
    """Monopole potential of one aggregated mass at ``center``."""
    diff = np.atleast_2d(targets) - np.asarray(center)
    r2 = np.einsum("ij,ij->i", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r = 1.0 / np.sqrt(r2)
    inv_r[r2 == 0.0] = 0.0
    return -G * mass * inv_r


def point_mass_force(targets: np.ndarray, center: np.ndarray,
                     mass: float, softening: float = 0.0) -> np.ndarray:
    """Monopole acceleration of one aggregated mass at ``center``."""
    diff = np.atleast_2d(targets) - np.asarray(center)
    r2 = np.einsum("ij,ij->i", diff, diff) + softening ** 2
    with np.errstate(divide="ignore"):
        inv_r3 = r2 ** -1.5
    inv_r3[r2 == 0.0] = 0.0
    return -G * mass * diff * inv_r3[:, None]
