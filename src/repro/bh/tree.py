"""Quad/oct trees with leaf capacity ``s`` and chain collapsing.

The tree is stored as flat numpy arrays (children table, boxes, particle
slices) built from Morton-sorted particles, which makes construction
O(n log n) with vectorized splits and keeps every node's particle set a
*contiguous slice* of the Morton order — the property the DPDA costzones
scheme exploits to collect "all particles lying in the tree between load
boundaries" with array slicing.

Cell identity: every node corresponds to a spatial cell addressed by
``(depth, path_key)`` where ``path_key`` is the node's Morton prefix (the
``depth`` leading d-bit groups of its particles' Morton keys).  These keys
are the "unique key computed for each branch node" of the paper's
function-shipping protocol.

A node can be a *remote leaf*: a placeholder for a subtree owned by
another virtual processor (``remote_owner >= 0``).  ``build_tree`` never
creates those; the distributed top-tree merge does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bh.morton import morton_keys
from repro.bh.particles import Box, ParticleSet

NO_CHILD = -1


def cell_box(root: Box, depth: int, path_key: int) -> Box:
    """Box of the cell addressed by ``(depth, path_key)`` under ``root``."""
    d = root.dims
    if depth < 0:
        raise ValueError(f"negative cell depth {depth}")
    if not 0 <= path_key < (1 << (d * depth)):
        raise ValueError(f"path_key {path_key} invalid at depth {depth}")
    box = root
    for level in range(depth - 1, -1, -1):
        octant = (path_key >> (d * level)) & ((1 << d) - 1)
        box = box.child(octant)
    return box


@dataclass
class Tree:
    """Flat-array spatial tree.  See module docstring.

    Node arrays (all length ``nnodes``):

    - ``children``: (nnodes, 2^d) child node ids, ``NO_CHILD`` if absent
    - ``depth``, ``path_key``: cell address
    - ``center``, ``half``: node box
    - ``start``, ``end``: slice into ``order`` (Morton-sorted particle
      index array) — empty for remote leaves
    - ``mass``, ``com``: monopole data (filled by ``compute_monopoles``)
    - ``remote_owner``: owning rank of a remote-leaf placeholder, else -1
    - ``remote_key``: branch key of a remote leaf, else -1
    """

    root_box: Box
    dims: int
    leaf_capacity: int
    max_depth: int
    children: np.ndarray
    depth: np.ndarray
    path_key: np.ndarray
    center: np.ndarray
    half: np.ndarray
    start: np.ndarray
    end: np.ndarray
    order: np.ndarray
    mass: np.ndarray = None  # type: ignore[assignment]
    com: np.ndarray = None  # type: ignore[assignment]
    remote_owner: np.ndarray = None  # type: ignore[assignment]
    remote_key: np.ndarray = None  # type: ignore[assignment]
    #: per-node interaction counters for DPDA load balancing
    interactions: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        n = self.children.shape[0]
        if self.remote_owner is None:
            self.remote_owner = np.full(n, -1, dtype=np.int32)
        if self.remote_key is None:
            self.remote_key = np.full(n, -1, dtype=np.int64)
        if self.interactions is None:
            self.interactions = np.zeros(n, dtype=np.int64)
        if self.mass is None:
            self.mass = np.zeros(n)
        if self.com is None:
            self.com = np.zeros((n, self.dims))

    ROOT = 0

    @property
    def nnodes(self) -> int:
        return self.children.shape[0]

    @property
    def n_particles(self) -> int:
        return self.order.size

    def count(self, node: int) -> int:
        return int(self.end[node] - self.start[node])

    def is_leaf(self, node: int) -> bool:
        return bool((self.children[node] == NO_CHILD).all())

    def is_remote(self, node: int) -> bool:
        return bool(self.remote_owner[node] >= 0)

    def node_box(self, node: int) -> Box:
        return Box(self.center[node], float(self.half[node]))

    def particle_indices(self, node: int) -> np.ndarray:
        """Original indices of the particles under ``node``."""
        return self.order[self.start[node]:self.end[node]]

    def leaves(self) -> np.ndarray:
        return np.flatnonzero((self.children == NO_CHILD).all(axis=1))

    def node_depth_max(self) -> int:
        return int(self.depth.max()) if self.nnodes else 0

    def compute_monopoles(self, particles: ParticleSet) -> None:
        """Fill ``mass``/``com`` bottom-up from the particle slices.

        Remote leaves are expected to have mass/com pre-filled by the
        tree merge; they are left untouched.
        """
        pos, m = particles.positions, particles.masses
        for node in range(self.nnodes - 1, -1, -1):
            if self.is_remote(node):
                continue
            lo, hi = self.start[node], self.end[node]
            if self.is_leaf(node):
                idx = self.order[lo:hi]
                mm = m[idx]
                total = mm.sum()
                self.mass[node] = total
                if total > 0:
                    self.com[node] = (mm[:, None] * pos[idx]).sum(axis=0) / total
                else:
                    self.com[node] = self.center[node]
            else:
                kids = self.children[node]
                kids = kids[kids != NO_CHILD]
                total = self.mass[kids].sum()
                self.mass[node] = total
                if total > 0:
                    self.com[node] = (
                        self.mass[kids, None] * self.com[kids]
                    ).sum(axis=0) / total
                else:
                    self.com[node] = self.center[node]

    def sum_interactions_up(self) -> None:
        """Propagate per-node interaction counts to ancestors (DPDA:
        "this variable is summed up along the tree").

        Child ids are always greater than their parent id (the build
        appends children after parents), so a reverse scan accumulates
        correctly.
        """
        for node in range(self.nnodes - 1, -1, -1):
            kids = self.children[node]
            kids = kids[kids != NO_CHILD]
            if kids.size:
                self.interactions[node] += self.interactions[kids].sum()


@dataclass
class _Builder:
    keys: np.ndarray       # Morton keys in sorted order
    order: np.ndarray      # particle indices in Morton order
    dims: int
    bits: int
    leaf_capacity: int
    collapse_chains: bool
    root_box: Box
    children: list = field(default_factory=list)
    depth: list = field(default_factory=list)
    path_key: list = field(default_factory=list)
    center: list = field(default_factory=list)
    half: list = field(default_factory=list)
    start: list = field(default_factory=list)
    end: list = field(default_factory=list)

    def build(self, lo: int, hi: int, depth: int, path_key: int,
              box: Box) -> int:
        d = self.dims
        nkids = 1 << d
        # Chain collapsing: while every particle falls in a single child,
        # descend without materialising the chain node (bounds tree size
        # for pathological pairs, as in Callahan-Kosaraju).
        if self.collapse_chains:
            while hi - lo > self.leaf_capacity and depth < self.bits:
                shift = (self.bits - depth - 1) * d
                first = (int(self.keys[lo]) >> shift) & (nkids - 1)
                last = (int(self.keys[hi - 1]) >> shift) & (nkids - 1)
                if first != last:
                    break
                depth += 1
                path_key = (path_key << d) | first
                box = box.child(first)

        node = len(self.children)
        self.children.append(np.full(nkids, NO_CHILD, dtype=np.int32))
        self.depth.append(depth)
        self.path_key.append(path_key)
        self.center.append(box.center)
        self.half.append(box.half)
        self.start.append(lo)
        self.end.append(hi)

        if hi - lo > self.leaf_capacity and depth < self.bits:
            shift = (self.bits - depth - 1) * d
            groups = (self.keys[lo:hi] >> shift) & (nkids - 1)
            bounds = np.searchsorted(groups, np.arange(nkids + 1)) + lo
            for c in range(nkids):
                clo, chi = int(bounds[c]), int(bounds[c + 1])
                if chi > clo:
                    self.children[node][c] = self.build(
                        clo, chi, depth + 1, (path_key << d) | c,
                        box.child(c)
                    )
        return node


def build_tree(particles: ParticleSet, box: Box | None = None,
               leaf_capacity: int = 8, max_depth: int | None = None,
               collapse_chains: bool = True,
               compute_monopoles: bool = True) -> Tree:
    """Build a Barnes-Hut tree over ``particles``.

    Parameters
    ----------
    box:
        Root cell.  Defaults to the bounding cube of the particles.  For
        distributed construction the caller passes the *global* cell of
        its subdomain so path keys are globally consistent.
    leaf_capacity:
        The paper's ``s``: a cell with more than ``s`` particles is split.
    max_depth:
        Maximum refinement depth (defaults to the Morton key limit for
        the dimensionality).
    collapse_chains:
        Skip chains of single-occupied-child cells (box collapsing).
    """
    if leaf_capacity < 1:
        raise ValueError(f"leaf capacity must be >= 1, got {leaf_capacity}")
    if particles.n == 0:
        raise ValueError("cannot build a tree over zero particles; "
                         "use an explicit empty-domain representation")
    if box is None:
        box = particles.bounding_box()
    if box.dims != particles.dims:
        raise ValueError("box dimensionality does not match particles")
    from repro.bh import morton as _m
    limit = _m.MAX_BITS_2D if particles.dims == 2 else _m.MAX_BITS_3D
    bits = limit if max_depth is None else max_depth
    if not 0 < bits <= limit:
        raise ValueError(f"max_depth must be in (0, {limit}]")

    inside = box.contains(particles.positions)
    if not inside.all():
        raise ValueError(
            f"{int((~inside).sum())} particles fall outside the root box"
        )

    keys = morton_keys(particles.positions, box.lo, box.side, bits)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    sorted_keys = keys[order]

    builder = _Builder(keys=sorted_keys, order=order, dims=particles.dims,
                       bits=bits, leaf_capacity=leaf_capacity,
                       collapse_chains=collapse_chains, root_box=box)
    builder.build(0, particles.n, 0, 0, box)

    tree = Tree(
        root_box=box,
        dims=particles.dims,
        leaf_capacity=leaf_capacity,
        max_depth=bits,
        children=np.stack(builder.children),
        depth=np.asarray(builder.depth, dtype=np.int32),
        path_key=np.asarray(builder.path_key, dtype=np.int64),
        center=np.stack(builder.center),
        half=np.asarray(builder.half, dtype=np.float64),
        start=np.asarray(builder.start, dtype=np.int64),
        end=np.asarray(builder.end, dtype=np.int64),
        order=order,
    )
    if compute_monopoles:
        tree.compute_monopoles(particles)
    return tree
