"""Quad/oct trees with leaf capacity ``s`` and chain collapsing.

The tree is stored as flat numpy arrays (children table, boxes, particle
slices) built from Morton-sorted particles, which makes construction
O(n log n) with vectorized splits and keeps every node's particle set a
*contiguous slice* of the Morton order — the property the DPDA costzones
scheme exploits to collect "all particles lying in the tree between load
boundaries" with array slicing.

Construction is *level-synchronous*: a whole frontier of pending cells
is collapsed, emitted, and split per wave with array operations (the
style of Warren-Salmon hashed treecodes and Dubinski's parallel tree
code, which derive the tree from sorted keys rather than per-particle
insertion).  The classical node-at-a-time recursion is kept as
:func:`build_tree_reference` — the oracle the vectorized builder is
tested against for exact array equality.  Node ids are identical
between the two: the recursion numbers nodes in depth-first pre-order,
and because every node's particle slice nests inside its parent's and
siblings partition the parent slice in Morton order, pre-order is
exactly the lexicographic order on ``(start, depth)`` — so the
level-synchronous emission is renumbered with one ``lexsort``.

Cell identity: every node corresponds to a spatial cell addressed by
``(depth, path_key)`` where ``path_key`` is the node's Morton prefix (the
``depth`` leading d-bit groups of its particles' Morton keys).  These keys
are the "unique key computed for each branch node" of the paper's
function-shipping protocol.

A node can be a *remote leaf*: a placeholder for a subtree owned by
another virtual processor (``remote_owner >= 0``).  ``build_tree`` never
creates those; the distributed top-tree merge does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bh.morton import morton_keys
from repro.bh.particles import Box, ParticleSet

NO_CHILD = -1


def _child_offsets(dims: int) -> np.ndarray:
    """(2^d, d) table of the ±1 offsets of ``Box.child``: bit ``i`` of
    the octant selects the upper half of axis ``i``."""
    octants = np.arange(1 << dims)
    return np.where(
        (octants[:, None] >> np.arange(dims)[None, :]) & 1, 1.0, -1.0
    )


def cell_boxes(root: Box, depth: np.ndarray, path_key: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
    """Centers and half-widths of many cells at once.

    Vectorized over cells, but iterated *per level*: each level replays
    the exact ``center + 0.5 * half * offsets`` update of
    :meth:`Box.child`, so the returned centers are bitwise equal to the
    scalar descent (a closed-form dyadic sum would round differently).
    """
    d = root.dims
    depth = np.asarray(depth, dtype=np.int64)
    path_key = np.asarray(path_key, dtype=np.int64)
    if np.any(depth < 0):
        raise ValueError("negative cell depth")
    shift = np.minimum(d * depth, 63)   # d*depth > 63 never fits anyway
    if np.any(path_key < 0) or (depth.size
                                and np.any(path_key >> shift != 0)):
        raise ValueError("path_key invalid for depth")
    n = depth.size
    centers = np.tile(np.asarray(root.center, dtype=np.float64), (n, 1))
    halves = np.full(n, float(root.half))
    offsets = _child_offsets(d)
    mask = (1 << d) - 1
    for t in range(int(depth.max()) if n else 0):
        active = depth > t
        level = depth[active] - 1 - t
        octant = (path_key[active] >> (d * level)) & mask
        centers[active] += (0.5 * halves[active])[:, None] * offsets[octant]
        halves[active] *= 0.5
    return centers, halves


def cell_box(root: Box, depth: int, path_key: int) -> Box:
    """Box of the cell addressed by ``(depth, path_key)`` under ``root``."""
    d = root.dims
    if depth < 0:
        raise ValueError(f"negative cell depth {depth}")
    if not 0 <= path_key < (1 << (d * depth)):
        raise ValueError(f"path_key {path_key} invalid at depth {depth}")
    centers, halves = cell_boxes(
        root, np.array([depth], dtype=np.int64),
        np.array([path_key], dtype=np.int64),
    )
    return Box(centers[0], float(halves[0]))


@dataclass
class Tree:
    """Flat-array spatial tree.  See module docstring.

    Node arrays (all length ``nnodes``):

    - ``children``: (nnodes, 2^d) child node ids, ``NO_CHILD`` if absent
    - ``depth``, ``path_key``: cell address
    - ``center``, ``half``: node box
    - ``start``, ``end``: slice into ``order`` (Morton-sorted particle
      index array) — empty for remote leaves
    - ``mass``, ``com``: monopole data (filled by ``compute_monopoles``)
    - ``remote_owner``: owning rank of a remote-leaf placeholder, else -1
    - ``remote_key``: branch key of a remote leaf, else -1
    """

    root_box: Box
    dims: int
    leaf_capacity: int
    max_depth: int
    children: np.ndarray
    depth: np.ndarray
    path_key: np.ndarray
    center: np.ndarray
    half: np.ndarray
    start: np.ndarray
    end: np.ndarray
    order: np.ndarray
    mass: np.ndarray = None  # type: ignore[assignment]
    com: np.ndarray = None  # type: ignore[assignment]
    remote_owner: np.ndarray = None  # type: ignore[assignment]
    remote_key: np.ndarray = None  # type: ignore[assignment]
    #: per-node interaction counters for DPDA load balancing
    interactions: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        n = self.children.shape[0]
        if self.remote_owner is None:
            self.remote_owner = np.full(n, -1, dtype=np.int32)
        if self.remote_key is None:
            self.remote_key = np.full(n, -1, dtype=np.int64)
        if self.interactions is None:
            self.interactions = np.zeros(n, dtype=np.int64)
        if self.mass is None:
            self.mass = np.zeros(n)
        if self.com is None:
            self.com = np.zeros((n, self.dims))

    ROOT = 0

    @property
    def nnodes(self) -> int:
        return self.children.shape[0]

    @property
    def n_particles(self) -> int:
        return self.order.size

    def count(self, node: int) -> int:
        return int(self.end[node] - self.start[node])

    def is_leaf(self, node: int) -> bool:
        return bool((self.children[node] == NO_CHILD).all())

    def is_remote(self, node: int) -> bool:
        return bool(self.remote_owner[node] >= 0)

    def node_box(self, node: int) -> Box:
        return Box(self.center[node], float(self.half[node]))

    def particle_indices(self, node: int) -> np.ndarray:
        """Original indices of the particles under ``node``."""
        return self.order[self.start[node]:self.end[node]]

    def leaves(self) -> np.ndarray:
        return np.flatnonzero((self.children == NO_CHILD).all(axis=1))

    def node_depth_max(self) -> int:
        return int(self.depth.max()) if self.nnodes else 0

    def nodes_by_level(self) -> list[tuple[int, np.ndarray]]:
        """Node ids grouped by depth: ``[(depth, ids), ...]`` shallowest
        first.  Children are always strictly deeper than their parent
        (chain collapsing only increases the gap), so iterating the
        levels in reverse visits every child before its parent — the
        schedule of all level-batched upward passes."""
        order = np.argsort(self.depth, kind="stable")
        sorted_depths = self.depth[order]
        levels, starts = np.unique(sorted_depths, return_index=True)
        bounds = np.append(starts, sorted_depths.size)
        return [(int(levels[i]), order[bounds[i]:bounds[i + 1]])
                for i in range(levels.size)]

    def _internal_child_groups(self, restrict: np.ndarray | None = None):
        """Local internal nodes per level (deepest first), grouped by
        child count: yields ``(nodes, kids)`` with ``kids`` of shape
        ``(len(nodes), c)``, children in slot order.  ``restrict`` (a
        node mask) limits the sweep to a subset — the incremental
        monopole refresh of tree repair."""
        local = self.remote_owner < 0
        if restrict is not None:
            local = local & restrict
        for _, ids in reversed(self.nodes_by_level()):
            ids = ids[local[ids]]
            if ids.size == 0:
                continue
            kid_rows = self.children[ids]
            valid = kid_rows != NO_CHILD
            nkids = valid.sum(axis=1)
            for c in np.unique(nkids):
                if c == 0:
                    continue
                sel = nkids == c
                nodes = ids[sel]
                # row-major boolean selection keeps slot order per row
                kids = kid_rows[sel][valid[sel]].reshape(nodes.size, int(c))
                yield nodes, kids

    def compute_monopoles(self, particles: ParticleSet,
                          nodes: np.ndarray | None = None) -> None:
        """Fill ``mass``/``com`` bottom-up from the particle slices.

        Level-batched: leaves are grouped by slice length and reduced as
        contiguous (g, L) blocks, internal nodes per level grouped by
        child count — both reductions use the same pairwise-summation
        order as the per-node reference scan, so the results are bitwise
        identical to :meth:`compute_monopoles_reference`.

        ``nodes`` restricts the pass to a subset (tree repair: only
        nodes on dirty root-paths).  Restricted results are bitwise
        equal to the full pass because every grouped reduction is
        per-row independent; the subset must be ancestor-closed over
        stale nodes, i.e. untouched nodes' stored monopoles are valid.

        Remote leaves are expected to have mass/com pre-filled by the
        tree merge; they are left untouched.
        """
        pos, m = particles.positions, particles.masses
        if self.nnodes == 0:
            return
        restrict = None
        if nodes is not None:
            restrict = np.zeros(self.nnodes, dtype=bool)
            restrict[nodes] = True
        local = self.remote_owner < 0
        leaf_mask = (self.children == NO_CHILD).all(axis=1) & local
        if restrict is not None:
            leaf_mask &= restrict
        leaves = np.flatnonzero(leaf_mask)
        lengths = (self.end - self.start)[leaves]
        for L in np.unique(lengths):
            sel = leaves[lengths == L]
            if L == 0:
                self.mass[sel] = 0.0
                self.com[sel] = self.center[sel]
                continue
            gather = self.order[self.start[sel][:, None]
                                + np.arange(int(L))[None, :]]
            mm = m[gather]                              # (g, L) contiguous
            totals = mm.sum(axis=1)
            self.mass[sel] = totals
            weighted = (mm[:, :, None] * pos[gather]).sum(axis=1)
            positive = totals > 0
            safe = np.where(positive, totals, 1.0)
            self.com[sel] = np.where(positive[:, None], weighted / safe[:, None],
                                     self.center[sel])
        for nodes, kids in self._internal_child_groups(restrict):
            km = self.mass[kids]                        # (g, c) contiguous
            totals = km.sum(axis=1)
            self.mass[nodes] = totals
            weighted = (km[:, :, None] * self.com[kids]).sum(axis=1)
            positive = totals > 0
            safe = np.where(positive, totals, 1.0)
            self.com[nodes] = np.where(positive[:, None],
                                       weighted / safe[:, None],
                                       self.center[nodes])

    def compute_monopoles_reference(self, particles: ParticleSet) -> None:
        """Per-node reverse-scan monopole pass — the oracle
        :meth:`compute_monopoles` is validated against."""
        pos, m = particles.positions, particles.masses
        for node in range(self.nnodes - 1, -1, -1):
            if self.is_remote(node):
                continue
            lo, hi = self.start[node], self.end[node]
            if self.is_leaf(node):
                idx = self.order[lo:hi]
                mm = m[idx]
                total = mm.sum()
                self.mass[node] = total
                if total > 0:
                    self.com[node] = (mm[:, None] * pos[idx]).sum(axis=0) / total
                else:
                    self.com[node] = self.center[node]
            else:
                kids = self.children[node]
                kids = kids[kids != NO_CHILD]
                total = self.mass[kids].sum()
                self.mass[node] = total
                if total > 0:
                    self.com[node] = (
                        self.mass[kids, None] * self.com[kids]
                    ).sum(axis=0) / total
                else:
                    self.com[node] = self.center[node]

    def sum_interactions_up(self) -> None:
        """Propagate per-node interaction counts to ancestors (DPDA:
        "this variable is summed up along the tree").

        Level-batched child→parent scatters, deepest level first, so
        every node's count already includes its whole subtree when its
        parent reads it.  Counters are integers, so the result is
        exactly :meth:`sum_interactions_up_reference`.
        """
        for _, ids in reversed(self.nodes_by_level()):
            kids = self.children[ids]
            valid = kids != NO_CHILD
            if not valid.any():
                continue
            vals = np.where(valid, self.interactions[np.where(valid, kids, 0)],
                            0)
            self.interactions[ids] += vals.sum(axis=1)

    def sum_interactions_up_reference(self) -> None:
        """Per-node reverse scan (relies on every child id being greater
        than its parent id) — the oracle for the level-batched pass."""
        for node in range(self.nnodes - 1, -1, -1):
            kids = self.children[node]
            kids = kids[kids != NO_CHILD]
            if kids.size:
                self.interactions[node] += self.interactions[kids].sum()


@dataclass
class _Builder:
    keys: np.ndarray       # Morton keys in sorted order
    order: np.ndarray      # particle indices in Morton order
    dims: int
    bits: int
    leaf_capacity: int
    collapse_chains: bool
    root_box: Box
    children: list = field(default_factory=list)
    depth: list = field(default_factory=list)
    path_key: list = field(default_factory=list)
    center: list = field(default_factory=list)
    half: list = field(default_factory=list)
    start: list = field(default_factory=list)
    end: list = field(default_factory=list)

    def build(self, lo: int, hi: int, depth: int, path_key: int,
              box: Box) -> int:
        d = self.dims
        nkids = 1 << d
        # Chain collapsing: while every particle falls in a single child,
        # descend without materialising the chain node (bounds tree size
        # for pathological pairs, as in Callahan-Kosaraju).
        if self.collapse_chains:
            while hi - lo > self.leaf_capacity and depth < self.bits:
                shift = (self.bits - depth - 1) * d
                first = (int(self.keys[lo]) >> shift) & (nkids - 1)
                last = (int(self.keys[hi - 1]) >> shift) & (nkids - 1)
                if first != last:
                    break
                depth += 1
                path_key = (path_key << d) | first
                box = box.child(first)

        node = len(self.children)
        self.children.append(np.full(nkids, NO_CHILD, dtype=np.int32))
        self.depth.append(depth)
        self.path_key.append(path_key)
        self.center.append(box.center)
        self.half.append(box.half)
        self.start.append(lo)
        self.end.append(hi)

        if hi - lo > self.leaf_capacity and depth < self.bits:
            shift = (self.bits - depth - 1) * d
            groups = (self.keys[lo:hi] >> shift) & (nkids - 1)
            bounds = np.searchsorted(groups, np.arange(nkids + 1)) + lo
            for c in range(nkids):
                clo, chi = int(bounds[c]), int(bounds[c + 1])
                if chi > clo:
                    self.children[node][c] = self.build(
                        clo, chi, depth + 1, (path_key << d) | c,
                        box.child(c)
                    )
        return node


def _emit_levels(keys: np.ndarray, dims: int, bits: int,
                 leaf_capacity: int, collapse_chains: bool,
                 root_box: Box,
                 stop_cells: dict[int, np.ndarray] | None = None) -> dict:
    """Level-synchronous cell emission over sorted Morton keys.

    Processes a frontier of pending cells per wave: batched chain
    collapsing (masked per-level iteration, the same fp update sequence
    as the recursive descent), one node emission per frontier entry, and
    a grouped octant split via per-entry key histograms.  Emission order
    is breadth-first; arrays come back *unnumbered* (``parent``/``slot``
    refer to emission indices) so callers can renumber, or splice in
    grafted subtrees first (tree repair).

    ``stop_cells`` (depth -> sorted path keys) marks cells whose old
    subtrees the repair path wants to reuse: an emission whose
    post-collapse cell matches a stop cell is not split (``stopped``
    flags it).  The check runs only *after* collapse settles, so a stop
    cell grafts only when the normal build would materialise exactly
    that cell — a clean old cell that a full rebuild would skip (e.g.
    departures shrank an ancestor under the leaf capacity) is simply
    never matched, keeping grafted output bitwise equal to a rebuild.
    """
    d = dims
    nkids = 1 << d
    kmask = nkids - 1
    n = keys.shape[0]
    offsets = _child_offsets(d)

    lo = np.array([0], dtype=np.int64)
    hi = np.array([n], dtype=np.int64)
    depth = np.zeros(1, dtype=np.int64)
    path = np.zeros(1, dtype=np.int64)
    center = np.asarray(root_box.center, dtype=np.float64)[None, :].copy()
    half = np.array([float(root_box.half)])
    parent = np.array([-1], dtype=np.int64)   # emission index of parent
    slot = np.array([-1], dtype=np.int64)

    e_lo, e_hi, e_depth, e_path = [], [], [], []
    e_center, e_half, e_parent, e_slot, e_stop = [], [], [], [], []
    n_emitted = 0

    while lo.size:
        if collapse_chains:
            # Collapse candidates shrink monotonically: an entry whose
            # first and last key disagree at the current level never
            # collapses further (slice bounds are fixed within a wave).
            cand = np.flatnonzero((hi - lo > leaf_capacity) & (depth < bits))
            while cand.size:
                shift = (bits - depth[cand] - 1) * d
                first = (keys[lo[cand]] >> shift) & kmask
                last = (keys[hi[cand] - 1] >> shift) & kmask
                same = first == last
                cand = cand[same]
                if cand.size == 0:
                    break
                octant = first[same]
                depth[cand] += 1
                path[cand] = (path[cand] << d) | octant
                center[cand] += (0.5 * half[cand])[:, None] * offsets[octant]
                half[cand] *= 0.5
                cand = cand[depth[cand] < bits]

        stopped = np.zeros(lo.size, dtype=bool)
        if stop_cells:
            for dep in np.unique(depth):
                cells = stop_cells.get(int(dep))
                if cells is None:
                    continue
                sel = np.flatnonzero(depth == dep)
                pos = np.searchsorted(cells, path[sel])
                ok = pos < cells.size
                ok[ok] = cells[pos[ok]] == path[sel[ok]]
                stopped[sel[ok]] = True

        emit_base = n_emitted
        n_emitted += lo.size
        e_lo.append(lo)
        e_hi.append(hi)
        e_depth.append(depth)
        e_path.append(path)
        e_center.append(center)
        e_half.append(half)
        e_parent.append(parent)
        e_slot.append(slot)
        e_stop.append(stopped)

        split = np.flatnonzero((hi - lo > leaf_capacity) & (depth < bits)
                               & ~stopped)
        if split.size == 0:
            break
        slo, shi = lo[split], hi[split]
        sdepth, spath = depth[split], path[split]
        shift = (bits - sdepth - 1) * d
        lens = shi - slo
        total = int(lens.sum())
        seg = np.repeat(np.arange(split.size), lens)
        within = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        g = (keys[np.repeat(slo, lens) + within]
             >> np.repeat(shift, lens)) & kmask
        counts = np.zeros((split.size, nkids), dtype=np.int64)
        np.add.at(counts, (seg, g), 1)
        child_lo = slo[:, None] + np.cumsum(counts, axis=1) - counts
        pe, ce = np.nonzero(counts > 0)   # per parent, octants ascending

        lo = child_lo[pe, ce]
        hi = lo + counts[pe, ce]
        depth = sdepth[pe] + 1
        path = (spath[pe] << d) | ce
        scenter, shalf = center[split], half[split]
        center = scenter[pe] + (0.5 * shalf[pe])[:, None] * offsets[ce]
        half = 0.5 * shalf[pe]
        parent = emit_base + split[pe]
        slot = ce.astype(np.int64)

    return dict(
        lo=np.concatenate(e_lo),
        hi=np.concatenate(e_hi),
        depth=np.concatenate(e_depth),
        path=np.concatenate(e_path),
        center=np.concatenate(e_center),
        half=np.concatenate(e_half),
        parent=np.concatenate(e_parent),
        slot=np.concatenate(e_slot),
        stopped=np.concatenate(e_stop),
    )


def _build_levels(keys: np.ndarray, dims: int, bits: int,
                  leaf_capacity: int, collapse_chains: bool,
                  root_box: Box) -> dict:
    """Level-synchronous tree construction: :func:`_emit_levels` plus
    renumbering by ``lexsort((depth, start))``, which recovers the
    recursion's depth-first pre-order exactly, because sibling slices
    partition their parent's slice in Morton order and a node shares its
    ``start`` only with first-child descendants (which are strictly
    deeper)."""
    raw = _emit_levels(keys, dims, bits, leaf_capacity, collapse_chains,
                       root_box)
    nkids = 1 << dims
    nnodes = raw["lo"].size
    perm = np.lexsort((raw["depth"], raw["lo"]))     # DFS pre-order
    new_id = np.empty(nnodes, dtype=np.int64)
    new_id[perm] = np.arange(nnodes)
    children = np.full((nnodes, nkids), NO_CHILD, dtype=np.int32)
    kid = np.flatnonzero(raw["parent"] >= 0)
    children[new_id[raw["parent"][kid]], raw["slot"][kid]] = new_id[kid]

    return dict(
        children=children,
        depth=raw["depth"][perm].astype(np.int32),
        path_key=raw["path"][perm],
        center=raw["center"][perm],
        half=raw["half"][perm],
        start=raw["lo"][perm],
        end=raw["hi"][perm],
    )


def _prepare(particles: ParticleSet, box: Box | None, leaf_capacity: int,
             max_depth: int | None, keys: np.ndarray | None
             ) -> tuple[Box, int, np.ndarray, np.ndarray]:
    """Shared validation + key sorting of both builders."""
    if leaf_capacity < 1:
        raise ValueError(f"leaf capacity must be >= 1, got {leaf_capacity}")
    if particles.n == 0:
        raise ValueError("cannot build a tree over zero particles; "
                         "use an explicit empty-domain representation")
    if box is None:
        box = particles.bounding_box()
    if box.dims != particles.dims:
        raise ValueError("box dimensionality does not match particles")
    from repro.bh import morton as _m
    limit = _m.MAX_BITS_2D if particles.dims == 2 else _m.MAX_BITS_3D
    bits = limit if max_depth is None else max_depth
    if not 0 < bits <= limit:
        raise ValueError(f"max_depth must be in (0, {limit}]")

    if keys is None:
        inside = box.contains(particles.positions)
        if not inside.all():
            raise ValueError(
                f"{int((~inside).sum())} particles fall outside the root box"
            )
        keys = morton_keys(particles.positions, box.lo, box.side, bits)
    else:
        # Precomputed keys define cell membership directly (the caller
        # derived them from a coarser quantization of the same grid), so
        # the fp containment check against the cell's rounded box is
        # skipped: a particle may sit within an ulp of the boundary.
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape != (particles.n,):
            raise ValueError(
                f"keys must be shape ({particles.n},), got {keys.shape}"
            )
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return box, bits, keys[order], order


#: Below this many particles the recursive builder's small constant
#: factor beats the level-synchronous builder's array setup (measured
#: crossover ~100 on Plummer sets); :func:`build_tree` dispatches tiny
#: inputs there.  Outputs are identical either way, so the cutoff is
#: purely a performance knob — the distributed schemes build many
#: few-particle subtrees (one per owned cell) where it matters.
SMALL_BUILD_CUTOFF = 128


def build_tree(particles: ParticleSet, box: Box | None = None,
               leaf_capacity: int = 8, max_depth: int | None = None,
               collapse_chains: bool = True,
               compute_monopoles: bool = True,
               keys: np.ndarray | None = None) -> Tree:
    """Build a Barnes-Hut tree over ``particles`` (level-synchronous).

    Produces arrays exactly equal to :func:`build_tree_reference` — same
    node numbering, same boxes bit for bit.  Inputs smaller than
    :data:`SMALL_BUILD_CUTOFF` go through the recursive builder, which
    has the smaller constant factor (same output).

    Parameters
    ----------
    box:
        Root cell.  Defaults to the bounding cube of the particles.  For
        distributed construction the caller passes the *global* cell of
        its subdomain so path keys are globally consistent.
    leaf_capacity:
        The paper's ``s``: a cell with more than ``s`` particles is split.
    max_depth:
        Maximum refinement depth (defaults to the Morton key limit for
        the dimensionality).
    collapse_chains:
        Skip chains of single-occupied-child cells (box collapsing).
    keys:
        Optional precomputed Morton keys (one per particle, at exactly
        ``max_depth`` bits relative to ``box``).  Skips quantization and
        the root-box containment check — the keys define membership.
    """
    if particles.n < SMALL_BUILD_CUTOFF:
        return build_tree_reference(
            particles, box=box, leaf_capacity=leaf_capacity,
            max_depth=max_depth, collapse_chains=collapse_chains,
            compute_monopoles=compute_monopoles, keys=keys,
        )
    box, bits, sorted_keys, order = _prepare(particles, box, leaf_capacity,
                                             max_depth, keys)
    arrays = _build_levels(sorted_keys, particles.dims, bits, leaf_capacity,
                           collapse_chains, box)
    tree = Tree(
        root_box=box, dims=particles.dims, leaf_capacity=leaf_capacity,
        max_depth=bits, order=order, **arrays,
    )
    if compute_monopoles:
        tree.compute_monopoles(particles)
    return tree


def build_tree_reference(particles: ParticleSet, box: Box | None = None,
                         leaf_capacity: int = 8,
                         max_depth: int | None = None,
                         collapse_chains: bool = True,
                         compute_monopoles: bool = True,
                         keys: np.ndarray | None = None) -> Tree:
    """Node-at-a-time recursive tree construction — the oracle and bench
    baseline for :func:`build_tree`.  Same signature, same output."""
    box, bits, sorted_keys, order = _prepare(particles, box, leaf_capacity,
                                             max_depth, keys)
    builder = _Builder(keys=sorted_keys, order=order, dims=particles.dims,
                       bits=bits, leaf_capacity=leaf_capacity,
                       collapse_chains=collapse_chains, root_box=box)
    builder.build(0, particles.n, 0, 0, box)

    tree = Tree(
        root_box=box,
        dims=particles.dims,
        leaf_capacity=leaf_capacity,
        max_depth=bits,
        children=np.stack(builder.children),
        depth=np.asarray(builder.depth, dtype=np.int32),
        path_key=np.asarray(builder.path_key, dtype=np.int64),
        center=np.stack(builder.center),
        half=np.asarray(builder.half, dtype=np.float64),
        start=np.asarray(builder.start, dtype=np.int64),
        end=np.asarray(builder.end, dtype=np.int64),
        order=order,
    )
    if compute_monopoles:
        tree.compute_monopoles_reference(particles)
    return tree
