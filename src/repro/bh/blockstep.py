"""Power-of-two block timesteps with incremental tree repair.

The global-dt loop evaluates every force every step; with individual
timesteps (Valdarnini's parallel treecode, Dubinski's hierarchical
scheme) each particle integrates on its own power-of-two subdivision of
the macro step, so most substeps touch only a small *active bin-set* —
and the tree work shrinks to match via :mod:`repro.bh.tree_repair` and
the walk-cache invalidation in :class:`~..interaction_lists.TraversalEngine`.

Scheme (standard block-KDK):

- Rung ``r`` integrates with ``dt_r = dt / 2^r``; a macro step runs
  ``2^(R-1)`` substeps where ``R`` is the deepest occupied rung.
- Substep ``j``: every particle whose rung period divides ``j``
  *starts* a step — opening half-kick with its stored acceleration,
  then a full ``dt_r`` drift.  Every particle whose period divides
  ``j + 1`` *finishes* — fresh force walk over just the finishers,
  closing half-kick, rung reassignment.
- Between its own steps a particle's position is frozen (its last
  step-end state sources other particles' forces), which is what keeps
  the per-substep dirty set proportional to the active fraction.

Rungs come from the deterministic acceleration/softening criterion
``dt_i = eta * sqrt(softening / |a_i|)`` (the standard collisionless
choice): pure fp arithmetic on the accelerations, so bin assignment is
reproducible bit for bit — the property the process backend's crash
recovery relies on when it restores checkpointed bin state.

``tree_mode="rebuild"`` keeps the full per-substep rebuild as the
oracle/baseline; ``"repair"`` must produce bitwise-identical
trajectories (repaired trees are bitwise-equal to rebuilds, and walks
are keyed by target positions).  ``max_rungs=1`` degenerates to plain
global-dt KDK.
"""

from __future__ import annotations

import numpy as np

from repro.bh.interaction_lists import TraversalEngine
from repro.bh.mac import BarnesHutMAC
from repro.bh import morton
from repro.bh.morton import morton_keys
from repro.bh.multipole import MonopoleExpansion
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import build_tree
from repro.bh.tree_repair import repair_tree


def assign_rungs(accel: np.ndarray, dt: float, eta: float,
                 softening: float, max_rungs: int) -> np.ndarray:
    """Deterministic power-of-two bin assignment: the smallest rung
    whose ``dt / 2^r`` does not exceed ``eta * sqrt(softening/|a|)``,
    clipped to ``[0, max_rungs)``."""
    if softening <= 0.0:
        raise ValueError("block timesteps need softening > 0 (the rung "
                         "criterion is eta * sqrt(softening / |a|))")
    if not 0 < max_rungs <= 16:
        raise ValueError(f"max_rungs must be in [1, 16], got {max_rungs}")
    a = np.sqrt(np.einsum("ij,ij->i", accel, accel))
    with np.errstate(divide="ignore"):
        dt_i = eta * np.sqrt(softening / np.where(a > 0.0, a, np.inf))
        r = np.ceil(np.log2(dt / dt_i))
    r = np.where(np.isfinite(r), r, 0.0)
    return np.clip(r, 0, max_rungs - 1).astype(np.int64)


class BlockTimestepper:
    """Serial block-timestep driver advancing ``particles`` in place.

    One :meth:`macro_step` advances every particle by ``dt``.  The tree
    is carried across substeps: repaired (``tree_mode="repair"``) or
    rebuilt from scratch (``"rebuild"``, the oracle baseline).  The
    ``stats`` dict accumulates ``repair.*`` / ``timestep.*`` counters.
    """

    def __init__(self, particles: ParticleSet, dt: float, *,
                 softening: float, eta: float = 0.2, max_rungs: int = 4,
                 alpha: float = 0.8, leaf_capacity: int = 16,
                 box: Box | None = None, max_depth: int | None = None,
                 tree_mode: str = "repair", dirty_threshold: float = 0.25,
                 collapse_chains: bool = True, walk_method: str = "auto",
                 kernel_tier: str = "numpy",
                 kernel_threads: int | None = None):
        if dt <= 0:
            raise ValueError(f"time-step must be positive, got {dt}")
        if tree_mode not in ("repair", "rebuild"):
            raise ValueError(f"tree_mode must be 'repair' or 'rebuild', "
                             f"got {tree_mode!r}")
        self.particles = particles
        self.dt = float(dt)
        self.softening = float(softening)
        self.eta = float(eta)
        self.max_rungs = int(max_rungs)
        self.tree_mode = tree_mode
        self.dirty_threshold = float(dirty_threshold)
        self.collapse_chains = bool(collapse_chains)
        self.leaf_capacity = int(leaf_capacity)
        d = particles.dims
        if box is None:
            half = float(np.abs(particles.positions).max()) * 1.5 + 1e-9
            box = Box(np.zeros(d), half)
        self.box = box
        limit = morton.MAX_BITS_2D if d == 2 else morton.MAX_BITS_3D
        self.bits = limit if max_depth is None else int(max_depth)
        self.mac = BarnesHutMAC(alpha=float(alpha))
        self._engine_opts = dict(walk_method=walk_method,
                                 kernel_tier=kernel_tier,
                                 kernel_threads=kernel_threads)
        self.stats: dict[str, int] = {
            "timestep.macro_steps": 0, "timestep.substeps": 0,
            "timestep.force_targets": 0, "timestep.drifted": 0,
            "repair.repairs": 0, "repair.full_rebuilds": 0,
            "repair.nodes_reused": 0, "repair.nodes_rebuilt": 0,
            "repair.changed_keys": 0,
        }

        self.keys = self._keys_of(particles.positions)
        self.tree = build_tree(particles, box=self.box,
                               leaf_capacity=self.leaf_capacity,
                               max_depth=self.bits,
                               collapse_chains=self.collapse_chains,
                               keys=self.keys)
        self.engine = self._new_engine(self.tree)
        self.accel = self._forces(np.arange(particles.n))
        self.rungs = assign_rungs(self.accel, self.dt, self.eta,
                                  self.softening, self.max_rungs)
        # the bootstrap evaluation is not part of any substep
        self.stats["timestep.force_targets"] = 0

    # ---------------------------------------------------------- helpers
    def _keys_of(self, positions: np.ndarray) -> np.ndarray:
        return morton_keys(positions, self.box.lo, self.box.side, self.bits)

    def _new_engine(self, tree) -> TraversalEngine:
        return TraversalEngine(tree, sources=self.particles, mac=self.mac,
                               softening=self.softening,
                               **self._engine_opts)

    def _forces(self, idx: np.ndarray) -> np.ndarray:
        """Accelerations at the current positions of particles ``idx``."""
        res = self.engine.compute(
            self.particles.positions[idx],
            MonopoleExpansion(self.tree, softening=self.softening),
            mode="force",
        )
        self.stats["timestep.force_targets"] += int(idx.size)
        return res.values

    def _update_tree(self, moved: np.ndarray) -> None:
        new_keys = self._keys_of(self.particles.positions)
        if self.tree_mode == "rebuild":
            self.tree = build_tree(self.particles, box=self.box,
                                   leaf_capacity=self.leaf_capacity,
                                   max_depth=self.bits,
                                   collapse_chains=self.collapse_chains,
                                   keys=new_keys)
            self.engine = self._new_engine(self.tree)
            self.stats["repair.full_rebuilds"] += 1
            self.stats["repair.nodes_rebuilt"] += self.tree.nnodes
        else:
            res = repair_tree(self.tree, self.particles, self.keys,
                              new_keys, moved,
                              collapse_chains=self.collapse_chains,
                              dirty_threshold=self.dirty_threshold)
            self.tree = res.tree
            self.engine.apply_repair(res)
            if res.rebuilt:
                self.stats["repair.full_rebuilds"] += 1
            else:
                self.stats["repair.repairs"] += 1
            self.stats["repair.nodes_reused"] += res.nodes_reused
            self.stats["repair.nodes_rebuilt"] += res.nodes_rebuilt
            self.stats["repair.changed_keys"] += res.n_changed_keys
        self.keys = new_keys

    # ------------------------------------------------------------- step
    def macro_step(self) -> None:
        """Advance every particle by one macro step ``dt``."""
        p = self.particles
        rungs = self.rungs
        R = int(rungs.max()) + 1
        nsub = 1 << (R - 1)
        period = (1 << (R - 1 - rungs)).astype(np.int64)
        lo = self.box.lo + 1e-12 * self.box.side
        hi = self.box.lo + self.box.side * (1 - 1e-12)

        for j in range(nsub):
            starters = np.flatnonzero(j % period == 0)
            if starters.size:
                dt_r = self.dt / (1 << rungs[starters]).astype(np.float64)
                p.velocities[starters] += \
                    (0.5 * dt_r)[:, None] * self.accel[starters]
                p.positions[starters] = np.clip(
                    p.positions[starters]
                    + dt_r[:, None] * p.velocities[starters],
                    lo, hi)
                self.stats["timestep.drifted"] += int(starters.size)
                self._update_tree(starters)

            finishers = np.flatnonzero((j + 1) % period == 0)
            if finishers.size:
                dt_f = self.dt / (1 << rungs[finishers]).astype(np.float64)
                a_new = self._forces(finishers)
                self.accel[finishers] = a_new
                p.velocities[finishers] += (0.5 * dt_f)[:, None] * a_new
                want = assign_rungs(a_new, self.dt, self.eta,
                                    self.softening, self.max_rungs)
                cur = rungs[finishers]
                if j + 1 == nsub:
                    new = want          # sync point: all moves allowed
                else:
                    # smaller dt anytime (bounded by this macro's
                    # subdivision); longer dt only at aligned boundaries
                    up = np.minimum(want, R - 1)
                    aligned = ((j + 1)
                               % (1 << (R - 1 - np.minimum(want, R - 1)))
                               ) == 0
                    down = np.where(aligned, want, cur)
                    new = np.where(want >= cur, up, down)
                rungs[finishers] = new
                period[finishers] = 1 << (R - 1 - np.minimum(new, R - 1))
            self.stats["timestep.substeps"] += 1
        self.stats["timestep.macro_steps"] += 1
        for r in range(self.max_rungs):
            key = f"timestep.bin_{r}"
            self.stats[key] = self.stats.get(key, 0) \
                + int((self.rungs == r).sum())

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.macro_step()

    @property
    def active_fraction(self) -> float:
        """Mean fraction of particles force-evaluated per substep."""
        sub = self.stats["timestep.substeps"]
        if sub == 0:
            return 1.0
        return self.stats["timestep.force_targets"] \
            / (sub * self.particles.n)
