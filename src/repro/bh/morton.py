"""Morton (Z-order) keys and Peano-Hilbert ordering.

Morton keys drive two things in the paper: the SPDA scheme orders its
static clusters "by interleaving the bits of the row and column" (Fig. 6a),
and the distributed tree uses keys to label branch nodes.  The
Peano-Hilbert curve is the alternative used by the Costzones scheme of
Singh et al.; we provide it for comparison benches.

All key functions are vectorized over numpy integer arrays and support up
to 21 bits per coordinate in 3-D / 31 bits in 2-D (keys fit in int64).
"""

from __future__ import annotations

import numpy as np

MAX_BITS_2D = 31
MAX_BITS_3D = 21


def _as_int_array(a) -> np.ndarray:
    arr = np.asarray(a)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"expected integer coordinates, got dtype {arr.dtype}")
    return arr.astype(np.uint64)


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Insert one zero bit between each bit of x (for 2-D interleave)."""
    x = x & np.uint64(0x00000000FFFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of x (for 3-D interleave)."""
    x = x & np.uint64(0x00000000001FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x001F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x001F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by1(x: np.ndarray) -> np.ndarray:
    x = x & np.uint64(0x5555555555555555)
    x = (x | (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    x = x & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x001F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x001F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x00000000001FFFFF)
    return x


def morton_key_2d(ix, iy) -> np.ndarray:
    """Interleave bits of integer grid coordinates: key = ...y1x1y0x0."""
    ix, iy = _as_int_array(ix), _as_int_array(iy)
    return (_part1by1(ix) | (_part1by1(iy) << np.uint64(1))).astype(np.int64)


def morton_key_3d(ix, iy, iz) -> np.ndarray:
    """Interleave bits of integer grid coordinates (x lowest)."""
    ix, iy, iz = _as_int_array(ix), _as_int_array(iy), _as_int_array(iz)
    key = (_part1by2(ix)
           | (_part1by2(iy) << np.uint64(1))
           | (_part1by2(iz) << np.uint64(2)))
    return key.astype(np.int64)


def morton_decode_2d(key) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_key_2d`."""
    k = _as_int_array(key)
    return (_compact1by1(k).astype(np.int64),
            _compact1by1(k >> np.uint64(1)).astype(np.int64))


def morton_decode_3d(key) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_key_3d`."""
    k = _as_int_array(key)
    return (_compact1by2(k).astype(np.int64),
            _compact1by2(k >> np.uint64(1)).astype(np.int64),
            _compact1by2(k >> np.uint64(2)).astype(np.int64))


def quantize(positions: np.ndarray, lo: np.ndarray, side: float,
             bits: int) -> np.ndarray:
    """Map positions in the cube [lo, lo+side) to a 2^bits integer grid."""
    if side <= 0:
        raise ValueError(f"box side must be positive, got {side}")
    pos = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    cells = np.int64(1) << bits
    scaled = (pos - lo) / side * cells
    grid = np.floor(scaled).astype(np.int64)
    return np.clip(grid, 0, cells - 1)


def morton_keys(positions: np.ndarray, lo: np.ndarray, side: float,
                bits: int | None = None) -> np.ndarray:
    """Morton keys of positions in the cube [lo, lo+side), vectorized.

    ``bits`` is the tree depth (levels of refinement); defaults to the
    maximum that fits in 64-bit keys for the dimensionality.
    """
    pos = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    d = pos.shape[1]
    if d == 2:
        bits = MAX_BITS_2D if bits is None else bits
        if not 0 < bits <= MAX_BITS_2D:
            raise ValueError(f"2-D morton bits must be in (0, {MAX_BITS_2D}]")
        g = quantize(pos, np.asarray(lo), side, bits)
        return morton_key_2d(g[:, 0], g[:, 1])
    if d == 3:
        bits = MAX_BITS_3D if bits is None else bits
        if not 0 < bits <= MAX_BITS_3D:
            raise ValueError(f"3-D morton bits must be in (0, {MAX_BITS_3D}]")
        g = quantize(pos, np.asarray(lo), side, bits)
        return morton_key_3d(g[:, 0], g[:, 1], g[:, 2])
    raise ValueError(f"positions must be 2-D or 3-D, got {d} columns")


# --------------------------------------------------------------- Hilbert
# Iterative 2-D Hilbert curve (Wikipedia xy2d algorithm), vectorized.

def hilbert_keys_2d(ix, iy, bits: int) -> np.ndarray:
    """Peano-Hilbert index of 2-D grid coordinates on a 2^bits grid."""
    if not 0 < bits <= MAX_BITS_2D:
        raise ValueError(f"bits must be in (0, {MAX_BITS_2D}]")
    x = np.asarray(ix, dtype=np.int64).copy()
    y = np.asarray(iy, dtype=np.int64).copy()
    if np.any(x < 0) or np.any(y < 0) or \
            np.any(x >= (1 << bits)) or np.any(y >= (1 << bits)):
        raise ValueError("grid coordinates out of range for given bits")
    d = np.zeros_like(x)
    s = np.int64(1) << (bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d
