"""Chunked O(n^2) direct summation — the accuracy reference.

The paper's fractional percentage error (Section 5.2.2) compares treecode
potentials against the exact all-pairs result; these routines provide it
without ever materialising the full n x n distance matrix.
"""

from __future__ import annotations

import numpy as np

from repro.bh import kernels
from repro.bh.particles import ParticleSet

#: Targets processed per chunk; keeps the (chunk, n) work arrays in cache.
DEFAULT_CHUNK = 1024


def direct_potentials(particles: ParticleSet,
                      target_positions: np.ndarray | None = None,
                      softening: float = 0.0,
                      chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Exact potential at each target (default: at every particle).

    When targets are the particles themselves, the self-term vanishes via
    the kernels' coincident-pair handling.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    targets = (particles.positions if target_positions is None
               else np.atleast_2d(target_positions))
    out = np.empty(targets.shape[0])
    for lo in range(0, targets.shape[0], chunk):
        hi = min(lo + chunk, targets.shape[0])
        out[lo:hi] = kernels.pair_potential(
            targets[lo:hi], particles.positions, particles.masses,
            softening=softening,
        )
    return out


def direct_forces(particles: ParticleSet,
                  target_positions: np.ndarray | None = None,
                  softening: float = 0.0,
                  chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Exact acceleration at each target (default: at every particle)."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    targets = (particles.positions if target_positions is None
               else np.atleast_2d(target_positions))
    out = np.empty_like(targets, dtype=np.float64)
    for lo in range(0, targets.shape[0], chunk):
        hi = min(lo + chunk, targets.shape[0])
        out[lo:hi] = kernels.pair_force(
            targets[lo:hi], particles.positions, particles.masses,
            softening=softening,
        )
    return out


def sample_direct_potentials(particles: ParticleSet, n_sample: int,
                             seed: int = 0, softening: float = 0.0
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Exact potentials at a random sample of the particles.

    Returns ``(indices, potentials)``.  For large n the full O(n^2)
    reference is too slow even chunked; the fractional-error estimate
    over a sample converges quickly (the error norm is an average).
    """
    if n_sample < 1:
        raise ValueError(f"need at least one sample, got {n_sample}")
    rng = np.random.default_rng(seed)
    n_sample = min(n_sample, particles.n)
    idx = rng.choice(particles.n, size=n_sample, replace=False)
    phi = direct_potentials(particles, particles.positions[idx],
                            softening=softening)
    return idx, phi
