"""Tree traversal: the force-computation phase of Barnes-Hut.

The traversal is *batched*: a whole array of target points walks the tree
together, the MAC is applied to all of them at once per node, and the
accepted subset gets a vectorized particle-cluster interaction while the
rest descends.  This is how a pure-numpy treecode stays tractable, and it
maps one-to-one onto the paper's function-shipping protocol: a received
bin of ~100 particle coordinates is exactly such a batch evaluated
against the subtree rooted at a branch node.

Remote leaves (placeholders for subtrees owned by other virtual
processors) never contribute locally; the traversal returns, per remote
node, the indices of the targets that need shipping — which the parallel
engine turns into bins.

Since the interaction-list engine (:mod:`repro.bh.interaction_lists`),
:func:`traverse` runs in two phases: a list-building walk and a fused
evaluation pass.  The counters, remote-target sets, per-node interaction
counts and per-target weights are identical to the classical single-pass
loop, which is preserved here as :func:`traverse_reference` — the
cross-check oracle and the "before" side of the perf-regression bench.
"""

from __future__ import annotations

import numpy as np

from repro.bh import kernels
from repro.bh.interaction_lists import (
    TraversalResult,
    build_interaction_lists,
    evaluate_interaction_lists,
)
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MonopoleExpansion, TreeMultipoles
from repro.bh.particles import ParticleSet
from repro.bh.tree import NO_CHILD, Tree

__all__ = [
    "TraversalResult",
    "traverse",
    "traverse_reference",
    "compute_forces",
    "compute_potentials",
]


def traverse(tree: Tree, sources: ParticleSet | None,
             target_positions: np.ndarray, mac: BarnesHutMAC,
             evaluator, mode: str = "potential",
             count_node_interactions: bool = False,
             softening: float = 0.0,
             root: int | None = None,
             target_weights: np.ndarray | None = None,
             working_set_bytes: int | None = None) -> TraversalResult:
    """Batched Barnes-Hut traversal from ``root`` (default: tree root).

    Parameters
    ----------
    sources:
        The particles the tree was built over; needed for leaf-level
        particle-particle interactions.  May be ``None`` only if the tree
        has no local leaves under ``root`` (a pure top tree).
    evaluator:
        Object with ``node_potential(node, targets)`` and
        ``node_force(node, targets)`` — :class:`MonopoleExpansion` or
        :class:`TreeMultipoles`.  Evaluators additionally exposing
        ``batch_potential(nodes, targets)`` / ``batch_force`` get the
        fused cluster kernel.
    mode:
        ``"potential"`` or ``"force"``.
    count_node_interactions:
        Accumulate per-node interaction counts into ``tree.interactions``
        (the DPDA load measure).
    target_weights:
        Optional (ntargets,) accumulator: each target's share of the
        traversal cost in model flops is added to it.  The load balancers
        use this to attribute *requester-side* work (top-tree walking)
        to the particles that caused it.
    working_set_bytes:
        Bound on the fused kernels' temporary arrays (default 16 MB).
    """
    if mode not in ("potential", "force"):
        raise ValueError(f"mode must be 'potential' or 'force', got {mode!r}")
    lists = build_interaction_lists(tree, target_positions, mac, root=root)
    return evaluate_interaction_lists(
        tree, lists, sources, evaluator, mode=mode, softening=softening,
        count_node_interactions=count_node_interactions,
        target_weights=target_weights,
        working_set_bytes=working_set_bytes,
    )


def traverse_reference(tree: Tree, sources: ParticleSet | None,
                       target_positions: np.ndarray, mac: BarnesHutMAC,
                       evaluator, mode: str = "potential",
                       count_node_interactions: bool = False,
                       softening: float = 0.0,
                       root: int | None = None,
                       target_weights: np.ndarray | None = None
                       ) -> TraversalResult:
    """The classical single-pass traversal (kernels evaluated in walk
    order).  Kept as the correctness oracle for the interaction-list
    engine and as the baseline of ``bench_traversal_engine``."""
    if mode not in ("potential", "force"):
        raise ValueError(f"mode must be 'potential' or 'force', got {mode!r}")
    targets = np.atleast_2d(np.asarray(target_positions, dtype=np.float64))
    nt, d = targets.shape
    values = np.zeros(nt) if mode == "potential" else np.zeros((nt, d))
    result = TraversalResult(values=values)
    if nt == 0 or tree.nnodes == 0:
        return result

    degree = getattr(evaluator, "degree", 0)
    per_cluster_flops = 13.0 + 16.0 * max(degree, 1) ** 2
    start = tree.ROOT if root is None else root
    stack: list[tuple[int, np.ndarray]] = [(start, np.arange(nt))]
    while stack:
        node, idx = stack.pop()
        if tree.is_remote(node):
            prev = result.remote_targets.get(node)
            result.remote_targets[node] = (
                idx if prev is None else np.concatenate((prev, idx))
            )
            continue
        if tree.count(node) == 0:
            continue
        if tree.is_leaf(node):
            if sources is None:
                raise ValueError("tree has local leaves but no source "
                                 "particles were provided")
            p_idx = tree.particle_indices(node)
            if mode == "potential":
                values[idx] += kernels.pair_potential(
                    targets[idx], sources.positions[p_idx],
                    sources.masses[p_idx], softening=softening,
                )
            else:
                values[idx] += kernels.pair_force(
                    targets[idx], sources.positions[p_idx],
                    sources.masses[p_idx], softening=softening,
                )
            result.p2p_interactions += idx.size * p_idx.size
            if target_weights is not None:
                target_weights[idx] += 29.0 * p_idx.size
            if count_node_interactions:
                # Count *pairs*, not visits: a leaf with k particles
                # serving m targets costs m*k interactions, and the load
                # balancers consume these counters as work units.
                tree.interactions[node] += idx.size * p_idx.size
            continue
        result.mac_tests += idx.size
        if target_weights is not None:
            target_weights[idx] += 14.0
        ok = mac.accept(tree, node, targets[idx])
        far = idx[ok]
        if far.size:
            if mode == "potential":
                values[far] += evaluator.node_potential(node, targets[far])
            else:
                values[far] += evaluator.node_force(node, targets[far])
            result.cluster_interactions += far.size
            if target_weights is not None:
                target_weights[far] += per_cluster_flops
            if count_node_interactions:
                tree.interactions[node] += far.size
        near = idx[~ok]
        if near.size:
            for child in tree.children[node]:
                if child != NO_CHILD:
                    stack.append((int(child), near))
    return result


def compute_forces(particles: ParticleSet, alpha: float = 0.67,
                   leaf_capacity: int = 8, softening: float = 0.0,
                   tree: Tree | None = None,
                   engine=None) -> TraversalResult:
    """Serial Barnes-Hut forces on all particles (monopole, Section 5.1).

    Pass a :class:`~repro.bh.interaction_lists.TraversalEngine` bound to
    the same tree to reuse a previous walk over the same targets (e.g.
    after :func:`compute_potentials` on the same particle set).
    """
    if engine is not None:
        tree = engine.tree
    elif tree is None:
        from repro.bh.tree import build_tree
        tree = build_tree(particles, leaf_capacity=leaf_capacity)
    evaluator = MonopoleExpansion(tree, softening=softening)
    if engine is not None:
        return engine.compute(particles.positions, evaluator, mode="force")
    mac = BarnesHutMAC(alpha)
    return traverse(tree, particles, particles.positions, mac, evaluator,
                    mode="force", softening=softening)


def compute_potentials(particles: ParticleSet, alpha: float = 0.67,
                       degree: int = 0, leaf_capacity: int = 8,
                       softening: float = 0.0,
                       tree: Tree | None = None,
                       engine=None) -> TraversalResult:
    """Serial Barnes-Hut potentials on all particles.

    ``degree = 0`` uses monopoles; ``degree >= 1`` uses spherical-harmonic
    multipole expansions of that degree (Section 5.2).  A
    :class:`~repro.bh.interaction_lists.TraversalEngine` passed as
    ``engine`` shares one walk across modes and degrees.
    """
    if engine is not None:
        tree = engine.tree
    elif tree is None:
        from repro.bh.tree import build_tree
        tree = build_tree(particles, leaf_capacity=leaf_capacity)
    if degree == 0:
        evaluator = MonopoleExpansion(tree, softening=softening)
    else:
        evaluator = TreeMultipoles(tree, particles, degree)
    if engine is not None:
        return engine.compute(particles.positions, evaluator,
                              mode="potential")
    mac = BarnesHutMAC(alpha)
    return traverse(tree, particles, particles.positions, mac, evaluator,
                    mode="potential", softening=softening)
