"""Particle distribution generators and the paper's named instances.

The paper evaluates on Gaussian (``g_*``) and Plummer (``p_*``)
distributions from 25 k to 1.2 M particles, plus four 25 130-particle
irregularity studies (``s_1g_a``, ``s_1g_b``, ``s_10g_a``, ``s_10g_b``)
whose exact construction Section 5.1.1 spells out: Gaussians centered
randomly in a 100x100x100 domain with variance such that "most particles
lie within a 2x2x2 subdomain" (variant ``a``) or a 4x4x4 subdomain
(variant ``b``).

``make_instance(name, scale=...)`` reproduces any of these, with ``scale``
shrinking the particle count proportionally (pure-Python traversal cannot
reach 1.2 M particles in bench time; EXPERIMENTS.md records the scales
used).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

import numpy as np

from repro.bh.particles import ParticleSet

#: Side of the paper's simulation domain for the s_* instances.
DOMAIN_SIDE = 100.0


def uniform_cube(n: int, dims: int = 3, side: float = 1.0,
                 seed: int | None = 0) -> ParticleSet:
    """Uniform random particles in a cube of the given side, unit total
    mass."""
    if n <= 0:
        raise ValueError(f"need a positive particle count, got {n}")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, side, size=(n, dims))
    return ParticleSet(positions=pos, masses=np.full(n, 1.0 / n))


def plummer(n: int, dims: int = 3, total_mass: float = 1.0,
            scale_radius: float = 1.0, seed: int | None = 0,
            max_radius: float | None = None,
            with_velocities: bool = True) -> ParticleSet:
    """A Plummer (1911) sphere with isotropic equilibrium velocities.

    Uses the classic Aarseth, Henon & Wielen (1974) sampling recipe:
    radius from the inverse cumulative mass profile, velocity magnitude by
    von Neumann rejection against ``g(q) = q^2 (1 - q^2)^{7/2}``.
    ``max_radius`` (default ``10 * scale_radius``) truncates the halo so
    the domain stays bounded, as all practical n-body codes do.
    """
    if n <= 0:
        raise ValueError(f"need a positive particle count, got {n}")
    if dims != 3:
        raise ValueError("the Plummer model is three-dimensional")
    if max_radius is None:
        max_radius = 10.0 * scale_radius
    rng = np.random.default_rng(seed)

    # Radii: M(r)/M = r^3 / (r^2 + a^2)^{3/2}  =>  r = a / sqrt(X^{-2/3}-1)
    m_frac_cap = (max_radius ** 3
                  / (max_radius ** 2 + scale_radius ** 2) ** 1.5)
    x = rng.uniform(0.0, m_frac_cap, size=n)
    # Guard X=0 (radius 0 is fine, but the formula divides by zero).
    x = np.maximum(x, 1e-12)
    r = scale_radius / np.sqrt(x ** (-2.0 / 3.0) - 1.0)

    pos = r[:, None] * _random_unit_vectors(rng, n)

    vel = np.zeros((n, 3))
    if with_velocities:
        # Escape speed v_e = sqrt(2) (1 + r^2/a^2)^{-1/4} in model units
        # (G = M = a = 1), scaled afterwards.
        q = _sample_plummer_velocity_fraction(rng, n)
        v_esc = math.sqrt(2.0) * (1.0 + (r / scale_radius) ** 2) ** -0.25
        speed = q * v_esc * math.sqrt(total_mass / scale_radius)
        vel = speed[:, None] * _random_unit_vectors(rng, n)

    return ParticleSet(positions=pos, masses=np.full(n, total_mass / n),
                       velocities=vel)


def _random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """Isotropic unit vectors in 3-D."""
    cos_t = rng.uniform(-1.0, 1.0, size=n)
    sin_t = np.sqrt(1.0 - cos_t ** 2)
    phi = rng.uniform(0.0, 2.0 * math.pi, size=n)
    return np.column_stack(
        (sin_t * np.cos(phi), sin_t * np.sin(phi), cos_t)
    )


def _sample_plummer_velocity_fraction(rng: np.random.Generator,
                                      n: int) -> np.ndarray:
    """Rejection-sample q = v / v_escape from g(q) = q^2 (1-q^2)^{7/2}."""
    out = np.empty(n)
    filled = 0
    g_max = 0.092  # slightly above the true maximum ~0.0918 of g(q)
    while filled < n:
        todo = n - filled
        q = rng.uniform(0.0, 1.0, size=2 * todo)
        y = rng.uniform(0.0, g_max, size=2 * todo)
        ok = y < q ** 2 * (1.0 - q ** 2) ** 3.5
        take = q[ok][:todo]
        out[filled:filled + take.size] = take
        filled += take.size
    return out


def gaussian_blobs(n: int, centers: np.ndarray, sigma: float,
                   dims: int = 3, domain_side: float = DOMAIN_SIDE,
                   seed: int | None = 0) -> ParticleSet:
    """``n`` particles split evenly over Gaussian blobs at ``centers``.

    Positions are clipped into the ``[0, domain_side)`` cube so the domain
    stays the paper's 100^3 box.  Unit total mass.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    if centers.shape[1] != dims:
        raise ValueError(
            f"centers must be (k, {dims}), got {centers.shape}"
        )
    if n < centers.shape[0]:
        raise ValueError("need at least one particle per blob")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    rng = np.random.default_rng(seed)
    k = centers.shape[0]
    counts = np.full(k, n // k)
    counts[: n % k] += 1
    chunks = [
        rng.normal(loc=centers[i], scale=sigma, size=(counts[i], dims))
        for i in range(k)
    ]
    pos = np.concatenate(chunks)
    eps = 1e-9 * domain_side
    pos = np.clip(pos, 0.0, domain_side - eps)
    return ParticleSet(positions=pos, masses=np.full(n, 1.0 / n))


def random_centers(k: int, dims: int, rng: np.random.Generator,
                   domain_side: float = DOMAIN_SIDE,
                   margin: float = 0.1) -> np.ndarray:
    """Blob centers placed uniformly, keeping a margin from the walls."""
    lo = margin * domain_side
    hi = (1.0 - margin) * domain_side
    return rng.uniform(lo, hi, size=(k, dims))


@dataclass(frozen=True)
class InstanceSpec:
    """Recipe for one of the paper's named problem instances."""

    name: str
    n: int
    kind: str          # "gaussian" | "plummer"
    blobs: int = 1
    #: Gaussian sigma such that ~95% of a blob falls in a
    #: ``containment x containment x containment`` subdomain (paper 5.1.1).
    containment: float | None = None
    description: str = ""

    def sigma(self) -> float:
        """2-sigma radius = containment/2 => sigma = containment / 4."""
        if self.containment is None:
            raise ValueError(f"{self.name} is not a Gaussian instance")
        return self.containment / 4.0


#: All instances the paper's tables reference.  The g_* Gaussian instances
#: use moderately tight blobs (the paper does not give their variance);
#: the s_* instances follow Section 5.1.1 exactly.
INSTANCES: dict[str, InstanceSpec] = {
    spec.name: spec for spec in [
        InstanceSpec("g_28131", 28131, "gaussian", blobs=1, containment=25.0,
                     description="small Gaussian (Table 2)"),
        InstanceSpec("g_160535", 160535, "gaussian", blobs=1,
                     containment=25.0, description="Tables 1, 2, 5, 6, 7"),
        InstanceSpec("g_326214", 326214, "gaussian", blobs=1,
                     containment=25.0, description="Tables 1, 2, 3, 5, 6, 7"),
        InstanceSpec("g_657499", 657499, "gaussian", blobs=1,
                     containment=25.0, description="Tables 1, 2"),
        InstanceSpec("g_1192768", 1192768, "gaussian", blobs=2,
                     containment=25.0,
                     description="two Gaussians (Tables 1, 3)"),
        InstanceSpec("p_63192", 63192, "plummer",
                     description="Tables 5, 6, 7"),
        InstanceSpec("p_353992", 353992, "plummer",
                     description="Tables 5, 6, 7"),
        InstanceSpec("s_1g_a", 25130, "gaussian", blobs=1, containment=2.0,
                     description="1 tight Gaussian, 2^3 subdomain (Table 4)"),
        InstanceSpec("s_1g_b", 25130, "gaussian", blobs=1, containment=4.0,
                     description="1 looser Gaussian, 4^3 subdomain (Table 4)"),
        InstanceSpec("s_10g_a", 25130, "gaussian", blobs=10, containment=2.0,
                     description="10 tight Gaussians (Table 4)"),
        InstanceSpec("s_10g_b", 25130, "gaussian", blobs=10, containment=4.0,
                     description="10 looser Gaussians (Table 4)"),
    ]
}

_GENERIC = re.compile(r"^(g|p)_(\d+)$")


def make_instance(name: str, scale: float = 1.0,
                  seed: int = 1994) -> ParticleSet:
    """Build a named paper instance, optionally scaled down.

    ``scale=1.0`` gives the paper's particle count; ``scale=0.05`` gives
    5% of it (same distribution shape).  Unknown ``g_<n>`` / ``p_<n>``
    names are synthesised generically.
    """
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    spec = INSTANCES.get(name)
    if spec is None:
        m = _GENERIC.match(name)
        if not m:
            raise ValueError(
                f"unknown instance {name!r}; known: {sorted(INSTANCES)}"
            )
        kind = "gaussian" if m.group(1) == "g" else "plummer"
        spec = InstanceSpec(name, int(m.group(2)), kind, blobs=1,
                            containment=25.0 if kind == "gaussian" else None)
    n = max(16, int(round(spec.n * scale)))
    rng = np.random.default_rng(seed)
    if spec.kind == "plummer":
        # Plummer cluster centered in the 100^3 domain, core radius ~5.
        ps = plummer(n, scale_radius=5.0, seed=seed)
        ps.positions += DOMAIN_SIDE / 2.0
        np.clip(ps.positions, 0.0, DOMAIN_SIDE * (1 - 1e-9),
                out=ps.positions)
        return ps
    centers = random_centers(spec.blobs, 3, rng)
    return gaussian_blobs(n, centers, spec.sigma(), seed=seed)
