"""A serial fast multipole method on the Barnes-Hut trees.

The paper contrasts Barnes-Hut (particle-cluster interactions, forces)
with Greengard & Rokhlin's FMM (cluster-cluster interactions,
potentials) and notes that "parallel formulations of FMM and the
Barnes-Hut method are similar...  the techniques can be extended to
FMM".  This module provides the serial FMM those extensions would build
on, assembled from the operator set in :mod:`repro.bh.multipole` (P2M,
M2M) and :mod:`repro.bh.local_expansion` (M2L, L2L, L2P):

1. *upward pass* — leaf P2M, M2M to ancestors (``TreeMultipoles``);
2. *interaction pass* — a dual tree walk pairs cells; well-separated
   pairs exchange M2L contributions, leaf pairs fall back to direct
   summation;
3. *downward pass* — L2L pushes local expansions to children, L2P
   evaluates them at the particles.

Well-separatedness uses the symmetric criterion
``side_a + side_b < theta * dist(center_a, center_b)`` which plays the
role of the Barnes-Hut alpha.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh import kernels
from repro.bh.local_expansion import l2l, l2p, m2l
from repro.bh.multipole import TreeMultipoles, n_terms
from repro.bh.particles import ParticleSet
from repro.bh.tree import NO_CHILD, Tree, build_tree


@dataclass
class FMMStats:
    """Operator counts of one evaluation (for the O(n) argument)."""

    m2l_pairs: int = 0
    p2p_pairs: int = 0
    l2l_shifts: int = 0


def _children(tree: Tree, node: int) -> list[int]:
    return [int(c) for c in tree.children[node] if c != NO_CHILD]


def _batched_m2l(tree: Tree, tm: TreeMultipoles,
                 pairs: list[tuple[int, int]], locals_: np.ndarray,
                 degree: int, chunk: int = 512) -> None:
    """Apply M2L for all (target, source) cell pairs, vectorized.

    The shift harmonics are evaluated for a whole chunk of pairs at once
    and the translation applied as one gather/scatter — two orders of
    magnitude faster than per-pair calls in Python.
    """
    from repro.bh.local_expansion import _m2l_tables
    from repro.bh.multipole import spherical_coords, spherical_harmonics

    if not pairs:
        return
    out_idx, m_idx, y_idx, lpj, coefs = _m2l_tables(degree)
    nt = locals_.shape[1]
    arr = np.asarray(pairs, dtype=np.int64)
    flat = locals_.reshape(-1)
    for lo in range(0, arr.shape[0], chunk):
        part = arr[lo:lo + chunk]
        ta, sb = part[:, 0], part[:, 1]
        shifts = tree.center[sb] - tree.center[ta]
        r, ct, phi_ = spherical_coords(shifts)
        Y = spherical_harmonics(ct, phi_, 2 * degree)      # (c, nt2)
        contrib = (tm.coeffs[sb][:, m_idx] * coefs[None, :]
                   * Y[:, y_idx] / r[:, None] ** lpj[None, :])
        flat_idx = ta[:, None] * nt + out_idx[None, :]
        np.add.at(flat, flat_idx.ravel(), contrib.ravel())


def fmm_potentials(particles: ParticleSet, degree: int = 6,
                   theta: float = 0.7, leaf_capacity: int = 16,
                   tree: Tree | None = None,
                   return_stats: bool = False):
    """Gravitational potentials (-G q / r convention) at every particle.

    Parameters
    ----------
    degree:
        Expansion order of both multipole and local series.
    theta:
        Separation parameter: cells interact through M2L when
        ``side_a + side_b < theta * distance``.  Smaller = stricter =
        more accurate.
    """
    if particles.dims != 3:
        raise ValueError("the FMM operators are three-dimensional")
    if degree < 1:
        raise ValueError("FMM needs expansion degree >= 1")
    if theta <= 0:
        raise ValueError("theta must be positive")
    if tree is None:
        tree = build_tree(particles, leaf_capacity=leaf_capacity)

    # ---- upward pass: P2M at leaves, M2M to ancestors
    tm = TreeMultipoles(tree, particles, degree)
    stats = FMMStats()

    locals_ = np.zeros((tree.nnodes, n_terms(degree)), dtype=np.complex128)
    phi = np.zeros(particles.n)

    # ---- interaction pass: dual tree walk from (root, root).
    # M2L pairs and leaf P2P partners are *collected* during the walk and
    # processed in vectorized batches afterwards — per-pair Python calls
    # dominate otherwise.
    def well_separated(a: int, b: int) -> bool:
        d = np.linalg.norm(tree.center[a] - tree.center[b])
        return 2.0 * (tree.half[a] + tree.half[b]) < theta * d

    m2l_pairs: list[tuple[int, int]] = []
    p2p_partners: dict[int, list[int]] = {}

    stack = [(tree.ROOT, tree.ROOT)]
    while stack:
        a, b = stack.pop()   # a: target cell, b: source cell
        if tree.count(a) == 0 or tree.count(b) == 0:
            continue
        if a != b and well_separated(a, b):
            m2l_pairs.append((a, b))
            continue
        a_leaf, b_leaf = tree.is_leaf(a), tree.is_leaf(b)
        if a_leaf and b_leaf:
            p2p_partners.setdefault(a, []).append(b)
            continue
        # split the larger cell (both if equal and a == b)
        if b_leaf or (not a_leaf and tree.half[a] >= tree.half[b]):
            for c in _children(tree, a):
                stack.append((c, b))
        else:
            for c in _children(tree, b):
                stack.append((a, c))

    stats.m2l_pairs = len(m2l_pairs)
    stats.p2p_pairs = sum(len(v) for v in p2p_partners.values())
    _batched_m2l(tree, tm, m2l_pairs, locals_, degree)

    for a, sources in p2p_partners.items():
        ia = tree.particle_indices(a)
        ib = np.concatenate([tree.particle_indices(b) for b in sources])
        # pair_potential returns the gravity sign (-G q / r); phi here
        # accumulates the raw series sum (+q / r) until the final flip.
        phi[ia] -= kernels.pair_potential(
            particles.positions[ia], particles.positions[ib],
            particles.masses[ib],
        ) / kernels.G

    # ---- downward pass: L2L to children, L2P at leaves
    order = np.argsort(tree.depth, kind="stable")
    for node in order:
        node = int(node)
        kids = _children(tree, node)
        for c in kids:
            shift = tree.center[node] - tree.center[c]
            locals_[c] += l2l(locals_[node], shift, degree)
            stats.l2l_shifts += 1
        if not kids:  # leaf: evaluate the accumulated local expansion
            idx = tree.particle_indices(node)
            if idx.size:
                rel = particles.positions[idx] - tree.center[node]
                phi[idx] += l2p(locals_[node], rel, degree)

    phi *= -kernels.G
    if return_stats:
        return phi, stats
    return phi
