"""Multipole expansions: monopole, 3-D spherical harmonic, 2-D complex.

The paper's Section 5.2 computes gravitational *potentials* "conveniently
expressed as a series using Legendre's polynomials" of degree ``k`` (their
citation is Greengard's thesis).  We implement the classical spherical-
harmonic multipole machinery in Greengard's normalization:

    Y_l^m(theta, phi) = sqrt((l-|m|)! / (l+|m|)!) P_l^|m|(cos theta) e^{i m phi}

    P2M:  M_l^m = sum_j q_j rho_j^l Y_l^{-m}(alpha_j, beta_j)
    M2P:  phi(P) = sum_{l,m} M_l^m Y_l^m(theta, phi) / r^{l+1}
    M2M:  Greengard & Rokhlin (1987), Lemma 2.3 (expansion shift)

with the Condon-Shortley phase in the associated Legendre functions.  The
M2M operator is what lets the distributed tree merge compute top-level
expansions from branch-node expansions without access to remote particles.

2-D expansions use the standard complex Laurent series about the cell
center (Greengard & Rokhlin's original 2-D operators) — handy for fast
tests and 2-D demos.

Sign convention: expansions represent ``sum_j q_j / |r - x_j|`` (3-D) or
``sum_j q_j ln|r - x_j|`` (2-D); gravity multiplies by ``-G`` (3-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.bh import kernels
from repro.bh.tree import NO_CHILD, Tree
from repro.bh.particles import ParticleSet


def term_index(l: int, m: int) -> int:
    """Flat index of coefficient (l, m) with -l <= m <= l."""
    if abs(m) > l:
        raise ValueError(f"|m| = {abs(m)} exceeds l = {l}")
    return l * l + (m + l)


def n_terms(degree: int) -> int:
    """Number of (l, m) coefficients for expansions up to ``degree``."""
    if degree < 0:
        raise ValueError(f"negative degree {degree}")
    return (degree + 1) ** 2


def spherical_coords(rel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(r, cos theta, phi) of Cartesian offsets; r = 0 maps to the pole."""
    rel = np.atleast_2d(rel)
    r = np.sqrt(np.einsum("ij,ij->i", rel, rel))
    safe_r = np.where(r > 0, r, 1.0)
    cos_t = np.where(r > 0, rel[:, 2] / safe_r, 1.0)
    cos_t = np.clip(cos_t, -1.0, 1.0)
    phi = np.arctan2(rel[:, 1], rel[:, 0])
    return r, cos_t, phi


def _legendre_table(x: np.ndarray, degree: int) -> list[list[np.ndarray]]:
    """Associated Legendre P_l^m(x) (Condon-Shortley) for 0<=m<=l<=degree,
    vectorized over ``x``."""
    P: list[list[np.ndarray | None]] = [
        [None] * (degree + 1) for _ in range(degree + 1)
    ]
    P[0][0] = np.ones_like(x)
    if degree == 0:
        return P  # type: ignore[return-value]
    somx2 = np.sqrt(np.maximum(1.0 - x * x, 0.0))
    for m in range(1, degree + 1):
        P[m][m] = -(2 * m - 1) * somx2 * P[m - 1][m - 1]
    for m in range(degree):
        P[m + 1][m] = (2 * m + 1) * x * P[m][m]
    for m in range(degree + 1):
        for l in range(m + 2, degree + 1):
            P[l][m] = ((2 * l - 1) * x * P[l - 1][m]
                       - (l + m - 1) * P[l - 2][m]) / (l - m)
    return P  # type: ignore[return-value]


@lru_cache(maxsize=32)
def _y_norms(degree: int) -> dict[tuple[int, int], float]:
    """sqrt((l-m)!/(l+m)!) for 0 <= m <= l <= degree."""
    return {
        (l, m): math.sqrt(math.factorial(l - m) / math.factorial(l + m))
        for l in range(degree + 1) for m in range(l + 1)
    }


def spherical_harmonics(cos_t: np.ndarray, phi: np.ndarray,
                        degree: int) -> np.ndarray:
    """Y_l^m for all (l, m) up to ``degree``: shape (npts, nterms)."""
    npts = cos_t.shape[0]
    P = _legendre_table(cos_t, degree)
    norms = _y_norms(degree)
    out = np.empty((npts, n_terms(degree)), dtype=np.complex128)
    e_pos = [np.exp(1j * m * phi) for m in range(degree + 1)]
    for l in range(degree + 1):
        for m in range(l + 1):
            y = norms[(l, m)] * P[l][m] * e_pos[m]
            out[:, term_index(l, m)] = y
            if m:
                out[:, term_index(l, -m)] = np.conj(y)
    return out


def regular_terms(rel: np.ndarray, degree: int) -> np.ndarray:
    """rho^l Y_l^{-m}(alpha, beta) for each offset: shape (npts, nterms).

    Summed against charges this *is* the P2M operator; evaluated at a
    shift vector it feeds the M2M operator.
    """
    rel = np.atleast_2d(rel)
    r, cos_t, phi = spherical_coords(rel)
    Y = spherical_harmonics(cos_t, phi, degree)
    out = np.empty_like(Y)
    rpow = np.ones_like(r)
    for l in range(degree + 1):
        for m in range(-l, l + 1):
            out[:, term_index(l, m)] = rpow * Y[:, term_index(l, -m)]
        rpow = rpow * r
    return out


def irregular_terms(rel: np.ndarray, degree: int) -> np.ndarray:
    """Y_l^m(theta, phi) / r^{l+1} for each offset: shape (npts, nterms).

    ``phi(P) = irregular_terms(P - center) @ M`` evaluates the expansion.
    All offsets must be nonzero.
    """
    rel = np.atleast_2d(rel)
    r, cos_t, phi = spherical_coords(rel)
    if np.any(r == 0):
        raise ValueError("cannot evaluate a multipole expansion at its "
                         "own center")
    Y = spherical_harmonics(cos_t, phi, degree)
    out = np.empty_like(Y)
    rpow = 1.0 / r
    for l in range(degree + 1):
        for m in range(-l, l + 1):
            i = term_index(l, m)
            out[:, i] = rpow * Y[:, i]
        rpow = rpow / r
    return out


@lru_cache(maxsize=16)
def _m2m_tables(degree: int):
    """Precomputed index/coefficient arrays for the M2M shift.

    Greengard & Rokhlin Lemma 2.3: with the child expansion M centered at
    Q = (rho, alpha, beta) relative to the parent center,

      M'_j^k = sum_{l,m} M_{j-l}^{k-m} i^{|k|-|m|-|k-m|}
               A_l^m A_{j-l}^{k-m} rho^l Y_l^{-m}(alpha, beta) / A_j^k

    where A_l^m = (-1)^l / sqrt((l-m)! (l+m)!).  Note that
    ``rho^l Y_l^{-m}`` is exactly ``regular_terms(shift)[term_index(l, m)]``.
    """
    def A(l: int, m: int) -> float:
        return (-1.0) ** l / math.sqrt(
            math.factorial(l - m) * math.factorial(l + m)
        )

    out_idx, shift_idx, src_idx, coefs = [], [], [], []
    for j in range(degree + 1):
        for k in range(-j, j + 1):
            for l in range(j + 1):
                for m in range(-l, l + 1):
                    jj, kk = j - l, k - m
                    if abs(kk) > jj:
                        continue
                    out_idx.append(term_index(j, k))
                    shift_idx.append(term_index(l, m))
                    src_idx.append(term_index(jj, kk))
                    phase = 1j ** (abs(k) - abs(m) - abs(kk))
                    coefs.append(phase * A(l, m) * A(jj, kk) / A(j, k))
    return (np.asarray(out_idx), np.asarray(shift_idx),
            np.asarray(src_idx), np.asarray(coefs, dtype=np.complex128))


def m2m_shift(coeffs: np.ndarray, shift: np.ndarray, degree: int) -> np.ndarray:
    """Translate an expansion centered at ``c`` to one at ``c - shift``...
    precisely: ``shift`` is the child center *relative to* the new center.
    """
    R = regular_terms(np.asarray(shift, dtype=np.float64)[None, :], degree)[0]
    out_idx, shift_idx, src_idx, coefs = _m2m_tables(degree)
    contrib = R[shift_idx] * coeffs[src_idx] * coefs
    out = np.zeros(n_terms(degree), dtype=np.complex128)
    np.add.at(out, out_idx, contrib)
    return out


def m2m_shift_batch(coeffs: np.ndarray, shifts: np.ndarray,
                    degree: int) -> np.ndarray:
    """Batched M2M: row ``i`` of the result is bitwise equal to
    ``m2m_shift(coeffs[i], shifts[i], degree)``.

    ``np.add.at`` with broadcast 2-D indices accumulates in row-major
    order — per row, indices in table order — exactly the per-pair
    sequential scatter of the scalar operator.
    """
    coeffs = np.atleast_2d(coeffs)
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    m = coeffs.shape[0]
    R = regular_terms(shifts, degree)
    out_idx, shift_idx, src_idx, coefs = _m2m_tables(degree)
    contrib = R[:, shift_idx] * coeffs[:, src_idx] * coefs[None, :]
    out = np.zeros((m, n_terms(degree)), dtype=np.complex128)
    np.add.at(out, (np.arange(m)[:, None], out_idx[None, :]), contrib)
    return out


class MultipoleExpansion3D:
    """Spherical-harmonic expansion machinery of a fixed degree."""

    def __init__(self, degree: int):
        if degree < 0:
            raise ValueError(f"negative multipole degree {degree}")
        self.degree = degree
        self.nterms = n_terms(degree)

    def p2m(self, rel_positions: np.ndarray, charges: np.ndarray) -> np.ndarray:
        """Moments of point charges about the origin of ``rel_positions``."""
        R = regular_terms(rel_positions, self.degree)
        return np.asarray(charges) @ R

    def m2m(self, coeffs: np.ndarray, shift: np.ndarray) -> np.ndarray:
        """Shift moments; ``shift`` = old center relative to new center."""
        return m2m_shift(coeffs, shift, self.degree)

    def evaluate(self, coeffs: np.ndarray, rel_targets: np.ndarray) -> np.ndarray:
        """Potential sum ``q/r`` at targets relative to the center (real)."""
        return (irregular_terms(rel_targets, self.degree) @ coeffs).real

    @property
    def wire_floats(self) -> int:
        """Floats on the wire for one expansion (complex coeffs)."""
        return 2 * self.nterms


class MultipoleExpansion2D:
    """Complex Laurent expansion: phi(z) = a0 log(z-c) + sum a_j (z-c)^-j."""

    def __init__(self, degree: int):
        if degree < 1:
            raise ValueError("2-D expansions need degree >= 1")
        self.degree = degree
        self.nterms = degree + 1

    @staticmethod
    def _as_complex(points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(points)
        if pts.shape[1] != 2:
            raise ValueError("2-D expansion needs (n, 2) points")
        return pts[:, 0] + 1j * pts[:, 1]

    def p2m(self, rel_positions: np.ndarray, charges: np.ndarray) -> np.ndarray:
        z = self._as_complex(rel_positions)
        q = np.asarray(charges, dtype=np.float64)
        coeffs = np.zeros(self.nterms, dtype=np.complex128)
        coeffs[0] = q.sum()
        zp = np.ones_like(z)
        for j in range(1, self.nterms):
            zp = zp * z
            coeffs[j] = -(q * zp).sum() / j
        return coeffs

    def m2m(self, coeffs: np.ndarray, shift: np.ndarray) -> np.ndarray:
        """Shift by ``t`` = old center relative to new center (2-vector)."""
        t = complex(shift[0], shift[1])
        out = np.zeros_like(coeffs)
        out[0] = coeffs[0]
        for j in range(1, self.nterms):
            acc = -coeffs[0] * t ** j / j
            for s in range(1, j + 1):
                acc += coeffs[s] * t ** (j - s) * math.comb(j - 1, s - 1)
            out[j] = acc
        return out

    def evaluate(self, coeffs: np.ndarray, rel_targets: np.ndarray) -> np.ndarray:
        """Real log-potential sum ``q ln|z|`` at targets (relative)."""
        z = self._as_complex(rel_targets)
        if np.any(z == 0):
            raise ValueError("cannot evaluate a multipole expansion at its "
                             "own center")
        acc = coeffs[0] * np.log(z)
        zinv = 1.0 / z
        zp = np.ones_like(z)
        for j in range(1, self.nterms):
            zp = zp * zinv
            acc = acc + coeffs[j] * zp
        return acc.real


@dataclass
class MonopoleExpansion:
    """Degree-0 evaluator: the node is its center of mass (Section 5.1)."""

    tree: Tree
    softening: float = 0.0
    degree: int = 0

    def node_potential(self, node: int, targets: np.ndarray) -> np.ndarray:
        return kernels.point_mass_potential(
            targets, self.tree.com[node], float(self.tree.mass[node]),
            softening=self.softening,
        )

    def node_force(self, node: int, targets: np.ndarray) -> np.ndarray:
        return kernels.point_mass_force(
            targets, self.tree.com[node], float(self.tree.mass[node]),
            softening=self.softening,
        )

    # Fused cluster interface for the interaction-list engine: one
    # gathered monopole evaluation over all accepted (node, target)
    # pairs, row-for-row the same arithmetic as the per-node kernels.
    @property
    def batch_row_bytes(self) -> int:
        return 8 * (6 * self.tree.dims + 8)

    def compiled_cluster_data(self, mode: str):
        """Point-mass data for the compiled kernel tier: monopole
        arithmetic covers both modes."""
        return self.tree.com, self.tree.mass, self.softening

    def batch_potential(self, nodes: np.ndarray,
                        targets: np.ndarray) -> np.ndarray:
        diff = targets - self.tree.com[nodes]
        r2 = np.einsum("ij,ij->i", diff, diff) + self.softening ** 2
        with np.errstate(divide="ignore"):
            inv_r = 1.0 / np.sqrt(r2)
        inv_r[r2 == 0.0] = 0.0
        return -kernels.G * self.tree.mass[nodes] * inv_r

    def batch_force(self, nodes: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        diff = targets - self.tree.com[nodes]
        r2 = np.einsum("ij,ij->i", diff, diff) + self.softening ** 2
        zero = r2 == 0.0
        np.sqrt(r2, out=r2)
        with np.errstate(divide="ignore"):
            np.divide(1.0, r2, out=r2)                 # inv_r
        r2[zero] = 0.0
        inv_r3 = r2 * r2
        inv_r3 *= r2
        w = self.tree.mass[nodes] * inv_r3
        w *= -kernels.G
        return w[:, None] * diff


class TreeMultipoles:
    """Per-node spherical-harmonic expansions for a whole tree.

    Leaf expansions come from P2M over the leaf's particles; internal
    expansions from M2M over children — so the tree merge path and the
    local path share the exact same operators.  Expansions are centered
    at the *geometric cell centers* (not the COM) so that merged top
    trees can shift them without knowing particle data.
    """

    def __init__(self, tree: Tree, particles: ParticleSet | None,
                 degree: int):
        if tree.dims != 3:
            raise ValueError("TreeMultipoles requires a 3-D tree")
        self.tree = tree
        self.expansion = MultipoleExpansion3D(degree)
        self.degree = degree
        self.coeffs = np.zeros((tree.nnodes, self.expansion.nterms),
                               dtype=np.complex128)
        if particles is not None:
            self._build(particles)

    def refresh(self, particles: ParticleSet, nodes: np.ndarray) -> None:
        """Recompute expansions for ``nodes`` only (tree repair: stale
        nodes on dirty root-paths), assuming every untouched node holds
        valid coefficients.  Bitwise equal to a full build restricted to
        those rows, because every grouped reduction in :meth:`_build`
        is per-row independent."""
        self.coeffs[nodes] = 0.0
        self._build(particles, nodes)

    def _build(self, particles: ParticleSet,
               nodes: np.ndarray | None = None) -> None:
        """Level-batched upward pass: grouped P2M over all leaves of one
        slice length, grouped M2M shifts per (level, child-count) bucket.
        Bitwise equal to :meth:`_build_reference` — batched ``matmul``
        and row-major ``add.at`` reproduce the per-node reductions
        exactly.  ``nodes`` restricts the pass (see :meth:`refresh`)."""
        tree = self.tree
        nterms = self.expansion.nterms
        pos, masses = particles.positions, particles.masses
        restrict = None
        if nodes is not None:
            restrict = np.zeros(tree.nnodes, dtype=bool)
            restrict[nodes] = True
        local = tree.remote_owner < 0
        leaf_mask = (tree.children == NO_CHILD).all(axis=1) & local
        if restrict is not None:
            leaf_mask &= restrict
        leaves = np.flatnonzero(leaf_mask)
        lengths = (tree.end - tree.start)[leaves]
        for L in np.unique(lengths):
            if L == 0:
                continue
            sel = leaves[lengths == L]
            gather = tree.order[tree.start[sel][:, None]
                                + np.arange(int(L))[None, :]]
            rel = pos[gather] - tree.center[sel][:, None, :]
            R = regular_terms(rel.reshape(-1, 3), self.degree)
            R = R.reshape(sel.size, int(L), nterms)
            q = masses[gather].astype(np.complex128)
            # batched vector-matrix product == per-leaf ``charges @ R``
            self.coeffs[sel] = np.matmul(q[:, None, :], R)[:, 0, :]
        for nodes, kids in tree._internal_child_groups(restrict):
            c = kids.shape[1]
            shifts = (tree.center[kids.reshape(-1)]
                      - np.repeat(tree.center[nodes], c, axis=0))
            shifted = m2m_shift_batch(self.coeffs[kids.reshape(-1)],
                                      shifts, self.degree)
            shifted = shifted.reshape(nodes.size, c, nterms)
            # sequential left-fold over children in slot order — the
            # reference's repeated ``+=`` — not a pairwise sum
            acc = self.coeffs[nodes]
            for j in range(c):
                acc = acc + shifted[:, j, :]
            self.coeffs[nodes] = acc

    def _build_reference(self, particles: ParticleSet) -> None:
        """Per-node reverse-scan P2M/M2M pass — the oracle
        :meth:`_build` is validated against."""
        tree, exp = self.tree, self.expansion
        for node in range(tree.nnodes - 1, -1, -1):
            if tree.is_remote(node):
                continue
            if tree.is_leaf(node):
                idx = tree.particle_indices(node)
                if idx.size:
                    rel = particles.positions[idx] - tree.center[node]
                    self.coeffs[node] = exp.p2m(rel, particles.masses[idx])
            else:
                kids = tree.children[node]
                kids = kids[kids != NO_CHILD]
                for c in kids:
                    shift = tree.center[c] - tree.center[node]
                    self.coeffs[node] += exp.m2m(self.coeffs[c], shift)

    def node_potential(self, node: int, targets: np.ndarray) -> np.ndarray:
        """Gravitational potential (-G q / r convention) of the node's
        expansion at the given target positions."""
        rel = np.atleast_2d(targets) - self.tree.center[node]
        return -kernels.G * self.expansion.evaluate(self.coeffs[node], rel)

    def node_force(self, node: int, targets: np.ndarray) -> np.ndarray:
        """Monopole-level force (the paper advances particles with forces
        from monopoles; multipoles are used for potentials)."""
        return kernels.point_mass_force(
            targets, self.tree.com[node], float(self.tree.mass[node])
        )

    # Fused cluster interface: the multipole series of every accepted
    # (node, target) pair evaluated in one gather/einsum.
    @property
    def batch_row_bytes(self) -> int:
        # dominated by the (pairs, nterms) complex irregular-term and
        # gathered-coefficient blocks
        return 16 * self.expansion.nterms * 4 + 8 * 6 * self.tree.dims

    def compiled_cluster_data(self, mode: str):
        """Forces are monopole arithmetic (compiled-eligible); degree >= 1
        potentials need the complex spherical-harmonic series and stay
        on the numpy tier (``None`` → fall back)."""
        if mode == "potential":
            return None
        return self.tree.com, self.tree.mass, 0.0

    def batch_potential(self, nodes: np.ndarray,
                        targets: np.ndarray) -> np.ndarray:
        rel = targets - self.tree.center[nodes]
        I = irregular_terms(rel, self.degree)
        return -kernels.G * np.einsum("ij,ij->i", I,
                                      self.coeffs[nodes]).real

    def batch_force(self, nodes: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        diff = targets - self.tree.com[nodes]
        r2 = np.einsum("ij,ij->i", diff, diff)
        with np.errstate(divide="ignore"):
            inv_r3 = r2 ** -1.5
        inv_r3[r2 == 0.0] = 0.0
        return -kernels.G * (self.tree.mass[nodes] * inv_r3)[:, None] * diff
