"""Interaction-list traversal engine: build once, evaluate many.

The classical Barnes-Hut hot loop interleaves two very different kinds
of work: *deciding* which (node, target) pairs interact (the MAC walk)
and *computing* those interactions (the arithmetic).  This module splits
them:

1. :func:`build_interaction_lists` walks the tree exactly once per
   target batch and emits flat lists — one entry per accepted cluster
   interaction, one ``(leaf slice, target set)`` entry per leaf visit,
   plus the remote-target map the parallel engines turn into bins.  No
   kernel is evaluated during the walk.
2. :func:`evaluate_interaction_lists` consumes the lists with fused,
   chunked kernels: a single grouped gather per evaluator over *all*
   accepted cluster interactions, and a flat pair-expansion of the
   particle-particle work whose temporaries are bounded by a
   configurable working-set size.

Because the lists depend only on the tree geometry, the MAC, and the
target positions — never on the evaluator or the evaluation mode — one
walk serves potentials *and* forces, every multipole degree, and any
number of re-evaluations.  :class:`TraversalEngine` adds a small cache
keyed by target fingerprint so repeated evaluations against an unchanged
tree (the function-shipping server answering many requests within a
step, load-measurement reruns, degree sweeps over one tree) skip the
walk entirely.

Exactness contract: the walk applies the MAC with the same
floating-point operations as :class:`~repro.bh.mac.BarnesHutMAC.accept`,
so the interaction *sets* — and therefore ``mac_tests``,
``cluster_interactions``, ``p2p_interactions``, the per-node DPDA
counters, and the per-target weight attribution — are identical to the
classical traversal.  Only the accumulation order of floating-point sums
differs (fused kernels sum per-pair contributions in list order), which
perturbs values at the 1e-15 level.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.bh import compiled, kernels
from repro.bh.mac import BarnesHutMAC
from repro.bh.tree import NO_CHILD, Tree

#: Default bound on the fused kernels' working set (bytes of live
#: floating-point temporaries per chunk).  Sized to stay cache-resident:
#: every chunk is touched by several passes (gather, subtract, square,
#: rsqrt, contract), and a chunk that fits in the last-level cache makes
#: the later passes cache hits.  Measured on the serial n=10k benchmark,
#: 4 MiB beats 16 MiB by ~15%.
DEFAULT_WORKING_SET_BYTES = 4 * 2 ** 20

#: ``method="auto"`` picks the frontier walk when the tree has at least
#: this many nodes per target.  The depth-first walk's cost is per-node
#: Python overhead (it shares one target array across all children of a
#: node and broadcasts scalar node data), so it loses exactly when
#: per-node target batches are small: many nodes, few targets.  The
#: frontier pays per-pair gathers instead, which large batches amortise
#: worse.  Measured on Plummer trees: at 64 targets the frontier is
#: 4.2x faster against a 4200-node tree and 1.5x against 470 nodes,
#: while at 1024 targets it is ~2x *slower* everywhere; the win/loss
#: boundary tracks the nodes-per-target ratio at about 5.
FRONTIER_AUTO_NODE_TARGET_RATIO = 6


@dataclass
class TraversalResult:
    """Output of one batched traversal.

    ``values`` holds potentials (n,) or forces (n, d) aligned with the
    target array.  The counters feed the paper's instruction-count cost
    model; ``remote_targets`` maps a remote-leaf node id to the indices
    of targets whose interaction must be shipped to the owner.
    """

    values: np.ndarray
    mac_tests: int = 0
    cluster_interactions: int = 0
    p2p_interactions: int = 0
    remote_targets: dict[int, np.ndarray] = field(default_factory=dict)

    def flops(self, degree: int) -> float:
        """Virtual flop count per the paper's model (Section 5.2):
        ``13 + 16 k^2`` per particle-cluster interaction, 14 per MAC.
        Monopole (degree 0) interactions and leaf particle-particle
        interactions are charged as the k = 1 case."""
        per_cluster = 13.0 + 16.0 * max(degree, 1) ** 2
        per_p2p = 13.0 + 16.0
        return (14.0 * self.mac_tests
                + per_cluster * self.cluster_interactions
                + per_p2p * self.p2p_interactions)

    def merge_counters(self, other: "TraversalResult") -> None:
        """Fold another traversal's work counters into this one (values
        are left alone — callers combine those explicitly)."""
        self.mac_tests += other.mac_tests
        self.cluster_interactions += other.cluster_interactions
        self.p2p_interactions += other.p2p_interactions


@dataclass
class InteractionLists:
    """Flat interaction lists of one walk over one target batch.

    Cluster interactions are stored one entry per accepted (node,
    target) pair (``cluster_node[i]`` interacts with target
    ``cluster_tgt[i]``); particle-particle work as one row per (visited
    leaf, target) pair — ``p2p_leaf[i]``'s whole particle slice
    interacts with target ``p2p_tgt[i]``.  ``remote_targets`` arrays
    are sorted so bin contents are independent of traversal order.
    """

    targets: np.ndarray            # (nt, d) positions the walk used
    nt: int
    d: int
    cluster_node: np.ndarray       # (ncluster,) int64 node ids
    cluster_tgt: np.ndarray        # (ncluster,) int64 target indices
    p2p_leaf: np.ndarray           # (nrows,) leaf node id per visit row
    p2p_tgt: np.ndarray            # (nrows,) target index per visit row
    p2p_sizes: np.ndarray          # (nrows,) int64 leaf particle counts
    remote_targets: dict[int, np.ndarray]
    mac_tests: int
    mac_per_target: np.ndarray     # (nt,) int64 MAC tests per target
    p2p_interactions: int
    # every MAC decision the walk made, one row per tested (node,
    # target) pair — the evidence walk-cache invalidation re-checks
    # after a tree repair (see TraversalEngine.apply_repair)
    tested_node: np.ndarray = None  # type: ignore[assignment]
    tested_tgt: np.ndarray = None  # type: ignore[assignment]
    tested_ok: np.ndarray = None  # type: ignore[assignment]
    # lazy caches (built on first evaluation, reused afterwards)
    _p2p_groups: list | None = None
    _cluster_per_target: np.ndarray | None = None
    _p2p_src_per_target: np.ndarray | None = None
    # P2P kernel scratch, keyed by (slot, ns, chunk): buffers persist
    # across evaluate calls on a cached walk instead of being
    # reallocated per pass.  Bitwise-neutral — every buffer is fully
    # overwritten before it is read within a chunk.
    _scratch: dict | None = None

    @property
    def cluster_interactions(self) -> int:
        return int(self.cluster_tgt.size)

    def p2p_groups(self, tree: Tree, sources
                   ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray | None]]:
        """P2P rows regrouped by leaf source count for dense evaluation.

        Returns ``(tgt, tpos, row_entry, spos, smass)`` tuples: all rows
        whose leaf holds ``ns`` sources are stacked, their target
        positions pre-gathered into ``tpos``, the distinct leaves'
        source positions pre-gathered into one ``(nleaves, ns, d)``
        block (``smass`` likewise, or ``None`` when every source mass is
        equal); ``row_entry`` maps each target row to its leaf's block
        row.  Grouping uses node-id rank arrays — no sorting.  Cached
        across evaluations — the lists are bound to the tree and source
        set they were built over."""
        if self._p2p_groups is None:
            pos, mass = sources.positions, sources.masses
            uniform = mass.size > 0 and bool(np.all(mass == mass[0]))
            order = tree.order
            sizes = self.p2p_sizes
            rank = np.empty(tree.nnodes, dtype=np.int64)
            present = np.zeros(tree.nnodes, dtype=bool)
            groups = []
            for ns in np.unique(sizes):
                sel = sizes == ns
                tgt = self.p2p_tgt[sel]
                leaves = self.p2p_leaf[sel]
                present[:] = False
                present[leaves] = True
                leaf_ids = np.flatnonzero(present)
                rank[leaf_ids] = np.arange(leaf_ids.size)
                src_mat = order[tree.start[leaf_ids][:, None]
                                + np.arange(int(ns))[None, :]]
                groups.append((tgt, self.targets[tgt], rank[leaves],
                               pos[src_mat],
                               None if uniform else mass[src_mat]))
            self._p2p_groups = groups
        return self._p2p_groups

    def mac_tests_per_target(self) -> np.ndarray:
        """MAC tests charged to each target (14 model flops apiece)."""
        return self.mac_per_target

    def cluster_per_target(self) -> np.ndarray:
        if self._cluster_per_target is None:
            self._cluster_per_target = np.bincount(
                self.cluster_tgt, minlength=self.nt
            ).astype(np.int64)
        return self._cluster_per_target

    def p2p_sources_per_target(self) -> np.ndarray:
        """Total particle-particle source count charged to each target."""
        if self._p2p_src_per_target is None:
            if self.p2p_tgt.size:
                self._p2p_src_per_target = np.bincount(
                    self.p2p_tgt,
                    weights=self.p2p_sizes.astype(np.float64),
                    minlength=self.nt,
                ).astype(np.int64)
            else:
                self._p2p_src_per_target = np.zeros(self.nt,
                                                    dtype=np.int64)
        return self._p2p_src_per_target


def _concat(chunks: list[np.ndarray]) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(chunks)


def _walk_dfs(tree: Tree, targets: np.ndarray, mac, cls: np.ndarray,
              start: int, fast_mac: bool):
    """The classical batched depth-first descent: a Python stack of
    (node, target-index-array) pairs, node data kept scalar.  Handles
    any MAC object (only this walk can call a custom ``accept``)."""
    nt = targets.shape[0]
    children = tree.children
    com, center, half = tree.com, tree.center, tree.half
    alpha = getattr(mac, "alpha", None)

    cl_nodes: list[int] = []
    cl_idx: list[np.ndarray] = []
    leaf_nodes: list[int] = []
    leaf_idx: list[np.ndarray] = []
    remote: dict[int, list[np.ndarray]] = {}
    tested_nodes: list[int] = []
    tested_idx: list[np.ndarray] = []
    tested_ok: list[np.ndarray] = []
    mac_per_target = np.zeros(nt, dtype=np.int64)
    mac_tests = 0

    stack: list[tuple[int, np.ndarray]] = [(start, np.arange(nt))]
    while stack:
        node, idx = stack.pop()
        c = cls[node]
        if c:
            if c == 1:
                leaf_nodes.append(node)
                leaf_idx.append(idx)
            elif c == 2:
                remote.setdefault(node, []).append(idx)
            continue
        mac_tests += idx.size
        mac_per_target[idx] += 1
        t = targets[idx]
        if fast_mac:
            # Bit-for-bit the expressions of BarnesHutMAC.accept.
            diff = t - com[node]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            ok = (2.0 * half[node] < alpha * dist) \
                & ~np.all(np.abs(t - center[node]) < half[node], axis=1)
        else:
            ok = mac.accept(tree, node, t)
        tested_nodes.append(node)
        tested_idx.append(idx)
        tested_ok.append(np.asarray(ok, dtype=bool))
        far = idx[ok]
        if far.size:
            cl_nodes.append(node)
            cl_idx.append(far)
        near = idx[~ok]
        if near.size:
            row = children[node]
            for child in row[row != NO_CHILD]:
                stack.append((int(child), near))

    cl_sizes = np.array([a.size for a in cl_idx], dtype=np.int64)
    leaf_sizes = np.array([a.size for a in leaf_idx], dtype=np.int64)
    tested_sizes = np.array([a.size for a in tested_idx], dtype=np.int64)
    cluster_node = (np.repeat(np.asarray(cl_nodes, dtype=np.int64), cl_sizes)
                    if cl_nodes else np.zeros(0, dtype=np.int64))
    p2p_leaf = (np.repeat(np.asarray(leaf_nodes, dtype=np.int64), leaf_sizes)
                if leaf_nodes else np.zeros(0, dtype=np.int64))
    tested_node = (np.repeat(np.asarray(tested_nodes, dtype=np.int64),
                             tested_sizes)
                   if tested_nodes else np.zeros(0, dtype=np.int64))
    tested = (tested_node, _concat(tested_idx),
              (np.concatenate(tested_ok) if tested_ok
               else np.zeros(0, dtype=bool)))
    remote_pairs = {n: _concat(remote[n]) for n in remote}
    return (cluster_node, _concat(cl_idx), p2p_leaf, _concat(leaf_idx),
            remote_pairs, mac_tests, mac_per_target, tested)


def _walk_frontier(tree: Tree, targets: np.ndarray, alpha: float,
                   cls: np.ndarray, start: int):
    """Level-synchronous MAC walk: one flat (node, target) pair frontier
    advanced per wave instead of a per-node Python stack.

    Applies the MAC with the same floating-point expressions as
    :meth:`BarnesHutMAC.accept`, gathered per pair — elementwise
    identical values, so every accept/refine decision matches the
    depth-first walk bit for bit; only the order of entries in the
    emitted lists differs (fp accumulation order in the fused kernels,
    within the module's exactness contract).
    """
    nt, d = targets.shape
    children = tree.children
    # One packed per-node row (com | center | half) turns the three
    # per-pair geometry gathers of a wave into one.  Column slices of
    # the gathered block hold the same doubles, so the MAC arithmetic
    # below is unchanged bit for bit.
    geom = np.concatenate(
        [tree.com, tree.center, tree.half[:, None]], axis=1)

    node = np.full(nt, start, dtype=np.int32)
    tgt = np.arange(nt, dtype=np.int32)
    cl_n: list[np.ndarray] = []
    cl_t: list[np.ndarray] = []
    lf_n: list[np.ndarray] = []
    lf_t: list[np.ndarray] = []
    rm_n: list[np.ndarray] = []
    rm_t: list[np.ndarray] = []
    tested_n: list[np.ndarray] = []    # MAC-tested pairs, per wave
    tested_t: list[np.ndarray] = []
    tested_o: list[np.ndarray] = []
    mac_tests = 0

    while node.size:
        c = cls[node]
        internal = c == 0
        if not internal.all():
            on, ot, oc = node[~internal], tgt[~internal], c[~internal]
            leaf = oc == 1
            if leaf.any():
                lf_n.append(on[leaf])
                lf_t.append(ot[leaf])
            rem = oc == 2
            if rem.any():
                rm_n.append(on[rem])
                rm_t.append(ot[rem])
            node, tgt = node[internal], tgt[internal]
        if node.size == 0:
            break
        mac_tests += node.size
        tested_n.append(node)
        tested_t.append(tgt)
        g = geom[node]
        t = targets[tgt]
        h = g[:, 2 * d]
        # Bit-for-bit the expressions of BarnesHutMAC.accept.
        diff = t - g[:, :d]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        ok = (2.0 * h < alpha * dist) \
            & ~np.all(np.abs(t - g[:, d:2 * d]) < h[:, None], axis=1)
        tested_o.append(ok)
        if ok.any():
            cl_n.append(node[ok])
            cl_t.append(tgt[ok])
        near = ~ok
        rows = children[node[near]]
        valid = rows != NO_CHILD
        tgt = np.repeat(tgt[near], valid.sum(axis=1))
        node = rows[valid]                    # per pair, octant order

    if tested_t:
        mac_per_target = np.bincount(np.concatenate(tested_t),
                                     minlength=nt).astype(np.int64)
    else:
        mac_per_target = np.zeros(nt, dtype=np.int64)
    remote_pairs: dict[int, np.ndarray] = {}
    if rm_n:
        rn = np.concatenate(rm_n)
        rt = np.concatenate(rm_t)
        for r in np.unique(rn):
            remote_pairs[int(r)] = rt[rn == r].astype(np.int64)
    # Wave order interleaves nodes, which would scatter the evaluators'
    # per-chunk node gathers; regroup each list by node id so entries
    # for one node are contiguous, like the depth-first walk's output.
    # (List entry order is outside the exactness contract.)  The walk
    # runs on 32-bit pair indices; the published lists are int64 like
    # the depth-first walk's.
    def _grouped(nodes_chunks, tgt_chunks):
        nodes, tgts = _concat(nodes_chunks), _concat(tgt_chunks)
        if nodes.size:
            o = np.argsort(nodes, kind="stable")
            nodes, tgts = nodes[o], tgts[o]
        return nodes.astype(np.int64), tgts.astype(np.int64)

    cluster_node, cluster_tgt = _grouped(cl_n, cl_t)
    p2p_leaf, p2p_tgt = _grouped(lf_n, lf_t)
    tested = (_concat(tested_n).astype(np.int64),
              _concat(tested_t).astype(np.int64),
              (np.concatenate(tested_o) if tested_o
               else np.zeros(0, dtype=bool)))
    return (cluster_node, cluster_tgt, p2p_leaf, p2p_tgt,
            remote_pairs, mac_tests, mac_per_target, tested)


def build_interaction_lists(tree: Tree, target_positions: np.ndarray,
                            mac, root: int | None = None,
                            method: str = "auto") -> InteractionLists:
    """The list-building pass: one MAC walk, no kernel evaluation.

    Two walks produce the same interaction *sets*: the classical batched
    depth-first descent (``method="dfs"``) and a level-synchronous
    frontier walk (``method="frontier"``) that advances every live
    (node, target) pair at once per tree level.  ``"auto"`` picks the
    frontier walk under the stock :class:`BarnesHutMAC` (whose criterion
    it inlines) when the tree is large relative to the target batch
    (see :data:`FRONTIER_AUTO_NODE_TARGET_RATIO`), and the depth-first
    walk for large batches or MAC subclasses with a custom ``accept``.
    Both apply the MAC with the
    identical floating-point expressions as the classical traversal, so
    every accept/refine decision — and hence all interaction counters,
    per-node DPDA counts, and remote bins — match it exactly; only list
    entry order (fp accumulation order) differs between walks.
    """
    targets = np.atleast_2d(np.asarray(target_positions, dtype=np.float64))
    nt, d = targets.shape
    empty = InteractionLists(
        targets=targets, nt=nt, d=d,
        cluster_node=np.zeros(0, dtype=np.int64),
        cluster_tgt=np.zeros(0, dtype=np.int64),
        p2p_leaf=np.zeros(0, dtype=np.int64),
        p2p_tgt=np.zeros(0, dtype=np.int64),
        p2p_sizes=np.zeros(0, dtype=np.int64),
        remote_targets={}, mac_tests=0,
        mac_per_target=np.zeros(nt, dtype=np.int64),
        p2p_interactions=0,
        tested_node=np.zeros(0, dtype=np.int64),
        tested_tgt=np.zeros(0, dtype=np.int64),
        tested_ok=np.zeros(0, dtype=bool),
    )
    if nt == 0 or tree.nnodes == 0:
        return empty

    children = tree.children
    counts = (tree.end - tree.start).astype(np.int64)
    # One class code per node collapses the remote/empty/leaf tests into
    # a single lookup.  Priority mirrors the classical walk:
    # remote > empty > leaf > internal.
    cls = np.zeros(tree.nnodes, dtype=np.int8)        # 0 = internal
    cls[(children == NO_CHILD).all(axis=1)] = 1       # leaf
    cls[counts == 0] = 3                              # empty: skipped
    cls[tree.remote_owner >= 0] = 2                   # remote
    # Inline the MAC for the stock criterion; any subclass that overrides
    # accept() goes through its own method (depth-first walk only).
    fast_mac = (type(mac) is BarnesHutMAC)
    if method not in ("auto", "frontier", "dfs"):
        raise ValueError(f"unknown walk method {method!r}")
    if method == "frontier" and not fast_mac:
        raise ValueError("the frontier walk inlines the stock "
                         "BarnesHutMAC; use method='dfs' for custom MACs")
    if method == "auto":
        use_frontier = (fast_mac and tree.nnodes
                        >= FRONTIER_AUTO_NODE_TARGET_RATIO * nt)
    else:
        use_frontier = method == "frontier"

    start = tree.ROOT if root is None else root
    if use_frontier:
        (cluster_node, cluster_tgt, p2p_leaf, p2p_tgt, remote_pairs,
         mac_tests, mac_per_target, tested) = _walk_frontier(
            tree, targets, mac.alpha, cls, start)
    else:
        (cluster_node, cluster_tgt, p2p_leaf, p2p_tgt, remote_pairs,
         mac_tests, mac_per_target, tested) = _walk_dfs(
            tree, targets, mac, cls, start, fast_mac)

    # Sorted keys and sorted contents: bin composition is independent of
    # the walk and of its visit order.
    remote_targets = {
        n: np.sort(remote_pairs[n]) for n in sorted(remote_pairs)
    }

    return InteractionLists(
        targets=targets, nt=nt, d=d,
        cluster_node=cluster_node,
        cluster_tgt=cluster_tgt,
        p2p_leaf=p2p_leaf,
        p2p_tgt=p2p_tgt,
        p2p_sizes=counts[p2p_leaf],
        remote_targets=remote_targets,
        mac_tests=mac_tests,
        mac_per_target=mac_per_target,
        p2p_interactions=int(counts[p2p_leaf].sum()),
        tested_node=tested[0],
        tested_tgt=tested[1],
        tested_ok=tested[2],
    )


def subset_interaction_lists(lists: InteractionLists,
                             idx: np.ndarray) -> InteractionLists:
    """Restrict prebuilt lists to the targets at positions ``idx``.

    Per-target walk decisions are independent, so filtering the pair
    rows reproduces *exactly* the interaction sets and counters a fresh
    walk over ``lists.targets[idx]`` would produce — only list entry
    order (fp accumulation order) differs.  This is how block timesteps
    evaluate a surviving cached walk for just the active bin-set.
    """
    idx = np.asarray(idx, dtype=np.int64)
    member = np.zeros(lists.nt, dtype=bool)
    member[idx] = True
    remap = np.full(lists.nt, -1, dtype=np.int64)
    remap[idx] = np.arange(idx.size)

    def keep(node, tgt):
        m = member[tgt]
        return node[m], remap[tgt[m]]

    cn, ct = keep(lists.cluster_node, lists.cluster_tgt)
    pl, pt = keep(lists.p2p_leaf, lists.p2p_tgt)
    sizes = lists.p2p_sizes[member[lists.p2p_tgt]]
    tn, tt = keep(lists.tested_node, lists.tested_tgt)
    to = lists.tested_ok[member[lists.tested_tgt]]
    remote: dict[int, np.ndarray] = {}
    for node, tgts in lists.remote_targets.items():
        kept = tgts[member[tgts]]
        if kept.size:
            remote[node] = remap[kept]
    mpt = lists.mac_per_target[idx]
    return InteractionLists(
        targets=lists.targets[idx], nt=int(idx.size), d=lists.d,
        cluster_node=cn, cluster_tgt=ct, p2p_leaf=pl, p2p_tgt=pt,
        p2p_sizes=sizes, remote_targets=remote,
        mac_tests=int(mpt.sum()), mac_per_target=mpt,
        p2p_interactions=int(sizes.sum()),
        tested_node=tn, tested_tgt=tt, tested_ok=to,
    )


# -------------------------------------------------------------- evaluation
def _accumulate(values: np.ndarray, tgt: np.ndarray,
                contrib: np.ndarray, nt: int) -> None:
    """Scatter-add per-pair contributions onto the target axis."""
    if values.ndim == 1:
        values += np.bincount(tgt, weights=contrib, minlength=nt)
    else:
        for k in range(values.shape[1]):
            values[:, k] += np.bincount(tgt, weights=contrib[:, k],
                                        minlength=nt)


def _run_slots(run_slot, threads: int) -> None:
    """Execute the ``ACCUM_SLOTS`` slot workers, serially or on a thread
    pool.  Results are bitwise independent of ``threads``: each slot
    owns a private accumulation buffer and a fixed chunk subsequence
    (chunk ``c`` belongs to slot ``c % ACCUM_SLOTS``), and the caller
    reduces slot buffers in slot order."""
    slots = compiled.ACCUM_SLOTS
    if threads <= 1:
        for s in range(slots):
            run_slot(s)
        return
    with ThreadPoolExecutor(max_workers=min(threads, slots)) as ex:
        list(ex.map(run_slot, range(slots)))  # list() surfaces errors


def _reduce_slots(values: np.ndarray, bufs: list) -> None:
    for b in bufs:                 # slot order — part of the sum tree
        if b is not None:
            values += b


def _cluster_pass(lists: InteractionLists, values: np.ndarray,
                  evaluator, mode: str, chunk_bytes: int,
                  tier: str = "numpy", threads: int | None = None) -> None:
    n = lists.cluster_tgt.size
    if n == 0:
        return
    if tier == "numba":
        info_fn = getattr(evaluator, "compiled_cluster_data", None)
        info = info_fn(mode) if info_fn is not None else None
        if info is not None:
            com, mass, soft = info
            compiled.cluster_pass(values, lists.targets,
                                  lists.cluster_tgt, lists.cluster_node,
                                  com, mass, soft, mode, threads)
            return
        # Evaluator is not compiled-eligible for this mode (degree >= 1
        # multipole potentials): fall through to the numpy batch path.
    batch = getattr(evaluator,
                    "batch_potential" if mode == "potential"
                    else "batch_force", None)
    if batch is None:
        _cluster_pass_grouped(lists, values, evaluator, mode)
        return
    row = int(getattr(evaluator, "batch_row_bytes", 8 * (6 * lists.d + 8)))
    chunk = max(1, chunk_bytes // max(row, 1))

    def do_chunk(out, lo, hi):
        tgt = lists.cluster_tgt[lo:hi]
        contrib = batch(lists.cluster_node[lo:hi], lists.targets[tgt])
        _accumulate(out, tgt, contrib, lists.nt)

    if threads is None:            # legacy serial path, bit for bit
        for lo in range(0, n, chunk):
            do_chunk(values, lo, min(lo + chunk, n))
        return

    nchunks = -(-n // chunk)
    bufs: list = [None] * compiled.ACCUM_SLOTS

    def run_slot(s):
        out = None
        for ci in range(s, nchunks, compiled.ACCUM_SLOTS):
            if out is None:
                out = np.zeros_like(values)
                bufs[s] = out
            lo = ci * chunk
            do_chunk(out, lo, min(lo + chunk, n))

    _run_slots(run_slot, threads)
    _reduce_slots(values, bufs)


def _cluster_pass_grouped(lists: InteractionLists, values: np.ndarray,
                          evaluator, mode: str) -> None:
    """Fallback for evaluators without a batch interface: group the
    accepted pairs by node and make one vectorized call per node."""
    order = np.argsort(lists.cluster_node, kind="stable")
    nodes = lists.cluster_node[order]
    tgts = lists.cluster_tgt[order]
    bounds = np.flatnonzero(np.diff(nodes)) + 1
    fn_name = "node_potential" if mode == "potential" else "node_force"
    fn = getattr(evaluator, fn_name)
    for seg_tgt, node in zip(np.split(tgts, bounds),
                             nodes[np.concatenate(([0], bounds))]):
        values[seg_tgt] += fn(int(node), lists.targets[seg_tgt])


def _p2p_scratch(lists: InteractionLists, slot: int, ns: int,
                 chunk: int) -> tuple:
    """Reusable P2P chunk buffers (diff tensor, squared distances,
    per-pair weights, gathered masses), cached on the lists so repeated
    evaluations over a cached walk allocate nothing."""
    if lists._scratch is None:
        lists._scratch = {}
    key = (slot, ns, chunk)
    bufs = lists._scratch.get(key)
    if bufs is None:
        d = lists.d
        bufs = (np.empty((chunk, ns, d)), np.empty((chunk, ns)),
                np.empty((chunk, ns)), np.empty((chunk, ns)))
        lists._scratch[key] = bufs
    return bufs


def _p2p_chunk(lists: InteractionLists, out: np.ndarray,
               tgt: np.ndarray, tpos: np.ndarray, row_entry: np.ndarray,
               sp: np.ndarray, sm: np.ndarray | None, lo: int, hi: int,
               force: bool, soft2: float, scale: float,
               scratch: tuple) -> None:
    """One fused P2P chunk: gather, subtract, rsqrt, contract,
    scatter-add — accumulated onto ``out``."""
    diff, r2, w, mbuf = scratch
    c = hi - lo
    tg = tgt[lo:hi]
    rows = row_entry[lo:hi]
    dv, r2v, wv = diff[:c], r2[:c], w[:c]
    np.take(sp, rows, axis=0, out=dv)
    np.subtract(tpos[lo:hi, None, :], dv, out=dv)
    np.einsum("ijk,ijk->ij", dv, dv, out=r2v)
    if soft2 != 0.0:
        r2v += soft2
    zero = r2v == 0.0
    np.sqrt(r2v, out=r2v)
    with np.errstate(divide="ignore"):
        np.divide(1.0, r2v, out=r2v)           # inv_r
    r2v[zero] = 0.0
    if not force:
        if sm is None:
            contrib = r2v.sum(axis=1)
        else:
            np.take(sm, rows, axis=0, out=mbuf[:c])
            contrib = np.einsum("ij,ij->i", r2v, mbuf[:c])
    else:
        np.multiply(r2v, r2v, out=wv)
        wv *= r2v                              # inv_r^3
        if sm is not None:
            np.take(sm, rows, axis=0, out=mbuf[:c])
            wv *= mbuf[:c]
        contrib = np.einsum("ij,ijk->ik", wv, dv)
    contrib *= scale
    _accumulate(out, tg, contrib, lists.nt)


def _p2p_pass(lists: InteractionLists, values: np.ndarray, tree: Tree,
              sources, mode: str, softening: float, chunk_bytes: int,
              tier: str = "numpy", threads: int | None = None) -> None:
    if lists.p2p_leaf.size == 0:
        return
    if sources is None:
        raise ValueError("tree has local leaves but no source "
                         "particles were provided")
    if tier == "numba":
        compiled.p2p_pass(values, lists, tree, sources, mode, softening,
                          threads)
        return
    smass = sources.masses
    uniform = smass.size > 0 and bool(np.all(smass == smass[0]))
    # With uniform masses the scalar factor moves outside the row sums
    # (per-pair values differ only in rounding, ~1e-16 relative).
    scale = -kernels.G * (float(smass[0]) if uniform else 1.0)
    d = lists.d
    soft2 = softening ** 2
    force = mode == "force"
    groups = lists.p2p_groups(tree, sources)

    def plan(n, ns):
        # live temporaries per target row: the (chunk, ns, d) source
        # gather + diff blocks and a few (chunk, ns) scalars
        row = 8 * (2 * ns * d + 4 * ns + 2 * d + 4)
        return min(n, max(1, chunk_bytes // row))

    if threads is None:            # legacy serial path, bit for bit
        for tgt, tpos, row_entry, sp, sm in groups:
            n = tgt.size
            if n == 0:
                continue
            chunk = plan(n, sp.shape[1])
            scratch = _p2p_scratch(lists, 0, sp.shape[1], chunk)
            for lo in range(0, n, chunk):
                _p2p_chunk(lists, values, tgt, tpos, row_entry, sp, sm,
                           lo, min(lo + chunk, n), force, soft2, scale,
                           scratch)
        return

    bufs: list = [None] * compiled.ACCUM_SLOTS

    def run_slot(s):
        out = None
        for tgt, tpos, row_entry, sp, sm in groups:
            n = tgt.size
            if n == 0:
                continue
            chunk = plan(n, sp.shape[1])
            nchunks = -(-n // chunk)
            for ci in range(s, nchunks, compiled.ACCUM_SLOTS):
                if out is None:
                    out = np.zeros_like(values)
                    bufs[s] = out
                scratch = _p2p_scratch(lists, s, sp.shape[1], chunk)
                lo = ci * chunk
                _p2p_chunk(lists, out, tgt, tpos, row_entry, sp, sm,
                           lo, min(lo + chunk, n), force, soft2, scale,
                           scratch)

    _run_slots(run_slot, threads)
    _reduce_slots(values, bufs)


def evaluate_interaction_lists(tree: Tree, lists: InteractionLists,
                               sources, evaluator,
                               mode: str = "potential",
                               softening: float = 0.0,
                               count_node_interactions: bool = False,
                               target_weights: np.ndarray | None = None,
                               working_set_bytes: int | None = None,
                               kernel_tier: str = "numpy",
                               kernel_threads: int | None = None
                               ) -> TraversalResult:
    """The evaluation pass: fused kernels over prebuilt lists.

    Produces a :class:`TraversalResult` with the same values (to fp
    accumulation order), the identical counters, the identical per-node
    DPDA interaction counts, and the identical per-target weight
    attribution as the classical traversal would.

    ``kernel_tier`` selects the arithmetic backend (see
    :mod:`repro.bh.compiled`); counters, DPDA counts and weights come
    from the walk and are tier-independent by construction.
    ``kernel_threads=None`` keeps the original serial numpy loop bit
    for bit; any explicit thread count (including 1) switches to the
    slot-deterministic evaluator whose results are bitwise independent
    of the count.
    """
    if mode not in ("potential", "force"):
        raise ValueError(f"mode must be 'potential' or 'force', got {mode!r}")
    if kernel_threads is not None and int(kernel_threads) < 1:
        raise ValueError("kernel_threads must be >= 1 (or None for the "
                         "serial path)")
    tier = compiled.resolve_tier(kernel_tier)
    nt, d = lists.nt, lists.d
    values = np.zeros(nt) if mode == "potential" else np.zeros((nt, d))
    result = TraversalResult(
        values=values, mac_tests=lists.mac_tests,
        cluster_interactions=lists.cluster_interactions,
        p2p_interactions=lists.p2p_interactions,
        remote_targets=dict(lists.remote_targets),
    )
    if nt == 0:
        return result
    ws = (DEFAULT_WORKING_SET_BYTES if working_set_bytes is None
          else int(working_set_bytes))

    threads = None if kernel_threads is None else int(kernel_threads)
    _cluster_pass(lists, values, evaluator, mode, ws, tier, threads)
    _p2p_pass(lists, values, tree, sources, mode, softening, ws,
              tier, threads)

    if count_node_interactions:
        nn = tree.nnodes
        if lists.cluster_node.size:
            tree.interactions += np.bincount(lists.cluster_node,
                                             minlength=nn)
        if lists.p2p_leaf.size:
            # A leaf visited by m targets costs m * leaf_count pairs.
            visits = np.bincount(lists.p2p_leaf, minlength=nn)
            counts = (tree.end - tree.start).astype(np.int64)
            tree.interactions += visits * counts
    if target_weights is not None:
        degree = getattr(evaluator, "degree", 0)
        per_cluster = 13.0 + 16.0 * max(degree, 1) ** 2
        # All three contributions are integer-valued floats, so this is
        # exactly equal to the classical per-visit accumulation.
        target_weights += (14.0 * lists.mac_tests_per_target()
                           + per_cluster * lists.cluster_per_target()
                           + 29.0 * lists.p2p_sources_per_target())
    return result


# ------------------------------------------------------------------ engine
class TraversalEngine:
    """Build-once/evaluate-many traversal over one tree.

    Interaction lists are cached under a fingerprint of the target
    positions; any evaluation against targets already walked (same
    positions, any evaluator, any mode) reuses the lists and skips the
    walk.  ``walks_built`` / ``walks_reused`` count the cache traffic.
    """

    def __init__(self, tree: Tree, sources=None, mac=None,
                 root: int | None = None, softening: float = 0.0,
                 cache_size: int = 8,
                 working_set_bytes: int | None = None,
                 walk_method: str = "auto",
                 kernel_tier: str = "numpy",
                 kernel_threads: int | None = None):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if kernel_threads is not None and int(kernel_threads) < 1:
            raise ValueError("kernel_threads must be >= 1 (or None for "
                             "the serial path)")
        self.tree = tree
        self.sources = sources
        self.mac = mac
        self.root = root
        self.softening = softening
        self.working_set_bytes = working_set_bytes
        self.walk_method = walk_method
        # resolved once: "auto" pins to the tier that will actually run
        self.kernel_tier = compiled.resolve_tier(kernel_tier)
        self.kernel_threads = kernel_threads
        self._cache: dict[tuple, InteractionLists] = {}
        self._cache_size = cache_size
        self.walks_built = 0
        self.walks_reused = 0
        self.walks_retained = 0
        self.walks_invalidated = 0
        self.walks_retested = 0

    def _fingerprint(self, targets: np.ndarray) -> tuple:
        t = np.ascontiguousarray(targets)
        return (t.shape, hash(t.tobytes()))

    def lists_for(self, target_positions: np.ndarray) -> InteractionLists:
        """Fetch or build the interaction lists for a target batch."""
        targets = np.atleast_2d(
            np.asarray(target_positions, dtype=np.float64))
        key = self._fingerprint(targets)
        hit = self._cache.get(key)
        if hit is not None and np.array_equal(hit.targets, targets):
            self.walks_reused += 1
            return hit
        lists = build_interaction_lists(self.tree, targets, self.mac,
                                        root=self.root,
                                        method=self.walk_method)
        self.walks_built += 1
        if len(self._cache) >= self._cache_size:
            # evict the oldest entry (dict preserves insertion order)
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = lists
        return lists

    def compute(self, target_positions: np.ndarray, evaluator,
                mode: str = "potential",
                count_node_interactions: bool = False,
                target_weights: np.ndarray | None = None,
                target_subset: np.ndarray | None = None
                ) -> TraversalResult:
        """One evaluation: reuses a cached walk when possible.

        ``target_subset`` (indices into the target batch) restricts the
        evaluation to the active subset of an already-walked batch —
        values come back aligned with the subset.  The full walk is
        what gets cached; subset filtering is cheap masking."""
        lists = self.lists_for(target_positions)
        if target_subset is not None:
            lists = subset_interaction_lists(lists, target_subset)
        return evaluate_interaction_lists(
            self.tree, lists, self.sources, evaluator, mode=mode,
            softening=self.softening,
            count_node_interactions=count_node_interactions,
            target_weights=target_weights,
            working_set_bytes=self.working_set_bytes,
            kernel_tier=self.kernel_tier,
            kernel_threads=self.kernel_threads,
        )

    def apply_repair(self, repair, sources=None) -> None:
        """Carry the engine across a tree repair
        (:func:`~repro.bh.tree_repair.repair_tree`): swap in the
        repaired tree and decide, per cached walk, whether its recorded
        accept/open decisions still hold.

        A walk is **evicted** when any node it touched was deleted, any
        node it *opened* has different child cells, or any p2p leaf's
        slice length changed.  If surviving nodes are merely
        value-dirty (monopole moved), the stored MAC decisions are
        re-tested against the new tree and the walk survives only if
        every decision is unchanged — then its node ids are remapped
        and it keeps serving evaluations (new monopoles are gathered at
        eval time, so values track the repaired tree automatically).
        """
        self.tree = repair.tree
        if sources is not None:
            self.sources = sources
        if repair.rebuilt or repair.id_map is None:
            self.walks_invalidated += len(self._cache)
            self._cache.clear()
            return
        id_map = repair.id_map
        cc = repair.children_changed
        ctc = repair.count_changed
        vd = repair.value_dirty
        fast_mac = type(self.mac) is BarnesHutMAC
        tree = repair.tree
        kept: dict[tuple, InteractionLists] = {}
        for key, lists in self._cache.items():
            tn, tt, ok = lists.tested_node, lists.tested_tgt, lists.tested_ok
            touched = np.concatenate([tn, lists.p2p_leaf,
                                      lists.cluster_node,
                                      np.fromiter(lists.remote_targets,
                                                  dtype=np.int64,
                                                  count=len(
                                                      lists.remote_targets))])
            if touched.size and (id_map[touched] < 0).any():
                self.walks_invalidated += 1
                continue
            opened = tn[~ok]
            if (opened.size and cc[opened].any()) \
                    or (lists.p2p_leaf.size
                        and (cc[lists.p2p_leaf].any()
                             or ctc[lists.p2p_leaf].any())):
                self.walks_invalidated += 1
                continue
            stale = np.flatnonzero(vd[tn]) if tn.size else tn
            if stale.size:
                if not fast_mac:
                    self.walks_invalidated += 1
                    continue
                nid = id_map[tn[stale]]
                t = lists.targets[tt[stale]]
                h = tree.half[nid]
                diff = t - tree.com[nid]
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                renew = (2.0 * h < self.mac.alpha * dist) \
                    & ~np.all(np.abs(t - tree.center[nid]) < h[:, None],
                              axis=1)
                self.walks_retested += 1
                if not np.array_equal(renew, ok[stale]):
                    self.walks_invalidated += 1
                    continue
            lists.cluster_node = id_map[lists.cluster_node]
            lists.p2p_leaf = id_map[lists.p2p_leaf]
            lists.tested_node = id_map[tn]
            lists.remote_targets = {int(id_map[n]): v for n, v
                                    in lists.remote_targets.items()}
            lists._p2p_groups = None     # bound to old node ids/slices
            kept[key] = lists
            self.walks_retained += 1
        self._cache = kept
