"""Serial Barnes-Hut substrate: trees, multipoles, traversal, physics.

Everything the parallel formulations (:mod:`repro.core`) are built from:

* :mod:`~repro.bh.particles` — structure-of-arrays particle sets and boxes
* :mod:`~repro.bh.morton` — Morton keys and Peano-Hilbert ordering
* :mod:`~repro.bh.distributions` — Plummer / Gaussian generators and the
  paper's named instances
* :mod:`~repro.bh.tree` — quad/oct trees with leaf capacity ``s`` and
  chain collapsing
* :mod:`~repro.bh.multipole` — monopole and spherical-harmonic multipole
  expansions (P2M / M2M / M2P)
* :mod:`~repro.bh.mac` — the Barnes-Hut alpha acceptance criterion
* :mod:`~repro.bh.traversal` — per-particle and vectorized batch traversal
* :mod:`~repro.bh.direct` — the O(n^2) reference
* :mod:`~repro.bh.integrator` — leapfrog particle advance
"""

from repro.bh.particles import Box, ParticleSet
from repro.bh.morton import (
    morton_keys,
    morton_key_2d,
    morton_key_3d,
    morton_decode_2d,
    morton_decode_3d,
    hilbert_keys_2d,
)
from repro.bh.distributions import (
    plummer,
    gaussian_blobs,
    uniform_cube,
    make_instance,
    INSTANCES,
)
from repro.bh.tree import Tree, build_tree
from repro.bh.multipole import (
    MonopoleExpansion,
    MultipoleExpansion3D,
    MultipoleExpansion2D,
)
from repro.bh.mac import BarnesHutMAC
from repro.bh.traversal import TraversalResult, compute_forces, compute_potentials
from repro.bh.direct import direct_forces, direct_potentials
from repro.bh.fmm import fmm_potentials
from repro.bh.local_expansion import l2l, l2p, m2l, p2l
from repro.bh.integrator import leapfrog_step, total_energy

__all__ = [
    "Box",
    "ParticleSet",
    "morton_keys",
    "morton_key_2d",
    "morton_key_3d",
    "morton_decode_2d",
    "morton_decode_3d",
    "hilbert_keys_2d",
    "plummer",
    "gaussian_blobs",
    "uniform_cube",
    "make_instance",
    "INSTANCES",
    "Tree",
    "build_tree",
    "MonopoleExpansion",
    "MultipoleExpansion3D",
    "MultipoleExpansion2D",
    "BarnesHutMAC",
    "TraversalResult",
    "compute_forces",
    "compute_potentials",
    "direct_forces",
    "direct_potentials",
    "fmm_potentials",
    "m2l",
    "l2l",
    "l2p",
    "p2l",
    "leapfrog_step",
    "total_energy",
]
