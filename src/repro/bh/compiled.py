"""Compiled kernel tier: optional numba JIT kernels for the hot loops.

The interaction-list engine's evaluation pass (:mod:`repro.bh.
interaction_lists`) is pure memory-bandwidth-bound numpy: gather,
subtract, rsqrt, contract, scatter-add — several array passes per chunk
with intermediate temporaries.  This module provides the same two passes
as *fused single-pass* compiled kernels: one loop nest per (pair) that
gathers, differences, applies the softened inverse-square law and
accumulates in place, multi-threaded with ``numba.prange``.

Tier selection
--------------
Three tier names are accepted everywhere a tier can be configured
(:class:`~repro.core.config.SchemeConfig.kernel_tier`, the CLI
``--kernels`` flag, :class:`~repro.bh.interaction_lists.TraversalEngine`):

* ``"numpy"`` — the chunked numpy evaluation (the reference tier).
* ``"numba"`` — the compiled kernels of this module.  Falls back to
  ``"numpy"`` with a one-line warning when numba is not installed
  (install the ``[perf]`` extra).
* ``"auto"`` — ``"numba"`` when available, else ``"numpy"``; never warns.

The compiled kernels cover monopole (point-mass) cluster arithmetic and
all particle-particle work.  Multipole cluster *potentials* (degree >= 1
spherical-harmonic series) stay on the numpy tier — evaluators advertise
compiled eligibility through ``compiled_cluster_data(mode)``, and the
evaluation pass silently falls back per pass when it returns ``None``.

Determinism
-----------
Results must be bitwise independent of the thread count (cross-backend
bitwise contracts and the perf-regression trajectory both depend on it).
Every kernel therefore uses *fixed chunk-to-slot ownership*: the flat
pair range is cut into fixed-size chunks, chunk ``c`` is owned by
accumulation slot ``c % ACCUM_SLOTS``, each slot owns a private
accumulation buffer and processes its chunks in increasing order, and
the ``ACCUM_SLOTS`` buffers are reduced serially in slot order.  The
summation tree is a function of the pair list alone — ``prange``
scheduling can move *slots* between threads but never reorders any
addition — so 1, 2 or 64 threads produce bit-identical values.

Exactness contract: the compiled kernels perform the same per-pair
arithmetic as the numpy tier (softened r^2, guarded rsqrt, mass weight)
but accumulate in slot order rather than chunk-scan order, so values
agree to fp accumulation order (~1e-15 relative, asserted at 1e-12 by
tests and benches) and every interaction counter is exactly equal (the
counters come from the walk, which tiers never touch).
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.bh import kernels

#: Accepted tier names, in the order the CLI shows them.
KERNEL_TIERS = ("numpy", "numba", "auto")

#: Fixed number of accumulation slots.  This is a *determinism* constant,
#: not a thread count: it bounds usable parallelism of the compiled and
#: threaded-numpy passes, and changing it changes result bits (the slot
#: reduction order is part of the summation tree).
ACCUM_SLOTS = 16

#: Pairs per ownership chunk inside the compiled kernels.  Fixed (never
#: derived from the thread count) so the chunk → slot map is stable.
CHUNK_PAIRS = 8192

_EMPTY_2D = np.zeros((1, 1))

_numba_checked = False
_numba = None
_warned_missing = False
_kernel_cache: dict | None = None


def _import_numba():
    global _numba_checked, _numba
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # type: ignore[import-not-found]
            _numba = numba
        except ImportError:
            _numba = None
    return _numba


def available() -> bool:
    """True when the numba tier can actually compile and run."""
    return _import_numba() is not None


def numba_version() -> str | None:
    """Installed numba version, or ``None`` without the ``[perf]`` extra."""
    nb = _import_numba()
    return nb.__version__ if nb is not None else None


def resolve_tier(tier: str, warn: bool = False) -> str:
    """Resolve a configured tier name to the tier that will execute.

    ``"auto"`` quietly picks ``"numba"`` when available; an explicit
    ``"numba"`` request without numba installed falls back to
    ``"numpy"``, emitting a one-line warning (once per process) when
    ``warn`` is set.
    """
    if tier not in KERNEL_TIERS:
        raise ValueError(f"kernel tier must be one of {KERNEL_TIERS}, "
                         f"got {tier!r}")
    if tier == "numpy":
        return "numpy"
    if available():
        return "numba"
    if tier == "numba" and warn:
        global _warned_missing
        if not _warned_missing:
            _warned_missing = True
            print("warning: kernel tier 'numba' requested but numba is "
                  "not installed; falling back to numpy kernels "
                  "(pip install 'repro[perf]')", file=sys.stderr)
    return "numpy"


def set_threads(threads: int | None) -> None:
    """Clamp and apply a numba thread count (no-op without numba or
    with ``threads=None``).  Thread count never changes result bits —
    see the module determinism contract."""
    nb = _import_numba()
    if nb is None or threads is None:
        return
    limit = nb.config.NUMBA_NUM_THREADS
    nb.set_num_threads(max(1, min(int(threads), limit)))


# ------------------------------------------------------------ jit kernels
def _kernels() -> dict:
    """Compile (once per process) and return the kernel table."""
    global _kernel_cache
    if _kernel_cache is not None:
        return _kernel_cache
    nb = _import_numba()
    if nb is None:
        raise RuntimeError("numba is not installed; the compiled kernel "
                           "tier is unavailable")
    njit, prange = nb.njit, nb.prange
    SLOTS = ACCUM_SLOTS
    CH = CHUNK_PAIRS

    @njit(parallel=True)
    def cluster_potential(targets, tgt, nodes, com, mass, soft2):
        nt, d = targets.shape
        npairs = tgt.shape[0]
        nchunks = (npairs + CH - 1) // CH
        buf = np.zeros((SLOTS, nt))
        for s in prange(SLOTS):
            for c in range(s, nchunks, SLOTS):
                lo = c * CH
                hi = min(lo + CH, npairs)
                for i in range(lo, hi):
                    t = tgt[i]
                    nd = nodes[i]
                    r2 = soft2
                    for k in range(d):
                        dx = targets[t, k] - com[nd, k]
                        r2 += dx * dx
                    if r2 > 0.0:
                        buf[s, t] += mass[nd] / math.sqrt(r2)
        out = np.zeros(nt)
        for s in range(SLOTS):
            for t in range(nt):
                out[t] += buf[s, t]
        return out

    @njit(parallel=True)
    def cluster_force(targets, tgt, nodes, com, mass, soft2):
        nt, d = targets.shape
        npairs = tgt.shape[0]
        nchunks = (npairs + CH - 1) // CH
        buf = np.zeros((SLOTS, nt, d))
        for s in prange(SLOTS):
            for c in range(s, nchunks, SLOTS):
                lo = c * CH
                hi = min(lo + CH, npairs)
                for i in range(lo, hi):
                    t = tgt[i]
                    nd = nodes[i]
                    r2 = soft2
                    for k in range(d):
                        dx = targets[t, k] - com[nd, k]
                        r2 += dx * dx
                    if r2 > 0.0:
                        inv = 1.0 / math.sqrt(r2)
                        w = mass[nd] * inv * inv * inv
                        for k in range(d):
                            buf[s, t, k] += w * (targets[t, k]
                                                 - com[nd, k])
        out = np.zeros((nt, d))
        for s in range(SLOTS):
            for t in range(nt):
                for k in range(d):
                    out[t, k] += buf[s, t, k]
        return out

    @njit(parallel=True)
    def p2p_potential(tpos, tgt, rows, sp, sm, uniform, soft2, nt):
        n = tgt.shape[0]
        ns = sp.shape[1]
        d = sp.shape[2]
        nchunks = (n + CH - 1) // CH
        buf = np.zeros((SLOTS, nt))
        for s in prange(SLOTS):
            for c in range(s, nchunks, SLOTS):
                lo = c * CH
                hi = min(lo + CH, n)
                for i in range(lo, hi):
                    b = rows[i]
                    acc = 0.0
                    for j in range(ns):
                        r2 = soft2
                        for k in range(d):
                            dx = tpos[i, k] - sp[b, j, k]
                            r2 += dx * dx
                        if r2 > 0.0:
                            w = 1.0 / math.sqrt(r2)
                            if not uniform:
                                w *= sm[b, j]
                            acc += w
                    buf[s, tgt[i]] += acc
        out = np.zeros(nt)
        for s in range(SLOTS):
            for t in range(nt):
                out[t] += buf[s, t]
        return out

    @njit(parallel=True)
    def p2p_force(tpos, tgt, rows, sp, sm, uniform, soft2, nt):
        n = tgt.shape[0]
        ns = sp.shape[1]
        d = sp.shape[2]
        nchunks = (n + CH - 1) // CH
        buf = np.zeros((SLOTS, nt, d))
        for s in prange(SLOTS):
            for c in range(s, nchunks, SLOTS):
                lo = c * CH
                hi = min(lo + CH, n)
                for i in range(lo, hi):
                    b = rows[i]
                    t = tgt[i]
                    for j in range(ns):
                        r2 = soft2
                        for k in range(d):
                            dx = tpos[i, k] - sp[b, j, k]
                            r2 += dx * dx
                        if r2 > 0.0:
                            inv = 1.0 / math.sqrt(r2)
                            w = inv * inv * inv
                            if not uniform:
                                w *= sm[b, j]
                            for k in range(d):
                                buf[s, t, k] += w * (tpos[i, k]
                                                     - sp[b, j, k])
        out = np.zeros((nt, d))
        for s in range(SLOTS):
            for t in range(nt):
                for k in range(d):
                    out[t, k] += buf[s, t, k]
        return out

    _kernel_cache = {
        "cluster_potential": cluster_potential,
        "cluster_force": cluster_force,
        "p2p_potential": p2p_potential,
        "p2p_force": p2p_force,
    }
    return _kernel_cache


def warm_up(mode: str = "force") -> None:
    """Force JIT compilation of the kernels for ``mode`` (both passes)
    on a two-pair toy problem, so timed runs never pay compile cost."""
    targets = np.zeros((2, 3))
    targets[1] = 1.0
    tgt = np.array([0, 1], dtype=np.int64)
    nodes = np.array([0, 0], dtype=np.int64)
    com = np.ones((1, 3))
    mass = np.ones(1)
    cluster_pass(np.zeros(2) if mode == "potential" else np.zeros((2, 3)),
                 targets, tgt, nodes, com, mass, 0.1, mode)
    sp = np.zeros((1, 2, 3))
    sp[0, 1] = 2.0
    p2p_group_pass(np.zeros(2) if mode == "potential"
                   else np.zeros((2, 3)),
                   targets, tgt, np.zeros(2, dtype=np.int64), sp,
                   np.ones((1, 2)), False, 0.1, -kernels.G, mode)


# ------------------------------------------------------------ pass fronts
def cluster_pass(values: np.ndarray, targets: np.ndarray,
                 tgt: np.ndarray, nodes: np.ndarray, com: np.ndarray,
                 mass: np.ndarray, softening: float, mode: str,
                 threads: int | None = None) -> None:
    """Fused monopole cluster pass over flat (node, target) pairs.

    ``com``/``mass`` are indexed by ``nodes`` (pass per-pair arrays with
    ``nodes = arange(npairs)`` when the pairs are already expanded).
    Accumulates ``-G * m / r`` (potential) or ``-G * m * dr / r^3``
    (force) onto ``values`` in place.
    """
    k = _kernels()
    set_threads(threads)
    soft2 = float(softening) ** 2
    fn = k["cluster_potential" if mode == "potential" else "cluster_force"]
    out = fn(targets, np.ascontiguousarray(tgt, dtype=np.int64),
             np.ascontiguousarray(nodes, dtype=np.int64),
             np.ascontiguousarray(com), np.ascontiguousarray(mass),
             soft2)
    out *= -kernels.G
    values += out


def p2p_group_pass(values: np.ndarray, tpos: np.ndarray, tgt: np.ndarray,
                   rows: np.ndarray, sp: np.ndarray,
                   sm: np.ndarray | None, uniform: bool, softening: float,
                   scale: float, mode: str,
                   threads: int | None = None) -> None:
    """Fused particle-particle pass over one leaf-size group.

    The group layout matches
    :meth:`~repro.bh.interaction_lists.InteractionLists.p2p_groups`:
    row ``i`` interacts target position ``tpos[i]`` (accumulated into
    ``values[tgt[i]]``) with source block ``sp[rows[i]]`` (masses
    ``sm[rows[i]]`` unless ``uniform``).  ``scale`` carries ``-G`` and,
    for uniform masses, the common mass factor.
    """
    k = _kernels()
    set_threads(threads)
    soft2 = float(softening) ** 2
    fn = k["p2p_potential" if mode == "potential" else "p2p_force"]
    out = fn(np.ascontiguousarray(tpos),
             np.ascontiguousarray(tgt, dtype=np.int64),
             np.ascontiguousarray(rows, dtype=np.int64),
             np.ascontiguousarray(sp),
             _EMPTY_2D if sm is None else np.ascontiguousarray(sm),
             bool(uniform), soft2, values.shape[0])
    out *= scale
    values += out


def p2p_pass(values: np.ndarray, lists, tree, sources, mode: str,
             softening: float, threads: int | None = None) -> None:
    """Compiled particle-particle pass over a whole interaction list."""
    smass = sources.masses
    uniform = smass.size > 0 and bool(np.all(smass == smass[0]))
    scale = -kernels.G * (float(smass[0]) if uniform else 1.0)
    for tgt, tpos, rows, sp, sm in lists.p2p_groups(tree, sources):
        if tgt.size == 0:
            continue
        p2p_group_pass(values, tpos, tgt, rows, sp, sm, sm is None,
                       softening, scale, mode, threads)
