"""Particle sets (structure of arrays) and axis-aligned cubic boxes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Box:
    """An axis-aligned cube: ``center`` (d-vector) and scalar ``half``.

    Barnes-Hut cells are cubes (squares in 2-D); the MAC's "dimension of
    the box" is the side length ``2 * half``.
    """

    center: np.ndarray
    half: float

    def __post_init__(self):
        center = np.asarray(self.center, dtype=np.float64)
        object.__setattr__(self, "center", center)
        if center.ndim != 1 or center.size not in (2, 3):
            raise ValueError(f"box center must be a 2- or 3-vector, "
                             f"got shape {center.shape}")
        if self.half <= 0:
            raise ValueError(f"box half-width must be positive, "
                             f"got {self.half}")

    @property
    def dims(self) -> int:
        return self.center.size

    @property
    def side(self) -> float:
        return 2.0 * self.half

    @property
    def lo(self) -> np.ndarray:
        return self.center - self.half

    @property
    def hi(self) -> np.ndarray:
        return self.center + self.half

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside the half-open box [lo, hi)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        return np.all((pos >= self.lo) & (pos < self.hi), axis=1)

    def child(self, octant: int) -> "Box":
        """The sub-box for child ``octant`` (bit ``i`` = upper half of
        axis ``i``)."""
        d = self.dims
        if not 0 <= octant < (1 << d):
            raise ValueError(f"octant {octant} out of range for {d}-D box")
        offsets = np.array(
            [(1.0 if (octant >> i) & 1 else -1.0) for i in range(d)]
        )
        return Box(self.center + 0.5 * self.half * offsets, 0.5 * self.half)

    def octant_of(self, positions: np.ndarray) -> np.ndarray:
        """Child index for each position (vectorized)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        bits = (pos >= self.center).astype(np.int64)
        return (bits << np.arange(self.dims)).sum(axis=1)

    @staticmethod
    def bounding(positions: np.ndarray, pad: float = 1e-9) -> "Box":
        """Smallest cube (padded slightly) containing all positions."""
        pos = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if pos.shape[0] == 0:
            raise ValueError("cannot bound an empty point set")
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        center = 0.5 * (lo + hi)
        half = 0.5 * float((hi - lo).max())
        half = half * (1.0 + pad) + pad
        return Box(center, half)


@dataclass
class ParticleSet:
    """Structure-of-arrays particle container.

    Attributes
    ----------
    positions : (n, d) float64
    masses    : (n,)   float64, strictly positive
    velocities: (n, d) float64
    ids       : (n,)   int64 — stable global identities that survive
        redistribution across virtual processors.
    """

    positions: np.ndarray
    masses: np.ndarray
    velocities: np.ndarray = None  # type: ignore[assignment]
    ids: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] not in (2, 3):
            raise ValueError(
                f"positions must be (n, 2) or (n, 3), got {self.positions.shape}"
            )
        n, d = self.positions.shape
        self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        if self.masses.shape != (n,):
            raise ValueError(
                f"masses must be shape ({n},), got {self.masses.shape}"
            )
        if n and not np.all(self.masses > 0):
            raise ValueError("all particle masses must be positive")
        if self.velocities is None:
            self.velocities = np.zeros((n, d))
        self.velocities = np.ascontiguousarray(self.velocities,
                                               dtype=np.float64)
        if self.velocities.shape != (n, d):
            raise ValueError(
                f"velocities must be shape ({n}, {d}), "
                f"got {self.velocities.shape}"
            )
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        if self.ids.shape != (n,):
            raise ValueError(f"ids must be shape ({n},), got {self.ids.shape}")

    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def n(self) -> int:
        return self.positions.shape[0]

    @property
    def dims(self) -> int:
        return self.positions.shape[1]

    @property
    def total_mass(self) -> float:
        return float(self.masses.sum())

    @property
    def nbytes(self) -> int:
        """Wire size of the set (positions, masses, velocities, ids) —
        picked up by the virtual machine's payload estimator when whole
        particle sets move between processors."""
        return (self.positions.nbytes + self.masses.nbytes
                + self.velocities.nbytes + self.ids.nbytes)

    def center_of_mass(self) -> np.ndarray:
        if self.n == 0:
            raise ValueError("empty particle set has no center of mass")
        return (self.masses[:, None] * self.positions).sum(axis=0) / self.total_mass

    def subset(self, index: np.ndarray) -> "ParticleSet":
        """Select particles by integer index or boolean mask."""
        return ParticleSet(
            positions=self.positions[index],
            masses=self.masses[index],
            velocities=self.velocities[index],
            ids=self.ids[index],
        )

    def bounding_box(self, pad: float = 1e-9) -> Box:
        return Box.bounding(self.positions, pad=pad)

    @staticmethod
    def concatenate(sets: list["ParticleSet"]) -> "ParticleSet":
        """Merge particle sets (used when virtual processors exchange
        particles).  Empty inputs are allowed as long as one set is
        non-trivial enough to define the dimensionality."""
        sets = [s for s in sets if s.n > 0]
        if not sets:
            raise ValueError("cannot concatenate zero non-empty sets")
        d = sets[0].dims
        if any(s.dims != d for s in sets):
            raise ValueError("dimension mismatch in concatenate")
        return ParticleSet(
            positions=np.concatenate([s.positions for s in sets]),
            masses=np.concatenate([s.masses for s in sets]),
            velocities=np.concatenate([s.velocities for s in sets]),
            ids=np.concatenate([s.ids for s in sets]),
        )

    @staticmethod
    def empty(dims: int) -> "ParticleSet":
        return ParticleSet(
            positions=np.zeros((0, dims)),
            masses=np.zeros(0),
            velocities=np.zeros((0, dims)),
            ids=np.zeros(0, dtype=np.int64),
        )
