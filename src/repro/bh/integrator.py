"""Leapfrog time integration and energy diagnostics.

The paper's simulation loop is: tree construction, force computation,
particle advance (Section 3).  The advance here is kick-drift-kick
leapfrog, the standard symplectic integrator for collisionless n-body
work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bh import kernels
from repro.bh.direct import direct_forces, direct_potentials
from repro.bh.particles import ParticleSet

AccelFn = Callable[[ParticleSet], np.ndarray]


def leapfrog_step(particles: ParticleSet, accel: AccelFn, dt: float,
                  accel_now: np.ndarray | None = None, *,
                  force_input: bool = False) -> np.ndarray:
    """Advance ``particles`` in place by one KDK leapfrog step.

    The ``accel`` callback must return **accelerations** — which is what
    every kernel in this package produces (``direct_forces`` and the
    tree evaluators compute ``-G m_src r / r^3`` per unit *target* mass,
    so target masses never enter).  A callback returning true forces
    (``m_i a_i``) would silently integrate wrongly for non-uniform
    masses; pass ``force_input=True`` and each evaluation is divided by
    the particle masses before kicking.

    ``accel_now`` optionally reuses the accelerations already computed at
    the current positions (saves one force evaluation per step in a
    loop).  Returns the accelerations at the *new* positions so callers
    can chain steps.
    """
    if dt <= 0:
        raise ValueError(f"time-step must be positive, got {dt}")

    def to_accel(a: np.ndarray) -> np.ndarray:
        if a.shape != particles.positions.shape:
            raise ValueError(
                f"acceleration shape {a.shape} does not match positions "
                f"{particles.positions.shape}"
            )
        return a / particles.masses[:, None] if force_input else a

    a0 = to_accel(accel(particles) if accel_now is None else accel_now)
    particles.velocities += 0.5 * dt * a0
    particles.positions += dt * particles.velocities
    raw1 = accel(particles)             # returned as-is: accel_now takes
    particles.velocities += 0.5 * dt * to_accel(raw1)   # the raw value
    return raw1


def kinetic_energy(particles: ParticleSet) -> float:
    v2 = np.einsum("ij,ij->i", particles.velocities, particles.velocities)
    return float(0.5 * (particles.masses * v2).sum())


def potential_energy(particles: ParticleSet, softening: float = 0.0) -> float:
    """Exact pairwise potential energy (counts each pair once)."""
    phi = direct_potentials(particles, softening=softening)
    return float(0.5 * (particles.masses * phi).sum())


def total_energy(particles: ParticleSet, softening: float = 0.0) -> float:
    return kinetic_energy(particles) + potential_energy(particles, softening)


def direct_accelerations(softening: float = 0.0) -> AccelFn:
    """An ``accel`` callback computing exact forces (for tests/examples)."""
    def accel(ps: ParticleSet) -> np.ndarray:
        return direct_forces(ps, softening=softening)
    return accel
