"""Multipole acceptance criteria.

The Barnes-Hut criterion (paper, Section 2): "the ratio of the dimension
of the box to the distance of the point from the center of mass of the
box; if this ratio is less than some constant alpha, an interaction can
be computed".  Targets lying inside the box never accept (their distance
to the COM says nothing about separation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh.tree import Tree


@dataclass(frozen=True)
class BarnesHutMAC:
    """The alpha criterion: accept iff ``side / dist(COM) < alpha``.

    ``alpha`` is the paper's opening parameter (0.67, 0.8, 1.0 in the
    experiments).  Smaller alpha = stricter = more accurate = slower.
    """

    alpha: float

    def __post_init__(self):
        if not 0 < self.alpha:
            raise ValueError(f"alpha must be positive, got {self.alpha}")

    def accept(self, tree: Tree, node: int,
               targets: np.ndarray) -> np.ndarray:
        """Boolean mask over targets: True = interaction allowed."""
        targets = np.atleast_2d(targets)
        diff = targets - tree.com[node]
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        side = 2.0 * tree.half[node]
        ok = side < self.alpha * dist
        # Never accept from inside the box itself.
        inside = np.all(
            np.abs(targets - tree.center[node]) < tree.half[node], axis=1
        )
        return ok & ~inside

    def flops_per_test(self) -> int:
        """The paper's instruction count: 14 flops per MAC evaluation."""
        return 14
