"""Local (Taylor) expansions: M2L, L2L, P2L, L2P.

The fast-multipole operators the paper's Section 2 describes ("FMM
computes the potential due to a cluster of particles at the center of
well-separated clusters...  uses cluster-cluster interactions in
addition to particle-cluster interactions") and whose parallelization
the conclusion claims "the techniques can be extended to".  Together
with :mod:`repro.bh.multipole`'s P2M/M2M they complete the operator set
of Greengard & Rokhlin (1987); :mod:`repro.bh.fmm` assembles them into a
serial FMM evaluator over the same trees.

Conventions continue :mod:`repro.bh.multipole`'s: Greengard-normalized
spherical harmonics, shift vectors always "old center relative to new
center".  A local expansion L about center c represents the potential of
*distant* sources inside its cell:

    phi(P) = sum_{j,k} L_j^k  r^j  Y_j^k(theta, phi),    r = |P - c|
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.bh.multipole import (
    n_terms,
    regular_terms,
    spherical_coords,
    spherical_harmonics,
    term_index,
)


def _A(l: int, m: int) -> float:
    return (-1.0) ** l / math.sqrt(
        math.factorial(l - m) * math.factorial(l + m)
    )


@lru_cache(maxsize=16)
def _m2l_tables(degree: int):
    """Index/coefficient arrays for M2L (Greengard Lemma 2.4).

    With the multipole expansion M centered at Q = (rho, alpha, beta)
    *relative to the local center*:

      L_j^k = sum_{l,m} M_l^m i^{|k-m|-|k|-|m|} A_l^m A_j^k
              Y_{j+l}^{m-k}(alpha, beta)
              / ( (-1)^l A_{j+l}^{m-k} rho^{j+l+1} )

    The Y factor is of combined order j+l, so the shift harmonics are
    evaluated at order 2*degree.
    """
    out_idx, m_idx, y_idx, lpj, coefs = [], [], [], [], []
    for j in range(degree + 1):
        for k in range(-j, j + 1):
            for l in range(degree + 1):
                for m in range(-l, l + 1):
                    phase = 1j ** (abs(k - m) - abs(k) - abs(m))
                    out_idx.append(term_index(j, k))
                    m_idx.append(term_index(l, m))
                    y_idx.append(term_index(j + l, m - k))
                    lpj.append(j + l + 1)
                    coefs.append(
                        phase * _A(l, m) * _A(j, k)
                        / ((-1.0) ** l * _A(j + l, m - k))
                    )
    return (np.asarray(out_idx), np.asarray(m_idx), np.asarray(y_idx),
            np.asarray(lpj), np.asarray(coefs, dtype=np.complex128))


def m2l(coeffs: np.ndarray, shift: np.ndarray, degree: int) -> np.ndarray:
    """Convert a multipole expansion into a local expansion.

    ``shift`` is the multipole center relative to the local center; the
    cells must be well separated (|shift| greater than both cell radii)
    for the series to converge.
    """
    shift = np.asarray(shift, dtype=np.float64)
    r, ct, phi = spherical_coords(shift[None])
    rho = float(r[0])
    if rho == 0.0:
        raise ValueError("M2L requires separated centers")
    Y = spherical_harmonics(ct, phi, 2 * degree)[0]
    out_idx, m_idx, y_idx, lpj, coefs = _m2l_tables(degree)
    contrib = coeffs[m_idx] * coefs * Y[y_idx] / rho ** lpj
    out = np.zeros(n_terms(degree), dtype=np.complex128)
    np.add.at(out, out_idx, contrib)
    return out


@lru_cache(maxsize=16)
def _l2l_tables(degree: int):
    """Index/coefficient arrays for L2L (Greengard Lemma 2.5).

      L'_j^k = sum_{l >= j, |m-k| <= l-j} L_l^m i^{|m|-|m-k|-|k|}
               A_{l-j}^{m-k} A_j^k Y_{l-j}^{m-k} rho^{l-j}
               / ( (-1)^{l+j} A_l^m )
    """
    out_idx, l_idx, y_idx, lmj, coefs = [], [], [], [], []
    for j in range(degree + 1):
        for k in range(-j, j + 1):
            for l in range(j, degree + 1):
                for m in range(-l, l + 1):
                    if abs(m - k) > l - j:
                        continue
                    phase = 1j ** (abs(m) - abs(m - k) - abs(k))
                    out_idx.append(term_index(j, k))
                    l_idx.append(term_index(l, m))
                    y_idx.append(term_index(l - j, m - k))
                    lmj.append(l - j)
                    coefs.append(
                        phase * _A(l - j, m - k) * _A(j, k)
                        / ((-1.0) ** (l + j) * _A(l, m))
                    )
    return (np.asarray(out_idx), np.asarray(l_idx), np.asarray(y_idx),
            np.asarray(lmj), np.asarray(coefs, dtype=np.complex128))


def l2l(coeffs: np.ndarray, shift: np.ndarray, degree: int) -> np.ndarray:
    """Translate a local expansion; ``shift`` = old center relative to
    new center (the same convention as M2M)."""
    shift = np.asarray(shift, dtype=np.float64)
    r, ct, phi = spherical_coords(shift[None])
    rho = float(r[0])
    Y = spherical_harmonics(ct, phi, degree)[0]
    out_idx, l_idx, y_idx, lmj, coefs = _l2l_tables(degree)
    contrib = coeffs[l_idx] * coefs * Y[y_idx] * rho ** lmj
    out = np.zeros(n_terms(degree), dtype=np.complex128)
    np.add.at(out, out_idx, contrib)
    return out


def p2l(rel_positions: np.ndarray, charges: np.ndarray,
        degree: int) -> np.ndarray:
    """Local expansion of *distant* point charges about the origin:
    L_j^k = sum_i q_i Y_j^{-k}(alpha_i, beta_i) / rho_i^{j+1}."""
    rel = np.atleast_2d(rel_positions)
    r, ct, phi = spherical_coords(rel)
    if np.any(r == 0):
        raise ValueError("P2L sources must not sit on the local center")
    Y = spherical_harmonics(ct, phi, degree)
    q = np.asarray(charges, dtype=np.float64)
    out = np.zeros(n_terms(degree), dtype=np.complex128)
    rpow = 1.0 / r
    for j in range(degree + 1):
        for k in range(-j, j + 1):
            out[term_index(j, k)] = (q * rpow * Y[:, term_index(j, -k)]).sum()
        rpow = rpow / r
    return out


@lru_cache(maxsize=16)
def _l2p_conj_map(degree: int) -> np.ndarray:
    """Column permutation pairing L_j^k with regular term (j, -k)."""
    idx = np.empty(n_terms(degree), dtype=np.int64)
    for j in range(degree + 1):
        for k in range(-j, j + 1):
            idx[term_index(j, k)] = term_index(j, -k)
    return idx


def l2p(coeffs: np.ndarray, rel_targets: np.ndarray,
        degree: int) -> np.ndarray:
    """Evaluate a local expansion at targets relative to its center.

    One matrix-vector contraction over all terms: r^j Y_j^k is the
    regular_terms column (j, -k), selected by the cached permutation.
    """
    R = regular_terms(np.atleast_2d(rel_targets), degree)
    return (R[:, _l2p_conj_map(degree)] @ coeffs).real
