"""Dirty-subtree tree repair: rebuild only what moved, bitwise exactly.

Block timesteps (``bh/blockstep.py``) advance a small *active* subset of
particles per substep, so most of the tree survives between force
evaluations.  This module exploits that: given last step's tree, the old
and new Morton keys, and the set of moved particles, :func:`repair_tree`
rebuilds only the *dirty* region — cells whose key range gained or lost
a changed key — and grafts every maximal clean old subtree into the new
node table unchanged (shifted particle slices, renumbered ids).

The contract is **exact equality**: the repaired tree's arrays are
bitwise identical to a full :func:`~repro.bh.tree.build_tree` over the
new keys.  That holds because

- a clean cell's slice content is unchanged, so the subtree a full
  rebuild would regenerate below it is the old subtree (same keys, same
  cell, same builder);
- grafting only happens when the graft-aware emission *naturally* lands
  on a clean old cell (see ``stop_cells`` in ``_emit_levels``) — cells
  a full rebuild would skip are never forced into existence;
- node ids are defined by ``lexsort((depth, start))`` pre-order, which
  the splice re-runs over the assembled (spine + graft) node set.

Monopoles are refreshed *incrementally*: only spine nodes and nodes
containing a moved particle are recomputed (restricted
``compute_monopoles`` — per-row-independent grouped reductions, so the
restriction is also bitwise neutral).  Full rebuild is kept both as the
oracle (tests) and as the fallback when the changed-key fraction
exceeds ``dirty_threshold``.

:class:`RepairResult` additionally reports, per *old* node, what the
repair did — the interface ``TraversalEngine.apply_repair`` uses to
decide which cached walks survive (walk-cache invalidation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh.particles import ParticleSet
from repro.bh.tree import NO_CHILD, SMALL_BUILD_CUTOFF, Tree, _emit_levels, \
    build_tree


@dataclass
class RepairResult:
    """Outcome of :func:`repair_tree`.

    ``id_map`` and the per-old-node flag arrays are ``None`` when the
    repair fell back to a full rebuild (``rebuilt=True``) — consumers
    must then treat every old node as deleted.
    """

    tree: Tree
    rebuilt: bool
    #: old node id -> new node id, -1 where the old cell no longer exists
    id_map: np.ndarray | None
    #: old node: child cells (slot occupancy or child addresses) differ
    children_changed: np.ndarray | None
    #: old node: particle slice length differs
    count_changed: np.ndarray | None
    #: old node: mapped but stored mass/com no longer valid
    value_dirty: np.ndarray | None
    #: *new*-tree node ids whose upward-pass values were recomputed —
    #: exactly the set whose subtree content or cell is new, so it also
    #: drives the incremental multipole refresh
    refreshed: np.ndarray | None
    n_changed_keys: int
    nodes_reused: int
    nodes_rebuilt: int


def subtree_extents(tree: Tree) -> np.ndarray:
    """``sub_end[i]``: one past the last node of ``i``'s subtree.  In
    DFS pre-order every subtree is the contiguous id range
    ``[i, sub_end[i])``."""
    sub_end = np.arange(tree.nnodes, dtype=np.int64) + 1
    for _, ids in reversed(tree.nodes_by_level()):
        kids = tree.children[ids]
        valid = kids != NO_CHILD
        if not valid.any():
            continue
        vals = np.where(valid, sub_end[np.where(valid, kids, 0)], 0)
        sub_end[ids] = np.maximum(sub_end[ids], vals.max(axis=1))
    return sub_end


def _cell_key_ranges(depth: np.ndarray, path_key: np.ndarray, dims: int,
                     bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Half-open Morton key range ``[lo, hi)`` covered by each cell.
    uint64: the root range at 3-D/21-bit keys is 2^63, one past int64."""
    shift = (dims * (bits - depth.astype(np.int64))).astype(np.uint64)
    lo = path_key.astype(np.uint64) << shift
    return lo, lo + (np.uint64(1) << shift)


def _ranges_hit(sorted_keys: np.ndarray, lo: np.ndarray,
                hi: np.ndarray) -> np.ndarray:
    """Per cell: does ``[lo, hi)`` contain any of ``sorted_keys``?"""
    sk = sorted_keys.astype(np.uint64)      # keys are nonnegative
    return np.searchsorted(sk, lo) < np.searchsorted(sk, hi)


def _match_cells(depth_a: np.ndarray, path_a: np.ndarray,
                 depth_b: np.ndarray, path_b: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Positions ``(ia, ib)`` of cells present on both sides, matched by
    ``(depth, path)``.  Cells are unique per side."""
    ia_out, ib_out = [], []
    for dep in np.unique(depth_a):
        sa = np.flatnonzero(depth_a == dep)
        sb = np.flatnonzero(depth_b == dep)
        if sb.size == 0:
            continue
        ob = np.argsort(path_b[sb])
        sb = sb[ob]
        pb = path_b[sb]
        pos = np.searchsorted(pb, path_a[sa])
        ok = pos < pb.size
        ok[ok] = pb[pos[ok]] == path_a[sa[ok]]
        ia_out.append(sa[ok])
        ib_out.append(sb[pos[ok]])
    if not ia_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(ia_out), np.concatenate(ib_out)


def _full_rebuild(tree: Tree, particles: ParticleSet, new_keys: np.ndarray,
                  collapse_chains: bool, n_changed: int) -> RepairResult:
    new = build_tree(
        particles, box=tree.root_box, leaf_capacity=tree.leaf_capacity,
        max_depth=tree.max_depth, collapse_chains=collapse_chains,
        keys=new_keys,
    )
    return RepairResult(
        tree=new, rebuilt=True, id_map=None, children_changed=None,
        count_changed=None, value_dirty=None, refreshed=None,
        n_changed_keys=n_changed, nodes_reused=0, nodes_rebuilt=new.nnodes,
    )


def _value_dirty(tree: Tree, new: Tree, id_map: np.ndarray) -> np.ndarray:
    mapped = id_map >= 0
    tgt = np.where(mapped, id_map, 0)
    diff = (tree.mass != new.mass[tgt]) \
        | (tree.com != new.com[tgt]).any(axis=1)
    return mapped & diff


def repair_tree(tree: Tree, particles: ParticleSet, old_keys: np.ndarray,
                new_keys: np.ndarray, moved: np.ndarray, *,
                collapse_chains: bool = True,
                dirty_threshold: float = 0.25,
                force_full: bool = False) -> RepairResult:
    """Repair ``tree`` (built over ``old_keys``) to match ``new_keys``.

    ``moved`` indexes every particle whose *position* changed since the
    tree was built (a superset of the key-changed set: small moves keep
    the key but still stale the monopoles along the root path).  The
    returned tree is bitwise identical to a full ``build_tree`` over
    ``new_keys``; ``particles`` must already hold the new positions.
    """
    if (tree.remote_owner >= 0).any():
        raise ValueError("cannot repair a tree with remote leaves")
    n = particles.n
    old_keys = np.asarray(old_keys, dtype=np.int64)
    new_keys = np.asarray(new_keys, dtype=np.int64)
    if old_keys.shape != (n,) or new_keys.shape != (n,):
        raise ValueError("key arrays must have one key per particle")
    moved = np.asarray(moved, dtype=np.int64)
    changed = old_keys != new_keys
    n_changed = int(changed.sum())
    d, bits = tree.dims, tree.max_depth

    if force_full or n < SMALL_BUILD_CUTOFF \
            or n_changed > dirty_threshold * n:
        return _full_rebuild(tree, particles, new_keys, collapse_chains,
                             n_changed)

    nn = tree.nnodes
    moved_sorted = np.sort(new_keys[moved])
    cell_lo, cell_hi = _cell_key_ranges(tree.depth, tree.path_key, d, bits)

    if n_changed == 0:
        # Structure and Morton order are untouched; only monopoles along
        # moved particles' root paths are stale.  Share the structural
        # arrays, refresh fresh mass/com copies in place.
        new = Tree(
            root_box=tree.root_box, dims=d, leaf_capacity=tree.leaf_capacity,
            max_depth=bits, children=tree.children, depth=tree.depth,
            path_key=tree.path_key, center=tree.center, half=tree.half,
            start=tree.start, end=tree.end, order=tree.order,
            mass=tree.mass.copy(), com=tree.com.copy(),
            remote_owner=tree.remote_owner, remote_key=tree.remote_key,
            interactions=tree.interactions.copy(),
        )
        stale = np.flatnonzero(_ranges_hit(moved_sorted, cell_lo, cell_hi))
        new.compute_monopoles(particles, nodes=stale)
        id_map = np.arange(nn, dtype=np.int64)
        return RepairResult(
            tree=new, rebuilt=False, id_map=id_map,
            children_changed=np.zeros(nn, dtype=bool),
            count_changed=np.zeros(nn, dtype=bool),
            value_dirty=_value_dirty(tree, new, id_map), refreshed=stale,
            n_changed_keys=0, nodes_reused=nn, nodes_rebuilt=0,
        )

    # --- dirty set: cells whose range gained or lost a changed key ---
    co = np.sort(old_keys[changed])
    cn = np.sort(new_keys[changed])
    dirty = _ranges_hit(co, cell_lo, cell_hi) \
        | _ranges_hit(cn, cell_lo, cell_hi)

    parent = np.full(nn, -1, dtype=np.int64)
    flat = tree.children.ravel()
    valid = flat != NO_CHILD
    parent[flat[valid]] = np.repeat(np.arange(nn), 1 << d)[valid]

    # maximal clean nodes = graft candidates (root is dirty: changed
    # keys always lie inside the root range)
    maximal = np.flatnonzero(~dirty & (parent >= 0) & dirty[parent])
    stop_cells: dict[int, np.ndarray] = {}
    stop_ids: dict[int, np.ndarray] = {}
    for dep in np.unique(tree.depth[maximal]):
        sel = maximal[tree.depth[maximal] == dep]
        o = np.argsort(tree.path_key[sel])
        stop_cells[int(dep)] = tree.path_key[sel][o]
        stop_ids[int(dep)] = sel[o]

    order_new = np.argsort(new_keys, kind="stable").astype(np.int64)
    raw = _emit_levels(new_keys[order_new], d, bits, tree.leaf_capacity,
                       collapse_chains, tree.root_box, stop_cells)
    S = raw["lo"].size
    stop_idx = np.flatnonzero(raw["stopped"])

    # map each stopped emission back to its old graft root
    graft_old = np.empty(stop_idx.size, dtype=np.int64)
    for dep in np.unique(raw["depth"][stop_idx]):
        sel = stop_idx[raw["depth"][stop_idx] == dep]
        pos = np.searchsorted(stop_cells[int(dep)], raw["path"][sel])
        graft_old[np.searchsorted(stop_idx, sel)] = stop_ids[int(dep)][pos]
    if stop_idx.size:
        same_count = (raw["hi"][stop_idx] - raw["lo"][stop_idx]
                      == tree.end[graft_old] - tree.start[graft_old])
        if not same_count.all():
            raise AssertionError("graft slice length mismatch — clean-set "
                                 "determination is broken")

    sub_end = subtree_extents(tree)
    sizes = sub_end[graft_old] - graft_old - 1      # graft interiors
    total = int(sizes.sum())
    starts_rep = np.repeat(graft_old + 1, sizes)
    within = np.arange(total, dtype=np.int64) \
        - np.repeat(np.cumsum(sizes) - sizes, sizes)
    block_rows = starts_rep + within                # old ids, graft order
    delta = raw["lo"][stop_idx] - tree.start[graft_old]
    delta_rep = np.repeat(delta, sizes)

    # --- assemble spine emissions + graft interiors, renumber ---
    a_depth = np.concatenate([raw["depth"],
                              tree.depth[block_rows].astype(np.int64)])
    a_path = np.concatenate([raw["path"], tree.path_key[block_rows]])
    a_center = np.concatenate([raw["center"], tree.center[block_rows]])
    a_half = np.concatenate([raw["half"], tree.half[block_rows]])
    a_lo = np.concatenate([raw["lo"], tree.start[block_rows] + delta_rep])
    a_hi = np.concatenate([raw["hi"], tree.end[block_rows] + delta_rep])
    N = S + total
    perm = np.lexsort((a_depth, a_lo))              # DFS pre-order
    new_id = np.empty(N, dtype=np.int64)
    new_id[perm] = np.arange(N)

    nkids = 1 << d
    children = np.full((N, nkids), NO_CHILD, dtype=np.int32)
    kid = np.flatnonzero(raw["parent"] >= 0)
    children[new_id[raw["parent"][kid]], raw["slot"][kid]] = new_id[kid]
    # graft-internal links (and graft-root -> interior links): remap old
    # child ids through assembled positions
    amap = np.full(nn, -1, dtype=np.int64)          # old id -> assembled
    amap[block_rows] = S + np.arange(total)
    amap[graft_old] = stop_idx
    grows = np.concatenate([graft_old, block_rows])
    crows = tree.children[grows]
    ri, si = np.nonzero(crows != NO_CHILD)
    children[new_id[amap[grows[ri]]], si] = new_id[amap[crows[ri, si]]]

    # monopoles: grafts carry old values, spine rows refreshed below
    m_asm = np.concatenate([np.zeros(S), tree.mass[block_rows]])
    c_asm = np.concatenate([np.zeros((S, d)), tree.com[block_rows]])
    i_asm = np.concatenate([np.zeros(S, dtype=np.int64),
                            tree.interactions[block_rows]])
    m_asm[stop_idx] = tree.mass[graft_old]
    c_asm[stop_idx] = tree.com[graft_old]
    i_asm[stop_idx] = tree.interactions[graft_old]

    new = Tree(
        root_box=tree.root_box, dims=d, leaf_capacity=tree.leaf_capacity,
        max_depth=bits, children=children,
        depth=a_depth[perm].astype(np.int32), path_key=a_path[perm],
        center=a_center[perm], half=a_half[perm], start=a_lo[perm],
        end=a_hi[perm], order=order_new, mass=m_asm[perm], com=c_asm[perm],
        interactions=i_asm[perm],
    )

    # refresh: spine rows plus any node containing a moved particle
    # (covers key-unchanged movers inside grafts)
    refresh = np.zeros(N, dtype=bool)
    refresh[new_id[np.flatnonzero(~raw["stopped"])]] = True
    nlo, nhi = _cell_key_ranges(new.depth, new.path_key, d, bits)
    refresh |= _ranges_hit(moved_sorted, nlo, nhi)
    refreshed = np.flatnonzero(refresh)
    new.compute_monopoles(particles, nodes=refreshed)

    # --- old-node bookkeeping for walk-cache invalidation ---
    id_map = np.full(nn, -1, dtype=np.int64)
    id_map[block_rows] = new_id[S + np.arange(total)]
    id_map[graft_old] = new_id[stop_idx]
    in_graft = amap >= 0
    spine_old = np.flatnonzero(~in_graft)
    em = np.flatnonzero(~raw["stopped"])
    ia, ib = _match_cells(tree.depth[spine_old].astype(np.int64),
                          tree.path_key[spine_old],
                          raw["depth"][em], raw["path"][em])
    matched_old = spine_old[ia]
    id_map[matched_old] = new_id[em[ib]]

    children_changed = np.zeros(nn, dtype=bool)
    count_changed = np.zeros(nn, dtype=bool)
    if matched_old.size:
        mo = matched_old
        mn = id_map[mo]
        count_changed[mo] = (tree.end[mo] - tree.start[mo]
                             != new.end[mn] - new.start[mn])
        oc, nc = tree.children[mo], new.children[mn]
        ov, nv = oc != NO_CHILD, nc != NO_CHILD
        cc = (ov != nv).any(axis=1)
        both = ov & nv
        osel = np.where(both, oc, 0)
        nsel = np.where(both, nc, 0)
        same_cell = (tree.depth[osel] == new.depth[nsel]) \
            & (tree.path_key[osel] == new.path_key[nsel])
        cc |= (both & ~same_cell).any(axis=1)
        children_changed[mo] = cc

    return RepairResult(
        tree=new, rebuilt=False, id_map=id_map,
        children_changed=children_changed, count_changed=count_changed,
        value_dirty=_value_dirty(tree, new, id_map), refreshed=refreshed,
        n_changed_keys=n_changed,
        nodes_reused=total + stop_idx.size,
        nodes_rebuilt=S - stop_idx.size,
    )


def refresh_multipoles(mp, result: RepairResult, particles: ParticleSet):
    """Incrementally carry a :class:`~repro.bh.multipole.TreeMultipoles`
    across a repair: mapped nodes keep their coefficients (same cell,
    same subtree content unless refreshed), ``result.refreshed`` rows
    are recomputed.  Bitwise equal to building fresh expansions over the
    repaired tree."""
    from repro.bh.multipole import TreeMultipoles

    new_mp = TreeMultipoles(result.tree, None, mp.degree)
    if result.rebuilt or result.id_map is None:
        new_mp._build(particles)
        return new_mp
    mapped = np.flatnonzero(result.id_map >= 0)
    new_mp.coeffs[result.id_map[mapped]] = mp.coeffs[mapped]
    new_mp.refresh(particles, result.refreshed)
    return new_mp
