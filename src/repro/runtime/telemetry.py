"""Host-side live telemetry for the process backend.

The worker side of telemetry lives in :mod:`repro.runtime.supervision`:
each rank's phase hook and heartbeat thread publish current phase,
wall-in-phase, cumulative bytes, and peak RSS into the shared
:class:`~repro.runtime.supervision.HeartbeatBoard`.  This module is the
consumer: the host samples the board into :class:`RankTelemetry` rows,
renders them as a ``--live`` progress line, and appends structured
events to an :class:`EventLog`.

Event stream schema (``--events-out``, JSON lines, one object per
line).  Every event carries:

* ``"t"`` — wall seconds since the run started (float),
* ``"event"`` — the event type.

Event types and their extra fields:

===============  ==========================================================
``run_start``    ``scheme, p, n, steps, backend``
``step``         ``step`` (newest step every rank has started) and
                 ``ranks``: a list of per-rank objects ``{rank, step,
                 phase, wall_in_phase, bytes_sent, bytes_recv, peak_rss,
                 steps_per_s, ckpt_step}``
``checkpoint``   ``step`` — newest step durably checkpointed by every rank
``worker_lost``  ``rank, kind, detail`` (detail = supervisor diagnostics)
``recovery``     ``restart`` (1-based attempt), ``resume_step``,
                 ``rollback_steps``
``run_end``      ``ok, steps, parallel_time, recoveries, wall_seconds``
===============  ==========================================================

Unknown extra fields may appear in future versions; consumers should
ignore fields they do not know.  All telemetry is pure observation on
the real timebase — it never touches virtual accounting.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass

from repro.runtime.supervision import HeartbeatBoard

__all__ = ["EventLog", "LiveDisplay", "RankTelemetry", "TelemetrySampler"]


@dataclass
class RankTelemetry:
    """One rank's board state at one host sampling instant."""

    rank: int
    step: int               # last step the rank reported (-1 = none yet)
    phase: str | None       # current phase name (None = none reported)
    wall_in_phase: float    # wall seconds since the phase was entered
    bytes_sent: int
    bytes_recv: int
    peak_rss: int           # bytes (ru_maxrss)
    steps_per_s: float      # rate since the previous sample (0 if unknown)
    ckpt_step: int = -1     # newest durably checkpointed step (-1 = none)


class TelemetrySampler:
    """Samples a telemetry board into :class:`RankTelemetry` rows.

    Tracks the previous sample per rank so ``steps_per_s`` is a real
    rate, not a lifetime average.
    """

    def __init__(self, board: HeartbeatBoard, size: int):
        self.board = board
        self.size = size
        self._prev: list[tuple[float, int]] = [(time.monotonic(), -1)
                                               for _ in range(size)]

    def sample(self) -> list[RankTelemetry]:
        now = time.monotonic()
        rows = []
        for r in range(self.size):
            step = self.board.last_step(r)
            t_prev, s_prev = self._prev[r]
            rate = 0.0
            if step > s_prev >= 0 and now > t_prev:
                rate = (step - s_prev) / (now - t_prev)
            if step != s_prev:
                self._prev[r] = (now, step)
            rows.append(RankTelemetry(
                rank=r,
                step=step,
                phase=self.board.current_phase(r),
                wall_in_phase=self.board.wall_in_phase(r),
                bytes_sent=self.board.bytes_sent(r),
                bytes_recv=self.board.bytes_received(r),
                peak_rss=self.board.peak_rss(r),
                steps_per_s=rate,
                ckpt_step=self.board.last_checkpoint_step(r),
            ))
        return rows


class EventLog:
    """Append-only JSON-lines event stream (the ``--events-out`` file).

    One :class:`EventLog` covers one run; ``t`` is wall seconds since
    construction.  Lines are written with sorted keys and flushed per
    event so a crash loses at most the event being written and the
    stream diffs cleanly across runs.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "a")
        self._t0 = time.monotonic()

    def emit(self, event: str, **fields) -> None:
        rec = {"t": round(time.monotonic() - self._t0, 6), "event": event}
        rec.update(fields)
        json.dump(rec, self._fh, sort_keys=True)
        self._fh.write("\n")
        self._fh.flush()

    def emit_step(self, step: int, rows: list[RankTelemetry]) -> None:
        self.emit("step", step=step,
                  ranks=[asdict(row) for row in rows])

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


def format_live_line(rows: list[RankTelemetry], total_steps: int) -> str:
    """One-line live summary of a sampled board."""
    if not rows:
        return "no ranks"
    lead = min(row.step for row in rows)
    rates = [row.steps_per_s for row in rows if row.steps_per_s > 0]
    rate = f"{min(rates):.2f} steps/s" if rates else "- steps/s"
    sent = _human_bytes(sum(row.bytes_sent for row in rows))
    rss = _human_bytes(max(row.peak_rss for row in rows))
    phases = []
    for row in rows:
        tag = row.phase if row.phase is not None else "-"
        phases.append(f"r{row.rank}:{tag}")
    return (f"step {max(lead, 0)}/{total_steps} | {rate} | "
            f"sent {sent} | peak rss {rss} | " + " ".join(phases))


class LiveDisplay:
    """Renders the ``--live`` progress line (carriage-return updates)."""

    def __init__(self, total_steps: int, stream=None):
        self.total_steps = total_steps
        self.stream = stream if stream is not None else sys.stderr
        self._last_len = 0

    def update(self, rows: list[RankTelemetry]) -> None:
        line = format_live_line(rows, self.total_steps)
        pad = max(self._last_len - len(line), 0)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last_len = len(line)

    def finish(self) -> None:
        if self._last_len:
            self.stream.write("\n")
            self.stream.flush()
            self._last_len = 0
