"""Queue + shared-memory transport between rank processes.

One ``multiprocessing`` queue per rank carries encoded
:class:`~repro.machine.mailbox.Message` records; large numpy payloads
travel out-of-band in shared-memory blocks (:mod:`repro.runtime.shm`).
Each worker drains its queue into a private in-process
:class:`~repro.machine.mailbox.Mailbox`, which supplies the matched
``(src, tag)`` receive semantics, virtual-arrival ordering and
reliable-layer duplicate suppression — exactly the structure the
in-process :class:`~repro.machine.transport.LocalTransport` uses, with
the pipe in front.

Determinism: queues are FIFO per producer, so messages from one sender
arrive in send order — the same per-``(src, tag)`` FIFO guarantee the
local transport gives — and every virtual-time decision was already
priced into the message by the sender.  Which is why the two transports
produce bitwise-identical virtual clocks for the same program.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import Any

from repro.machine.mailbox import Mailbox, Message
from repro.machine.transport import Endpoint
from repro.runtime import shm as _shm_codec

#: How long one blocking queue read waits before re-checking the
#: watchdog deadline (real seconds; never charges any virtual clock).
_POLL_SECONDS = 0.05


class ProcessTransport:
    """Host-side factory for the per-rank queues of one run.

    Created by the :class:`~repro.runtime.process_engine.ProcessEngine`
    before forking; each worker then builds its own
    :class:`ProcessEndpoint` around the shared queue array.
    """

    def __init__(self, ctx, size: int, shm_prefix: str,
                 shm_threshold: int | None = _shm_codec.DEFAULT_SHM_THRESHOLD):
        if size <= 0:
            raise ValueError(f"transport size must be positive, got {size}")
        self.size = size
        self.shm_prefix = shm_prefix
        self.shm_threshold = shm_threshold
        self.queues = [ctx.Queue() for _ in range(size)]

    def endpoint(self, rank: int) -> "ProcessEndpoint":
        """Build rank ``rank``'s endpoint (call inside the worker)."""
        return ProcessEndpoint(rank, self.size, self.queues,
                               self.shm_prefix, self.shm_threshold)

    def drain_leftovers(self) -> None:
        """Decode-and-drop every undelivered message (host teardown).

        Undelivered messages may own shared-memory blocks; decoding them
        is what unlinks the blocks.  Called after all workers exited.
        """
        for q in self.queues:
            while True:
                try:
                    src, data, block_info = q.get_nowait()
                except (_queue.Empty, OSError, EOFError):
                    break
                try:
                    _shm_codec.decode(data, block_info)
                except Exception:
                    pass

    def close(self) -> None:
        """Drain in-flight payloads and retire every queue.

        ``cancel_join_thread`` matters on the recovery path: a queue
        whose feeder thread still holds buffered items from a worker
        that was SIGKILL'd must not block host shutdown.
        """
        self.drain_leftovers()
        for q in self.queues:
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, AttributeError):  # pragma: no cover
                pass


class ProcessEndpoint(Endpoint):
    """One rank process's view of the transport."""

    def __init__(self, rank: int, size: int, queues, shm_prefix: str,
                 shm_threshold: int | None):
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self._queues = queues
        self._shm_prefix = f"{shm_prefix}r{rank}"
        self._shm_threshold = shm_threshold
        #: Decoded-message store: supplies matching, ordering and
        #: reliable-layer dedup, identical to the local transport.
        self._box = Mailbox(rank)
        #: Optional :class:`~repro.machine.trace.WallRecorder`: when set
        #: (by the worker body), queue puts, blocking queue reads and
        #: shared-memory decodes show up as ``wall:transport`` spans.
        #: Pure wall-side observation — virtual pricing already happened
        #: in Comm before a message reaches the endpoint.
        self.wall_tracer = None

    # ------------------------------------------------------------- sending
    def deliver(self, dst: int, msg: Message) -> None:
        if dst == self.rank:
            self._box.put(msg)
            return
        wall = self.wall_tracer
        w0 = wall.now() if wall is not None else 0.0
        data, block_info = _shm_codec.encode(
            (msg.arrival, msg.seq, msg.tag, msg.nbytes, msg.xmit_id,
             msg.payload),
            name_prefix=self._shm_prefix, threshold=self._shm_threshold,
        )
        self._queues[dst].put((msg.src, data, block_info))
        if wall is not None:
            wall.record(f"transport:send dst={dst}", w0, wall.now(),
                        depth=2, cat="wall:transport")

    # ----------------------------------------------------------- receiving
    def _accept(self, item: Any) -> None:
        src, data, block_info = item
        wall = self.wall_tracer if block_info else None
        w0 = wall.now() if wall is not None else 0.0
        arrival, seq, tag, nbytes, xmit_id, payload = \
            _shm_codec.decode(data, block_info)
        if wall is not None:
            # Only shm-backed payloads get a span: the attach + copy-out
            # is the interesting cost; inline pickles are noise.
            wall.record(f"transport:shm-decode src={src}", w0, wall.now(),
                        depth=2, cat="wall:transport")
        self._box.put(Message(arrival=arrival, src=src, seq=seq, tag=tag,
                              payload=payload, nbytes=nbytes,
                              xmit_id=xmit_id))

    def _drain_pending(self) -> None:
        """Move everything already sitting in the pipe into the mailbox."""
        q = self._queues[self.rank]
        while True:
            try:
                item = q.get_nowait()
            except _queue.Empty:
                return
            self._accept(item)

    def get(self, src: int, tag: int, timeout: float | None) -> Message:
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        q = self._queues[self.rank]
        wall = self.wall_tracer
        w0 = wall.now() if wall is not None else 0.0
        blocked = False
        while True:
            self._drain_pending()
            msg = self._box.poll(src, tag)
            if msg is not None:
                if blocked and wall is not None:
                    # Only record genuinely blocking receives — a hit in
                    # the local mailbox is not a transport wait.
                    wall.record(f"transport:recv-wait src={src}",
                                w0, wall.now(), depth=2,
                                cat="wall:transport")
                return msg
            blocked = True
            wait = _POLL_SECONDS
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"rank {self.rank}: recv(src={src}, tag={tag}) "
                        f"timed out after {timeout}s — likely deadlock"
                    )
                wait = min(wait, remaining)
            try:
                item = q.get(timeout=wait)
            except _queue.Empty:
                continue
            self._accept(item)

    def poll(self, src: int, tag: int) -> Message | None:
        self._drain_pending()
        return self._box.poll(src, tag)

    def requeue(self, msg: Message) -> None:
        self._box.requeue(msg)

    def probe(self, src: int, tag: int) -> bool:
        self._drain_pending()
        return self._box.probe(src, tag)

    # ------------------------------------------------- deadlock diagnostics
    def deadlock_snapshot(self):
        # No machine-wide board across processes: report what this rank
        # can see (the engine's watchdog aggregates per-rank reports).
        return None, {self.rank: self._box.pending_summary()}

    # ------------------------------------------------------------ counters
    @property
    def duplicates_suppressed(self) -> int:
        return self._box.duplicates_suppressed

    @property
    def max_pending(self) -> int:
        return self._box.max_pending
