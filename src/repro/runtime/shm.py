"""Shared-memory payload codec for the process transport.

Messages between rank processes carry arbitrary Python payloads
(particle sets, branch-node dicts, request bins).  Small payloads ride
the pipe as ordinary pickle bytes, but the hot payloads of every scheme
are large numpy arrays — particle coordinate blocks moving through the
balancing exchange — and pushing those through a pipe means two extra
copies through kernel buffers.  This codec lifts every large, simple-
dtype array out of the pickle stream into one per-message
``multiprocessing.shared_memory`` block:

* :func:`encode` pickles the payload with a ``persistent_id`` hook that
  replaces each qualifying array with a slot index, then copies all
  extracted arrays into one freshly created shared-memory block.  The
  sender immediately closes its mapping and *unregisters* the block
  from its own ``resource_tracker`` — ownership transfers with the
  message.
* :func:`decode` attaches the named block, copies each array out (the
  receiver owns its data; no lifetime coupling), then closes **and
  unlinks** the block.  Exactly one unlink per block, by the receiver.

Bitwise fidelity: arrays are transported as raw bytes of a C-contiguous
copy, so values round-trip exactly; pickle round-trips Python floats
exactly as well.  Aliasing of one array referenced twice inside a
payload is preserved (both references decode to the same object).

If the platform has no usable shared memory the codec degrades to plain
pickling (``shm_threshold=None`` disables extraction explicitly).
"""

from __future__ import annotations

import atexit
import io
import itertools
import os
import pickle
import signal
import threading
from typing import Any

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm
    from multiprocessing import resource_tracker as _tracker
except ImportError:  # pragma: no cover
    _shm = None
    _tracker = None

#: Arrays at or above this many bytes go to shared memory by default.
#: Below it, the pickle-stream copy is cheaper than a block handoff.
DEFAULT_SHM_THRESHOLD = 1 << 14  # 16 KiB

_name_counter = itertools.count()


def _eligible(obj: Any, threshold: int) -> bool:
    # Simple numeric dtypes only: structured/void/object dtypes do not
    # survive the ``dtype.str`` round trip and ride the pickle stream.
    return (type(obj) is np.ndarray
            and obj.nbytes >= threshold
            and obj.dtype.kind in "biufc")


class _ExtractingPickler(pickle.Pickler):
    """Pickler that swaps large arrays for ``("a", slot)`` persistent ids."""

    def __init__(self, file, threshold: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.threshold = threshold
        self.arrays: list[np.ndarray] = []
        self._slots: dict[int, int] = {}

    def persistent_id(self, obj):
        if not _eligible(obj, self.threshold):
            return None
        slot = self._slots.get(id(obj))
        if slot is None:
            slot = len(self.arrays)
            self._slots[id(obj)] = slot
            self.arrays.append(np.ascontiguousarray(obj))
        return ("a", slot)


class _ResolvingUnpickler(pickle.Unpickler):
    def __init__(self, file, arrays: list[np.ndarray]):
        super().__init__(file)
        self.arrays = arrays

    def persistent_load(self, pid):
        kind, slot = pid
        if kind != "a":  # pragma: no cover - future-proofing
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self.arrays[slot]


def _forget(shm) -> None:
    """Drop a freshly created block from this process's resource tracker.

    The receiver unlinks the block; without this, the creator's tracker
    would warn about (or double-unlink) blocks it no longer owns.
    """
    if _tracker is None:  # pragma: no cover
        return
    try:
        _tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is best-effort
        pass


def encode(payload: Any, name_prefix: str = "repro",
           threshold: int | None = DEFAULT_SHM_THRESHOLD) -> tuple:
    """Encode ``payload`` into ``(pickle_bytes, block_info)``.

    ``block_info`` is ``None`` when everything fits the pickle stream,
    else ``(block_name, [(offset, dtype_str, shape), ...])`` describing
    one shared-memory block holding the extracted arrays in order.
    """
    if _shm is None or threshold is None:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), None
    buf = io.BytesIO()
    pickler = _ExtractingPickler(buf, threshold)
    pickler.dump(payload)
    arrays = pickler.arrays
    if not arrays:
        return buf.getvalue(), None
    total = sum(a.nbytes for a in arrays)
    name = f"{name_prefix}_{os.getpid()}_{next(_name_counter)}"
    block = _shm.SharedMemory(create=True, size=max(total, 1), name=name)
    descs = []
    offset = 0
    for a in arrays:
        dest = np.ndarray(a.shape, dtype=a.dtype, buffer=block.buf,
                          offset=offset)
        dest[...] = a
        descs.append((offset, a.dtype.str, a.shape))
        offset += a.nbytes
    _forget(block)
    block.close()
    return buf.getvalue(), (block.name, descs)


def decode(data: bytes, block_info) -> Any:
    """Decode :func:`encode` output; unlinks the shared block if any."""
    if block_info is None:
        return pickle.loads(data)
    name, descs = block_info
    block = _shm.SharedMemory(name=name)
    try:
        arrays = [
            np.ndarray(shape, dtype=np.dtype(dt), buffer=block.buf,
                       offset=off).copy()
            for off, dt, shape in descs
        ]
        return _ResolvingUnpickler(io.BytesIO(data), arrays).load()
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


# ------------------------------------------------------- crash-safe sweeping
#
# Ownership of an in-flight block belongs to the *message*: the sender
# forgets it, the receiver unlinks it.  When the receiver is killed
# mid-flight (a SIGKILL'd worker, a host dying on an exception path
# that never reaches its ``finally``), nobody unlinks and the block
# outlives the run.  The host therefore registers each run's block
# prefix here; an ``atexit`` hook and a chained ``SIGTERM`` handler
# sweep every registered prefix on the way down.  Engines release their
# prefix after their own (more precise) teardown sweep, so on healthy
# runs these hooks find nothing to do.

_active_prefixes: set[str] = set()
_prefix_lock = threading.Lock()
_hooks_installed = False
_prev_sigterm = None


def _sweep_registered() -> int:
    with _prefix_lock:
        prefixes = list(_active_prefixes)
    return sum(cleanup_blocks(p) for p in prefixes)


def _sigterm_sweep(signum, frame):  # pragma: no cover - signal path
    _sweep_registered()
    handler = _prev_sigterm
    if callable(handler):
        handler(signum, frame)
    else:
        # Restore default disposition and re-deliver so the process
        # still dies with the conventional SIGTERM status.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


def _install_cleanup_hooks() -> None:
    global _hooks_installed, _prev_sigterm
    if _hooks_installed:
        return
    _hooks_installed = True
    atexit.register(_sweep_registered)
    # Signal handlers can only be installed from the main thread; an
    # engine driven from a worker thread still gets the atexit sweep.
    if threading.current_thread() is threading.main_thread():
        try:
            prev = signal.getsignal(signal.SIGTERM)
            if prev not in (signal.SIG_IGN,):
                _prev_sigterm = None if prev is signal.SIG_DFL else prev
                signal.signal(signal.SIGTERM, _sigterm_sweep)
        except (ValueError, OSError):  # pragma: no cover
            pass


def register_prefix(name_prefix: str) -> None:
    """Arm the crash sweep for one run's block prefix."""
    _install_cleanup_hooks()
    with _prefix_lock:
        _active_prefixes.add(name_prefix)


def release_prefix(name_prefix: str) -> None:
    """Disarm the crash sweep after a run's own teardown sweep ran."""
    with _prefix_lock:
        _active_prefixes.discard(name_prefix)


def forget_inherited_state() -> None:
    """Reset fork-inherited sweep state inside a new worker process.

    A forked worker inherits the host's registered prefixes and SIGTERM
    handler; if the host later terminates that worker mid-run, the
    inherited handler would sweep blocks of messages still in flight to
    *other* ranks.  Workers call this first: clear the registry and put
    SIGTERM back to its default disposition.
    """
    global _hooks_installed, _prev_sigterm
    with _prefix_lock:
        _active_prefixes.clear()
    if _hooks_installed:
        _hooks_installed = False
        if threading.current_thread() is threading.main_thread():
            try:
                if signal.getsignal(signal.SIGTERM) is _sigterm_sweep:
                    signal.signal(signal.SIGTERM, signal.SIG_DFL)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _prev_sigterm = None


def cleanup_blocks(name_prefix: str) -> int:
    """Best-effort unlink of leftover blocks with ``name_prefix``.

    Messages in flight when a run is torn down (a worker was terminated
    after another rank failed) would otherwise leak their blocks until
    reboot.  Returns the number of blocks reclaimed.  POSIX-only; a
    no-op where ``/dev/shm`` does not exist.
    """
    if _shm is None:
        return 0
    reclaimed = 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return 0
    for fname in names:
        if not fname.startswith(name_prefix):
            continue
        try:
            block = _shm.SharedMemory(name=fname)
        except FileNotFoundError:
            continue
        block.close()
        try:
            block.unlink()  # unlink also unregisters from the tracker
            reclaimed += 1
        except FileNotFoundError:  # pragma: no cover
            pass
    return reclaimed
