"""Process-per-rank SPMD runner with the virtual engine's contract.

``ProcessEngine(p, profile).run(main, args...)`` forks ``p`` OS
processes, each executing ``main(comm, *args)`` against its own
:class:`~repro.machine.comm.Comm` — the *same* rank programs, cost
model, fault injector and collectives as the thread-per-rank
:class:`~repro.machine.engine.Engine` — and returns the same
:class:`~repro.machine.engine.RunReport`.  All reported times are still
virtual; what the processes add is real multi-core wall-clock speed.

Determinism guarantee (the cross-validation tests pin it down): every
virtual-time decision is a pure function of the sender's clock and the
cost model, every receive in the simulation names its source explicitly,
and per-source message order is FIFO on both transports — so particle
states, virtual clocks and interaction counters are bitwise identical
across backends.

Failure handling mirrors the virtual engine: a worker ships its
exception home with a rank-tagged traceback; the host terminates the
survivors, reconstructs typed errors (``RankCrashedError``,
``DeadlockError``) where recovery logic depends on the type, wraps
everything else in :class:`RemoteRankError`, and routes the lot through
the shared :func:`~repro.machine.engine.raise_primary_error` root-cause
selection with a well-formed partial report attached.

Supervision covers the failure modes threads cannot have: every worker
heartbeats into a shared :class:`~repro.runtime.supervision.HeartbeatBoard`
and the host's supervisor loop convicts a rank that (a) exited without
reporting (exit-code classified: SIGKILL, segfault, plain exit) or
(b) is alive but has not heartbeat within ``heartbeat_timeout`` — both
raise :class:`WorkerLostError`, the typed, rank-tagged signal the
checkpoint/rollback recovery in :mod:`repro.core.simulation` catches to
respawn workers and restart from the latest durable checkpoint.  A
wall-clock watchdog (:class:`ProcessWatchdogError`) remains the
backstop for whole-run hangs, now with per-rank diagnostics (exit
codes, heartbeat ages, last reported steps) so an unrecoverable
failure is debuggable from the exception alone.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as _queue
import time
import traceback
from typing import Any, Callable, Sequence

from repro.machine import mailbox as _mailbox_mod
from repro.machine.clock import PhaseTimings
from repro.machine.comm import Comm, CommStats, DeadlockError
from repro.machine.costmodel import CostModel, MachineProfile
from repro.machine.engine import RankResult, RunReport, raise_primary_error
from repro.machine.faults import (
    FaultInjector,
    FaultPlan,
    RankCrashedError,
    ReliableConfig,
)
from repro.machine.profiles import ZERO_COST
from repro.machine.trace import Trace, Tracer, WallRecorder
from repro.runtime import shm as _shm_codec
from repro.runtime import supervision as _sup
from repro.runtime.process_transport import ProcessTransport
from repro.runtime.supervision import HeartbeatBoard, RankDiagnostics
from repro.runtime.telemetry import TelemetrySampler

#: Seq-counter stride per rank: each worker numbers its messages from
#: ``rank << SEQ_SHIFT``, so seqs are globally unique (trace stitching
#: needs that) while staying monotone per sender (all ordering needs).
SEQ_SHIFT = 44

_run_counter = itertools.count()


class RemoteRankError(RuntimeError):
    """A rank process raised; carries the remote traceback, rank-tagged."""

    #: Already names its rank: root-cause selection raises it unwrapped.
    rank_tagged = True

    def __init__(self, rank: int, summary: str, remote_traceback: str):
        self.rank = rank
        self.remote_traceback = remote_traceback
        super().__init__(
            f"rank {rank} (process backend) failed: {summary}\n"
            f"--- traceback from rank {rank} ---\n{remote_traceback}"
        )


class ProcessWatchdogError(RuntimeError):
    """The host gave up waiting on worker results (wall-clock timeout).

    The process analogue of :class:`~repro.machine.comm.DeadlockError`:
    it fires when a worker can no longer report anything — killed by the
    OS, wedged outside a receive, or stuck in native code.  Carries the
    ranks that never reported, which of them were still alive, and (when
    the supervisor gathered them) per-rank :class:`RankDiagnostics`
    with exit codes, heartbeat ages and last reported steps.
    """

    def __init__(self, missing: list[int], alive: list[int],
                 timeout: float,
                 diagnostics: list[RankDiagnostics] | None = None,
                 header: str | None = None):
        self.missing = list(missing)
        self.alive = list(alive)
        self.timeout = timeout
        self.diagnostics = list(diagnostics) if diagnostics else []
        #: Real seconds the host spent quiescing the run (terminating
        #: workers, draining queues, sweeping shm); filled in by the
        #: engine's teardown so recovery can report it.
        self.quiesce_seconds: float | None = None
        if header is None:
            header = (
                f"process backend: gave up after {timeout}s with "
                f"{len(self.missing)} rank(s) unreported — likely "
                f"deadlock or killed worker"
            )
        lines = [header]
        if self.diagnostics:
            lines.extend("  " + d.describe() for d in self.diagnostics)
        else:
            for r in self.missing:
                state = ("still running" if r in self.alive
                         else "process exited")
                lines.append(f"  rank {r}: no result; {state}")
        super().__init__("\n".join(lines))


class WorkerLostError(ProcessWatchdogError):
    """A specific worker process was lost mid-run.

    Raised by the supervisor loop when a rank's process exited without
    reporting (``kind`` ``"killed"``/``"exited"``, from its exit code)
    or went silent past the heartbeat timeout while still alive
    (``kind`` ``"stalled-heartbeat"``).  Subclasses
    :class:`ProcessWatchdogError` (a lost worker is the most common way
    the old watchdog fired) but names the rank, so checkpoint/rollback
    recovery can treat it as a restartable event rather than a fatal
    hang.
    """

    #: Names its rank: root-cause selection raises it unwrapped.
    rank_tagged = True

    def __init__(self, rank: int, kind: str, missing: list[int],
                 alive: list[int], timeout: float,
                 diagnostics: list[RankDiagnostics] | None = None,
                 exitcode: int | None = None):
        self.rank = rank
        self.kind = kind
        self.exitcode = exitcode
        header = (
            f"process backend: worker for rank {rank} lost "
            f"({kind}); {len(missing)} rank(s) unreported"
        )
        super().__init__(missing, alive, timeout,
                         diagnostics=diagnostics, header=header)


def _worker_main(rank: int, size: int, transport: ProcessTransport,
                 result_q, main: Callable[..., Any], args: tuple,
                 extra: tuple, profile: MachineProfile,
                 recv_timeout: float | None,
                 fault_plan: FaultPlan | None,
                 reliable: ReliableConfig | None, trace: bool,
                 result_prefix: str, board: HeartbeatBoard | None = None,
                 heartbeat_interval: float =
                 _sup.DEFAULT_HEARTBEAT_INTERVAL,
                 wall_epoch: float | None = None) -> None:
    """Body of one rank process (module-level so ``spawn`` can pickle it)."""
    # Shed fork-inherited host state: the parent's registered shm
    # prefixes and SIGTERM sweep must not fire in a terminated worker
    # (they would reclaim blocks still in flight to other ranks).
    _shm_codec.forget_inherited_state()
    _sup.reset_worker_state()
    if board is not None:
        _sup.activate_worker(rank, board, fault_plan, heartbeat_interval)
    # Renumber this process's messages into a rank-private seq range:
    # globally unique for trace stitching, monotone per sender — the only
    # property Message ordering consumes — so virtual times match the
    # shared-counter virtual backend bitwise.  A SeqCounter (not a bare
    # itertools.count) so checkpoint snapshots can read the next value
    # and a rollback restore can re-seed it.
    _mailbox_mod._seq_counter = _mailbox_mod.SeqCounter(rank << SEQ_SHIFT)
    envelope: dict[str, Any] = {"rank": rank}
    comm = None
    tracer = Tracer(size) if trace else None
    # Dual-clock tracing: with an epoch from the host, every phase and
    # transport operation is also recorded on the wall clock.  The
    # recorder is pure observation — virtual accounting is untouched.
    recorder = (WallRecorder(rank, wall_epoch)
                if wall_epoch is not None else None)
    try:
        cost = CostModel(profile, size)
        injector = (FaultInjector(fault_plan, size)
                    if fault_plan is not None else None)
        endpoint = transport.endpoint(rank)
        endpoint.wall_tracer = recorder
        comm = Comm(rank, size, cost, endpoint,
                    recv_timeout=recv_timeout, injector=injector,
                    reliable=reliable, tracer=tracer,
                    wall_tracer=recorder)
        _sup.attach_comm(comm)
        if injector is not None:
            t = injector.crash_time(rank)
            if t is not None:
                comm.clock.set_deadline(
                    t, lambda r=rank, at=t: RankCrashedError(r, at)
                )
        envelope["kind"] = "ok"
        envelope["value"] = main(comm, *args, *extra)
    except BaseException as exc:
        envelope["kind"] = "error"
        envelope["value"] = None
        envelope["error_type"] = type(exc).__name__
        envelope["error_msg"] = str(exc)
        envelope["traceback"] = traceback.format_exc()
        if isinstance(exc, RankCrashedError):
            envelope["crash_at"] = exc.at_time
        elif isinstance(exc, DeadlockError):
            envelope["deadlock"] = {
                "src": exc.src, "tag": exc.tag,
                "summaries": exc.summaries,
                "timeout": recv_timeout,
            }
    if comm is not None:
        # += because a checkpoint restore may have seeded the counter
        # with suppressions from before the rollback boundary.
        comm.stats.duplicates_suppressed += \
            comm.endpoint.duplicates_suppressed
        g = comm.metrics.gauge("mailbox.max_pending")
        g.set(max(g.value, comm.endpoint.max_pending))
        envelope["time"] = comm.clock.now
        envelope["timings"] = comm.clock.timings
        envelope["stats"] = comm.stats
        envelope["metrics"] = comm.metrics
    if tracer is not None:
        envelope["trace"] = (tracer.phases[rank], tracer.sends[rank],
                             tracer.recvs[rank])
    if recorder is not None:
        envelope["wall_trace"] = recorder.spans
    try:
        data, block_info = _shm_codec.encode(envelope,
                                             name_prefix=result_prefix)
        result_q.put((rank, data, block_info))
    except Exception:
        # The value did not survive encoding (an unpicklable return).
        # Ship a minimal error envelope instead of dying silently.
        result_q.put((rank, _shm_codec.encode({
            "rank": rank, "kind": "error", "value": None,
            "error_type": "RuntimeError",
            "error_msg": "rank result could not be pickled",
            "traceback": traceback.format_exc(),
            "time": envelope.get("time", 0.0),
        }, threshold=None)[0], None))


class ProcessEngine:
    """Runs SPMD programs on real ``multiprocessing`` workers.

    Constructor parameters mirror :class:`~repro.machine.engine.Engine`
    (size, profile, ``recv_timeout``, ``fault_plan``, ``reliable``), plus:

    start_method:
        ``multiprocessing`` start method; ``None`` takes the platform
        default (``fork`` on Linux — no pickling of the rank program).
    wall_timeout:
        Real-seconds budget for the whole run before the host terminates
        the workers and raises :class:`ProcessWatchdogError`.  Defaults
        to ``recv_timeout + 60`` so the in-worker deadlock watchdog
        (which produces the far more informative
        :class:`~repro.machine.comm.DeadlockError`) always gets to fire
        first; ``recv_timeout=None`` leaves the run unbounded.
    shm_threshold:
        Byte floor above which message arrays travel through shared
        memory (``None`` disables the shared-memory path entirely).
    heartbeat_interval, heartbeat_timeout:
        Worker liveness cadence: each worker stamps the shared board
        every ``heartbeat_interval`` real seconds; the supervisor
        convicts an unreported rank whose stamp is older than
        ``heartbeat_timeout`` (:class:`WorkerLostError`, kind
        ``"stalled-heartbeat"``).
    on_telemetry, telemetry_interval:
        Live telemetry: ``on_telemetry(rows)`` is called from the host's
        result loop at most every ``telemetry_interval`` real seconds
        with the sampled board state (a list of
        :class:`~repro.runtime.telemetry.RankTelemetry`).  Exceptions in
        the callback are swallowed — telemetry must never kill a run.
    """

    def __init__(self, size: int, profile: MachineProfile = ZERO_COST,
                 recv_timeout: float | None = 120.0,
                 fault_plan: FaultPlan | None = None,
                 reliable: ReliableConfig | bool | None = None,
                 start_method: str | None = None,
                 wall_timeout: float | None = None,
                 shm_threshold: int | None =
                 _shm_codec.DEFAULT_SHM_THRESHOLD,
                 heartbeat_interval: float =
                 _sup.DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float =
                 _sup.DEFAULT_HEARTBEAT_TIMEOUT,
                 on_telemetry: Callable[[list], None] | None = None,
                 telemetry_interval: float = 1.0):
        if size <= 0:
            raise ValueError(f"engine size must be positive, got {size}")
        self.size = size
        self.profile = profile
        self.cost = CostModel(profile, size)
        self.recv_timeout = recv_timeout
        self.fault_plan = fault_plan
        if reliable is True:
            reliable = ReliableConfig()
        elif reliable is False:
            reliable = None
        self.reliable = reliable
        self.start_method = start_method
        if wall_timeout is None and recv_timeout is not None:
            wall_timeout = recv_timeout + 60.0
        self.wall_timeout = wall_timeout
        self.shm_threshold = shm_threshold
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        if telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        self.on_telemetry = on_telemetry
        self.telemetry_interval = telemetry_interval
        #: Real seconds the most recent run spent quiescing (teardown).
        self.last_quiesce_seconds: float | None = None

    def run(self, main: Callable[..., Any], *args: Any,
            rank_args: Sequence[Sequence[Any]] | None = None,
            tracer: Tracer | bool | None = None,
            wall_trace: bool = False) -> RunReport:
        """Execute ``main(comm, *args)`` on every rank, one process each.

        Same signature and report as
        :meth:`repro.machine.engine.Engine.run`.  ``tracer=True`` (or a
        host-side :class:`~repro.machine.trace.Tracer`) enables tracing;
        per-rank event lists are recorded in the workers and merged into
        one :class:`~repro.machine.trace.Trace` on the report.
        ``wall_trace=True`` additionally records measured wall-clock
        spans (phases, transport operations, checkpoint writes) against
        a host-fixed epoch; they land on the same Trace as per-rank wall
        tracks.  Requires tracing to be on.
        """
        if rank_args is not None and len(rank_args) != self.size:
            raise ValueError(
                f"rank_args must have {self.size} entries, got {len(rank_args)}"
            )
        if tracer is not None and not isinstance(tracer, bool) \
                and tracer.size != self.size:
            raise ValueError(
                f"tracer sized for {tracer.size} ranks, engine has {self.size}"
            )
        trace_on = tracer is True or (tracer is not None
                                      and not isinstance(tracer, bool))
        if wall_trace and not trace_on:
            raise ValueError("wall_trace requires tracing to be enabled")
        wall_epoch = time.monotonic() if wall_trace else None
        ctx = mp.get_context(self.start_method)
        shm_prefix = f"repro{os.getpid()}x{next(_run_counter)}"
        # Arm the crash sweep before any block can exist: if the host
        # itself dies past this point, atexit/SIGTERM hooks reclaim the
        # run's /dev/shm blocks.
        _shm_codec.register_prefix(shm_prefix)
        transport = ProcessTransport(ctx, self.size, shm_prefix,
                                     shm_threshold=self.shm_threshold)
        board = HeartbeatBoard(ctx, self.size)
        result_q = ctx.Queue()
        workers = []
        for r in range(self.size):
            extra = tuple(rank_args[r]) if rank_args is not None else ()
            workers.append(ctx.Process(
                target=_worker_main,
                args=(r, self.size, transport, result_q, main,
                      tuple(args), extra, self.profile, self.recv_timeout,
                      self.fault_plan, self.reliable, trace_on,
                      f"{shm_prefix}res", board, self.heartbeat_interval,
                      wall_epoch),
                name=f"prank-{r}", daemon=True,
            ))
        envelopes: dict[int, dict[str, Any]] = {}
        failure: BaseException | None = None
        sampler = (TelemetrySampler(board, self.size)
                   if self.on_telemetry is not None else None)
        next_sample = time.monotonic()
        try:
            for w in workers:
                w.start()
            deadline = (time.monotonic() + self.wall_timeout
                        if self.wall_timeout is not None else None)
            while len(envelopes) < self.size:
                if sampler is not None \
                        and time.monotonic() >= next_sample:
                    try:
                        self.on_telemetry(sampler.sample())
                    except Exception:  # telemetry must never kill a run
                        pass
                    next_sample = (time.monotonic()
                                   + self.telemetry_interval)
                wait: float | None = 1.0
                if sampler is not None:
                    wait = min(wait, self.telemetry_interval)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        missing = [r for r in range(self.size)
                                   if r not in envelopes]
                        alive = [r for r in missing
                                 if workers[r].is_alive()]
                        raise ProcessWatchdogError(
                            missing, alive, self.wall_timeout,
                            diagnostics=self._diagnose(
                                missing, workers, board))
                    wait = min(wait, remaining)
                try:
                    rank, data, block_info = result_q.get(timeout=wait)
                except _queue.Empty:
                    if result_q.empty():
                        # No result racing up the pipe: safe to convict.
                        self._check_liveness(envelopes, workers, board)
                    continue
                envelopes[rank] = _shm_codec.decode(data, block_info)
                if envelopes[rank]["kind"] == "error":
                    break
            if sampler is not None:
                # Final sample: a short run can finish between periodic
                # samples, so guarantee the host observes the board's
                # terminal state (last step, last checkpoint) before the
                # run ends.
                try:
                    self.on_telemetry(sampler.sample())
                except Exception:  # telemetry must never kill a run
                    pass
        except BaseException as exc:
            failure = exc
            raise
        finally:
            # Quiesce: first error / watchdog ends the run — terminate
            # survivors (the process analogue of the virtual engine's
            # mailbox close), drain every queue (decoding undelivered
            # messages is what unlinks their shm blocks), then sweep the
            # run's prefix for blocks orphaned by killed processes.  On
            # a clean run every worker has already exited.
            t_quiesce = time.monotonic()
            for w in workers:
                if w.is_alive():
                    w.terminate()
            for w in workers:
                if w.pid is not None:
                    w.join(timeout=10.0)
            for w in workers:
                if w.is_alive():  # pragma: no cover - last resort
                    w.kill()
                    w.join(timeout=5.0)
            transport.close()
            self._drain_results(result_q, envelopes)
            result_q.close()
            result_q.cancel_join_thread()
            _shm_codec.cleanup_blocks(shm_prefix)
            _shm_codec.release_prefix(shm_prefix)
            self.last_quiesce_seconds = time.monotonic() - t_quiesce
            if isinstance(failure, ProcessWatchdogError):
                failure.quiesce_seconds = self.last_quiesce_seconds

        return self._build_report(envelopes, trace_on, tracer)

    def _diagnose(self, missing: list[int], workers,
                  board: HeartbeatBoard) -> list[RankDiagnostics]:
        return [
            RankDiagnostics(
                rank=r, alive=workers[r].is_alive(),
                exitcode=workers[r].exitcode,
                heartbeat_age=board.age(r),
                last_step=board.last_step(r),
                phase=board.current_phase(r),
                wall_in_phase=board.wall_in_phase(r),
            )
            for r in missing
        ]

    def _check_liveness(self, envelopes: dict, workers,
                        board: HeartbeatBoard) -> None:
        """Convict lost workers: exited-unreported or stalled heartbeat."""
        missing = [r for r in range(self.size) if r not in envelopes]
        dead = [r for r in missing if not workers[r].is_alive()]
        if dead:
            # A worker exited without reporting (killed / crashed
            # interpreter): waiting longer is useless.  Results already
            # in the pipe still land first (the loop drains before the
            # next liveness probe reaches here with an empty queue).
            r = dead[0]
            exitcode = workers[r].exitcode
            kind = ("killed" if exitcode is not None and exitcode < 0
                    else "exited")
            raise WorkerLostError(
                r, kind, missing, [x for x in missing if x not in dead],
                self.wall_timeout or 0.0,
                diagnostics=self._diagnose(missing, workers, board),
                exitcode=exitcode)
        stalled = [r for r in missing
                   if board.age(r) > self.heartbeat_timeout]
        if stalled:
            r = stalled[0]
            raise WorkerLostError(
                r, "stalled-heartbeat", missing, missing,
                self.wall_timeout or 0.0,
                diagnostics=self._diagnose(missing, workers, board),
                exitcode=None)

    def _drain_results(self, result_q, envelopes: dict) -> None:
        """Absorb late results (decoding frees their shm blocks)."""
        while True:
            try:
                rank, data, block_info = result_q.get_nowait()
            except (_queue.Empty, OSError, EOFError):
                return
            try:
                envelopes.setdefault(rank,
                                     _shm_codec.decode(data, block_info))
            except Exception:  # pragma: no cover - torn-down block
                pass

    def _build_report(self, envelopes: dict[int, dict[str, Any]],
                      trace_on: bool,
                      tracer: Tracer | bool | None) -> RunReport:
        ranks: list[RankResult] = []
        errors: list[tuple[int, BaseException]] = []
        for r in range(self.size):
            env = envelopes.get(r)
            if env is None:
                # Terminated before reporting (another rank failed
                # first); still yields a well-formed result row.
                ranks.append(RankResult(
                    rank=r, value=None, time=0.0, timings=PhaseTimings(),
                    stats=CommStats(), metrics=None,
                    error="RuntimeError: worker terminated before "
                          "reporting a result"))
                continue
            error = None
            if env["kind"] == "error":
                error = f"{env['error_type']}: {env['error_msg']}"
                errors.append((r, self._rebuild_error(env)))
            ranks.append(RankResult(
                rank=r, value=env.get("value"),
                time=env.get("time", 0.0),
                timings=env.get("timings") or PhaseTimings(),
                stats=env.get("stats") or CommStats(),
                metrics=env.get("metrics"), error=error))
        trace = None
        if trace_on and not errors:
            merged = tracer if isinstance(tracer, Tracer) \
                else Tracer(self.size)
            for r in range(self.size):
                env = envelopes.get(r) or {}
                phases, sends, recvs = env.get("trace") or ([], [], [])
                merged.phases[r] = list(phases)
                merged.sends[r] = list(sends)
                merged.recvs[r] = list(recvs)
                merged.wall_phases[r] = list(env.get("wall_trace") or [])
            merged.final_times = [res.time for res in ranks]
            trace = merged.finish()
        report = RunReport(ranks=ranks, trace=trace)
        if errors:
            raise_primary_error(errors, partial_report=report)
        return report

    @staticmethod
    def _rebuild_error(env: dict[str, Any]) -> BaseException:
        """Reconstruct a typed exception from a worker's error envelope."""
        rank = env["rank"]
        if "crash_at" in env:
            return RankCrashedError(rank, env["crash_at"])
        dl = env.get("deadlock")
        if dl is not None:
            return DeadlockError(rank, dl["src"], dl["tag"],
                                 summaries=dl["summaries"],
                                 timeout=dl["timeout"])
        return RemoteRankError(
            rank, f"{env['error_type']}: {env['error_msg']}",
            env.get("traceback", "<no traceback captured>"))
