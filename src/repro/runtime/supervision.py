"""Worker supervision primitives for the process backend.

The host cannot trust a worker process to *say* it died — an OOM kill,
a segfault in native code, or a livelocked loop all end a rank's useful
life without a result envelope.  Supervision rests on two signals:

* **exit codes** — ``multiprocessing`` surfaces ``-signum`` for
  signal deaths; :func:`classify_exit` turns that into a human verdict
  ("killed by SIGKILL").
* **heartbeats** — every worker runs a daemon thread that stamps a
  shared :class:`HeartbeatBoard` slot with ``time.monotonic()`` every
  ``interval`` seconds (CLOCK_MONOTONIC is system-wide on Linux, so
  host and workers read the same clock).  A slot older than the
  supervisor's timeout convicts a rank that is technically alive but
  no longer making progress.

The board also records the last *step* each rank reported
(:func:`notify_step`), which serves double duty: it makes watchdog
diagnostics say where each rank was when it died, and it is the hook
through which the deterministic process-fault plan acts — a worker
whose plan says ``kill={rank: k}`` SIGKILLs itself at the top of step
``k``, and one with ``stall_heartbeat={rank: k}`` silences its
heartbeat and hangs, exactly reproducing the two failure modes the
supervisor must distinguish.

:class:`RestartPolicy` bounds recovery: ``max_restarts`` respawns per
run, exponential backoff between attempts.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.faults import FaultPlan

#: Seconds between worker heartbeat stamps.
DEFAULT_HEARTBEAT_INTERVAL = 0.2

#: Host-side liveness verdict: a rank whose newest stamp is older than
#: this is considered lost even if its process object reads alive.
#: Generous relative to the interval so GC pauses and page-cache storms
#: do not convict a healthy worker.
DEFAULT_HEARTBEAT_TIMEOUT = 15.0


class HeartbeatBoard:
    """Shared-memory liveness board: one beat slot + step slot per rank.

    Built by the host from a ``multiprocessing`` context *before*
    forking; both sides access the raw arrays lock-free (an 8-byte
    aligned store is atomic on every platform CPython runs on, and a
    torn read would only mis-age one probe by one interval).
    """

    def __init__(self, ctx, size: int):
        self.size = size
        now = time.monotonic()
        # Slots start "fresh" so a slow-to-start worker isn't convicted
        # before its first beat.
        self._beats = ctx.Array("d", [now] * size, lock=False)
        self._steps = ctx.Array("q", [-1] * size, lock=False)

    # ------------------------------------------------------------ worker
    def beat(self, rank: int) -> None:
        self._beats[rank] = time.monotonic()

    def note_step(self, rank: int, step: int) -> None:
        self._steps[rank] = step

    # -------------------------------------------------------------- host
    def age(self, rank: int) -> float:
        return time.monotonic() - self._beats[rank]

    def last_step(self, rank: int) -> int:
        return int(self._steps[rank])


def classify_exit(exitcode: int | None) -> str:
    """Human verdict for one ``Process.exitcode``."""
    if exitcode is None:
        return "still running"
    if exitcode == 0:
        return "exited cleanly"
    if exitcode < 0:
        signum = -exitcode
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = f"signal {signum}"
        return f"killed by {name} (exit {exitcode})"
    return f"exited with status {exitcode}"


@dataclass
class RankDiagnostics:
    """Everything the supervisor knows about one rank at failure time."""

    rank: int
    alive: bool
    exitcode: int | None
    heartbeat_age: float
    last_step: int

    def describe(self) -> str:
        step = (f"last reported step {self.last_step}"
                if self.last_step >= 0 else "no step reported yet")
        return (f"rank {self.rank}: {classify_exit(self.exitcode)}; "
                f"last heartbeat {self.heartbeat_age:.1f}s ago; {step}")


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded respawn with exponential backoff.

    ``delay(n)`` is how long to wait before restart attempt ``n``
    (0-based): ``backoff_seconds * factor**n``, capped at ``cap``.
    """

    max_restarts: int = 3
    backoff_seconds: float = 0.25
    factor: float = 2.0
    cap: float = 10.0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay(self, restart_no: int) -> float:
        return min(self.backoff_seconds * self.factor ** restart_no,
                   self.cap)


# --------------------------------------------------------------- worker side

class _WorkerContext:
    def __init__(self, rank: int, board: HeartbeatBoard,
                 plan: "FaultPlan | None", interval: float):
        self.rank = rank
        self.board = board
        self.kill_at = dict(plan.kill) if plan is not None else {}
        self.stall_at = (dict(plan.stall_heartbeat)
                         if plan is not None else {})
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._pulse, args=(interval,),
            name=f"heartbeat-{rank}", daemon=True)
        self._thread.start()

    def _pulse(self, interval: float) -> None:
        while not self._stop.is_set():
            self.board.beat(self.rank)
            self._stop.wait(interval)

    def on_step(self, step: int) -> None:
        self.board.note_step(self.rank, step)
        if self.kill_at.get(self.rank) == step:
            # Die the way an OOM-killed node dies: no cleanup, no word.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.stall_at.get(self.rank) == step:
            # Livelock impersonation: heartbeat goes quiet, the process
            # stays alive and never makes progress again.
            self._stop.set()
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600.0)


_worker_ctx: _WorkerContext | None = None


def activate_worker(rank: int, board: HeartbeatBoard,
                    plan: "FaultPlan | None",
                    interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
    """Install this process's supervision context and start its heartbeat.

    Called first thing in the worker body.  Idempotent per process: a
    second activation replaces the context (only reachable in tests).
    """
    global _worker_ctx
    _worker_ctx = _WorkerContext(rank, board, plan, interval)


def notify_step(step: int) -> None:
    """Rank program hook: 'I am starting real step ``step``'.

    No-op outside an activated worker (virtual backend, host process),
    so simulation code can call it unconditionally.
    """
    if _worker_ctx is not None:
        _worker_ctx.on_step(step)


def reset_worker_state() -> None:
    """Forget any context inherited through ``fork`` (fresh workers
    must not reuse the parent's board slot or fault actions)."""
    global _worker_ctx
    if _worker_ctx is not None:
        _worker_ctx._stop.set()
    _worker_ctx = None
