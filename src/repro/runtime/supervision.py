"""Worker supervision primitives for the process backend.

The host cannot trust a worker process to *say* it died — an OOM kill,
a segfault in native code, or a livelocked loop all end a rank's useful
life without a result envelope.  Supervision rests on two signals:

* **exit codes** — ``multiprocessing`` surfaces ``-signum`` for
  signal deaths; :func:`classify_exit` turns that into a human verdict
  ("killed by SIGKILL").
* **heartbeats** — every worker runs a daemon thread that stamps a
  shared :class:`HeartbeatBoard` slot with ``time.monotonic()`` every
  ``interval`` seconds (CLOCK_MONOTONIC is system-wide on Linux, so
  host and workers read the same clock).  A slot older than the
  supervisor's timeout convicts a rank that is technically alive but
  no longer making progress.

The board also records the last *step* each rank reported
(:func:`notify_step`), which serves double duty: it makes watchdog
diagnostics say where each rank was when it died, and it is the hook
through which the deterministic process-fault plan acts — a worker
whose plan says ``kill={rank: k}`` SIGKILLs itself at the top of step
``k``, and one with ``stall_heartbeat={rank: k}`` silences its
heartbeat and hangs, exactly reproducing the two failure modes the
supervisor must distinguish.

:class:`RestartPolicy` bounds recovery: ``max_restarts`` respawns per
run, exponential backoff between attempts.
"""

from __future__ import annotations

import os
import resource
import signal
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.faults import FaultPlan

#: Seconds between worker heartbeat stamps.
DEFAULT_HEARTBEAT_INTERVAL = 0.2

#: Phase-name table shared by the telemetry board.  Workers publish the
#: current phase as an index into this tuple (shared arrays cannot carry
#: strings); names outside the table map to ``"other"`` (index 0), and
#: index ``-1`` means "no phase reported yet".
PHASE_NAMES: tuple[str, ...] = (
    "other",
    "setup",
    "load balancing",
    "local tree construction",
    "tree merging",
    "all-to-all broadcast",
    "force computation",
    "particle advance",
)

_PHASE_IDS = {name: i for i, name in enumerate(PHASE_NAMES)}


def phase_id(name: str | None) -> int:
    """Board index of a phase name (unknown names fold into "other")."""
    if name is None:
        return -1
    return _PHASE_IDS.get(name, 0)


def phase_name(pid: int) -> str | None:
    """Inverse of :func:`phase_id` (``None`` for the -1 sentinel)."""
    if 0 <= pid < len(PHASE_NAMES):
        return PHASE_NAMES[pid]
    return None

#: Host-side liveness verdict: a rank whose newest stamp is older than
#: this is considered lost even if its process object reads alive.
#: Generous relative to the interval so GC pauses and page-cache storms
#: do not convict a healthy worker.
DEFAULT_HEARTBEAT_TIMEOUT = 15.0


class HeartbeatBoard:
    """Shared-memory telemetry board: per-rank liveness + live state.

    Built by the host from a ``multiprocessing`` context *before*
    forking; both sides access the raw arrays lock-free (an 8-byte
    aligned store is atomic on every platform CPython runs on, and a
    torn read would only mis-age one probe by one interval).

    Layout (one slot per rank in each array):

    ======================  ====  ==============================================
    slot                    type  meaning
    ======================  ====  ==============================================
    beat                    f64   ``time.monotonic()`` of the newest heartbeat
    step                    i64   last step the rank reported (-1 = none)
    phase                   i64   :data:`PHASE_NAMES` index (-1 = none)
    phase_t0                f64   monotonic time the current phase was entered
    bytes_sent/bytes_recv   i64   cumulative payload bytes through Comm
    peak_rss                i64   ``ru_maxrss`` in bytes
    ckpt_step               i64   newest step checkpointed to disk (-1 = none)
    ======================  ====  ==============================================

    Everything beyond beat+step is best-effort telemetry: written by the
    worker's phase hook and heartbeat thread, read racily by the host's
    sampler.  None of it ever charges a virtual clock.
    """

    def __init__(self, ctx, size: int):
        self.size = size
        now = time.monotonic()
        # Slots start "fresh" so a slow-to-start worker isn't convicted
        # before its first beat.
        self._beats = ctx.Array("d", [now] * size, lock=False)
        self._steps = ctx.Array("q", [-1] * size, lock=False)
        self._phases = ctx.Array("q", [-1] * size, lock=False)
        self._phase_t0 = ctx.Array("d", [now] * size, lock=False)
        self._bytes_sent = ctx.Array("q", [0] * size, lock=False)
        self._bytes_recv = ctx.Array("q", [0] * size, lock=False)
        self._peak_rss = ctx.Array("q", [0] * size, lock=False)
        self._ckpt_steps = ctx.Array("q", [-1] * size, lock=False)

    # ------------------------------------------------------------ worker
    def beat(self, rank: int) -> None:
        self._beats[rank] = time.monotonic()

    def note_step(self, rank: int, step: int) -> None:
        self._steps[rank] = step

    def note_phase(self, rank: int, name: str | None) -> None:
        self._phases[rank] = phase_id(name)
        self._phase_t0[rank] = time.monotonic()

    def note_bytes(self, rank: int, sent: int, received: int) -> None:
        self._bytes_sent[rank] = sent
        self._bytes_recv[rank] = received

    def note_rss(self, rank: int, rss_bytes: int) -> None:
        self._peak_rss[rank] = rss_bytes

    def note_checkpoint(self, rank: int, step: int) -> None:
        self._ckpt_steps[rank] = step

    # -------------------------------------------------------------- host
    def age(self, rank: int) -> float:
        return time.monotonic() - self._beats[rank]

    def last_step(self, rank: int) -> int:
        return int(self._steps[rank])

    def current_phase(self, rank: int) -> str | None:
        return phase_name(int(self._phases[rank]))

    def wall_in_phase(self, rank: int) -> float:
        return time.monotonic() - self._phase_t0[rank]

    def bytes_sent(self, rank: int) -> int:
        return int(self._bytes_sent[rank])

    def bytes_received(self, rank: int) -> int:
        return int(self._bytes_recv[rank])

    def peak_rss(self, rank: int) -> int:
        return int(self._peak_rss[rank])

    def last_checkpoint_step(self, rank: int) -> int:
        return int(self._ckpt_steps[rank])


#: The board *is* the telemetry board; the alias names the role.
TelemetryBoard = HeartbeatBoard


def classify_exit(exitcode: int | None) -> str:
    """Human verdict for one ``Process.exitcode``."""
    if exitcode is None:
        return "still running"
    if exitcode == 0:
        return "exited cleanly"
    if exitcode < 0:
        signum = -exitcode
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = f"signal {signum}"
        return f"killed by {name} (exit {exitcode})"
    return f"exited with status {exitcode}"


@dataclass
class RankDiagnostics:
    """Everything the supervisor knows about one rank at failure time."""

    rank: int
    alive: bool
    exitcode: int | None
    heartbeat_age: float
    last_step: int
    #: What the rank was doing when convicted, from the telemetry board:
    #: current phase name (None if it never reported one) and wall
    #: seconds spent in it.
    phase: str | None = None
    wall_in_phase: float = 0.0

    def describe(self) -> str:
        step = (f"last reported step {self.last_step}"
                if self.last_step >= 0 else "no step reported yet")
        doing = (f"; in phase {self.phase!r} for {self.wall_in_phase:.1f}s"
                 if self.phase is not None else "")
        return (f"rank {self.rank}: {classify_exit(self.exitcode)}; "
                f"last heartbeat {self.heartbeat_age:.1f}s ago; "
                f"{step}{doing}")


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded respawn with exponential backoff.

    ``delay(n)`` is how long to wait before restart attempt ``n``
    (0-based): ``backoff_seconds * factor**n``, capped at ``cap``.
    """

    max_restarts: int = 3
    backoff_seconds: float = 0.25
    factor: float = 2.0
    cap: float = 10.0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay(self, restart_no: int) -> float:
        return min(self.backoff_seconds * self.factor ** restart_no,
                   self.cap)


# --------------------------------------------------------------- worker side

class _WorkerContext:
    def __init__(self, rank: int, board: HeartbeatBoard,
                 plan: "FaultPlan | None", interval: float):
        self.rank = rank
        self.board = board
        self.kill_at = dict(plan.kill) if plan is not None else {}
        self.stall_at = (dict(plan.stall_heartbeat)
                         if plan is not None else {})
        #: Comm whose stats the pulse thread samples (set by attach_comm).
        self.comm = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._pulse, args=(interval,),
            name=f"heartbeat-{rank}", daemon=True)
        self._thread.start()

    def _pulse(self, interval: float) -> None:
        while not self._stop.is_set():
            self.board.beat(self.rank)
            comm = self.comm
            if comm is not None:
                # Racy reads of live counters from another thread —
                # fine for telemetry, never fed back into accounting.
                stats = comm.stats
                self.board.note_bytes(self.rank, stats.bytes_sent,
                                      stats.bytes_received)
                rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                self.board.note_rss(self.rank, rss_kib * 1024)
            self._stop.wait(interval)

    def on_step(self, step: int) -> None:
        self.board.note_step(self.rank, step)
        if self.kill_at.get(self.rank) == step:
            # Die the way an OOM-killed node dies: no cleanup, no word.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.stall_at.get(self.rank) == step:
            # Livelock impersonation: heartbeat goes quiet, the process
            # stays alive and never makes progress again.
            self._stop.set()
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600.0)


_worker_ctx: _WorkerContext | None = None


def activate_worker(rank: int, board: HeartbeatBoard,
                    plan: "FaultPlan | None",
                    interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
    """Install this process's supervision context and start its heartbeat.

    Called first thing in the worker body.  Idempotent per process: a
    second activation replaces the context (only reachable in tests).
    """
    global _worker_ctx
    _worker_ctx = _WorkerContext(rank, board, plan, interval)


def notify_step(step: int) -> None:
    """Rank program hook: 'I am starting real step ``step``'.

    No-op outside an activated worker (virtual backend, host process),
    so simulation code can call it unconditionally.
    """
    if _worker_ctx is not None:
        _worker_ctx.on_step(step)


def notify_checkpoint(step: int) -> None:
    """Rank program hook: 'step ``step`` is durably checkpointed'.

    No-op outside an activated worker, like :func:`notify_step`.
    """
    ctx = _worker_ctx
    if ctx is not None:
        ctx.board.note_checkpoint(ctx.rank, step)


def attach_comm(comm) -> None:
    """Wire a rank's Comm into the telemetry board.

    Installs a phase listener on the rank's virtual clock (phase entry
    and exit update the board's phase slot) and hands the Comm to the
    heartbeat thread so the bytes/RSS slots track the live counters.
    No-op outside an activated worker.  Pure observation: the listener
    never charges the clock, and the sampler only *reads* stats.
    """
    ctx = _worker_ctx
    if ctx is None:
        return
    board, rank = ctx.board, ctx.rank
    comm.clock._phase_listener = lambda name: board.note_phase(rank, name)
    ctx.comm = comm


def reset_worker_state() -> None:
    """Forget any context inherited through ``fork`` (fresh workers
    must not reuse the parent's board slot or fault actions)."""
    global _worker_ctx
    if _worker_ctx is not None:
        _worker_ctx._stop.set()
    _worker_ctx = None
