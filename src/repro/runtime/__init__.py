"""Real-parallel process runtime: the second execution substrate.

The virtual machine (:mod:`repro.machine`) runs every rank as a thread
in one interpreter and reports *virtual* time; no scheme can ever beat
one host core.  This package executes the exact same rank programs on
real ``multiprocessing`` workers — one OS process per rank, messages
over pipes with large numpy payloads handed off through
``multiprocessing.shared_memory`` — while charging the same virtual
costs through the same :class:`~repro.machine.comm.Comm`, so the two
backends are bitwise cross-validatable and the process backend adds
real multi-core host-time speedup on top.

* :class:`~repro.runtime.process_engine.ProcessEngine` — drop-in
  engine with the :class:`~repro.machine.engine.Engine` ``RunReport``
  contract, supervising its workers through heartbeats and exit codes.
* :class:`~repro.runtime.process_transport.ProcessTransport` — the
  queue + shared-memory message transport.
* :mod:`~repro.runtime.supervision` — telemetry board (heartbeats,
  current phase, bytes, RSS), exit-code classification and restart
  policy backing crash recovery.
* :mod:`~repro.runtime.telemetry` — host-side board sampler, live
  progress display and the ``--events-out`` JSON-lines event stream.
"""

from repro.runtime.process_engine import (
    ProcessEngine,
    ProcessWatchdogError,
    RemoteRankError,
    WorkerLostError,
)
from repro.runtime.process_transport import ProcessTransport
from repro.runtime.supervision import (
    HeartbeatBoard,
    RankDiagnostics,
    RestartPolicy,
    TelemetryBoard,
    classify_exit,
)
from repro.runtime.telemetry import (
    EventLog,
    LiveDisplay,
    RankTelemetry,
    TelemetrySampler,
)

__all__ = [
    "EventLog",
    "HeartbeatBoard",
    "LiveDisplay",
    "ProcessEngine",
    "ProcessTransport",
    "ProcessWatchdogError",
    "RankDiagnostics",
    "RankTelemetry",
    "RemoteRankError",
    "RestartPolicy",
    "TelemetryBoard",
    "TelemetrySampler",
    "WorkerLostError",
    "classify_exit",
]
