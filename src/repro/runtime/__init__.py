"""Real-parallel process runtime: the second execution substrate.

The virtual machine (:mod:`repro.machine`) runs every rank as a thread
in one interpreter and reports *virtual* time; no scheme can ever beat
one host core.  This package executes the exact same rank programs on
real ``multiprocessing`` workers — one OS process per rank, messages
over pipes with large numpy payloads handed off through
``multiprocessing.shared_memory`` — while charging the same virtual
costs through the same :class:`~repro.machine.comm.Comm`, so the two
backends are bitwise cross-validatable and the process backend adds
real multi-core host-time speedup on top.

* :class:`~repro.runtime.process_engine.ProcessEngine` — drop-in
  engine with the :class:`~repro.machine.engine.Engine` ``RunReport``
  contract.
* :class:`~repro.runtime.process_transport.ProcessTransport` — the
  queue + shared-memory message transport.
"""

from repro.runtime.process_engine import (
    ProcessEngine,
    ProcessWatchdogError,
    RemoteRankError,
)
from repro.runtime.process_transport import ProcessTransport

__all__ = [
    "ProcessEngine",
    "ProcessTransport",
    "ProcessWatchdogError",
    "RemoteRankError",
]
