"""Configuration dataclasses for the parallel formulations."""

from __future__ import annotations

from dataclasses import dataclass, field

SCHEMES = ("spsa", "spda", "dpda")
MERGE_KINDS = ("broadcast", "nonreplicated")
LOOKUP_KINDS = ("hashed", "sorted")
MODES = ("force", "potential")
KERNEL_TIERS = ("numpy", "numba", "auto")
INTEGRATORS = ("euler", "kdk")
TIMESTEPS = ("fixed", "block")


@dataclass(frozen=True)
class SchemeConfig:
    """Everything that parameterises one parallel Barnes-Hut run.

    Parameters
    ----------
    scheme:
        ``"spsa"``, ``"spda"`` or ``"dpda"``.
    alpha:
        Barnes-Hut opening criterion (paper: 0.67, 0.8, 1.0).
    degree:
        Multipole degree; 0 = monopole (center of mass).  The paper uses
        monopole forces in Section 5.1 and degree 3-5 potentials in 5.2.
    mode:
        ``"force"`` (vector accelerations) or ``"potential"`` (scalar).
    leaf_capacity:
        The paper's ``s``: maximum particles per leaf cell.
    grid_level:
        SPSA/SPDA static cluster grid depth: ``r = 2^(dims*grid_level)``
        clusters (e.g. level 2 in 2-D = the paper's 16-cluster Fig. 5;
        level 5 in 2-D = 32x32 clusters).  Ignored by DPDA.
    bin_capacity:
        Particles collected per function-shipping bin before it is sent
        ("in our implementations, we typically collect 100 particles").
    merge:
        Top-tree construction: ``"broadcast"`` (replicated) or
        ``"nonreplicated"`` (Section 3.1.1 vs 3.1.2).
    branch_lookup:
        ``"hashed"`` or ``"sorted"`` branch-key location (Section 4.2.3).
    softening:
        Plummer softening for force kernels (0 for potential accuracy
        studies).
    max_depth:
        Tree refinement limit; ``None`` = Morton key limit.
    working_set_bytes:
        Bound on the fused evaluation kernels' live temporaries (the
        interaction-list engine's chunk size).  ``None`` uses the
        engine default (cache-resident chunks); the value affects speed
        and peak memory only — results stay within the engine's 1e-12
        contract and the interaction counters are unchanged.
    kernel_tier:
        Arithmetic backend of the evaluation pass: ``"numpy"`` (the
        reference tier), ``"numba"`` (compiled kernels, falls back to
        numpy with a warning when numba is absent) or ``"auto"``
        (numba when available).  Values stay within the engine's 1e-12
        contract; interaction counters are tier-independent.
    kernel_threads:
        ``None`` keeps the original serial numpy loop bit for bit; any
        explicit count (including 1) selects the slot-deterministic
        evaluator whose results are bitwise independent of the count.
    integrator:
        Particle advance: ``"euler"`` (semi-implicit Euler, the
        original loop — bitwise default) or ``"kdk"`` (kick-drift-kick
        leapfrog, the basis for block timesteps).
    timestep:
        ``"fixed"`` advances every particle by ``dt`` each step;
        ``"block"`` runs the power-of-two block-timestep hierarchy —
        each outer step is a macro step of ``dt``, internally split
        into substeps that integrate only the active rung bins
        (requires ``integrator="kdk"``, ``mode="force"`` and
        ``softening > 0`` for the rung criterion).
    dt_eta:
        Accuracy parameter of the rung criterion
        ``dt_i = dt_eta * sqrt(softening / |a_i|)``.
    max_rungs:
        Number of power-of-two timestep bins (rung ``r`` integrates
        with ``dt / 2^r``).
    """

    scheme: str = "spda"
    alpha: float = 0.67
    degree: int = 0
    mode: str = "force"
    leaf_capacity: int = 8
    grid_level: int = 2
    bin_capacity: int = 100
    merge: str = "broadcast"
    branch_lookup: str = "hashed"
    softening: float = 0.0
    max_depth: int | None = None
    working_set_bytes: int | None = None
    kernel_tier: str = "numpy"
    kernel_threads: int | None = None
    integrator: str = "euler"
    timestep: str = "fixed"
    dt_eta: float = 0.2
    max_rungs: int = 4

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, "
                             f"got {self.scheme!r}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.degree < 0:
            raise ValueError(f"degree must be >= 0, got {self.degree}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "force" and self.degree > 0:
            raise ValueError(
                "vector forces use monopoles (degree 0), as in the paper; "
                "use mode='potential' for multipole runs"
            )
        if self.leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        if self.grid_level < 0:
            raise ValueError("grid_level must be >= 0")
        if self.bin_capacity < 1:
            raise ValueError("bin_capacity must be >= 1")
        if self.merge not in MERGE_KINDS:
            raise ValueError(f"merge must be one of {MERGE_KINDS}")
        if self.branch_lookup not in LOOKUP_KINDS:
            raise ValueError(f"branch_lookup must be one of {LOOKUP_KINDS}")
        if self.softening < 0:
            raise ValueError("softening must be >= 0")
        if self.working_set_bytes is not None and self.working_set_bytes < 4096:
            raise ValueError("working_set_bytes must be >= 4096 (or None)")
        if self.kernel_tier not in KERNEL_TIERS:
            raise ValueError(f"kernel_tier must be one of {KERNEL_TIERS}, "
                             f"got {self.kernel_tier!r}")
        if self.kernel_threads is not None and self.kernel_threads < 1:
            raise ValueError("kernel_threads must be >= 1 (or None for "
                             "the serial path)")
        if self.integrator not in INTEGRATORS:
            raise ValueError(f"integrator must be one of {INTEGRATORS}, "
                             f"got {self.integrator!r}")
        if self.timestep not in TIMESTEPS:
            raise ValueError(f"timestep must be one of {TIMESTEPS}, "
                             f"got {self.timestep!r}")
        if self.dt_eta <= 0:
            raise ValueError(f"dt_eta must be positive, got {self.dt_eta}")
        if not 1 <= self.max_rungs <= 16:
            raise ValueError(f"max_rungs must be in [1, 16], "
                             f"got {self.max_rungs}")
        if self.timestep == "block":
            if self.integrator != "kdk":
                raise ValueError("block timesteps integrate with KDK "
                                 "leapfrog; set integrator='kdk'")
            if self.mode != "force":
                raise ValueError("block timesteps advance particles and "
                                 "need mode='force'")
            if self.softening <= 0:
                raise ValueError("block timesteps need softening > 0 "
                                 "(the rung criterion is "
                                 "dt_eta * sqrt(softening / |a|))")

    def clusters(self, dims: int) -> int:
        """Number of static clusters r for the given dimensionality."""
        return 1 << (dims * self.grid_level)
