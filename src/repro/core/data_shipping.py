"""Data-shipping baseline: a Warren-Salmon-style hashed octree.

The comparator of Section 4.2.  Instead of shipping particle coordinates
to the data, each processor *fetches* remote tree nodes on demand into a
software-cached hashed octree keyed by branch-style cell keys, then
computes locally ("the four children of node B are fetched to processor
0...  consistent with the owner-computes rule").

Every fetched internal node costs the full multipole series on the wire —
``multipole_series_bytes(k)``, the Theta(k^2) volume the paper contrasts
with function shipping's constant 3-floats-per-particle — and every fetch
is one hash-table access on both sides, making the addressing overhead of
Section 4.2.3 measurable.

The protocol is round-based and deterministic: traverse with the current
cache, collect cache misses, batch-fetch them (one request list per
owner, served from the local subtrees), insert, repeat until no misses.
Working-set behaviour (Section 4.2.4) is observable through the cache
size counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bh import compiled, kernels
from repro.bh.interaction_lists import DEFAULT_WORKING_SET_BYTES, \
    _accumulate
from repro.bh.mac import BarnesHutMAC
from repro.bh.multipole import MultipoleExpansion3D, irregular_terms
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import NO_CHILD
from repro.core.branch_nodes import branch_key
from repro.core.config import SchemeConfig
from repro.core.partition import Cell
from repro.core.tree_build import LocalSubtree
from repro.core.tree_merge import TopTree
from repro.machine.comm import Comm
from repro.machine.costmodel import multipole_series_bytes

#: flops per hash access (both requester and owner side).
FLOPS_PER_HASH_ACCESS = 6.0


@dataclass
class CachedNode:
    """One mirrored tree node in the hashed octree."""

    key: int                 # anchored cell key
    owner: int
    mass: float
    com: np.ndarray
    center: np.ndarray
    half: float
    count: int
    is_leaf: bool
    coeffs: np.ndarray | None = None
    # leaf payload (positions/masses) once fetched
    positions: np.ndarray | None = None
    masses: np.ndarray | None = None
    children_known: bool = False
    child_keys: list[int] = field(default_factory=list)


@dataclass
class DataShipStats:
    """Counters for the Section 4.2 comparison."""

    nodes_fetched: int = 0
    leaves_fetched: int = 0
    fetch_bytes: int = 0
    fetch_rounds: int = 0
    fetch_messages: int = 0
    hash_accesses: int = 0
    cache_nodes: int = 0


class HashedOctreeCache:
    """The requester-side mirror: cell key -> CachedNode."""

    def __init__(self):
        self._table: dict[int, CachedNode] = {}
        self.accesses = 0

    def get(self, key: int) -> CachedNode | None:
        self.accesses += 1
        return self._table.get(key)

    def put(self, node: CachedNode) -> None:
        self.accesses += 1
        existing = self._table.get(node.key)
        if existing is None:
            self._table[node.key] = node
            return
        # Merge: the summary fields (geometry, monopole, expansion) the
        # requester first saw must stay STABLE — traversal decisions are
        # memoized across fetch rounds and would be corrupted if the MAC
        # geometry shifted under them.  Only structural knowledge
        # (children, leaf payload) is added.
        existing.children_known = existing.children_known or \
            node.children_known
        if node.child_keys:
            existing.child_keys = node.child_keys
        if node.positions is not None:
            existing.positions = node.positions
            existing.masses = node.masses
            existing.is_leaf = True

    def __len__(self) -> int:
        return len(self._table)


def _node_cell(st: LocalSubtree, node: int, dims: int) -> Cell:
    """Global cell address of a local-tree node.

    Local trees are rooted at their owned cell, so their stored depths
    and path keys are *cell-relative*; composing with the cell's own
    address yields the globally unique cell.
    """
    local_depth = int(st.tree.depth[node])
    local_path = int(st.tree.path_key[node])
    return Cell(st.cell.depth + local_depth,
                (st.cell.path_key << (dims * local_depth)) | local_path)


def _export_node(st: LocalSubtree, node: int, dims: int,
                 degree: int, rank: int, root: Box) -> CachedNode:
    """Owner-side: package one local tree node for shipping."""
    tree = st.tree
    key = branch_key(_node_cell(st, node, dims), dims)
    is_leaf = tree.is_leaf(node)
    coeffs = None
    if degree > 0 and st.multipoles is not None and not is_leaf:
        coeffs = st.multipoles.coeffs[node]
    out = CachedNode(
        key=key, owner=rank, mass=float(tree.mass[node]),
        com=tree.com[node].copy(), center=tree.center[node].copy(),
        half=float(tree.half[node]), count=tree.count(node),
        is_leaf=is_leaf, coeffs=coeffs,
    )
    if is_leaf:
        idx = tree.particle_indices(node)
        out.positions = st.particles.positions[idx].copy()
        out.masses = st.particles.masses[idx].copy()
    else:
        out.children_known = True
        for c in tree.children[node]:
            if c != NO_CHILD:
                out.child_keys.append(
                    branch_key(_node_cell(st, int(c), dims), dims)
                )
    return out


def _node_wire_bytes(node: CachedNode, degree: int, dims: int) -> int:
    """Wire cost of one fetched node (Section 4.2.1 accounting)."""
    if node.is_leaf and node.positions is not None:
        # leaf: particle coordinates + masses
        return node.positions.shape[0] * 4 * (dims + 1) + 16
    return multipole_series_bytes(degree, dims)


class DataShippingEngine:
    """Force computation by fetching remote nodes (the baseline)."""

    def __init__(self, comm: Comm, config: SchemeConfig, top: TopTree,
                 subtrees: list[LocalSubtree], particles: ParticleSet):
        self.comm = comm
        self.config = config
        self.top = top
        self.subtrees = subtrees
        self.particles = particles
        self.mac = BarnesHutMAC(config.alpha)
        self.cache = HashedOctreeCache()
        self.stats = DataShipStats()
        self._dims = top.tree.dims
        self.kernel_tier = compiled.resolve_tier(config.kernel_tier)
        # owner-side directory: anchored key -> (subtree, node id)
        self._local_nodes: dict[int, tuple[LocalSubtree, int]] = {}
        for st in subtrees:
            tree = st.tree
            for node in range(tree.nnodes):
                k = branch_key(_node_cell(st, node, self._dims),
                               self._dims)
                self._local_nodes[k] = (st, node)
            # the published branch cell may sit above a chain-collapsed
            # subtree root; alias it so branch-keyed fetches resolve
            self._local_nodes.setdefault(st.key, (st, 0))

    # ---------------------------------------------------------- seeding
    def _seed_cache_from_top(self) -> None:
        """The replicated top tree seeds the mirror, branch leaves
        included (their children are not yet known)."""
        top = self.top.tree
        for node in range(top.nnodes):
            key = branch_key(
                Cell(int(top.depth[node]), int(top.path_key[node])),
                self._dims)
            cn = CachedNode(
                key=key,
                owner=int(top.remote_owner[node]),
                mass=float(top.mass[node]), com=top.com[node].copy(),
                center=top.center[node].copy(),
                half=float(top.half[node]),
                count=top.count(node), is_leaf=False,
                coeffs=(self.top.coeffs[node]
                        if self.top.coeffs is not None else None),
            )
            if not top.is_remote(node):
                cn.children_known = True
                for c in top.children[node]:
                    if c != NO_CHILD:
                        cn.child_keys.append(branch_key(
                            Cell(int(top.depth[c]), int(top.path_key[c])),
                            self._dims))
            self.cache.put(cn)

    # ------------------------------------------------------- evaluation
    @property
    def _working_set(self) -> int:
        ws = self.config.working_set_bytes
        return DEFAULT_WORKING_SET_BYTES if ws is None else ws

    def _eval_far(self, values: np.ndarray, targets: np.ndarray,
                  nodes: list[CachedNode],
                  idx_lists: list[np.ndarray]) -> None:
        """Fused far-field pass over the collected (node, targets) pairs.

        Monopole interactions (force mode, or nodes without expansions)
        run as one chunked point-mass kernel over flat per-pair arrays;
        expansion interactions run as one chunked irregular-terms
        contraction.  Same arithmetic per pair as the per-node kernels.
        """
        mode = self.config.mode
        soft2 = self.config.softening ** 2
        nt = values.shape[0]
        d = self._dims
        mono = [i for i, cn in enumerate(nodes)
                if mode == "force" or cn.coeffs is None]
        multi = [i for i, cn in enumerate(nodes)
                 if not (mode == "force" or cn.coeffs is None)]

        if mono:
            sizes = np.array([idx_lists[i].size for i in mono])
            tgt = np.concatenate([idx_lists[i] for i in mono])
            com = np.repeat(np.stack([nodes[i].com for i in mono]),
                            sizes, axis=0)
            mass = np.repeat(np.array([nodes[i].mass for i in mono]),
                             sizes)
            if self.kernel_tier == "numba":
                # Same compiled kernel as the interaction-list engine;
                # the pairs are already expanded, so node indirection is
                # the identity.
                compiled.cluster_pass(
                    values, targets, tgt,
                    np.arange(tgt.size, dtype=np.int64), com, mass,
                    self.config.softening, mode,
                    self.config.kernel_threads)
                mono = []
        if mono:
            chunk = max(1, self._working_set // (8 * (3 * d + 6)))
            for lo in range(0, tgt.size, chunk):
                hi = min(lo + chunk, tgt.size)
                tg = tgt[lo:hi]
                diff = targets[tg] - com[lo:hi]
                r2 = np.einsum("ij,ij->i", diff, diff) + soft2
                zero = r2 == 0.0
                np.sqrt(r2, out=r2)
                with np.errstate(divide="ignore"):
                    np.divide(1.0, r2, out=r2)              # inv_r
                r2[zero] = 0.0
                if mode == "potential":
                    contrib = r2
                    contrib *= mass[lo:hi]
                    contrib *= -kernels.G
                else:
                    inv_r3 = r2 * r2
                    inv_r3 *= r2
                    inv_r3 *= mass[lo:hi]
                    inv_r3 *= -kernels.G
                    contrib = inv_r3[:, None] * diff
                _accumulate(values, tg, contrib, nt)

        if multi:
            exp = MultipoleExpansion3D(self.config.degree)
            sizes = np.array([idx_lists[i].size for i in multi])
            tgt = np.concatenate([idx_lists[i] for i in multi])
            center = np.repeat(np.stack([nodes[i].center for i in multi]),
                               sizes, axis=0)
            coeffs = np.repeat(np.stack([nodes[i].coeffs for i in multi]),
                               sizes, axis=0)
            chunk = max(1, self._working_set
                        // (16 * exp.nterms * 4 + 8 * 3 * d))
            for lo in range(0, tgt.size, chunk):
                hi = min(lo + chunk, tgt.size)
                tg = tgt[lo:hi]
                rel = targets[tg] - center[lo:hi]
                I = irregular_terms(rel, exp.degree)
                contrib = -kernels.G * np.einsum(
                    "ij,ij->i", I, coeffs[lo:hi]).real
                _accumulate(values, tg, contrib, nt)

    def _eval_leaves(self, values: np.ndarray, targets: np.ndarray,
                     nodes: list[CachedNode],
                     idx_lists: list[np.ndarray]) -> None:
        """Fused particle-particle pass over fetched leaf payloads.

        Leaf visits are grouped by particle count so each group runs as
        one chunked (pairs, ns, d) kernel — the same shape as the
        interaction-list engine's P2P pass.
        """
        mode = self.config.mode
        soft2 = self.config.softening ** 2
        nt = values.shape[0]
        d = self._dims
        ns_arr = np.array([cn.positions.shape[0] for cn in nodes])
        for ns in np.unique(ns_arr):
            which = np.flatnonzero(ns_arr == ns)
            ns = int(ns)
            sp = np.stack([nodes[i].positions for i in which])
            sm = np.stack([nodes[i].masses for i in which])
            sizes = np.array([idx_lists[i].size for i in which])
            rows = np.repeat(np.arange(which.size), sizes)
            tgt = np.concatenate([idx_lists[i] for i in which])
            if self.kernel_tier == "numba":
                # Same compiled P2P kernel as the interaction-list
                # engine's leaf groups.
                compiled.p2p_group_pass(
                    values, targets[tgt], tgt, rows, sp, sm, False,
                    self.config.softening, -kernels.G, mode,
                    self.config.kernel_threads)
                continue
            row_bytes = 8 * (2 * ns * d + 4 * ns + 2 * d + 4)
            chunk = max(1, self._working_set // row_bytes)
            for lo in range(0, tgt.size, chunk):
                hi = min(lo + chunk, tgt.size)
                r, tg = rows[lo:hi], tgt[lo:hi]
                diff = targets[tg][:, None, :] - sp[r]      # (c, ns, d)
                r2 = np.einsum("ijk,ijk->ij", diff, diff) + soft2
                zero = r2 == 0.0
                np.sqrt(r2, out=r2)
                with np.errstate(divide="ignore"):
                    np.divide(1.0, r2, out=r2)              # inv_r
                r2[zero] = 0.0
                if mode == "potential":
                    contrib = np.einsum("ij,ij->i", r2, sm[r])
                else:
                    w = r2 * r2
                    w *= r2
                    w *= sm[r]
                    contrib = np.einsum("ij,ijk->ik", w, diff)
                contrib *= -kernels.G
                _accumulate(values, tg, contrib, nt)

    def _traverse_round(self, values: np.ndarray,
                        done_pairs: set[tuple[int, int]],
                        tidx: np.ndarray | None = None
                        ) -> dict[int, set[int]]:
        """One traversal pass against the current cache.

        Returns cache misses: owner -> keys to fetch.  ``done_pairs``
        memoizes (key, target-block) work already accumulated in earlier
        rounds so contributions are never double counted; traversal
        restarts from the root each round but skips finished branches.

        The walk itself only *collects* interactions; the kernels run
        afterwards as fused, chunked passes (:meth:`_eval_far`,
        :meth:`_eval_leaves`), mirroring the two-phase interaction-list
        engine of :mod:`repro.bh.interaction_lists`.
        """
        targets = self.particles.positions
        misses: dict[int, set[int]] = {}
        root_key = branch_key(Cell(0, 0), self._dims)
        seed = (np.arange(targets.shape[0]) if tidx is None
                else np.asarray(tidx, dtype=np.int64))
        stack: list[tuple[int, np.ndarray, int]] = [
            (root_key, seed, self.comm.rank)
        ]
        degree = self.config.degree
        flops = 0.0
        far_nodes: list[CachedNode] = []
        far_idx: list[np.ndarray] = []
        leaf_nodes: list[CachedNode] = []
        leaf_idx: list[np.ndarray] = []
        while stack:
            key, idx, owner_hint = stack.pop()
            cn = self.cache.get(key)
            self.stats.hash_accesses += 1
            if cn is None:
                # A parent listed this child but it has not been fetched
                # yet: ask its owner (same as the parent's) for it.
                misses.setdefault(owner_hint, set()).add(key)
                continue
            if cn.count == 0:
                continue
            # MAC on the (stable) cached summary.  Nodes whose particle
            # payload arrived with the first fetch skip the MAC: they are
            # original leaves and interact exactly.
            if cn.positions is not None and not cn.child_keys:
                far = idx[:0]
                near = idx
            else:
                diff = targets[idx] - cn.com
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                inside = np.all(np.abs(targets[idx] - cn.center) < cn.half,
                                axis=1)
                ok = (2.0 * cn.half < self.mac.alpha * dist) & ~inside
                flops += 14.0 * idx.size
                far = idx[ok]
                near = idx[~ok]
            if far.size:
                pair_key = (key, int(far[0]))
                if pair_key not in done_pairs:
                    done_pairs.add(pair_key)
                    far_nodes.append(cn)
                    far_idx.append(far)
                    flops += (13.0 + 16.0 * max(degree, 1) ** 2) * far.size
            if near.size == 0:
                continue
            if cn.positions is not None:
                # exact interaction with the leaf payload
                leaf_key = (key, -1 - int(near[0]))
                if leaf_key not in done_pairs:
                    done_pairs.add(leaf_key)
                    leaf_nodes.append(cn)
                    leaf_idx.append(near)
                    flops += 29.0 * near.size * cn.positions.shape[0]
                continue
            if not cn.children_known:
                misses.setdefault(cn.owner, set()).add(key)
                continue
            for ck in cn.child_keys:
                stack.append((ck, near, cn.owner))
        if far_nodes:
            self._eval_far(values, targets, far_nodes, far_idx)
        if leaf_nodes:
            self._eval_leaves(values, targets, leaf_nodes, leaf_idx)
        self.comm.compute(flops)
        return misses

    # ----------------------------------------------------------- fetching
    def _serve_fetches(self, keys: list[int]) -> list[CachedNode]:
        out = []
        for key in keys:
            self.comm.compute(FLOPS_PER_HASH_ACCESS)
            st, node = self._local_nodes[key]
            tree = st.tree
            # ship the requested node's children (the paper fetches the
            # children of the refused node)
            exported = _export_node(st, node, self._dims,
                                    self.config.degree, self.comm.rank,
                                    self.top.tree.root_box)
            # Chain collapsing can root the subtree deeper than the cell
            # the requester knows; alias the export to the requested key
            # so the requester's mirror links stay consistent.
            exported.key = key
            out.append(exported)
            for c in tree.children[node]:
                if c != NO_CHILD:
                    out.append(_export_node(st, int(c), self._dims,
                                            self.config.degree,
                                            self.comm.rank,
                                            self.top.tree.root_box))
        return out

    def _fetch_round(self, misses: dict[int, set[int]]) -> None:
        comm = self.comm
        degree, dims = self.config.degree, self._dims
        requests: list[list[int] | None] = [None] * comm.size
        for owner, keys in misses.items():
            requests[owner] = sorted(keys)
        incoming = comm.alltoall(requests)
        replies: list[list[CachedNode] | None] = [None] * comm.size
        for src, keys in enumerate(incoming):
            if keys:
                replies[src] = self._serve_fetches(keys)
        # charge the reply payloads truthfully
        reply_sizes = [
            sum(_node_wire_bytes(n, degree, dims) for n in r) if r else 0
            for r in replies
        ]
        fetched_lists = comm.alltoall(replies)
        for lst in fetched_lists:
            if not lst:
                continue
            for cn in lst:
                self.stats.nodes_fetched += 1
                if cn.is_leaf:
                    self.stats.leaves_fetched += 1
                self.stats.fetch_bytes += _node_wire_bytes(cn, degree, dims)
                self.cache.put(cn)
        self.stats.fetch_messages += sum(1 for r in requests if r)

    # --------------------------------------------------------------- run
    def run(self, targets_idx: np.ndarray | None = None) -> np.ndarray:
        """Compute potentials/forces for all local particles, or — with
        ``targets_idx`` — for just that active subset (full-size output,
        untouched rows stay zero).  The fetch rounds are collective, so
        every rank calls ``run`` even with an empty subset."""
        n = self.particles.n
        d = self._dims
        values = (np.zeros(n) if self.config.mode == "potential"
                  else np.zeros((n, d)))
        has_targets = (n if targets_idx is None
                       else np.asarray(targets_idx).size)
        with self.comm.phase("force computation"):
            # Zero-duration marker span: records the active kernel tier
            # in the trace without advancing any clock (same marker as
            # the function-shipping engine).
            with self.comm.phase(f"kernels:{self.kernel_tier}"):
                pass
            self._seed_cache_from_top()
            done_pairs: set[tuple[int, int]] = set()
            while True:
                misses = (self._traverse_round(values, done_pairs,
                                               targets_idx)
                          if has_targets else {})
                any_miss = self.comm.allreduce(
                    bool(misses), lambda a, b: a or b)
                if not any_miss:
                    break
                self.stats.fetch_rounds += 1
                self._fetch_round(misses)
        self.stats.cache_nodes = len(self.cache)
        self.stats.hash_accesses += self.cache.accesses
        self.comm.metrics.counter(
            f"force.kernel_tier.{self.kernel_tier}").inc()
        return values
