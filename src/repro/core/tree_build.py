"""Distributed local-tree construction (Section 3.1).

Each virtual processor owns a set of cells (grid clusters for SPSA/SPDA,
canonical Morton-range cover cells for DPDA) and builds one subtree per
non-empty owned cell, rooted exactly at the cell.  Rooting at the cell is
the paper's "tree adjustment": a cell with fewer than ``s`` particles
still gets a tree node at the cell's own level ("we artificially force
the particles down to the level at which the tree node corresponding to
the subtree actually exists"), so every branch node is a well-defined
cell of the global decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh.morton import morton_keys
from repro.bh.multipole import TreeMultipoles
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import Tree, build_tree
from repro.core.branch_nodes import BranchInfo, branch_key
from repro.core.config import SchemeConfig
from repro.core.partition import Cell


@dataclass
class LocalSubtree:
    """One owned cell with its tree and the local particles inside it."""

    cell: Cell
    key: int
    particles: ParticleSet
    local_idx: np.ndarray          # positions of these particles in the
    tree: Tree | None = None       # rank-local particle arrays
    multipoles: TreeMultipoles | None = None

    @property
    def count(self) -> int:
        return self.particles.n


def assign_to_cells(positions: np.ndarray, cells: list[Cell],
                    root: Box, bits: int,
                    keys: np.ndarray | None = None) -> np.ndarray:
    """Index (into ``cells``) of the owning cell of every position.

    Cells must be disjoint; a position in none of them gets -1.
    ``keys`` short-circuits quantization with precomputed depth-``bits``
    Morton keys of the positions (one per row, relative to ``root``).
    """
    if not cells:
        return np.full(np.atleast_2d(positions).shape[0], -1, dtype=np.int64)
    dims = root.dims
    if keys is None:
        keys = morton_keys(positions, root.lo, root.side, bits)
    ranges = np.array([c.key_range(bits, dims) for c in cells],
                      dtype=np.int64)
    order = np.argsort(ranges[:, 0])
    los = ranges[order, 0]
    his = ranges[order, 1]
    if np.any(los[1:] < his[:-1]):
        raise ValueError("owned cells overlap")
    slot = np.searchsorted(los, keys, side="right") - 1
    ok = (slot >= 0) & (keys < his[np.clip(slot, 0, None)])
    out = np.where(ok, order[np.clip(slot, 0, None)], -1)
    return out.astype(np.int64)


def build_local_trees(particles: ParticleSet, cells: list[Cell],
                      root: Box, config: SchemeConfig, bits: int,
                      keys: np.ndarray | None = None) -> list[LocalSubtree]:
    """Build one subtree per owned cell over the rank's particles.

    Returns a subtree record per *non-empty* cell (empty cells carry no
    mass and are simply absent from the branch exchange, like the empty
    subdomains the paper assigns "to either of the processors").

    Positions are quantized against the *global* root exactly once (or
    not at all when the caller hands in the rank's cached depth-``bits``
    ``keys``); each subtree build receives its particles' keys as a bit
    slice of the global keys — the low ``dims * (bits - cell.depth)``
    bits — instead of re-quantizing against the cell's rounded box, so
    cell ownership and in-cell refinement always follow one consistent
    grid.

    Raises if any particle falls outside every owned cell — that means
    the particle exchange that should precede construction was wrong.
    """
    dims = root.dims
    if keys is None:
        keys = morton_keys(particles.positions, root.lo, root.side, bits)
    slots = assign_to_cells(particles.positions, cells, root, bits,
                            keys=keys)
    if particles.n and np.any(slots < 0):
        raise ValueError(
            f"{int((slots < 0).sum())} particles are outside all owned "
            f"cells — redistribute before building trees"
        )
    out: list[LocalSubtree] = []
    for i, cell in enumerate(cells):
        idx = np.flatnonzero(slots == i)
        if idx.size == 0:
            continue
        sub = particles.subset(idx)
        depth_budget = (config.max_depth if config.max_depth is not None
                        else bits) - cell.depth
        budget = max(1, depth_budget)
        rem = bits - cell.depth
        sub_keys = None
        if 0 < budget <= rem:
            # The cell's particles share the top dims*cell.depth key
            # bits; the remainder is the subtree's own Morton key,
            # truncated to its depth budget.  Exact: quantization at b
            # bits right-shifted to g < b bits equals quantization at g
            # bits (both floor the same power-of-two scaling).
            mask = np.int64((1 << (dims * rem)) - 1)
            sub_keys = (keys[idx] & mask) >> (dims * (rem - budget))
        tree = build_tree(
            sub, box=cell.box(root),
            leaf_capacity=config.leaf_capacity,
            max_depth=budget,
            keys=sub_keys,
        )
        multipoles = None
        if config.degree > 0:
            multipoles = TreeMultipoles(tree, sub, config.degree)
        out.append(LocalSubtree(cell=cell, key=branch_key(cell, dims),
                                particles=sub, local_idx=idx, tree=tree,
                                multipoles=multipoles))
    return out


def local_branch_infos(subtrees: list[LocalSubtree], rank: int,
                       root: Box, degree: int) -> list[BranchInfo]:
    """Branch summaries this rank publishes in the branch exchange.

    Multipole coefficients are shifted (M2M) from the subtree root's
    actual cell to the *owned cell's* center, so that receivers can merge
    them without knowing how deep chain collapsing pushed the root.
    """
    dims = root.dims
    out = []
    for st in subtrees:
        assert st.tree is not None
        cell_center = st.cell.box(root).center
        coeffs = None
        if st.multipoles is not None:
            shift = st.tree.center[0] - cell_center
            coeffs = st.multipoles.expansion.m2m(st.multipoles.coeffs[0],
                                                 shift)
        out.append(BranchInfo(
            key=st.key, owner=rank, cell=st.cell, count=st.count,
            mass=float(st.tree.mass[0]), com=st.tree.com[0].copy(),
            coeffs=coeffs,
            load=float(st.tree.interactions.sum()),
        ))
    return out


def tree_build_flops(n_local: int, depth: int) -> float:
    """Virtual cost of inserting n particles into a local tree: a few
    flops per particle per level (coordinate compares + key update)."""
    return 10.0 * n_local * max(depth, 1)
