"""Coordinated checkpoint/restart for the parallel simulation.

Recovery model: every rank snapshots its cross-step state (particles,
measured loads, key boundaries, virtual clock, communication accounting)
into a :class:`CheckpointStore` at step boundaries.  When a rank crashes
(:class:`~repro.machine.faults.RankCrashedError`) or a worker process is
lost (:class:`~repro.runtime.process_engine.WorkerLostError`), the host
rolls *every* rank back to the last step boundary all ranks completed —
a coordinated global rollback, the textbook recovery for
message-passing programs whose steps are separated by collective
operations — replaces the dead node, and re-runs from there.  Because
the machine is deterministic, the re-executed steps reproduce the
fault-free trajectory bitwise.

Snapshots are deep copies taken at a quiescent point (between steps, no
messages in flight), so no channel state needs saving.

Two stores implement the same API:

* :class:`CheckpointStore` — in-memory, for the thread-per-rank virtual
  backend (ranks share the host's address space).
* :class:`DiskCheckpointStore` — durable, for the process backend (and
  for ``--resume`` across host restarts).  One file per ``(rank,
  step)``, written atomically (temp file + fsync + rename) with a
  versioned header and a content digest, so a torn or bit-rotted file
  is detected on load instead of unpickling garbage; ``keep``-based
  pruning bounds the directory to the newest levels per rank.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import tempfile
import threading
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any

import numpy as np

from repro.bh.particles import ParticleSet

#: On-disk checkpoint format version.  Bumped whenever the pickled
#: payload or the header layout changes incompatibly; files written by
#: a *newer* version are rejected with :class:`CheckpointVersionError`.
DISK_FORMAT_VERSION = 1

#: File magic of one checkpoint file (header = magic + u16 version +
#: 16-byte blake2b digest of the payload, then the pickled payload).
CHECKPOINT_MAGIC = b"RPCKPT"

_HEADER = struct.Struct(f"<{len(CHECKPOINT_MAGIC)}sH16s")

_FILE_RE = re.compile(r"^r(\d{4})\.s(\d{8})\.ckpt$")

META_NAME = "meta.json"


class CheckpointError(RuntimeError):
    """Base class of durable-checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed its magic or content-digest check."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint file was written by an incompatible format version."""


def _copy_array(a: np.ndarray | None) -> np.ndarray | None:
    return None if a is None else np.array(a, copy=True)


def _copy_particles(ps: ParticleSet) -> ParticleSet:
    return ps.subset(np.arange(ps.n))


@dataclass
class RankCheckpoint:
    """One rank's cross-step state at a step boundary.

    ``step`` is the index of the *next* step to execute on restore; all
    ``results`` entries cover steps ``0 .. step-1``.  ``comm_stats`` and
    ``metrics`` carry the rank's communication accounting so a
    recovered run reports totals bitwise identical to an uninterrupted
    one (they are ``None`` in pre-recovery-era checkpoints).
    """

    rank: int
    step: int
    particles: ParticleSet
    cluster_owners: np.ndarray | None
    cluster_load: np.ndarray | None
    key_boundaries: np.ndarray | None
    my_particle_loads: np.ndarray | None
    last_values: np.ndarray | None
    clock_now: float
    phase_seconds: dict[str, float]
    results: list[Any] = field(default_factory=list)
    comm_stats: Any = None      # CommStats at the boundary
    metrics: Any = None         # MetricsRegistry at the boundary
    #: Comm sequence counters at the boundary: collective tag counter
    #: and reliable-layer transmission id.  Restored so a recovered
    #: run's tag stream continues where the checkpoint left off and
    #: per-tag byte accounting matches an uninterrupted run exactly.
    coll_seq: int = 0
    xmit_seq: int = 0
    #: Trace events recorded up to the boundary — a ``(phases, sends,
    #: recvs)`` tuple of this rank's virtual-tracer lists, or ``None``
    #: when the run was untraced.  Restored so a recovered traced run's
    #: virtual tracks are identical to an uninterrupted run's (without
    #: it, a respawned worker's fresh tracer would only cover the
    #: post-rollback steps).
    trace_events: Any = None
    #: Next message-seq value of the worker's SeqCounter at the
    #: boundary (``None`` on the shared-counter virtual backend).
    #: Restored so re-executed steps number messages exactly as the
    #: uninterrupted run did — otherwise restored pre-boundary trace
    #: events and re-executed events would collide on ``seq``.
    seq_next: int | None = None
    #: Block-timestep bin state (``timestep="block"``): per-particle
    #: rungs and the stored accelerations that source opening
    #: half-kicks.  Restored verbatim so a recovered block-timestep run
    #: re-executes the exact same substep schedule and kicks — bitwise
    #: identical to the uninterrupted trajectory.  ``None`` on
    #: fixed-timestep runs and in pre-block-timestep checkpoints.
    rungs: Any = None
    accel: Any = None


class CheckpointStore:
    """Thread-safe host-side store of per-(step, rank) checkpoints.

    Ranks write concurrently from their virtual-machine threads; the host
    reads after the run (or after a crash) to build the restart state.
    Only the newest ``keep`` step levels are retained per rank.
    """

    def __init__(self, size: int, keep: int = 2):
        if size < 1:
            raise ValueError("store needs at least one rank")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint level")
        self.size = size
        self.keep = keep
        self._lock = threading.Lock()
        self._by_rank: dict[int, dict[int, RankCheckpoint]] = {
            r: {} for r in range(size)
        }

    def save(self, ckpt: RankCheckpoint) -> None:
        with self._lock:
            levels = self._by_rank[ckpt.rank]
            levels[ckpt.step] = ckpt
            while len(levels) > self.keep:
                del levels[min(levels)]

    def steps_for(self, rank: int) -> list[int]:
        with self._lock:
            return sorted(self._by_rank[rank])

    def latest_common_step(self) -> int | None:
        """Newest step boundary every rank has a checkpoint for."""
        common: set[int] | None = None
        for r in range(self.size):
            steps = set(self.steps_for(r))
            common = steps if common is None else common & steps
        return max(common) if common else None

    def get(self, rank: int, step: int) -> RankCheckpoint:
        with self._lock:
            return self._by_rank[rank][step]

    def discard_step(self, step: int) -> None:
        """Drop one step level for every rank (e.g. a corrupt level, so
        recovery can fall back to the previous common boundary)."""
        with self._lock:
            for levels in self._by_rank.values():
                levels.pop(step, None)


class DiskCheckpointStore(CheckpointStore):
    """Durable checkpoint store: one versioned file per (rank, step).

    Write protocol (crash-safe on POSIX): pickle the checkpoint, frame
    it with ``CHECKPOINT_MAGIC + format version + blake2b digest``,
    write to a temp file in the same directory, ``fsync``, then
    atomically ``rename`` into place (and fsync the directory), so a
    reader never observes a half-written checkpoint.  Each rank prunes
    only its own files, so concurrent rank *processes* writing into one
    directory need no cross-process lock.

    The in-memory :class:`CheckpointStore` API is preserved: ``save``
    also caches in memory (reads in the writing process stay cheap),
    while ``steps_for``/``latest_common_step``/``get`` treat the
    *directory* as the source of truth — checkpoints written by other
    processes (the rank workers of the process backend) are visible to
    the host without any message traffic.
    """

    def __init__(self, root: str | os.PathLike, size: int, keep: int = 2,
                 fsync: bool = True):
        super().__init__(size, keep)
        self.root = os.fspath(root)
        self.fsync = bool(fsync)
        os.makedirs(self.root, exist_ok=True)
        self._init_meta()

    # ------------------------------------------------------------- layout
    def _path(self, rank: int, step: int) -> str:
        return os.path.join(self.root, f"r{rank:04d}.s{step:08d}.ckpt")

    def _init_meta(self) -> None:
        path = os.path.join(self.root, META_NAME)
        if os.path.exists(path):
            with open(path) as fh:
                meta = json.load(fh)
            if meta.get("format_version", 0) > DISK_FORMAT_VERSION:
                raise CheckpointVersionError(
                    f"checkpoint directory {self.root!r} was written by "
                    f"format version {meta['format_version']}; this build "
                    f"reads up to version {DISK_FORMAT_VERSION} — upgrade "
                    f"repro to resume it"
                )
            if meta.get("size") != self.size:
                raise ValueError(
                    f"checkpoint directory {self.root!r} holds a "
                    f"{meta.get('size')}-rank run; cannot open it for "
                    f"{self.size} ranks"
                )
            return
        meta = {"format_version": DISK_FORMAT_VERSION, "size": self.size,
                "keep": self.keep}
        self._atomic_write(path, json.dumps(meta, indent=2).encode())

    def _atomic_write(self, final_path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, final_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.fsync:
            # Persist the rename itself: fsync the directory entry.
            try:
                dfd = os.open(self.root, os.O_RDONLY)
            except OSError:  # pragma: no cover - exotic filesystems
                return
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)

    # ---------------------------------------------------------------- API
    def save(self, ckpt: RankCheckpoint) -> None:
        payload = pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
        digest = blake2b(payload, digest_size=16).digest()
        header = _HEADER.pack(CHECKPOINT_MAGIC, DISK_FORMAT_VERSION, digest)
        self._atomic_write(self._path(ckpt.rank, ckpt.step),
                           header + payload)
        super().save(ckpt)          # memory cache (+ memory pruning)
        # Disk pruning mirrors the memory policy, per writing rank.
        steps = self._disk_steps(ckpt.rank)
        while len(steps) > self.keep:
            try:
                os.unlink(self._path(ckpt.rank, steps.pop(0)))
            except FileNotFoundError:  # pragma: no cover - racing prune
                pass

    def _disk_steps(self, rank: int) -> list[int]:
        steps = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            m = _FILE_RE.match(name)
            if m and int(m.group(1)) == rank:
                steps.append(int(m.group(2)))
        return sorted(steps)

    def steps_for(self, rank: int) -> list[int]:
        return self._disk_steps(rank)

    def get(self, rank: int, step: int) -> RankCheckpoint:
        with self._lock:
            cached = self._by_rank[rank].get(step)
        if cached is not None:
            return cached
        return self._load(self._path(rank, step))

    def _load(self, path: str) -> RankCheckpoint:
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            raise KeyError(path) from None
        if len(blob) < _HEADER.size:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} is truncated "
                f"({len(blob)} bytes < {_HEADER.size}-byte header)"
            )
        magic, version, digest = _HEADER.unpack(blob[:_HEADER.size])
        if magic != CHECKPOINT_MAGIC:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} has bad magic {magic!r} — not a "
                f"repro checkpoint file"
            )
        if version > DISK_FORMAT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint {path!r} is format version {version}; this "
                f"build reads up to version {DISK_FORMAT_VERSION} — "
                f"upgrade repro to read it"
            )
        payload = blob[_HEADER.size:]
        actual = blake2b(payload, digest_size=16).digest()
        if actual != digest:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} failed its content-digest check "
                f"(stored {digest.hex()}, computed {actual.hex()}) — "
                f"file is corrupt"
            )
        return pickle.loads(payload)

    def discard_step(self, step: int) -> None:
        super().discard_step(step)
        for rank in range(self.size):
            try:
                os.unlink(self._path(rank, step))
            except FileNotFoundError:
                pass

    # -------------------------------------------------------- transport
    # The process backend ships the store to rank workers (by fork
    # inheritance or pickle); only the directory coordinates matter —
    # locks and memory caches are process-local.
    def __getstate__(self) -> dict[str, Any]:
        return {"root": self.root, "size": self.size, "keep": self.keep,
                "fsync": self.fsync}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self.size = state["size"]
        self.keep = state["keep"]
        self.fsync = state["fsync"]
        self._lock = threading.Lock()
        self._by_rank = {r: {} for r in range(self.size)}
