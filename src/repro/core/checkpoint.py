"""Coordinated checkpoint/restart for the parallel simulation.

Recovery model: every rank snapshots its cross-step state (particles,
measured loads, key boundaries, virtual clock) into a host-side
:class:`CheckpointStore` at step boundaries.  When a rank crashes
(:class:`~repro.machine.faults.RankCrashedError`), the host rolls *every*
rank back to the last step boundary all ranks completed — a coordinated
global rollback, the textbook recovery for message-passing programs whose
steps are separated by collective operations — replaces the dead node,
and re-runs from there.  Because the machine is deterministic, the
re-executed steps reproduce the fault-free trajectory bitwise.

Snapshots are deep copies taken at a quiescent point (between steps, no
messages in flight), so no channel state needs saving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bh.particles import ParticleSet


def _copy_array(a: np.ndarray | None) -> np.ndarray | None:
    return None if a is None else np.array(a, copy=True)


def _copy_particles(ps: ParticleSet) -> ParticleSet:
    return ps.subset(np.arange(ps.n))


@dataclass
class RankCheckpoint:
    """One rank's cross-step state at a step boundary.

    ``step`` is the index of the *next* step to execute on restore; all
    ``results`` entries cover steps ``0 .. step-1``.
    """

    rank: int
    step: int
    particles: ParticleSet
    cluster_owners: np.ndarray | None
    cluster_load: np.ndarray | None
    key_boundaries: np.ndarray | None
    my_particle_loads: np.ndarray | None
    last_values: np.ndarray | None
    clock_now: float
    phase_seconds: dict[str, float]
    results: list[Any] = field(default_factory=list)


class CheckpointStore:
    """Thread-safe host-side store of per-(step, rank) checkpoints.

    Ranks write concurrently from their virtual-machine threads; the host
    reads after the run (or after a crash) to build the restart state.
    Only the newest ``keep`` step levels are retained per rank.
    """

    def __init__(self, size: int, keep: int = 2):
        if size < 1:
            raise ValueError("store needs at least one rank")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint level")
        self.size = size
        self.keep = keep
        self._lock = threading.Lock()
        self._by_rank: dict[int, dict[int, RankCheckpoint]] = {
            r: {} for r in range(size)
        }

    def save(self, ckpt: RankCheckpoint) -> None:
        with self._lock:
            levels = self._by_rank[ckpt.rank]
            levels[ckpt.step] = ckpt
            while len(levels) > self.keep:
                del levels[min(levels)]

    def steps_for(self, rank: int) -> list[int]:
        with self._lock:
            return sorted(self._by_rank[rank])

    def latest_common_step(self) -> int | None:
        """Newest step boundary every rank has a checkpoint for."""
        with self._lock:
            common: set[int] | None = None
            for levels in self._by_rank.values():
                steps = set(levels)
                common = steps if common is None else common & steps
            return max(common) if common else None

    def get(self, rank: int, step: int) -> RankCheckpoint:
        with self._lock:
            return self._by_rank[rank][step]
