"""SPSA: static Gray-code modular assignment of clusters to processors.

Paper, Section 3.3.1: "For a two-dimensional simulation running on a
d-dimensional hypercube, subdomain (i, j) is assigned to processor
(gray(i, d/2), gray(j, d/2))" — i.e. the processor label is the
concatenation of per-axis Gray codes of the cluster coordinates taken
modulo the per-axis processor-grid extent.  Adjacent subdomains land on
hypercube neighbours, and the scatter (modular) structure spreads dense
regions over many processors.
"""

from __future__ import annotations

import numpy as np

from repro.machine.topology import gray_code, is_power_of_two, log2_exact
from repro.core.partition import cluster_coords


def axis_split(p: int, dims: int) -> list[int]:
    """Split hypercube dimension ``log2 p`` across spatial axes as evenly
    as possible: the per-axis processor-grid extents (powers of two)."""
    if not is_power_of_two(p):
        raise ValueError(
            f"SPSA's Gray-code mapping needs a power-of-two processor "
            f"count, got {p}"
        )
    d = log2_exact(p)
    base, extra = divmod(d, dims)
    return [1 << (base + (1 if a < extra else 0)) for a in range(dims)]


def spsa_assignment(grid_level: int, p: int, dims: int) -> np.ndarray:
    """Owner rank of every cluster: array of length r = 2^(dims*level).

    Index ``k`` of the result is the cluster *path key* (Morton number of
    the cluster); the value is the owning processor.
    """
    if grid_level < 0:
        raise ValueError("grid_level must be >= 0")
    r = 1 << (dims * grid_level)
    splits = axis_split(p, dims)
    per_axis = 1 << grid_level
    for extent in splits:
        if extent > per_axis:
            raise ValueError(
                f"cluster grid {per_axis}^{dims} too coarse for {p} "
                f"processors: need at least one cluster column per "
                f"processor column (extent {extent})"
            )
    coords = cluster_coords(np.arange(r, dtype=np.int64), dims)
    owners = np.zeros(r, dtype=np.int64)
    shift = 0
    # Build the label from the last axis up so axis 0's bits are the most
    # significant — an arbitrary but fixed convention.
    for axis in range(dims - 1, -1, -1):
        extent = splits[axis]
        g = np.array([gray_code(int(c) % extent)
                      for c in coords[:, axis]], dtype=np.int64)
        owners |= g << shift
        shift += log2_exact(extent)
    return owners


def clusters_of_rank(owners: np.ndarray, rank: int) -> np.ndarray:
    """Cluster path keys owned by ``rank`` (sorted, i.e. Morton order)."""
    return np.flatnonzero(owners == rank).astype(np.int64)
