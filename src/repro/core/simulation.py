"""The parallel Barnes-Hut simulation orchestrator.

``ParallelBarnesHut`` runs the paper's full per-time-step pipeline on the
virtual machine:

    decompose / balance -> exchange particles -> build local trees ->
    exchange branch nodes, merge top tree -> function-shipping force
    computation -> advance particles

with every phase attributed to the virtual clock under the paper's phase
names (Table 3): "local tree construction", "tree merging", "all-to-all
broadcast", "force computation", "load balancing".

Scheme-specific decomposition:

* SPSA — static Gray-code assignment of grid clusters; the particle
  placement is charged to setup, never to load balancing ("the SPSA
  scheme spends no time in balancing load since load balance is
  implicit").
* SPDA — grid clusters re-assigned each step along the Morton order by
  the loads measured in the previous step.
* DPDA — Costzones: global load boundaries located in the
  interaction-counting trees; Morton key-space ranges per processor,
  turned into branch cells by canonical cover; one all-to-all
  personalized communication moves the particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh import morton as _morton
from repro.bh.morton import morton_keys
from repro.bh.particles import Box, ParticleSet
from repro.core.assignment import clusters_of_rank, spsa_assignment
from repro.core.checkpoint import (
    CheckpointStore,
    RankCheckpoint,
    _copy_array,
    _copy_particles,
)
from repro.core.config import SchemeConfig
from repro.core.function_shipping import ForceResult, FunctionShippingEngine
from repro.core.load_model import cluster_loads, particle_loads
from repro.core.morton_assign import balance_clusters
from repro.core.partition import Cell, cover_cells
from repro.core.tree_build import build_local_trees, local_branch_infos, \
    tree_build_flops
from repro.core.tree_merge import merge_broadcast, merge_nonreplicated
from repro.machine.clock import PhaseTimings
from repro.machine.comm import Comm
from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine, RunReport
from repro.machine.faults import FaultPlan, RankCrashedError, ReliableConfig
from repro.machine.metrics import MetricsRegistry
from repro.machine.profiles import NCUBE2
from repro.machine.trace import Trace, Tracer

PHASE_SETUP = "setup"
PHASE_BALANCE = "load balancing"
PHASE_TREE = "local tree construction"
PHASE_ADVANCE = "particle advance"

#: flops charged per particle for balance bookkeeping / binning.
BALANCE_FLOPS_PER_PARTICLE = 5.0

#: Carry Morton keys across phases and through the balancing exchange
#: instead of re-quantizing positions in every phase that needs them.
#: Keys are pure derived data (bitwise recomputable from positions and
#: the fixed root grid), so flipping this changes no simulation output —
#: it exists as a debugging escape hatch and for the equivalence test.
CARRY_MORTON_KEYS = True


@dataclass
class StepResult:
    """Per-rank record of one time-step (returned to the host)."""

    n_local: int
    force: ForceResult
    moved_in: int = 0      # net particles gained in the balancing exchange
    virtual_seconds: float = 0.0   # this rank's clock time for the step


@dataclass
class SimulationResult:
    """Host-side aggregate of a parallel run."""

    run: RunReport
    config: SchemeConfig
    values: np.ndarray         # final-step potentials (n,) or forces (n, d)
    positions: np.ndarray      # final particle positions, original order
    velocities: np.ndarray
    steps: list[list[StepResult]]   # [step][rank]
    recoveries: int = 0        # crash-recovery rollbacks performed

    @property
    def parallel_time(self) -> float:
        return self.run.parallel_time

    @property
    def trace(self) -> Trace | None:
        """Event trace of the (final) run, when traced."""
        return self.run.trace

    def metrics_summary(self) -> MetricsRegistry:
        """Machine-wide merged metrics registry of the (final) run."""
        return self.run.metrics_summary()

    def fault_summary(self) -> dict[str, int]:
        """Injected-fault / recovery counters of the (final) run."""
        return self.run.fault_summary()

    def phase_breakdown(self) -> dict[str, float]:
        return self.run.phase_max()

    def force_computations(self) -> int:
        """Total interactions F, the quantity the paper annotates its
        problem instances with (cluster + particle-particle)."""
        return sum(
            sr.force.cluster_interactions + sr.force.p2p_interactions
            for step in self.steps for sr in step
        )

    def total_flops(self, degree: int) -> float:
        from repro.analysis.flops import traversal_flops
        return sum(
            traversal_flops(sr.force.mac_tests,
                            sr.force.cluster_interactions,
                            sr.force.p2p_interactions, degree)
            for step in self.steps for sr in step
        )

    def walk_reuse(self) -> tuple[int, int]:
        """Interaction-list traffic: total (walks_built, walks_reused)
        across all steps and ranks.  Reused walks are evaluations served
        from cached interaction lists without re-walking the tree."""
        built = sum(sr.force.walks_built
                    for step in self.steps for sr in step)
        reused = sum(sr.force.walks_reused
                     for step in self.steps for sr in step)
        return built, reused

    def load_imbalance(self) -> float:
        return self.run.load_imbalance("force computation")

    def step_time(self, step: int) -> float:
        """Virtual time of one step: max over ranks (the paper times a
        single iteration after a few warm-up steps)."""
        return max(sr.virtual_seconds for sr in self.steps[step])

    @property
    def last_step_time(self) -> float:
        return self.step_time(len(self.steps) - 1)


class _Shard:
    """One outgoing particle chunk plus its precomputed Morton keys.

    The keys ride along so the receiver can skip re-quantization; they
    are pure derived data — bitwise recomputable from the chunk's
    positions against the fixed root grid — so ``nbytes`` charges only
    the particle payload and the virtual communication cost of the
    exchange is identical to shipping bare :class:`ParticleSet` chunks.
    """

    __slots__ = ("particles", "keys")

    def __init__(self, particles: ParticleSet, keys: np.ndarray):
        self.particles = particles
        self.keys = keys

    @property
    def nbytes(self) -> int:
        return self.particles.nbytes


def _exchange(comm: Comm, particles: ParticleSet, owners: np.ndarray,
              keys: np.ndarray | None = None
              ) -> tuple[ParticleSet, np.ndarray | None]:
    """All-to-all personalized particle movement to new owners.

    With ``keys`` given, every chunk carries its particles' Morton keys
    and the matching concatenated key array is returned (else None).
    """
    outgoing = []
    shipped = 0
    for dst in range(comm.size):
        idx = np.flatnonzero(owners == dst)
        if dst != comm.rank:
            shipped += idx.size
        if idx.size == 0:
            outgoing.append(None)
        elif keys is None:
            outgoing.append(particles.subset(idx))
        else:
            outgoing.append(_Shard(particles.subset(idx), keys[idx]))
    comm.metrics.counter("sim.particles_shipped").inc(shipped)
    comm.compute(BALANCE_FLOPS_PER_PARTICLE * particles.n)
    incoming = comm.alltoall(outgoing)
    if keys is None:
        non_empty = [ps for ps in incoming if ps is not None and ps.n]
        if not non_empty:
            return ParticleSet.empty(particles.dims), None
        return ParticleSet.concatenate(non_empty), None
    shards = [sh for sh in incoming if sh is not None and sh.particles.n]
    if not shards:
        return ParticleSet.empty(particles.dims), np.zeros(0,
                                                           dtype=np.int64)
    return (ParticleSet.concatenate([sh.particles for sh in shards]),
            np.concatenate([sh.keys for sh in shards]))


class _RankState:
    """Everything a rank carries across time-steps."""

    def __init__(self, comm: Comm, config: SchemeConfig, root: Box,
                 bits: int, particles: ParticleSet):
        self.comm = comm
        self.config = config
        self.root = root
        self.bits = bits
        self.particles = particles
        self.dims = root.dims
        self._last_values: np.ndarray | None = None
        # Depth-``bits`` Morton keys aligned with ``self.particles``,
        # carried across phases and through the balancing exchange;
        # None whenever positions may have changed since they were
        # computed (advance, restore).
        self._keys: np.ndarray | None = None
        # SPSA/SPDA cluster state
        self.cluster_owners: np.ndarray | None = None
        self.cluster_load: np.ndarray | None = None
        # DPDA state
        self.key_boundaries: np.ndarray | None = None
        self.my_particle_loads: np.ndarray | None = None

    # ---------------------------------------------- checkpoint / restore
    def snapshot(self, next_step: int,
                 results: list[StepResult]) -> RankCheckpoint:
        """Deep-copy everything carried across steps (quiescent point)."""
        comm = self.comm
        return RankCheckpoint(
            rank=comm.rank, step=next_step,
            particles=_copy_particles(self.particles),
            cluster_owners=_copy_array(self.cluster_owners),
            cluster_load=_copy_array(self.cluster_load),
            key_boundaries=_copy_array(self.key_boundaries),
            my_particle_loads=_copy_array(self.my_particle_loads),
            last_values=_copy_array(self._last_values),
            clock_now=comm.clock.now,
            phase_seconds=dict(comm.clock.timings.seconds),
            results=list(results),
        )

    def restore(self, ckpt: RankCheckpoint) -> None:
        """Adopt a checkpoint's state, clock included (global rollback)."""
        self.particles = _copy_particles(ckpt.particles)
        self.cluster_owners = _copy_array(ckpt.cluster_owners)
        self.cluster_load = _copy_array(ckpt.cluster_load)
        self.key_boundaries = _copy_array(ckpt.key_boundaries)
        self.my_particle_loads = _copy_array(ckpt.my_particle_loads)
        self._last_values = _copy_array(ckpt.last_values)
        self._keys = None
        self.comm.clock.now = ckpt.clock_now
        self.comm.clock.timings = PhaseTimings(dict(ckpt.phase_seconds))

    # ------------------------------------------------------ morton keys
    def _rank_keys(self) -> np.ndarray:
        """Morton keys (depth ``self.bits``) of the current particles.

        Cache hits are bitwise equal to recomputation — keys depend only
        on positions and the fixed root grid, and the cache is dropped
        whenever positions change.
        """
        if not CARRY_MORTON_KEYS:
            return morton_keys(self.particles.positions, self.root.lo,
                               self.root.side, self.bits)
        if self._keys is None or self._keys.size != self.particles.n:
            self._keys = morton_keys(self.particles.positions,
                                     self.root.lo, self.root.side,
                                     self.bits)
        return self._keys

    def _cluster_keys_from(self, keys: np.ndarray) -> np.ndarray:
        """Static-grid cluster keys derived from full-depth Morton keys.

        Truncating a depth-``bits`` key to its top ``dims * grid_level``
        bits is *exactly* the grid-level quantization: both floor the
        same power-of-two scaling of the same coordinates, and Morton
        interleaving keeps the coarse bits on top.
        """
        g = self.config.grid_level
        if g == 0:
            return np.zeros(keys.size, dtype=np.int64)
        return keys >> (self.dims * (self.bits - g))

    # -------------------------------------------------- decomposition
    def decompose(self, step: int) -> list[Cell]:
        cfg, comm = self.config, self.comm
        phase = PHASE_SETUP if step == 0 else PHASE_BALANCE
        if cfg.scheme == "spsa":
            # Assignment is static; placement cost is setup, always.
            with comm.clock.phase(PHASE_SETUP):
                if self.cluster_owners is None:
                    self.cluster_owners = spsa_assignment(
                        cfg.grid_level, comm.size, self.dims
                    )
                keys = self._rank_keys()
                owners = self.cluster_owners[self._cluster_keys_from(keys)]
                self.particles, self._keys = _exchange(
                    comm, self.particles, owners,
                    keys if CARRY_MORTON_KEYS else None)
            return [Cell(cfg.grid_level, int(k)) for k in
                    clusters_of_rank(self.cluster_owners, comm.rank)]

        if cfg.scheme == "spda":
            with comm.clock.phase(phase):
                r = cfg.clusters(self.dims)
                keys = self._rank_keys()
                ckeys = self._cluster_keys_from(keys)
                if self.cluster_load is None:
                    # First iteration: particle counts stand in for load.
                    local = np.zeros(r)
                    np.add.at(local, ckeys, 1.0)
                else:
                    local = self.cluster_load
                loads = comm.allreduce(local, lambda a, b: a + b)
                self.cluster_owners, _ = balance_clusters(
                    loads, self.cluster_owners, comm.size
                )
                comm.compute(2.0 * r)  # prefix scan over the sorted list
                owners = self.cluster_owners[ckeys]
                self.particles, self._keys = _exchange(
                    comm, self.particles, owners,
                    keys if CARRY_MORTON_KEYS else None)
            return [Cell(cfg.grid_level, int(k)) for k in
                    clusters_of_rank(self.cluster_owners, comm.rank)]

        # DPDA
        with comm.clock.phase(phase):
            keys = self._rank_keys()
            if keys.size and bool(np.all(keys[1:] >= keys[:-1])):
                # Already Morton-ascending (the usual cross-step case:
                # the balancing exchange concatenates sorted runs and
                # slow particle motion rarely reorders them).  A stable
                # argsort of a sorted array is the identity permutation,
                # so this shortcut is bitwise free.
                order = np.arange(keys.size)
            else:
                order = np.argsort(keys, kind="stable")
            keys_sorted = keys[order]
            loads = (self.my_particle_loads[order]
                     if self.my_particle_loads is not None
                     and self.my_particle_loads.size == keys.size
                     else np.ones(keys.size))
            # Global prefix structure: every rank owns a contiguous key
            # range (invariant after step 0; before it, ranks were dealt
            # Morton-contiguous chunks by the host).
            totals = comm.allgather(float(loads.sum()))
            W = sum(totals)
            cum_before = sum(totals[:comm.rank])
            cum_incl = cum_before + totals[comm.rank]
            boundaries_local = []
            span = 1 << (self.dims * self.bits)
            if W > 0:
                # Boundary target i W / p is located by exactly one rank:
                # the one whose cumulative load range (cum_before,
                # cum_incl] contains it.  That rank reports the key of the
                # first local particle reaching the target.
                prefix = cum_before + np.cumsum(loads)
                for i in range(1, comm.size):
                    t = i * W / comm.size
                    if cum_before < t <= cum_incl and keys.size:
                        j = int(np.searchsorted(prefix, t, side="left"))
                        j = min(j, keys.size - 1)
                        boundaries_local.append(int(keys_sorted[j]))
            all_bnd = comm.allgather(boundaries_local)
            flat = sorted(b for lst in all_bnd for b in lst)
            # Degenerate cases (W == 0, or a boundary target landing in a
            # zero-load gap) leave fewer than p-1 reports; missing
            # boundaries collapse to the end of key space (empty ranges).
            while len(flat) < comm.size - 1:
                flat.append(span)
            self.key_boundaries = np.asarray(flat[:comm.size - 1],
                                             dtype=np.int64)
            owners = np.searchsorted(self.key_boundaries, keys,
                                     side="right")
            comm.compute(BALANCE_FLOPS_PER_PARTICLE * keys.size)
            self.particles, self._keys = _exchange(
                comm, self.particles, owners,
                keys if CARRY_MORTON_KEYS else None)
        bounds = np.concatenate(([0], self.key_boundaries, [span]))
        lo, hi = int(bounds[comm.rank]), int(bounds[comm.rank + 1])
        return cover_cells(lo, hi, self.bits, self.dims)

    # ------------------------------------------------------- one step
    def step(self, step_no: int, dt: float | None) -> StepResult:
        comm, cfg = self.comm, self.config
        # Count before the balancing exchange inside decompose() so
        # moved_in reports the net particles gained by this rank.
        before = self.particles.n
        cells = self.decompose(step_no)

        with comm.clock.phase(PHASE_TREE):
            subtrees = build_local_trees(self.particles, cells, self.root,
                                         cfg, self.bits, keys=self._keys)
            depth = max((st.tree.node_depth_max() for st in subtrees
                         if st.tree is not None), default=1)
            comm.compute(tree_build_flops(self.particles.n, depth))
            branches = local_branch_infos(subtrees, comm.rank, self.root,
                                          cfg.degree)

        if cfg.merge == "broadcast":
            top = merge_broadcast(comm, branches, self.root, cfg.degree,
                                  cfg.branch_lookup)
        else:
            top = merge_nonreplicated(comm, branches, self.root,
                                      cfg.degree, cfg.branch_lookup)

        engine = FunctionShippingEngine(comm, cfg, top, subtrees,
                                        self.particles)
        force = engine.run()

        # Measured loads feed the *next* step's balancer: subtree
        # interaction counters (owner-side work, in model flops) plus the
        # requester-side top-tree cost attributed to each local particle.
        from repro.analysis.flops import interaction_flops
        per_int = interaction_flops(cfg.degree)
        # Loads are scaled by this rank's measured effective slowdown so
        # they are expressed in *time*, not flops: a degraded rank reports
        # its work as proportionally heavier and the next step's balancer
        # sheds load off it (the paper's own dynamic-assignment machinery
        # doubles as the graceful-degradation mechanism).
        slow = comm.slowdown
        if cfg.scheme == "spda":
            r = cfg.clusters(self.dims)
            arr = np.zeros(r)
            for key, load in cluster_loads(subtrees).items():
                arr[key] = load * per_int
            if self.particles.n:
                ckeys = self._cluster_keys_from(self._rank_keys())
                np.add.at(arr, ckeys, engine.requester_flops)
            self.cluster_load = arr * slow
        elif cfg.scheme == "dpda":
            self.my_particle_loads = (
                particle_loads(subtrees, self.particles.n) * per_int
                + engine.requester_flops
            ) * slow

        if dt is not None and self.particles.n:
            with comm.clock.phase(PHASE_ADVANCE):
                if cfg.mode != "force":
                    raise ValueError(
                        "advancing particles requires mode='force'"
                    )
                self.particles.velocities += dt * force.values
                self.particles.positions += dt * self.particles.velocities
                np.clip(self.particles.positions, self.root.lo,
                        self.root.hi - 1e-9 * self.root.side,
                        out=self.particles.positions)
                comm.compute(6.0 * self.dims * self.particles.n)
                self._keys = None    # positions moved: keys are stale

        self._last_values = force.values
        return StepResult(n_local=self.particles.n, force=force,
                          moved_in=self.particles.n - before)


def _rank_main(comm: Comm, config: SchemeConfig, root: Box, bits: int,
               steps: int, dt: float | None,
               checkpoint_every: int | None, store: CheckpointStore | None,
               shard: ParticleSet | None,
               resume_from: RankCheckpoint | None = None):
    if resume_from is not None:
        state = _RankState(comm, config, root, bits,
                           ParticleSet.empty(root.dims))
        state.restore(resume_from)
        results = list(resume_from.results)
        start = resume_from.step
    else:
        state = _RankState(comm, config, root, bits, shard)
        results = []
        start = 0
        if store is not None:
            # Step-0 snapshot: a crash in the very first step can still
            # roll back to the initial deal.
            store.save(state.snapshot(0, results))
    for i in range(start, steps):
        t0 = comm.now
        sr = state.step(i, dt)
        sr.virtual_seconds = comm.now - t0
        results.append(sr)
        comm.metrics.histogram("sim.step_seconds").observe(
            sr.virtual_seconds)
        if sr.moved_in > 0:
            comm.metrics.counter("sim.particles_moved_in").inc(sr.moved_in)
        if comm.tracer is not None:
            comm.tracer.phase_span(comm.rank, f"step {i}", t0, comm.now,
                                   depth=0, cat="step")
        if (store is not None and checkpoint_every
                and (i + 1) % checkpoint_every == 0):
            store.save(state.snapshot(i + 1, results))
    return {
        "steps": results,
        "ids": state.particles.ids,
        "values": state._last_values,
        "positions": state.particles.positions,
        "velocities": state.particles.velocities,
    }


class ParallelBarnesHut:
    """Host-side entry point: run a parallel Barnes-Hut simulation.

    Parameters
    ----------
    particles:
        The global particle set (the host deals Morton-contiguous chunks
        to the virtual processors; every scheme rebalances from there).
    config:
        Scheme parameters.
    p:
        Number of virtual processors.
    profile:
        Virtual machine profile (default nCUBE2).
    bits:
        Morton key depth for decomposition; default 12 (3-D) is ample
        for bench-scale instances while keeping cover cells small.
    fault_plan:
        Optional :class:`~repro.machine.faults.FaultPlan` of injected
        faults (drops, duplicates, delays, crashes, slowdowns).
    reliable:
        Enable the ack/retransmit recovery layer (``True`` for default
        parameters, or a :class:`~repro.machine.faults.ReliableConfig`).
    checkpoint_every:
        Snapshot every rank's cross-step state at this step cadence; on a
        rank crash the run rolls back to the newest common checkpoint and
        re-executes (without it a crash is fatal).  Virtual backend only.
    backend:
        ``"virtual"`` (default) runs every rank as a thread of one
        interpreter on the virtual machine; ``"process"`` runs one OS
        process per rank (:class:`~repro.runtime.ProcessEngine`) with
        identical virtual accounting — results, virtual times and
        counters are bitwise identical across backends, the process
        backend just finishes in less wall-clock time on a multi-core
        host.
    """

    def __init__(self, particles: ParticleSet, config: SchemeConfig,
                 p: int, profile: MachineProfile = NCUBE2,
                 root: Box | None = None, bits: int | None = None,
                 recv_timeout: float | None = 600.0,
                 fault_plan: FaultPlan | None = None,
                 reliable: ReliableConfig | bool | None = None,
                 checkpoint_every: int | None = None,
                 backend: str = "virtual"):
        if particles.n == 0:
            raise ValueError("cannot simulate zero particles")
        if p < 1:
            raise ValueError("need at least one processor")
        self.particles = particles
        self.config = config
        self.p = p
        self.profile = profile
        self.root = root if root is not None else particles.bounding_box()
        limit = (_morton.MAX_BITS_2D if particles.dims == 2
                 else _morton.MAX_BITS_3D)
        self.bits = bits if bits is not None else min(12, limit)
        if not config.grid_level <= self.bits <= limit:
            raise ValueError(
                f"bits must lie in [{config.grid_level}, {limit}]"
            )
        if config.scheme == "spsa" and p > config.clusters(particles.dims):
            raise ValueError(
                f"SPSA needs r >= p: {config.clusters(particles.dims)} "
                f"clusters < {p} processors"
            )
        self.recv_timeout = recv_timeout
        self.fault_plan = fault_plan
        self.reliable = reliable
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        if backend not in ("virtual", "process"):
            raise ValueError(
                f"backend must be 'virtual' or 'process', got {backend!r}"
            )
        if backend == "process" and checkpoint_every is not None:
            # The checkpoint store is shared host-side state; rank
            # processes cannot write into it.
            raise ValueError(
                "checkpoint_every requires backend='virtual' "
                "(the checkpoint store lives in the host process)"
            )
        self.backend = backend

    def _shards(self) -> list[ParticleSet]:
        keys = morton_keys(self.particles.positions, self.root.lo,
                           self.root.side, self.bits)
        order = np.argsort(keys, kind="stable")
        chunks = np.array_split(order, self.p)
        return [self.particles.subset(c) for c in chunks]

    def run(self, steps: int = 1, dt: float | None = None,
            trace: bool = False) -> SimulationResult:
        """Run ``steps`` time-steps; with ``trace=True`` the result also
        carries a :class:`~repro.machine.trace.Trace` of the (final) run
        — tracing never charges any virtual clock, so traced and
        untraced runs have bitwise-identical virtual times."""
        if steps < 1:
            raise ValueError("need at least one step")
        plan = self.fault_plan
        store = (CheckpointStore(self.p)
                 if self.checkpoint_every is not None else None)
        rank_args: list[tuple] = [(shard, None)
                                  for shard in self._shards()]
        recoveries = 0
        if self.backend == "process":
            from repro.runtime import ProcessEngine
            engine_cls = ProcessEngine
        else:
            engine_cls = Engine
        while True:
            engine = engine_cls(self.p, self.profile,
                                recv_timeout=self.recv_timeout,
                                fault_plan=plan, reliable=self.reliable)
            try:
                # A fresh tracer per attempt: after a crash rollback the
                # re-execution's trace replaces the aborted one.
                report = engine.run(
                    _rank_main, self.config, self.root, self.bits, steps,
                    dt, self.checkpoint_every, store,
                    rank_args=rank_args,
                    tracer=Tracer(self.p) if trace else None,
                )
                break
            except RankCrashedError as crash:
                if store is None:
                    raise
                s = store.latest_common_step()
                if s is None:
                    raise
                # Replace the failed node (its planned crash is spent) and
                # roll every rank back to the newest common step boundary.
                plan = plan.without_crash(crash.rank)
                rank_args = [(None, store.get(r, s))
                             for r in range(self.p)]
                recoveries += 1

        n = self.particles.n
        d = self.particles.dims
        values = (np.zeros(n) if self.config.mode == "potential"
                  else np.zeros((n, d)))
        positions = np.zeros((n, d))
        velocities = np.zeros((n, d))
        id_to_slot = {int(i): s for s, i in enumerate(self.particles.ids)}
        for out in report.values:
            slots = np.array([id_to_slot[int(i)] for i in out["ids"]],
                             dtype=np.int64)
            if slots.size:
                values[slots] = out["values"]
                positions[slots] = out["positions"]
                velocities[slots] = out["velocities"]
        step_results = [
            [report.values[r]["steps"][s] for r in range(self.p)]
            for s in range(steps)
        ]
        return SimulationResult(
            run=report, config=self.config, values=values,
            positions=positions, velocities=velocities,
            steps=step_results, recoveries=recoveries,
        )
