"""The parallel Barnes-Hut simulation orchestrator.

``ParallelBarnesHut`` runs the paper's full per-time-step pipeline on the
virtual machine:

    decompose / balance -> exchange particles -> build local trees ->
    exchange branch nodes, merge top tree -> function-shipping force
    computation -> advance particles

with every phase attributed to the virtual clock under the paper's phase
names (Table 3): "local tree construction", "tree merging", "all-to-all
broadcast", "force computation", "load balancing".

Scheme-specific decomposition:

* SPSA — static Gray-code assignment of grid clusters; the particle
  placement is charged to setup, never to load balancing ("the SPSA
  scheme spends no time in balancing load since load balance is
  implicit").
* SPDA — grid clusters re-assigned each step along the Morton order by
  the loads measured in the previous step.
* DPDA — Costzones: global load boundaries located in the
  interaction-counting trees; Morton key-space ranges per processor,
  turned into branch cells by canonical cover; one all-to-all
  personalized communication moves the particles.
"""

from __future__ import annotations

import copy
import shutil
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro.bh import compiled as _compiled
from repro.bh import morton as _morton
from repro.bh.blockstep import assign_rungs
from repro.bh.interaction_lists import TraversalEngine
from repro.bh.mac import BarnesHutMAC
from repro.bh.morton import morton_keys
from repro.bh.particles import Box, ParticleSet
from repro.bh.tree import build_tree
from repro.bh.tree_repair import repair_tree
from repro.core.assignment import clusters_of_rank, spsa_assignment
from repro.core.branch_nodes import branch_key
from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    DiskCheckpointStore,
    RankCheckpoint,
    _copy_array,
    _copy_particles,
)
from repro.core.config import SchemeConfig
from repro.core.function_shipping import ForceResult, FunctionShippingEngine
from repro.core.load_model import cluster_loads, particle_loads
from repro.core.morton_assign import balance_clusters
from repro.core.partition import Cell, cover_cells
from repro.core.tree_build import LocalSubtree, assign_to_cells, \
    build_local_trees, local_branch_infos, tree_build_flops
from repro.core.tree_merge import merge_broadcast, merge_nonreplicated
from repro.machine import mailbox as _mailbox_mod
from repro.machine.clock import PhaseTimings
from repro.machine.comm import Comm
from repro.machine.costmodel import MachineProfile
from repro.machine.engine import Engine, RunReport
from repro.machine.faults import FaultPlan, RankCrashedError, ReliableConfig
from repro.machine.metrics import MetricsRegistry
from repro.machine.profiles import NCUBE2
from repro.machine.trace import Trace, Tracer

PHASE_SETUP = "setup"
PHASE_BALANCE = "load balancing"
PHASE_TREE = "local tree construction"
PHASE_ADVANCE = "particle advance"
PHASE_REPAIR = "tree repair"

#: flops charged per particle for balance bookkeeping / binning.
BALANCE_FLOPS_PER_PARTICLE = 5.0

#: Carry Morton keys across phases and through the balancing exchange
#: instead of re-quantizing positions in every phase that needs them.
#: Keys are pure derived data (bitwise recomputable from positions and
#: the fixed root grid), so flipping this changes no simulation output —
#: it exists as a debugging escape hatch and for the equivalence test.
CARRY_MORTON_KEYS = True


@dataclass
class StepResult:
    """Per-rank record of one time-step (returned to the host)."""

    n_local: int
    force: ForceResult
    moved_in: int = 0      # net particles gained in the balancing exchange
    virtual_seconds: float = 0.0   # this rank's clock time for the step


@dataclass
class SimulationResult:
    """Host-side aggregate of a parallel run."""

    run: RunReport
    config: SchemeConfig
    values: np.ndarray         # final-step potentials (n,) or forces (n, d)
    positions: np.ndarray      # final particle positions, original order
    velocities: np.ndarray
    steps: list[list[StepResult]]   # [step][rank]
    recoveries: int = 0        # crash-recovery rollbacks performed
    #: Step boundary this run resumed from (``--resume``), else None.
    resumed_from: int | None = None
    #: Host-side registry (``recovery.*``): restarts, rollback steps
    #: lost, recovery wall/quiesce seconds.  None when checkpointing
    #: was off.
    host_metrics: MetricsRegistry | None = None

    @property
    def parallel_time(self) -> float:
        return self.run.parallel_time

    @property
    def trace(self) -> Trace | None:
        """Event trace of the (final) run, when traced."""
        return self.run.trace

    def metrics_summary(self) -> MetricsRegistry:
        """Machine-wide merged metrics registry of the (final) run,
        host-side recovery metrics included."""
        merged = self.run.metrics_summary()
        if self.host_metrics is not None:
            merged.merge_from(self.host_metrics)
        return merged

    def fault_summary(self) -> dict[str, int]:
        """Injected-fault / recovery counters of the (final) run."""
        return self.run.fault_summary()

    def phase_breakdown(self) -> dict[str, float]:
        return self.run.phase_max()

    def force_computations(self) -> int:
        """Total interactions F, the quantity the paper annotates its
        problem instances with (cluster + particle-particle)."""
        return sum(
            sr.force.cluster_interactions + sr.force.p2p_interactions
            for step in self.steps for sr in step
        )

    def total_flops(self, degree: int) -> float:
        from repro.analysis.flops import traversal_flops
        return sum(
            traversal_flops(sr.force.mac_tests,
                            sr.force.cluster_interactions,
                            sr.force.p2p_interactions, degree)
            for step in self.steps for sr in step
        )

    def walk_reuse(self) -> tuple[int, int]:
        """Interaction-list traffic: total (walks_built, walks_reused)
        across all steps and ranks.  Reused walks are evaluations served
        from cached interaction lists without re-walking the tree."""
        built = sum(sr.force.walks_built
                    for step in self.steps for sr in step)
        reused = sum(sr.force.walks_reused
                     for step in self.steps for sr in step)
        return built, reused

    def load_imbalance(self) -> float:
        return self.run.load_imbalance("force computation")

    def step_time(self, step: int) -> float:
        """Virtual time of one step: max over ranks (the paper times a
        single iteration after a few warm-up steps)."""
        return max(sr.virtual_seconds for sr in self.steps[step])

    @property
    def last_step_time(self) -> float:
        return self.step_time(len(self.steps) - 1)


class _Shard:
    """One outgoing particle chunk plus its precomputed Morton keys.

    The keys ride along so the receiver can skip re-quantization; they
    are pure derived data — bitwise recomputable from the chunk's
    positions against the fixed root grid — so ``nbytes`` charges only
    the particle payload and the virtual communication cost of the
    exchange is identical to shipping bare :class:`ParticleSet` chunks.

    Block-timestep runs additionally carry per-particle ``rungs`` and
    stored ``accel`` (the half-kick state of the KDK hierarchy).  Unlike
    keys these are *state*, not derived data — they cannot be recomputed
    from positions — so their bytes ARE charged to the exchange.
    """

    __slots__ = ("particles", "keys", "rungs", "accel")

    def __init__(self, particles: ParticleSet, keys: np.ndarray | None,
                 rungs: np.ndarray | None = None,
                 accel: np.ndarray | None = None):
        self.particles = particles
        self.keys = keys
        self.rungs = rungs
        self.accel = accel

    @property
    def nbytes(self) -> int:
        extra = 0
        if self.rungs is not None:
            extra += self.rungs.nbytes
        if self.accel is not None:
            extra += self.accel.nbytes
        return self.particles.nbytes + extra


def _exchange(comm: Comm, particles: ParticleSet, owners: np.ndarray,
              keys: np.ndarray | None = None,
              rungs: np.ndarray | None = None,
              accel: np.ndarray | None = None):
    """All-to-all personalized particle movement to new owners.

    With ``keys`` given, every chunk carries its particles' Morton keys
    and the matching concatenated key array is returned (else None).
    With ``rungs``/``accel`` given (block timesteps), the per-particle
    bin state rides the same shards — their bytes charged — and the
    return grows to ``(particles, keys, rungs, accel)``.
    """
    extras = rungs is not None
    outgoing = []
    shipped = 0
    for dst in range(comm.size):
        idx = np.flatnonzero(owners == dst)
        if dst != comm.rank:
            shipped += idx.size
        if idx.size == 0:
            outgoing.append(None)
        elif keys is None and not extras:
            outgoing.append(particles.subset(idx))
        else:
            outgoing.append(_Shard(
                particles.subset(idx),
                None if keys is None else keys[idx],
                rungs[idx] if extras else None,
                accel[idx] if extras else None))
    comm.metrics.counter("sim.particles_shipped").inc(shipped)
    comm.compute(BALANCE_FLOPS_PER_PARTICLE * particles.n)
    incoming = comm.alltoall(outgoing)
    if keys is None and not extras:
        non_empty = [ps for ps in incoming if ps is not None and ps.n]
        if not non_empty:
            return ParticleSet.empty(particles.dims), None
        return ParticleSet.concatenate(non_empty), None
    shards = [sh for sh in incoming if sh is not None and sh.particles.n]
    d = particles.dims
    if not shards:
        out_p = ParticleSet.empty(d)
        out_k = None if keys is None else np.zeros(0, dtype=np.int64)
        if not extras:
            return out_p, out_k
        return out_p, out_k, np.zeros(0, dtype=np.int64), np.zeros((0, d))
    out_p = ParticleSet.concatenate([sh.particles for sh in shards])
    out_k = (None if keys is None
             else np.concatenate([sh.keys for sh in shards]))
    if not extras:
        return out_p, out_k
    return (out_p, out_k,
            np.concatenate([sh.rungs for sh in shards]),
            np.concatenate([sh.accel for sh in shards], axis=0))


@dataclass
class _Forest:
    """One rank's forest of owned-cell subtrees plus the force engine,
    carried across the substeps of a block-timestep macro step.

    ``engines`` is the *persistent* per-subtree-key dict of
    :class:`TraversalEngine` objects: forest refreshes hand it to each
    fresh :class:`FunctionShippingEngine` so walk caches survive tree
    repairs.  ``keys`` snapshots the rank's depth-``bits`` Morton keys
    the trees were built from (the ``old_keys`` of the next repair).
    """

    subtrees: list[LocalSubtree]
    engines: dict[int, TraversalEngine]
    fs: FunctionShippingEngine
    keys: np.ndarray


class _RankState:
    """Everything a rank carries across time-steps."""

    def __init__(self, comm: Comm, config: SchemeConfig, root: Box,
                 bits: int, particles: ParticleSet):
        self.comm = comm
        self.config = config
        self.root = root
        self.bits = bits
        self.particles = particles
        self.dims = root.dims
        self._last_values: np.ndarray | None = None
        # Depth-``bits`` Morton keys aligned with ``self.particles``,
        # carried across phases and through the balancing exchange;
        # None whenever positions may have changed since they were
        # computed (advance, restore).
        self._keys: np.ndarray | None = None
        # SPSA/SPDA cluster state
        self.cluster_owners: np.ndarray | None = None
        self.cluster_load: np.ndarray | None = None
        # DPDA state
        self.key_boundaries: np.ndarray | None = None
        self.my_particle_loads: np.ndarray | None = None
        # Block-timestep state (KDK integrator): per-particle rung bins
        # and the stored accelerations that source opening half-kicks.
        # None until the first macro step bootstraps them; ride the
        # balancing exchange and the checkpoint so recovery is bitwise.
        self.rungs: np.ndarray | None = None
        self.accel: np.ndarray | None = None

    # ---------------------------------------------- checkpoint / restore
    def snapshot(self, next_step: int,
                 results: list[StepResult]) -> RankCheckpoint:
        """Deep-copy everything carried across steps (quiescent point)."""
        comm = self.comm
        # Communication accounting rides along so a recovered run
        # reports totals bitwise identical to an uninterrupted one.
        # The endpoint's duplicate-suppression count is normally folded
        # into the stats only at end of run — fold the running value
        # here so the boundary copy is self-contained.
        stats = copy.deepcopy(comm.stats)
        stats.duplicates_suppressed += comm.endpoint.duplicates_suppressed
        # Trace continuity across rollback: carry this rank's virtual
        # event lists (spans/events are immutable records — shallow
        # copies suffice) and the worker's next message seq, so a
        # recovered traced run replays into a trace identical to an
        # uninterrupted one.
        trace_events = None
        if comm.tracer is not None:
            trace_events = (list(comm.tracer.phases[comm.rank]),
                            list(comm.tracer.sends[comm.rank]),
                            list(comm.tracer.recvs[comm.rank]))
        return RankCheckpoint(
            rank=comm.rank, step=next_step,
            particles=_copy_particles(self.particles),
            cluster_owners=_copy_array(self.cluster_owners),
            cluster_load=_copy_array(self.cluster_load),
            key_boundaries=_copy_array(self.key_boundaries),
            my_particle_loads=_copy_array(self.my_particle_loads),
            last_values=_copy_array(self._last_values),
            clock_now=comm.clock.now,
            phase_seconds=dict(comm.clock.timings.seconds),
            results=list(results),
            comm_stats=stats,
            metrics=copy.deepcopy(comm.metrics),
            coll_seq=getattr(comm, "_coll_seq", 0),
            xmit_seq=comm._xmit_seq,
            trace_events=trace_events,
            seq_next=getattr(_mailbox_mod._seq_counter, "value", None),
            rungs=_copy_array(self.rungs),
            accel=_copy_array(self.accel),
        )

    def restore(self, ckpt: RankCheckpoint) -> None:
        """Adopt a checkpoint's state, clock included (global rollback)."""
        self.particles = _copy_particles(ckpt.particles)
        self.cluster_owners = _copy_array(ckpt.cluster_owners)
        self.cluster_load = _copy_array(ckpt.cluster_load)
        self.key_boundaries = _copy_array(ckpt.key_boundaries)
        self.my_particle_loads = _copy_array(ckpt.my_particle_loads)
        self._last_values = _copy_array(ckpt.last_values)
        # getattr: pre-block-timestep checkpoints lack these fields.
        self.rungs = _copy_array(getattr(ckpt, "rungs", None))
        self.accel = _copy_array(getattr(ckpt, "accel", None))
        self._keys = None
        self.comm.clock.now = ckpt.clock_now
        self.comm.clock.timings = PhaseTimings(dict(ckpt.phase_seconds))
        if ckpt.comm_stats is not None and ckpt.metrics is not None:
            # Deep-copied: an in-memory checkpoint may seed several
            # restore attempts and must stay pristine.
            self.comm.adopt_accounting(copy.deepcopy(ckpt.comm_stats),
                                       copy.deepcopy(ckpt.metrics))
        # Continue the tag / transmission-id streams where the boundary
        # left them, so replayed traffic lands in the same per-tag
        # buckets as an uninterrupted run.
        self.comm._coll_seq = ckpt.coll_seq
        self.comm._xmit_seq = ckpt.xmit_seq
        # Trace continuity: re-seed this rank's virtual event lists and
        # the worker's message-seq counter from the boundary, so the
        # re-execution appends exactly where the uninterrupted run
        # would have (virtual tracks come out identical).
        if ckpt.trace_events is not None and self.comm.tracer is not None:
            phases, sends, recvs = ckpt.trace_events
            rank = self.comm.rank
            self.comm.tracer.phases[rank] = list(phases)
            self.comm.tracer.sends[rank] = list(sends)
            self.comm.tracer.recvs[rank] = list(recvs)
        if ckpt.seq_next is not None \
                and hasattr(_mailbox_mod._seq_counter, "value"):
            _mailbox_mod._seq_counter.value = ckpt.seq_next

    # ------------------------------------------------------- exchange
    def _do_exchange(self, owners: np.ndarray,
                     keys: np.ndarray | None) -> None:
        """Run the balancing exchange, threading block-timestep bin
        state (rungs / stored accelerations) through the shards whenever
        it exists."""
        if self.rungs is not None:
            self.particles, self._keys, self.rungs, self.accel = \
                _exchange(self.comm, self.particles, owners, keys,
                          rungs=self.rungs, accel=self.accel)
        else:
            self.particles, self._keys = _exchange(
                self.comm, self.particles, owners, keys)

    # ------------------------------------------------------ morton keys
    def _rank_keys(self) -> np.ndarray:
        """Morton keys (depth ``self.bits``) of the current particles.

        Cache hits are bitwise equal to recomputation — keys depend only
        on positions and the fixed root grid, and the cache is dropped
        whenever positions change.
        """
        if not CARRY_MORTON_KEYS:
            return morton_keys(self.particles.positions, self.root.lo,
                               self.root.side, self.bits)
        if self._keys is None or self._keys.size != self.particles.n:
            self._keys = morton_keys(self.particles.positions,
                                     self.root.lo, self.root.side,
                                     self.bits)
        return self._keys

    def _cluster_keys_from(self, keys: np.ndarray) -> np.ndarray:
        """Static-grid cluster keys derived from full-depth Morton keys.

        Truncating a depth-``bits`` key to its top ``dims * grid_level``
        bits is *exactly* the grid-level quantization: both floor the
        same power-of-two scaling of the same coordinates, and Morton
        interleaving keeps the coarse bits on top.
        """
        g = self.config.grid_level
        if g == 0:
            return np.zeros(keys.size, dtype=np.int64)
        return keys >> (self.dims * (self.bits - g))

    # -------------------------------------------------- decomposition
    def decompose(self, step: int) -> list[Cell]:
        cfg, comm = self.config, self.comm
        phase = PHASE_SETUP if step == 0 else PHASE_BALANCE
        if cfg.scheme == "spsa":
            # Assignment is static; placement cost is setup, always.
            with comm.clock.phase(PHASE_SETUP):
                if self.cluster_owners is None:
                    self.cluster_owners = spsa_assignment(
                        cfg.grid_level, comm.size, self.dims
                    )
                keys = self._rank_keys()
                owners = self.cluster_owners[self._cluster_keys_from(keys)]
                self._do_exchange(owners,
                                  keys if CARRY_MORTON_KEYS else None)
            return [Cell(cfg.grid_level, int(k)) for k in
                    clusters_of_rank(self.cluster_owners, comm.rank)]

        if cfg.scheme == "spda":
            with comm.clock.phase(phase):
                r = cfg.clusters(self.dims)
                keys = self._rank_keys()
                ckeys = self._cluster_keys_from(keys)
                if self.cluster_load is None:
                    # First iteration: particle counts stand in for load.
                    local = np.zeros(r)
                    np.add.at(local, ckeys, 1.0)
                else:
                    local = self.cluster_load
                loads = comm.allreduce(local, lambda a, b: a + b)
                self.cluster_owners, _ = balance_clusters(
                    loads, self.cluster_owners, comm.size
                )
                comm.compute(2.0 * r)  # prefix scan over the sorted list
                owners = self.cluster_owners[ckeys]
                self._do_exchange(owners,
                                  keys if CARRY_MORTON_KEYS else None)
            return [Cell(cfg.grid_level, int(k)) for k in
                    clusters_of_rank(self.cluster_owners, comm.rank)]

        # DPDA
        with comm.clock.phase(phase):
            keys = self._rank_keys()
            if keys.size and bool(np.all(keys[1:] >= keys[:-1])):
                # Already Morton-ascending (the usual cross-step case:
                # the balancing exchange concatenates sorted runs and
                # slow particle motion rarely reorders them).  A stable
                # argsort of a sorted array is the identity permutation,
                # so this shortcut is bitwise free.
                order = np.arange(keys.size)
            else:
                order = np.argsort(keys, kind="stable")
            keys_sorted = keys[order]
            loads = (self.my_particle_loads[order]
                     if self.my_particle_loads is not None
                     and self.my_particle_loads.size == keys.size
                     else np.ones(keys.size))
            # Global prefix structure: every rank owns a contiguous key
            # range (invariant after step 0; before it, ranks were dealt
            # Morton-contiguous chunks by the host).
            totals = comm.allgather(float(loads.sum()))
            W = sum(totals)
            cum_before = sum(totals[:comm.rank])
            cum_incl = cum_before + totals[comm.rank]
            boundaries_local = []
            span = 1 << (self.dims * self.bits)
            if W > 0:
                # Boundary target i W / p is located by exactly one rank:
                # the one whose cumulative load range (cum_before,
                # cum_incl] contains it.  That rank reports the key of the
                # first local particle reaching the target.
                prefix = cum_before + np.cumsum(loads)
                for i in range(1, comm.size):
                    t = i * W / comm.size
                    if cum_before < t <= cum_incl and keys.size:
                        j = int(np.searchsorted(prefix, t, side="left"))
                        j = min(j, keys.size - 1)
                        boundaries_local.append(int(keys_sorted[j]))
            all_bnd = comm.allgather(boundaries_local)
            flat = sorted(b for lst in all_bnd for b in lst)
            # Degenerate cases (W == 0, or a boundary target landing in a
            # zero-load gap) leave fewer than p-1 reports; missing
            # boundaries collapse to the end of key space (empty ranges).
            while len(flat) < comm.size - 1:
                flat.append(span)
            self.key_boundaries = np.asarray(flat[:comm.size - 1],
                                             dtype=np.int64)
            owners = np.searchsorted(self.key_boundaries, keys,
                                     side="right")
            comm.compute(BALANCE_FLOPS_PER_PARTICLE * keys.size)
            self._do_exchange(owners,
                              keys if CARRY_MORTON_KEYS else None)
        bounds = np.concatenate(([0], self.key_boundaries, [span]))
        lo, hi = int(bounds[comm.rank]), int(bounds[comm.rank + 1])
        return cover_cells(lo, hi, self.bits, self.dims)

    # ------------------------------------- block timesteps (KDK macro)
    def _owners_from_keys(self, keys: np.ndarray) -> np.ndarray:
        """Owning rank of every key under the *current* decomposition
        (cluster map for SPSA/SPDA, key ranges for DPDA) — used by the
        mid-macro stray check without re-running the balancer."""
        if self.config.scheme in ("spsa", "spda"):
            return self.cluster_owners[self._cluster_keys_from(keys)]
        return np.searchsorted(self.key_boundaries, keys, side="right")

    def _sub_keys_for(self, cell: Cell, idx: np.ndarray,
                      keys: np.ndarray) -> np.ndarray | None:
        """Bit slice of global depth-``bits`` keys for a cell-rooted
        subtree — the same arithmetic as :func:`build_local_trees`, so
        repaired and rebuilt subtrees follow one consistent grid."""
        cfg, dims = self.config, self.dims
        depth_budget = (cfg.max_depth if cfg.max_depth is not None
                        else self.bits) - cell.depth
        budget = max(1, depth_budget)
        rem = self.bits - cell.depth
        if not 0 < budget <= rem:
            return None
        mask = np.int64((1 << (dims * rem)) - 1)
        return (keys[idx] & mask) >> (dims * (rem - budget))

    def _subtree_budget(self, cell: Cell) -> int:
        cfg = self.config
        return max(1, (cfg.max_depth if cfg.max_depth is not None
                       else self.bits) - cell.depth)

    def _make_subtree(self, cell: Cell, idx: np.ndarray,
                      keys: np.ndarray) -> LocalSubtree:
        """Build one owned-cell subtree (mirrors ``build_local_trees``'s
        per-cell body; degree is 0 in force mode so no multipoles)."""
        sub = self.particles.subset(idx)
        tree = build_tree(sub, box=cell.box(self.root),
                          leaf_capacity=self.config.leaf_capacity,
                          max_depth=self._subtree_budget(cell),
                          keys=self._sub_keys_for(cell, idx, keys))
        return LocalSubtree(cell=cell, key=branch_key(cell, self.dims),
                            particles=sub, local_idx=idx, tree=tree)

    def _new_sub_engine(self, st: LocalSubtree) -> TraversalEngine:
        cfg = self.config
        return TraversalEngine(
            st.tree, st.particles, BarnesHutMAC(cfg.alpha),
            softening=cfg.softening,
            working_set_bytes=cfg.working_set_bytes,
            kernel_tier=_compiled.resolve_tier(cfg.kernel_tier),
            kernel_threads=cfg.kernel_threads,
        )

    def _merge_top(self, branches):
        cfg = self.config
        if cfg.merge == "broadcast":
            return merge_broadcast(self.comm, branches, self.root,
                                   cfg.degree, cfg.branch_lookup)
        return merge_nonreplicated(self.comm, branches, self.root,
                                   cfg.degree, cfg.branch_lookup)

    def _build_forest(self, cells: list[Cell]) -> _Forest:
        """Full forest (re)build: trees, branch exchange, merge, fresh
        engines.  Collective (the merge) — every rank must call it."""
        comm, cfg = self.comm, self.config
        keys = self._rank_keys()
        with comm.clock.phase(PHASE_TREE):
            subtrees = build_local_trees(self.particles, cells, self.root,
                                         cfg, self.bits, keys=keys)
            depth = max((st.tree.node_depth_max() for st in subtrees
                         if st.tree is not None), default=1)
            comm.compute(tree_build_flops(self.particles.n, depth))
            branches = local_branch_infos(subtrees, comm.rank, self.root,
                                          cfg.degree)
        top = self._merge_top(branches)
        fs = FunctionShippingEngine(comm, cfg, top, subtrees,
                                    self.particles)
        return _Forest(subtrees=subtrees, engines=fs._subtree_engines,
                       fs=fs, keys=keys.copy())

    def _refresh_forest(self, forest: _Forest, cells: list[Cell],
                        starters: np.ndarray) -> _Forest:
        """Per-substep forest update after ``starters`` drifted (and no
        particle left the rank): reuse untouched subtrees verbatim,
        incrementally repair subtrees whose membership is unchanged,
        rebuild the rest.  Repaired trees are bitwise identical to full
        rebuilds (the :func:`repair_tree` contract), so tree_mode never
        changes results — only the virtual cost.  Collective (merge)."""
        comm, cfg = self.comm, self.config
        n = self.particles.n
        keys = self._rank_keys()
        engines = forest.engines
        metrics = comm.metrics
        with comm.clock.phase(PHASE_REPAIR):
            old_map = {st.key: st for st in forest.subtrees}
            slots = assign_to_cells(self.particles.positions, cells,
                                    self.root, self.bits, keys=keys)
            starter_mask = np.zeros(n, dtype=bool)
            starter_mask[starters] = True
            subtrees: list[LocalSubtree] = []
            live_keys: set[int] = set()
            touched = 0
            depth = 1
            for i, cell in enumerate(cells):
                idx = np.flatnonzero(slots == i)
                if idx.size == 0:
                    continue
                bkey = branch_key(cell, self.dims)
                live_keys.add(bkey)
                old = old_map.get(bkey)
                same_members = (old is not None
                                and old.local_idx.size == idx.size
                                and bool(np.array_equal(old.local_idx,
                                                        idx)))
                if same_members:
                    movers = np.flatnonzero(starter_mask[idx])
                    if movers.size == 0:
                        # Untouched: positions of every member are
                        # frozen this substep — tree, monopoles and
                        # cached walks all stay valid.
                        subtrees.append(old)
                        metrics.counter("repair.nodes_reused").inc(
                            old.tree.nnodes)
                        continue
                    old_sk = self._sub_keys_for(cell, idx, forest.keys)
                    new_sk = self._sub_keys_for(cell, idx, keys)
                    if old_sk is not None and new_sk is not None:
                        sub = self.particles.subset(idx)
                        res = repair_tree(old.tree, sub, old_sk, new_sk,
                                          movers)
                        st = LocalSubtree(cell=cell, key=bkey,
                                          particles=sub, local_idx=idx,
                                          tree=res.tree)
                        subtrees.append(st)
                        eng = engines.get(bkey)
                        if eng is not None:
                            w0 = (eng.walks_retained,
                                  eng.walks_invalidated,
                                  eng.walks_retested)
                            eng.apply_repair(res, sources=sub)
                            metrics.counter("repair.walks_retained").inc(
                                eng.walks_retained - w0[0])
                            metrics.counter(
                                "repair.walks_invalidated").inc(
                                eng.walks_invalidated - w0[1])
                            metrics.counter("repair.walks_retested").inc(
                                eng.walks_retested - w0[2])
                        else:
                            engines[bkey] = self._new_sub_engine(st)
                        if res.rebuilt:
                            metrics.counter("repair.full_rebuilds").inc()
                        else:
                            metrics.counter("repair.repairs").inc()
                        metrics.counter("repair.nodes_reused").inc(
                            res.nodes_reused)
                        metrics.counter("repair.nodes_rebuilt").inc(
                            res.nodes_rebuilt)
                        metrics.counter("repair.changed_keys").inc(
                            res.n_changed_keys)
                        touched += int(movers.size)
                        depth = max(depth, res.tree.node_depth_max())
                        continue
                # Membership changed (or the cell has no key budget):
                # rebuild this subtree from scratch.
                st = self._make_subtree(cell, idx, keys)
                subtrees.append(st)
                engines[bkey] = self._new_sub_engine(st)
                metrics.counter("repair.full_rebuilds").inc()
                metrics.counter("repair.nodes_rebuilt").inc(st.tree.nnodes)
                touched += int(idx.size)
                depth = max(depth, st.tree.node_depth_max())
            # Cells that emptied out: drop their stale engines.
            for k in [k for k in engines if k not in live_keys]:
                del engines[k]
            comm.compute(tree_build_flops(touched, depth))
            branches = local_branch_infos(subtrees, comm.rank, self.root,
                                          cfg.degree)
        top = self._merge_top(branches)
        fs = FunctionShippingEngine(comm, cfg, top, subtrees,
                                    self.particles,
                                    subtree_engines=engines)
        return _Forest(subtrees=subtrees, engines=engines, fs=fs,
                       keys=keys.copy())

    @staticmethod
    def _merge_force(agg: ForceResult, res: ForceResult) -> None:
        agg.mac_tests += res.mac_tests
        agg.cluster_interactions += res.cluster_interactions
        agg.p2p_interactions += res.p2p_interactions
        agg.records_shipped += res.records_shipped
        agg.records_served += res.records_served
        agg.walks_built += res.walks_built
        agg.walks_reused += res.walks_reused
        s, t = agg.ship, res.ship
        s.request_bins_sent += t.request_bins_sent
        s.request_records_sent += t.request_records_sent
        s.request_bytes_sent += t.request_bytes_sent
        s.result_records_returned += t.result_records_returned
        s.flow_control_stalls += t.flow_control_stalls

    def _assign_rungs(self, accel: np.ndarray, dt: float,
                      max_rungs: int) -> np.ndarray:
        """Rung criterion; ``max_rungs == 1`` (fixed-dt KDK) short-
        circuits to rung 0 so softening may be 0 there."""
        if max_rungs == 1:
            return np.zeros(accel.shape[0], dtype=np.int64)
        cfg = self.config
        return assign_rungs(accel, dt, cfg.dt_eta, cfg.softening,
                            max_rungs)

    def _step_block(self, step_no: int, dt: float) -> StepResult:
        """One KDK macro step of ``dt`` over the block-timestep rung
        hierarchy (``timestep="fixed"`` runs it with a single rung).

        Every substep is collective on every rank — the R allreduce,
        the stray allreduce, the branch merge and the function-shipping
        bin protocol all run even on ranks with no starters/finishers —
        so the virtual machine's collectives stay aligned.
        """
        comm, cfg = self.comm, self.config
        if cfg.mode != "force":
            raise ValueError("advancing particles requires mode='force'")
        before = self.particles.n
        cells = self.decompose(step_no)
        max_rungs = 1 if cfg.timestep == "fixed" else cfg.max_rungs
        forest = self._build_forest(cells)
        agg = ForceResult(values=np.zeros(0))
        requester = np.zeros(self.particles.n)

        def run_forces(targets_idx):
            res = forest.fs.run(targets_idx=targets_idx)
            self._merge_force(agg, res)
            if requester.size == forest.fs.requester_flops.size:
                requester[:] += forest.fs.requester_flops
            return res.values

        if self.rungs is None or self.rungs.size != self.particles.n:
            # First macro step (or a pre-block checkpoint): bootstrap
            # the bin state with one full force evaluation.  All ranks
            # enter this branch together — rungs are None everywhere
            # before the first macro step and ride every exchange and
            # checkpoint afterwards — so the extra collective is aligned.
            self.accel = run_forces(None)
            self.rungs = self._assign_rungs(self.accel, dt, max_rungs)
            comm.metrics.counter("timestep.bootstraps").inc()
        R_local = (int(self.rungs.max()) + 1 if self.rungs.size else 1)
        R = int(comm.allreduce(R_local, max))
        nsub = 1 << (R - 1)
        hi_clip = self.root.hi - 1e-9 * self.root.side

        for j in range(nsub):
            rungs = self.rungs
            period = (1 << (R - 1 - np.minimum(rungs, R - 1))) \
                .astype(np.int64)
            starters = np.flatnonzero(j % period == 0)
            with comm.clock.phase(PHASE_ADVANCE):
                if starters.size:
                    p = self.particles
                    dt_r = dt / (1 << rungs[starters]).astype(np.float64)
                    p.velocities[starters] += \
                        (0.5 * dt_r)[:, None] * self.accel[starters]
                    p.positions[starters] = np.clip(
                        p.positions[starters]
                        + dt_r[:, None] * p.velocities[starters],
                        self.root.lo, hi_clip)
                    comm.compute(6.0 * self.dims * starters.size)
                    if self._keys is not None:
                        # Incremental re-key: only movers re-quantize.
                        self._keys[starters] = morton_keys(
                            p.positions[starters], self.root.lo,
                            self.root.side, self.bits)
                    comm.metrics.counter("timestep.drifted").inc(
                        int(starters.size))
            keys = self._rank_keys()
            owners = (self._owners_from_keys(keys) if keys.size
                      else np.zeros(0, dtype=np.int64))
            stray = bool(keys.size) and bool(np.any(owners != comm.rank))
            if comm.allreduce(stray, lambda a, b: a or b):
                # A drift crossed a domain boundary mid-macro: move the
                # strays (bin state rides the shards) and rebuild the
                # forest.  Walk caches and requester-side load
                # attribution reset — both are observability, not state.
                with comm.clock.phase(PHASE_BALANCE):
                    self._do_exchange(owners,
                                      keys if CARRY_MORTON_KEYS else None)
                comm.metrics.counter("timestep.midmacro_exchanges").inc()
                forest = self._build_forest(cells)
                requester = np.zeros(self.particles.n)
            else:
                forest = self._refresh_forest(forest, cells, starters)
            rungs = self.rungs          # exchange may have permuted them
            period = (1 << (R - 1 - np.minimum(rungs, R - 1))) \
                .astype(np.int64)
            finishers = np.flatnonzero((j + 1) % period == 0)
            vals = run_forces(finishers)
            if finishers.size:
                a_new = vals[finishers]
                dt_f = dt / (1 << rungs[finishers]).astype(np.float64)
                self.accel[finishers] = a_new
                self.particles.velocities[finishers] += \
                    (0.5 * dt_f)[:, None] * a_new
                want = self._assign_rungs(a_new, dt, max_rungs)
                cur = rungs[finishers]
                if j + 1 == nsub:
                    new = want          # sync point: all moves allowed
                else:
                    # Smaller dt anytime (bounded by this macro's
                    # subdivision); longer dt only at aligned
                    # boundaries.
                    up = np.minimum(want, R - 1)
                    aligned = ((j + 1)
                               % (1 << (R - 1
                                        - np.minimum(want, R - 1)))) == 0
                    new = np.where(want >= cur, up,
                                   np.where(aligned, want, cur))
                rungs[finishers] = new
                with comm.clock.phase(PHASE_ADVANCE):
                    comm.compute((3.0 * self.dims + 10.0)
                                 * finishers.size)
            comm.metrics.counter("timestep.substeps").inc()
            comm.metrics.counter("timestep.force_targets").inc(
                int(finishers.size))

        comm.metrics.counter("timestep.macro_steps").inc()
        for r in range(max_rungs):
            comm.metrics.counter(f"timestep.bin_{r}").inc(
                int((self.rungs == r).sum()))

        # Measured loads feed the next macro step's balancer, exactly
        # like the fixed path: owner-side subtree counters plus the
        # accumulated requester-side cost (reset on mid-macro exchange —
        # a lossy but safe approximation of a rare event).
        from repro.analysis.flops import interaction_flops
        per_int = interaction_flops(cfg.degree)
        slow = comm.slowdown
        if cfg.scheme == "spda":
            r = cfg.clusters(self.dims)
            arr = np.zeros(r)
            for key, load in cluster_loads(forest.subtrees).items():
                arr[key] = load * per_int
            if self.particles.n:
                ckeys = self._cluster_keys_from(self._rank_keys())
                np.add.at(arr, ckeys, requester)
            self.cluster_load = arr * slow
        elif cfg.scheme == "dpda":
            self.my_particle_loads = (
                particle_loads(forest.subtrees, self.particles.n)
                * per_int + requester
            ) * slow

        agg.values = self.accel.copy()
        self._last_values = agg.values
        return StepResult(n_local=self.particles.n, force=agg,
                          moved_in=self.particles.n - before)

    # ------------------------------------------------------- one step
    def step(self, step_no: int, dt: float | None) -> StepResult:
        comm, cfg = self.comm, self.config
        if dt is not None and cfg.integrator == "kdk":
            # KDK / block-timestep macro step.  ``dt is None`` (pure
            # force computation) and the euler default stay on the
            # original path below, bitwise.
            return self._step_block(step_no, dt)
        # Count before the balancing exchange inside decompose() so
        # moved_in reports the net particles gained by this rank.
        before = self.particles.n
        cells = self.decompose(step_no)

        with comm.clock.phase(PHASE_TREE):
            subtrees = build_local_trees(self.particles, cells, self.root,
                                         cfg, self.bits, keys=self._keys)
            depth = max((st.tree.node_depth_max() for st in subtrees
                         if st.tree is not None), default=1)
            comm.compute(tree_build_flops(self.particles.n, depth))
            branches = local_branch_infos(subtrees, comm.rank, self.root,
                                          cfg.degree)

        if cfg.merge == "broadcast":
            top = merge_broadcast(comm, branches, self.root, cfg.degree,
                                  cfg.branch_lookup)
        else:
            top = merge_nonreplicated(comm, branches, self.root,
                                      cfg.degree, cfg.branch_lookup)

        engine = FunctionShippingEngine(comm, cfg, top, subtrees,
                                        self.particles)
        force = engine.run()

        # Measured loads feed the *next* step's balancer: subtree
        # interaction counters (owner-side work, in model flops) plus the
        # requester-side top-tree cost attributed to each local particle.
        from repro.analysis.flops import interaction_flops
        per_int = interaction_flops(cfg.degree)
        # Loads are scaled by this rank's measured effective slowdown so
        # they are expressed in *time*, not flops: a degraded rank reports
        # its work as proportionally heavier and the next step's balancer
        # sheds load off it (the paper's own dynamic-assignment machinery
        # doubles as the graceful-degradation mechanism).
        slow = comm.slowdown
        if cfg.scheme == "spda":
            r = cfg.clusters(self.dims)
            arr = np.zeros(r)
            for key, load in cluster_loads(subtrees).items():
                arr[key] = load * per_int
            if self.particles.n:
                ckeys = self._cluster_keys_from(self._rank_keys())
                np.add.at(arr, ckeys, engine.requester_flops)
            self.cluster_load = arr * slow
        elif cfg.scheme == "dpda":
            self.my_particle_loads = (
                particle_loads(subtrees, self.particles.n) * per_int
                + engine.requester_flops
            ) * slow

        if dt is not None and self.particles.n:
            with comm.clock.phase(PHASE_ADVANCE):
                if cfg.mode != "force":
                    raise ValueError(
                        "advancing particles requires mode='force'"
                    )
                self.particles.velocities += dt * force.values
                self.particles.positions += dt * self.particles.velocities
                np.clip(self.particles.positions, self.root.lo,
                        self.root.hi - 1e-9 * self.root.side,
                        out=self.particles.positions)
                comm.compute(6.0 * self.dims * self.particles.n)
                self._keys = None    # positions moved: keys are stale

        self._last_values = force.values
        return StepResult(n_local=self.particles.n, force=force,
                          moved_in=self.particles.n - before)


def _rank_main(comm: Comm, config: SchemeConfig, root: Box, bits: int,
               steps: int, dt: float | None,
               checkpoint_every: int | None, store: CheckpointStore | None,
               shard: ParticleSet | None,
               resume_from: RankCheckpoint | None = None):
    from repro.runtime.supervision import notify_checkpoint, notify_step
    wall = comm.wall_tracer

    def save_checkpoint(next_step: int) -> None:
        if wall is not None:
            with wall.timed("checkpoint:save", cat="wall:checkpoint"):
                store.save(state.snapshot(next_step, results))
        else:
            store.save(state.snapshot(next_step, results))
        notify_checkpoint(next_step)

    if resume_from is not None:
        state = _RankState(comm, config, root, bits,
                           ParticleSet.empty(root.dims))
        state.restore(resume_from)
        results = list(resume_from.results)
        start = resume_from.step
        if wall is not None:
            # Zero-width wall marker: where this attempt rejoined the
            # trajectory.  On the wall track, not the virtual one — a
            # recovered run's virtual tracks are identical to an
            # uninterrupted run's, so the restore has no virtual-time
            # footprint to mark.
            wall.mark("recovery:restore", cat="wall:recovery")
    else:
        state = _RankState(comm, config, root, bits, shard)
        results = []
        start = 0
        if store is not None:
            # Step-0 snapshot: a crash in the very first step can still
            # roll back to the initial deal.
            save_checkpoint(0)
    for i in range(start, steps):
        # Liveness/fault hook: stamps the supervision board with this
        # rank's step (and executes planned kill/stall actions) on the
        # process backend; no-op everywhere else.
        notify_step(i)
        t0 = comm.now
        w0 = wall.now() if wall is not None else 0.0
        sr = state.step(i, dt)
        sr.virtual_seconds = comm.now - t0
        results.append(sr)
        comm.metrics.histogram("sim.step_seconds").observe(
            sr.virtual_seconds)
        if sr.moved_in > 0:
            comm.metrics.counter("sim.particles_moved_in").inc(sr.moved_in)
        if comm.tracer is not None:
            comm.tracer.phase_span(comm.rank, f"step {i}", t0, comm.now,
                                   depth=0, cat="step")
        if wall is not None:
            wall.record(f"step {i}", w0, wall.now(), depth=0,
                        cat="wall:step")
        if (store is not None and checkpoint_every
                and (i + 1) % checkpoint_every == 0):
            save_checkpoint(i + 1)
    return {
        "steps": results,
        "ids": state.particles.ids,
        "values": state._last_values,
        "positions": state.particles.positions,
        "velocities": state.particles.velocities,
    }


class ParallelBarnesHut:
    """Host-side entry point: run a parallel Barnes-Hut simulation.

    Parameters
    ----------
    particles:
        The global particle set (the host deals Morton-contiguous chunks
        to the virtual processors; every scheme rebalances from there).
    config:
        Scheme parameters.
    p:
        Number of virtual processors.
    profile:
        Virtual machine profile (default nCUBE2).
    bits:
        Morton key depth for decomposition; default 12 (3-D) is ample
        for bench-scale instances while keeping cover cells small.
    fault_plan:
        Optional :class:`~repro.machine.faults.FaultPlan` of injected
        faults (drops, duplicates, delays, crashes, slowdowns).
    reliable:
        Enable the ack/retransmit recovery layer (``True`` for default
        parameters, or a :class:`~repro.machine.faults.ReliableConfig`).
    checkpoint_every:
        Snapshot every rank's cross-step state at this step cadence; on
        a rank crash or worker loss the run rolls back to the newest
        common checkpoint and re-executes (without it such failures are
        fatal).  On the virtual backend snapshots live in host memory;
        on the process backend they are durable on disk
        (:class:`~repro.core.checkpoint.DiskCheckpointStore`) — under
        ``checkpoint_dir`` when given, else a temporary directory
        removed when the run ends.
    checkpoint_dir:
        Directory for durable checkpoints (either backend).  Survives
        the host process, enabling ``resume=True`` in a later run.
    checkpoint_keep:
        Newest checkpoint levels retained per rank (default 2).
    max_restarts:
        Worker-loss respawn budget per run (process backend): each
        SIGKILL'd / silently-exited / heartbeat-stalled worker costs
        one; planned virtual crashes are exempt (their fault is spent
        on restart).
    restart_backoff:
        First respawn delay in real seconds; doubles per restart
        (capped at 10 s).
    resume:
        Start from the newest common checkpoint in ``checkpoint_dir``
        instead of dealing particles afresh.
    backend:
        ``"virtual"`` (default) runs every rank as a thread of one
        interpreter on the virtual machine; ``"process"`` runs one OS
        process per rank (:class:`~repro.runtime.ProcessEngine`) with
        identical virtual accounting — results, virtual times and
        counters are bitwise identical across backends, the process
        backend just finishes in less wall-clock time on a multi-core
        host.
    engine_options:
        Extra keyword arguments forwarded to the
        :class:`~repro.runtime.ProcessEngine` constructor (e.g.
        ``heartbeat_timeout``); process backend only.
    events_out:
        Append run events (run_start / step / checkpoint / worker_lost /
        recovery / run_end) as JSON lines to this path; schema in
        :mod:`repro.runtime.telemetry`.  Process backend only.
    live:
        Render a live one-line progress display (stderr) from the
        telemetry board while the run executes.  Process backend only.

    Telemetry (``events_out``/``live``) and wall tracing are pure
    wall-clock observation: results, virtual clocks, comm stats and
    metrics are bitwise identical with and without them.
    """

    def __init__(self, particles: ParticleSet, config: SchemeConfig,
                 p: int, profile: MachineProfile = NCUBE2,
                 root: Box | None = None, bits: int | None = None,
                 recv_timeout: float | None = 600.0,
                 fault_plan: FaultPlan | None = None,
                 reliable: ReliableConfig | bool | None = None,
                 checkpoint_every: int | None = None,
                 checkpoint_dir: str | None = None,
                 checkpoint_keep: int = 2,
                 max_restarts: int = 3,
                 restart_backoff: float = 0.25,
                 resume: bool = False,
                 backend: str = "virtual",
                 engine_options: dict | None = None,
                 events_out: str | None = None,
                 live: bool = False):
        if particles.n == 0:
            raise ValueError("cannot simulate zero particles")
        if p < 1:
            raise ValueError("need at least one processor")
        # Resolve the kernel tier once on the host so a numba request
        # without numba warns exactly once (the engines resolve quietly).
        self.kernel_tier = _compiled.resolve_tier(config.kernel_tier,
                                                  warn=True)
        self.particles = particles
        self.config = config
        self.p = p
        self.profile = profile
        self.root = root if root is not None else particles.bounding_box()
        limit = (_morton.MAX_BITS_2D if particles.dims == 2
                 else _morton.MAX_BITS_3D)
        self.bits = bits if bits is not None else min(12, limit)
        if not config.grid_level <= self.bits <= limit:
            raise ValueError(
                f"bits must lie in [{config.grid_level}, {limit}]"
            )
        if config.scheme == "spsa" and p > config.clusters(particles.dims):
            raise ValueError(
                f"SPSA needs r >= p: {config.clusters(particles.dims)} "
                f"clusters < {p} processors"
            )
        self.recv_timeout = recv_timeout
        self.fault_plan = fault_plan
        self.reliable = reliable
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every
        if backend not in ("virtual", "process"):
            raise ValueError(
                f"backend must be 'virtual' or 'process', got {backend!r}"
            )
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        self.checkpoint_keep = checkpoint_keep
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.max_restarts = max_restarts
        if restart_backoff < 0:
            raise ValueError("restart_backoff must be non-negative")
        self.restart_backoff = restart_backoff
        if resume and checkpoint_dir is None:
            raise ValueError(
                "resume=True needs checkpoint_dir (a durable checkpoint "
                "directory to resume from)"
            )
        self.resume = resume
        if engine_options and backend != "process":
            raise ValueError("engine_options apply to backend='process'")
        self.engine_options = dict(engine_options or {})
        if (events_out or live) and backend != "process":
            raise ValueError(
                "live telemetry (events_out / live) samples the shared "
                "telemetry board; it needs backend='process'"
            )
        self.events_out = events_out
        self.live = live
        if (fault_plan is not None and fault_plan.any_process_faults
                and backend != "process"):
            raise ValueError(
                "fault plan demands real process actions (kill / "
                "stall_heartbeat); they need backend='process'"
            )

    def _shards(self) -> list[ParticleSet]:
        keys = morton_keys(self.particles.positions, self.root.lo,
                           self.root.side, self.bits)
        order = np.argsort(keys, kind="stable")
        chunks = np.array_split(order, self.p)
        return [self.particles.subset(c) for c in chunks]

    def _make_store(self) -> tuple[CheckpointStore | None, str | None]:
        """Build the checkpoint store; returns ``(store, tmp_dir)`` with
        ``tmp_dir`` set when a throwaway directory must be removed after
        the run."""
        want = (self.checkpoint_every is not None
                or self.checkpoint_dir is not None)
        if not want:
            return None, None
        if self.checkpoint_dir is not None:
            return DiskCheckpointStore(self.checkpoint_dir, self.p,
                                       keep=self.checkpoint_keep), None
        if self.backend == "process":
            # Rank processes cannot write into host memory: durability
            # through a throwaway on-disk store.
            tmp = tempfile.mkdtemp(prefix="repro-ckpt-")
            return DiskCheckpointStore(tmp, self.p,
                                       keep=self.checkpoint_keep), tmp
        return CheckpointStore(self.p, keep=self.checkpoint_keep), None

    def _recovery_args(self, store: CheckpointStore
                       ) -> tuple[int, list[tuple]] | None:
        """Restart state from the newest intact common checkpoint.

        A corrupt level (torn by the crash that triggered recovery, or
        bit-rotted on disk) is discarded and the previous common
        boundary tried; the discard shrinks the step set, so the loop
        terminates.
        """
        while True:
            s = store.latest_common_step()
            if s is None:
                return None
            try:
                return s, [(None, store.get(r, s))
                           for r in range(self.p)]
            except CheckpointCorruptError:
                store.discard_step(s)

    def run(self, steps: int = 1, dt: float | None = None,
            trace: bool = False,
            wall_trace: bool | None = None) -> SimulationResult:
        """Run ``steps`` time-steps; with ``trace=True`` the result also
        carries a :class:`~repro.machine.trace.Trace` of the (final) run
        — tracing never charges any virtual clock, so traced and
        untraced runs have bitwise-identical virtual times.

        ``wall_trace`` adds measured wall-clock tracks (phases,
        transport operations, checkpoint writes) beside the virtual
        tracks; defaults to ``trace`` on the process backend, off on
        the virtual backend.  Requires ``trace=True``."""
        if steps < 1:
            raise ValueError("need at least one step")
        if wall_trace is None:
            wall_trace = trace and self.backend == "process"
        if wall_trace and not trace:
            raise ValueError("wall_trace=True requires trace=True")
        plan = self.fault_plan
        store, tmp_dir = self._make_store()
        host_metrics: MetricsRegistry | None = None
        if store is not None:
            host_metrics = MetricsRegistry()
            # Pre-create the recovery counters so a clean checkpointed
            # run reports explicit zeros, not absence.
            host_metrics.counter("recovery.restarts")
            host_metrics.counter("recovery.rollback_steps")
        resumed_from: int | None = None
        if self.resume:
            recovered = self._recovery_args(store)
            if recovered is None:
                raise CheckpointError(
                    f"resume requested but {self.checkpoint_dir!r} holds "
                    f"no common checkpoint across all {self.p} ranks"
                )
            resumed_from, rank_args = recovered
            if resumed_from > steps:
                raise ValueError(
                    f"checkpoint is at step {resumed_from}, beyond the "
                    f"requested {steps} step(s); raise steps to resume"
                )
        else:
            rank_args = [(shard, None) for shard in self._shards()]
        recoveries = 0
        restarts = 0
        if self.backend == "process":
            from repro.runtime import ProcessEngine, WorkerLostError
            engine_cls = ProcessEngine
            recoverable: tuple = (RankCrashedError, WorkerLostError)
            engine_kw = dict(self.engine_options)
        else:
            engine_cls = Engine
            recoverable = (RankCrashedError,)
            engine_kw = {}
        # Live telemetry plumbing (process backend only, off by default).
        elog = display = None
        if self.events_out is not None or self.live:
            from repro.runtime.telemetry import EventLog, LiveDisplay
            if self.events_out is not None:
                elog = EventLog(self.events_out)
                elog.emit("run_start", scheme=self.config.scheme,
                          p=self.p, n=self.particles.n, steps=steps,
                          backend=self.backend)
            if self.live:
                display = LiveDisplay(steps)
            seen = {"step": -1, "ckpt": -1}

            def _on_rows(rows):
                if display is not None:
                    display.update(rows)
                if elog is None:
                    return
                lead = min(r.step for r in rows)
                if lead > seen["step"]:
                    seen["step"] = lead
                    elog.emit_step(lead, rows)
                ck = min(r.ckpt_step for r in rows)
                if ck > seen["ckpt"]:
                    seen["ckpt"] = ck
                    elog.emit("checkpoint", step=ck)

            engine_kw["on_telemetry"] = _on_rows
            engine_kw.setdefault("telemetry_interval", 0.5)
        t_run0 = time.monotonic()
        report = None
        try:
            while True:
                engine = engine_cls(self.p, self.profile,
                                    recv_timeout=self.recv_timeout,
                                    fault_plan=plan,
                                    reliable=self.reliable, **engine_kw)
                try:
                    # A fresh tracer per attempt: after a crash rollback
                    # the re-execution's trace replaces the aborted one.
                    report = engine.run(
                        _rank_main, self.config, self.root, self.bits,
                        steps, dt, self.checkpoint_every, store,
                        rank_args=rank_args,
                        tracer=Tracer(self.p) if trace else None,
                        wall_trace=wall_trace,
                    )
                    break
                except recoverable as failure:
                    if elog is not None \
                            and getattr(failure, "kind", None) is not None:
                        elog.emit(
                            "worker_lost", rank=failure.rank,
                            kind=failure.kind,
                            detail=[d.describe()
                                    for d in failure.diagnostics])
                    if store is None:
                        raise
                    t_rec = time.monotonic()
                    recovered = self._recovery_args(store)
                    if recovered is None:
                        raise
                    if isinstance(failure, RankCrashedError):
                        # Replace the failed node; its planned crash is
                        # spent and must not fire in the re-execution.
                        plan = plan.without_crash(failure.rank)
                    else:
                        # Real worker loss: bounded respawn budget with
                        # exponential backoff before the next attempt.
                        if restarts >= self.max_restarts:
                            raise
                        restarts += 1
                        if plan is not None:
                            plan = plan.without_process_faults(
                                failure.rank)
                        time.sleep(min(
                            self.restart_backoff * 2.0 ** (restarts - 1),
                            10.0))
                    s, rank_args = recovered
                    # Rollback depth: furthest boundary any rank had
                    # durably reached beyond the common restart point
                    # (plus the failing attempt's own progress reports).
                    furthest = max(
                        (sf[-1] for sf in (store.steps_for(r)
                                           for r in range(self.p)) if sf),
                        default=s)
                    for d in getattr(failure, "diagnostics", []) or []:
                        furthest = max(furthest, d.last_step)
                    recoveries += 1
                    host_metrics.counter("recovery.restarts").inc()
                    host_metrics.counter("recovery.rollback_steps").inc(
                        max(0, furthest - s))
                    if elog is not None:
                        elog.emit("recovery", restart=recoveries,
                                  resume_step=s,
                                  rollback_steps=max(0, furthest - s))
                    quiesce = getattr(engine, "last_quiesce_seconds",
                                      None) or 0.0
                    host_metrics.histogram(
                        "recovery.quiesce_seconds").observe(quiesce)
                    host_metrics.histogram(
                        "recovery.wall_seconds").observe(
                        quiesce + time.monotonic() - t_rec)
        finally:
            if display is not None:
                display.finish()
            if elog is not None:
                elog.emit(
                    "run_end", ok=report is not None, steps=steps,
                    parallel_time=(report.parallel_time
                                   if report is not None else None),
                    recoveries=recoveries,
                    wall_seconds=round(time.monotonic() - t_run0, 6))
                elog.close()
            if tmp_dir is not None:
                shutil.rmtree(tmp_dir, ignore_errors=True)

        n = self.particles.n
        d = self.particles.dims
        values = (np.zeros(n) if self.config.mode == "potential"
                  else np.zeros((n, d)))
        positions = np.zeros((n, d))
        velocities = np.zeros((n, d))
        id_to_slot = {int(i): s for s, i in enumerate(self.particles.ids)}
        for out in report.values:
            slots = np.array([id_to_slot[int(i)] for i in out["ids"]],
                             dtype=np.int64)
            if slots.size:
                values[slots] = out["values"]
                positions[slots] = out["positions"]
                velocities[slots] = out["velocities"]
        step_results = [
            [report.values[r]["steps"][s] for r in range(self.p)]
            for s in range(steps)
        ]
        return SimulationResult(
            run=report, config=self.config, values=values,
            positions=positions, velocities=velocities,
            steps=step_results, recoveries=recoveries,
            resumed_from=resumed_from, host_metrics=host_metrics,
        )
