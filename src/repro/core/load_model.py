"""Load accounting for the function-shipping schemes (Section 3.3).

"For function-shipping schemes [tracking per-particle work] will not work
since the load is associated with the tree nodes and not the particles...
each node in the tree keeps track of the number of particles it interacts
with."  The traversal already increments those per-node counters; this
module turns them into the units each balancer consumes:

* per-*cluster* loads for SPDA (one number per owned grid cell), and
* per-*particle* loads for DPDA (node counts attributed down the tree).
"""

from __future__ import annotations

import numpy as np

from repro.core.costzones import particle_loads_from_tree
from repro.core.tree_build import LocalSubtree


def cluster_loads(subtrees: list[LocalSubtree]) -> dict[int, float]:
    """Measured load per owned cluster: the sum of interaction counters
    over the cluster's subtree (includes work served for other ranks —
    the defining property of function-shipping load)."""
    return {
        st.cell.path_key: float(st.tree.interactions.sum())
        for st in subtrees if st.tree is not None
    }


def particle_loads(subtrees: list[LocalSubtree],
                   n_local: int) -> np.ndarray:
    """Per-local-particle loads for DPDA, aligned with the rank's
    particle arrays."""
    loads = np.zeros(n_local)
    for st in subtrees:
        if st.tree is None:
            continue
        loads[st.local_idx] = particle_loads_from_tree(st.tree)
    return loads


def reset_interaction_counters(subtrees: list[LocalSubtree]) -> None:
    for st in subtrees:
        if st.tree is not None:
            st.tree.interactions[:] = 0
