"""Particle bins and the function-shipping wire protocol (Section 3.2).

Remote interaction requests — (particle coordinates, branch key) records —
are collected into per-destination *bins* of ``bin_capacity`` particles
(the paper uses ~100, "selected so that the interprocessor communication
latency and memory latency at remote processor can be amortized over
several particles") and shipped when full.

Flow control: "we do not allow two bins to be outstanding between the
same source-destination pair...  processor i must stop processing local
nodes and process outstanding nodes received from other processors."
Sends are buffered (eager protocol), so the rule is modelled rather than
enforced by blocking: every oversubscribed send is counted as a
flow-control stall, and the round-trip latency of each bin is folded into
the requester's clock when its result is received.  The service and
collection loops run in a fixed rank order, which keeps every virtual
clock fully deterministic regardless of real thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.machine.comm import Comm
from repro.machine.costmodel import (
    FORCE_RECORD_BYTES,
    PARTICLE_RECORD_BYTES,
    POTENTIAL_RECORD_BYTES,
)

#: Tags for the two directions of function-shipping traffic.
TAG_REQUEST = 7001
TAG_RESULT = 7002


@dataclass
class RequestBin:
    """A bin of remote-interaction requests bound for one processor."""

    slots: np.ndarray    # sender-local particle slots (echoed back)
    keys: np.ndarray     # branch keys, one per record
    coords: np.ndarray   # (n, d) particle coordinates

    @property
    def n(self) -> int:
        return self.slots.size

    @property
    def nbytes(self) -> int:
        return PARTICLE_RECORD_BYTES * self.n


@dataclass
class ResultBin:
    """Computed potentials/forces heading back to the requester."""

    slots: np.ndarray
    values: np.ndarray   # (n,) potentials or (n, d) forces

    @property
    def n(self) -> int:
        return self.slots.size

    @property
    def nbytes(self) -> int:
        per = (POTENTIAL_RECORD_BYTES if self.values.ndim == 1
               else FORCE_RECORD_BYTES)
        return per * self.n


@dataclass
class ShipStats:
    """Per-rank function-shipping counters (for the Section 4.2 benches)."""

    request_bins_sent: int = 0
    request_records_sent: int = 0
    request_bytes_sent: int = 0
    result_records_returned: int = 0
    flow_control_stalls: int = 0


class BinManager:
    """Accumulates, ships, serves and drains function-shipping bins."""

    def __init__(self, comm: Comm, capacity: int, dims: int,
                 serve: Callable[[RequestBin], np.ndarray],
                 accumulate: Callable[[np.ndarray, np.ndarray], None]):
        """
        Parameters
        ----------
        serve:
            Computes interaction values for a request bin's records
            (owner-side work: the entire-subtree evaluation).
        accumulate:
            Called with (slots, values) when a result bin returns.
        """
        if capacity < 1:
            raise ValueError(f"bin capacity must be >= 1, got {capacity}")
        self.comm = comm
        self.capacity = capacity
        self.dims = dims
        self._serve = serve
        self._accumulate = accumulate
        self._pending: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        self._pending_count: dict[int, int] = {}
        self._outstanding: dict[int, int] = {}
        self.records_sent = 0
        self.records_received_back = 0
        self.records_served = 0
        self.stats = ShipStats()
        self._sent_records_to: dict[int, int] = {}
        self._bins_sent_to: dict[int, int] = {}

    # ------------------------------------------------------------- sending
    def add_requests(self, dst: int, slots: np.ndarray, keys: np.ndarray,
                     coords: np.ndarray) -> None:
        """Queue records for ``dst``; ships bins as they fill."""
        if not (slots.size == keys.size == coords.shape[0]):
            raise ValueError("request record arrays disagree in length")
        if slots.size == 0:
            return
        if dst == self.comm.rank:
            raise ValueError("local interactions are not shipped")
        self._pending.setdefault(dst, []).append((slots, keys, coords))
        self._pending_count[dst] = self._pending_count.get(dst, 0) + slots.size
        while self._pending_count.get(dst, 0) >= self.capacity:
            self._ship(dst, self.capacity)

    def flush(self) -> None:
        """Ship every partially filled bin (end of the traversal phase)."""
        for dst in sorted(self._pending):
            while self._pending_count.get(dst, 0) > 0:
                self._ship(dst, self.capacity)

    def _take(self, dst: int, n: int) -> RequestBin:
        slots_parts, keys_parts, coords_parts = [], [], []
        taken = 0
        chunks = self._pending[dst]
        while taken < n and chunks:
            s, k, c = chunks[0]
            room = n - taken
            if s.size <= room:
                slots_parts.append(s)
                keys_parts.append(k)
                coords_parts.append(c)
                taken += s.size
                chunks.pop(0)
            else:
                slots_parts.append(s[:room])
                keys_parts.append(k[:room])
                coords_parts.append(c[:room])
                chunks[0] = (s[room:], k[room:], c[room:])
                taken += room
        self._pending_count[dst] -= taken
        return RequestBin(
            slots=np.concatenate(slots_parts),
            keys=np.concatenate(keys_parts),
            coords=np.concatenate(coords_parts),
        )

    def _ship(self, dst: int, n: int) -> None:
        n = min(n, self._pending_count.get(dst, 0))
        if n == 0:
            return
        if self._outstanding.get(dst, 0) > 0:
            # One-outstanding-bin rule: a real machine would stop local
            # work here and serve remote requests until the previous bin
            # is acknowledged.  With buffered sends the stall is recorded
            # (its round-trip latency still reaches the clock when the
            # result is received).
            self.stats.flow_control_stalls += 1
        bin_ = self._take(dst, n)
        self.comm.send(bin_, dst, tag=TAG_REQUEST, nbytes=bin_.nbytes)
        self._outstanding[dst] = self._outstanding.get(dst, 0) + 1
        self._bins_sent_to[dst] = self._bins_sent_to.get(dst, 0) + 1
        self.records_sent += bin_.n
        self._sent_records_to[dst] = \
            self._sent_records_to.get(dst, 0) + bin_.n
        self.stats.request_bins_sent += 1
        self.stats.request_records_sent += bin_.n
        self.stats.request_bytes_sent += bin_.nbytes

    def stats_per_destination(self) -> dict[int, int]:
        """Records shipped per destination rank."""
        return dict(self._sent_records_to)

    # ------------------------------------------------------------ receiving
    def _serve_one(self, src: int, bin_: RequestBin) -> None:
        values = self._serve(bin_)
        result = ResultBin(slots=bin_.slots, values=values)
        self.comm.send(result, src, tag=TAG_RESULT, nbytes=result.nbytes)
        self.records_served += bin_.n

    def _accept_result(self, src: int, rbin: ResultBin) -> None:
        self._accumulate(rbin.slots, rbin.values)
        self.records_received_back += rbin.n
        self.stats.result_records_returned += rbin.n
        self._outstanding[src] = self._outstanding.get(src, 1) - 1

    def complete(self) -> None:
        """Finish the exchange: flush, swap bin counts, serve every
        incoming request, collect every result.

        Requests are served in virtual-arrival order (FIFO by arrival,
        as the paper's polling loop would), which is deterministic
        because sender clocks are.  Per-pair sentinel markers replace a
        terminating collective, so a rank starts serving from its *own*
        clock — service overlaps other ranks' traversal exactly as on
        the real machine.  Deadlock-free by construction: all requests
        and sentinels are buffered on the wire before any rank blocks,
        and all results are sent during the service pass.
        """
        self.flush()
        comm = self.comm
        # End-of-stream markers: each rank tells every other how many
        # request bins it sent (a tiny control message; the decentralized
        # replacement for a terminating barrier, so service can begin as
        # soon as the first request virtually arrives).
        for dst in range(comm.size):
            if dst != comm.rank:
                comm.send({"sentinel": self._bins_sent_to.get(dst, 0)},
                          dst, tag=TAG_REQUEST, nbytes=4)
        def is_sentinel(p) -> bool:
            return isinstance(p, dict) and "sentinel" in p

        raw = []
        for src in range(comm.size):
            if src != comm.rank:
                msgs = comm.collect_raw(src, TAG_REQUEST, is_sentinel)
                # The mailbox matches by earliest *virtual arrival*, and a
                # retransmitted or delayed bin can arrive after the
                # sentinel that announces it — so trust the sentinel's
                # count, not the ordering, and keep collecting until every
                # announced bin is in hand.
                expected = next(m.payload["sentinel"] for m in msgs
                                if is_sentinel(m.payload))
                got = sum(1 for m in msgs if not is_sentinel(m.payload))
                while got < expected:
                    msgs.extend(comm.collect_raw(
                        src, TAG_REQUEST, lambda p: True,
                    ))
                    got += 1
                raw.extend(msgs)
        raw.sort()
        for msg in raw:
            comm.charge_recv(msg)
            if isinstance(msg.payload, dict) and "sentinel" in msg.payload:
                continue
            self._serve_one(msg.src, msg.payload)
        to_collect = {dst: n for dst, n in self._bins_sent_to.items() if n}
        for msg in comm.recv_sorted(to_collect, TAG_RESULT):
            self._accept_result(msg.src, msg.payload)
