"""DPDA: message-passing Costzones over the interaction-counting tree.

Paper, Section 3.3.3: every tree node counts the particles it interacted
with; counts are summed up the tree; the root then holds the total work
W; processors locate the load boundaries ``i W / p`` by in-order (Morton
order) traversal and ship the particles between boundaries to processor
``i`` with one all-to-all personalized communication.

Because every tree node's particles form a contiguous slice of the
Morton order (a build invariant), "in-order traversal of the tree" is
equivalent to a prefix scan along the Morton-sorted particle sequence
once node loads are attributed to the particles below them —
:func:`particle_loads_from_tree` does that attribution, and
:func:`costzones_owners` finds the boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.bh.tree import Tree


def particle_loads_from_tree(tree: Tree) -> np.ndarray:
    """Per-particle load, in *original particle index* order.

    Each node's interaction count is spread evenly over the particles in
    its Morton slice; summing over all ancestors gives every particle the
    share of tree work its position is responsible for.  (Function
    shipping attributes work to tree nodes, not particles — this is the
    translation back to movable units.)
    """
    loads_sorted = np.zeros(tree.n_particles)
    for node in range(tree.nnodes):
        if tree.is_remote(node):
            continue
        cnt = int(tree.interactions[node])
        if cnt == 0:
            continue
        lo, hi = int(tree.start[node]), int(tree.end[node])
        if hi > lo:
            loads_sorted[lo:hi] += cnt / (hi - lo)
    loads = np.zeros(tree.n_particles)
    loads[tree.order] = loads_sorted
    return loads


def costzones_owners(sorted_loads: np.ndarray, p: int) -> np.ndarray:
    """Owner of each Morton-ordered particle: costzones boundaries.

    ``sorted_loads`` must already be in global Morton order; the result
    assigns contiguous runs to processors 0..p-1 with boundaries at the
    prefix loads ``i W / p`` (midpoint rule)."""
    loads = np.asarray(sorted_loads, dtype=np.float64)
    if loads.ndim != 1:
        raise ValueError("sorted_loads must be 1-D")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if p <= 0:
        raise ValueError(f"processor count must be positive, got {p}")
    if loads.size == 0:
        return np.zeros(0, dtype=np.int64)
    total = loads.sum()
    if total == 0.0:
        return (np.arange(loads.size) * p // loads.size).astype(np.int64)
    prefix = np.cumsum(loads)
    midpoints = prefix - 0.5 * loads
    owners = np.floor(midpoints * p / total).astype(np.int64)
    return np.clip(owners, 0, p - 1)


def split_by_key_boundaries(keys: np.ndarray, owners: np.ndarray,
                            p: int) -> np.ndarray:
    """Snap a per-particle owner array to Morton *key* boundaries.

    Particles with identical keys cannot be separated into different
    subtrees (they occupy the same smallest cell), so runs of equal keys
    are given to the owner of the run's first particle.  Input arrays are
    in Morton-sorted order.
    """
    keys = np.asarray(keys)
    owners = np.asarray(owners).copy()
    if keys.shape != owners.shape:
        raise ValueError("keys and owners must have equal length")
    if keys.size == 0:
        return owners
    if np.any(np.diff(keys) < 0):
        raise ValueError("keys must be sorted")
    run_starts = np.flatnonzero(np.concatenate(([True], np.diff(keys) > 0)))
    run_ids = np.cumsum(np.concatenate(([True], np.diff(keys) > 0))) - 1
    return owners[run_starts][run_ids]
