"""Branch-node summaries, keys, and the two lookup schemes.

A *branch node* is the root of a wholly-owned subtree — "the processor
domains at the coarsest level" (Section 3.1.1).  Every branch node gets a
unique integer key; remote interaction requests carry the key, and the
receiving processor locates the subtree through either

* a **hash table** of keys (with real fixed-size buckets and chains, so
  the collision behaviour the paper discusses is observable), or
* a **sorted table** of keys searched by binary search,

the two schemes of Section 4.2.3 (which the paper found indistinguishable
because each lookup amortises over a whole subtree evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import Cell


def branch_key(cell: Cell, dims: int) -> int:
    """Unique integer key of a cell across *all* depths.

    The path key alone is ambiguous (cell 0 exists at every depth); the
    standard fix is the "anchored" key: prepend a 1-bit above the path —
    ``key = path_key | 1 << (dims * depth)``.  Keys of different cells
    never collide and the key encodes the cell exactly.
    """
    return cell.path_key | (1 << (dims * cell.depth))


def cell_of_branch_key(key: int, dims: int) -> Cell:
    """Inverse of :func:`branch_key`."""
    if key < 1:
        raise ValueError(f"invalid branch key {key}")
    depth, probe = 0, key
    while probe > 1:
        probe >>= dims
        depth += 1
    anchor = 1 << (dims * depth)
    return Cell(depth, key ^ anchor)


@dataclass
class BranchInfo:
    """What one processor publishes about one of its branch nodes.

    ``coeffs`` carries the multipole expansion about the cell center when
    the run uses multipoles (the tree merge shifts it with M2M); for
    monopole runs it is ``None`` and ``mass``/``com`` suffice.
    """

    key: int
    owner: int
    cell: Cell
    count: int
    mass: float
    com: np.ndarray
    coeffs: np.ndarray | None = None
    #: measured interactions under this branch last step (DPDA input)
    load: float = 0.0

    def wire_bytes(self, degree: int, dims: int = 3) -> int:
        """Bytes this summary occupies in the branch broadcast."""
        base = 8 + 4 + 4 + 8 + 4 * dims  # key, owner, count, mass, com
        if self.coeffs is not None:
            base += 8 * self.coeffs.size  # complex64 pairs on the wire
        return base

    @property
    def nbytes(self) -> int:
        """Wire size; picked up by the communicator's payload estimator
        so collectives carrying branch summaries are charged truthfully."""
        return self.wire_bytes(degree=0, dims=int(np.size(self.com)))


class SortedBranchIndex:
    """Sorted key table + binary search (Section 4.2.3, scheme 2)."""

    def __init__(self, branches: list[BranchInfo]):
        self._branches = sorted(branches, key=lambda b: b.key)
        self._keys = np.array([b.key for b in self._branches],
                              dtype=np.int64)
        if self._keys.size > 1 and np.any(np.diff(self._keys) == 0):
            raise ValueError("duplicate branch keys")
        #: probes performed (comparisons), for the 4.2.3 micro-benchmark
        self.probes = 0

    def __len__(self) -> int:
        return len(self._branches)

    def lookup(self, key: int) -> BranchInfo:
        lo, hi = 0, self._keys.size
        while lo < hi:
            mid = (lo + hi) // 2
            self.probes += 1
            if self._keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < self._keys.size and self._keys[lo] == key:
            return self._branches[lo]
        raise KeyError(f"branch key {key} not present")

    def __iter__(self):
        return iter(self._branches)


class HashedBranchIndex:
    """Fixed-size hash table with chaining (Section 4.2.3, scheme 1).

    ``move_to_front`` orders chains by usage frequency — the paper's
    remedy for chaining overhead ("chained lists must be sorted on node
    usage to minimize this overhead").
    """

    def __init__(self, branches: list[BranchInfo],
                 n_buckets: int | None = None,
                 move_to_front: bool = True):
        keys = [b.key for b in branches]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate branch keys")
        self.n_buckets = n_buckets or max(1, len(branches))
        self.move_to_front = move_to_front
        self._buckets: list[list[BranchInfo]] = [
            [] for _ in range(self.n_buckets)
        ]
        self._all = list(branches)
        for b in branches:
            self._buckets[self._hash(b.key)].append(b)
        #: chain links traversed, for the 4.2.3 micro-benchmark
        self.probes = 0

    def _hash(self, key: int) -> int:
        # Fibonacci hashing: good spread for the structured branch keys.
        return ((key * 11400714819323198485) & ((1 << 64) - 1)) \
            % self.n_buckets

    def __len__(self) -> int:
        return len(self._all)

    @property
    def max_chain(self) -> int:
        return max((len(b) for b in self._buckets), default=0)

    def lookup(self, key: int) -> BranchInfo:
        chain = self._buckets[self._hash(key)]
        for i, b in enumerate(chain):
            self.probes += 1
            if b.key == key:
                if self.move_to_front and i > 0:
                    chain.insert(0, chain.pop(i))
                return b
        raise KeyError(f"branch key {key} not present")

    def __iter__(self):
        return iter(self._all)


def make_branch_index(branches: list[BranchInfo], kind: str):
    """Factory for the configured lookup scheme."""
    if kind == "hashed":
        return HashedBranchIndex(branches)
    if kind == "sorted":
        return SortedBranchIndex(branches)
    raise ValueError(f"unknown branch lookup kind {kind!r}")
