"""Top-tree construction from branch nodes (Sections 3.1.1 / 3.1.2).

After local construction every rank publishes its branch summaries; the
top part of the tree (everything above the branch nodes) is then built in
one of two ways:

* **broadcast** — one all-to-all broadcast of branch summaries, after
  which "each processor reconstructs the top parts of the tree
  independently.  This results in some redundant computation but causes
  relatively small overhead."
* **nonreplicated** — branch summaries travel point-to-point to a
  designated owner per internal cell, which computes that node and
  forwards upward; a final all-to-all broadcast distributes the finished
  top levels ("the top levels of the tree are repeatedly accessed...
  this tree construction technique must be augmented with an all-to-all
  broadcast").

Both produce the same :class:`TopTree`; they differ in where the merge
*work* is charged and what travels on the wire, which is exactly the
trade-off the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bh.multipole import MultipoleExpansion3D
from repro.bh.particles import Box
from repro.bh.tree import NO_CHILD, Tree, cell_boxes
from repro.core.branch_nodes import BranchInfo, make_branch_index
from repro.core.partition import Cell
from repro.machine.comm import Comm

#: flops charged per node merge per multipole term (M2M arithmetic).
MERGE_FLOPS_PER_TERM = 8.0


@dataclass
class TopTree:
    """The replicated top of the global tree.

    ``tree`` is a :class:`~repro.bh.tree.Tree` whose leaves are all
    branch cells flagged with their owner; ``node_of_branch`` maps branch
    keys to top-tree leaf ids; ``coeffs`` holds per-node multipole
    expansions about cell centers when the run uses multipoles.
    """

    tree: Tree
    node_of_branch: dict[int, int]
    branch_index: object  # HashedBranchIndex | SortedBranchIndex
    coeffs: np.ndarray | None = None
    expansion: MultipoleExpansion3D | None = None

    @property
    def degree(self) -> int:
        """Multipole degree of the merged expansions (0 = monopole)."""
        return self.expansion.degree if self.expansion is not None else 0

    # Evaluator protocol used by the traversal (same shape as
    # MonopoleExpansion / TreeMultipoles).
    def node_potential(self, node: int, targets: np.ndarray) -> np.ndarray:
        from repro.bh import kernels
        if self.coeffs is None:
            return kernels.point_mass_potential(
                targets, self.tree.com[node], float(self.tree.mass[node])
            )
        rel = np.atleast_2d(targets) - self.tree.center[node]
        return -kernels.G * self.expansion.evaluate(self.coeffs[node], rel)

    def node_force(self, node: int, targets: np.ndarray) -> np.ndarray:
        from repro.bh import kernels
        return kernels.point_mass_force(
            targets, self.tree.com[node], float(self.tree.mass[node])
        )

    # Fused cluster interface for the interaction-list engine (same
    # shape as MonopoleExpansion / TreeMultipoles batch methods).
    @property
    def batch_row_bytes(self) -> int:
        if self.coeffs is None:
            return 8 * (6 * self.tree.dims + 8)
        return 16 * self.expansion.nterms * 4 + 8 * 6 * self.tree.dims

    def batch_potential(self, nodes: np.ndarray,
                        targets: np.ndarray) -> np.ndarray:
        from repro.bh import kernels
        if self.coeffs is None:
            diff = targets - self.tree.com[nodes]
            r2 = np.einsum("ij,ij->i", diff, diff)
            with np.errstate(divide="ignore"):
                inv_r = 1.0 / np.sqrt(r2)
            inv_r[r2 == 0.0] = 0.0
            return -kernels.G * self.tree.mass[nodes] * inv_r
        from repro.bh.multipole import irregular_terms
        rel = targets - self.tree.center[nodes]
        I = irregular_terms(rel, self.expansion.degree)
        return -kernels.G * np.einsum("ij,ij->i", I,
                                      self.coeffs[nodes]).real

    def batch_force(self, nodes: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        from repro.bh import kernels
        diff = targets - self.tree.com[nodes]
        r2 = np.einsum("ij,ij->i", diff, diff)
        zero = r2 == 0.0
        np.sqrt(r2, out=r2)
        with np.errstate(divide="ignore"):
            np.divide(1.0, r2, out=r2)                 # inv_r
        r2[zero] = 0.0
        inv_r3 = r2 * r2
        inv_r3 *= r2
        w = self.tree.mass[nodes] * inv_r3
        w *= -kernels.G
        return w[:, None] * diff

    def compiled_cluster_data(self, mode: str):
        """Forces and monopole potentials are point-mass arithmetic
        (compiled-eligible); merged multipole potentials stay on the
        numpy tier (``None`` → fall back)."""
        if mode == "potential" and self.coeffs is not None:
            return None
        return self.tree.com, self.tree.mass, 0.0


def _check_disjoint(branches: list[BranchInfo], dims: int) -> None:
    for i, a in enumerate(branches):
        for b in branches[i + 1:]:
            if a.cell.contains_cell(b.cell, dims) or \
                    b.cell.contains_cell(a.cell, dims):
                raise ValueError(
                    f"branch cells overlap: {a.cell} (rank {a.owner}) and "
                    f"{b.cell} (rank {b.owner})"
                )


def build_top_tree(branches: list[BranchInfo], root: Box, degree: int,
                   lookup_kind: str = "hashed",
                   check_disjoint: bool = True) -> TopTree:
    """Deterministically build the replicated top tree from summaries."""
    if not branches:
        raise ValueError("cannot build a top tree from zero branch nodes")
    dims = root.dims
    if check_disjoint:
        _check_disjoint(branches, dims)
    by_key = {b.key: b for b in branches}
    if len(by_key) != len(branches):
        raise ValueError("duplicate branch keys in merge")

    # Collect all cells: branches plus every ancestor up to the root.
    cells: set[Cell] = set()
    for b in branches:
        cells.add(b.cell)
        c = b.cell
        while c.depth > 0:
            c = c.parent(dims)
            cells.add(c)
    cells.add(Cell(0, 0))
    ordered = sorted(cells, key=lambda c: (c.depth, c.path_key))
    node_id = {c: i for i, c in enumerate(ordered)}
    n = len(ordered)

    nkids = 1 << dims
    children = np.full((n, nkids), NO_CHILD, dtype=np.int32)
    depth = np.array([c.depth for c in ordered], dtype=np.int32)
    path_key = np.array([c.path_key for c in ordered], dtype=np.int64)
    center, half = cell_boxes(root, depth, path_key)
    counts = np.zeros(n, dtype=np.int64)
    mass = np.zeros(n)
    com = np.zeros((n, dims))
    remote_owner = np.full(n, -1, dtype=np.int32)
    remote_key = np.full(n, -1, dtype=np.int64)

    for c, i in node_id.items():
        if c.depth > 0:
            parent = node_id[c.parent(dims)]
            children[parent][c.path_key & (nkids - 1)] = i

    branch_node_ids: dict[int, int] = {}
    for b in branches:
        i = node_id[b.cell]
        remote_owner[i] = b.owner
        remote_key[i] = b.key
        counts[i] = b.count
        mass[i] = b.mass
        com[i] = b.com
        branch_node_ids[b.key] = i

    # Bottom-up monopole merge (children always have larger ids than
    # parents because ordering is by depth).
    for i in range(n - 1, -1, -1):
        if remote_owner[i] >= 0:
            continue
        kids = children[i][children[i] != NO_CHILD]
        if kids.size == 0:
            continue
        counts[i] = counts[kids].sum()
        m = mass[kids].sum()
        mass[i] = m
        if m > 0:
            com[i] = (mass[kids, None] * com[kids]).sum(axis=0) / m
        else:
            com[i] = center[i]

    tree = Tree(
        root_box=root, dims=dims, leaf_capacity=1,
        max_depth=max(int(depth.max()), 1),
        children=children, depth=depth, path_key=path_key,
        center=center, half=half,
        start=np.zeros(n, dtype=np.int64), end=counts.astype(np.int64),
        order=np.zeros(0, dtype=np.int64),
        mass=mass, com=com,
        remote_owner=remote_owner, remote_key=remote_key,
    )

    coeffs = None
    expansion = None
    if degree > 0:
        expansion = MultipoleExpansion3D(degree)
        coeffs = np.zeros((n, expansion.nterms), dtype=np.complex128)
        for b in branches:
            if b.coeffs is None:
                raise ValueError(
                    f"branch {b.key} lacks multipole coefficients in a "
                    f"degree-{degree} run"
                )
            coeffs[branch_node_ids[b.key]] = b.coeffs
        for i in range(n - 1, -1, -1):
            if remote_owner[i] >= 0:
                continue
            kids = children[i][children[i] != NO_CHILD]
            for c in kids:
                shift = center[c] - center[i]
                coeffs[i] += expansion.m2m(coeffs[c], shift)

    return TopTree(
        tree=tree, node_of_branch=branch_node_ids,
        branch_index=make_branch_index(branches, lookup_kind),
        coeffs=coeffs, expansion=expansion,
    )


def _merge_flops(n_internal: int, dims: int, degree: int) -> float:
    terms = max(degree, 1) ** 2
    return n_internal * (1 << dims) * MERGE_FLOPS_PER_TERM * terms


def _internal_count(branches: list[BranchInfo], dims: int) -> int:
    cells = set()
    for b in branches:
        c = b.cell
        while c.depth > 0:
            c = c.parent(dims)
            cells.add(c)
    cells.add(Cell(0, 0))
    return len(cells)


def merge_broadcast(comm: Comm, my_branches: list[BranchInfo], root: Box,
                    degree: int, lookup_kind: str = "hashed") -> TopTree:
    """Section 3.1.1: all-to-all broadcast of branches, replicated merge.

    Phases charged: "tree merging" for the redundant local merge work,
    "all-to-all broadcast" for the branch exchange itself.
    """
    dims = root.dims
    with comm.phase("all-to-all broadcast"):
        gathered = comm.allgather(my_branches)
    branches = [b for rank_list in gathered for b in rank_list]
    with comm.phase("tree merging"):
        top = build_top_tree(branches, root, degree, lookup_kind)
        comm.compute(_merge_flops(_internal_count(branches, dims), dims,
                                  degree))
    return top


def merge_nonreplicated(comm: Comm, my_branches: list[BranchInfo],
                        root: Box, degree: int,
                        lookup_kind: str = "hashed") -> TopTree:
    """Section 3.1.2: branches travel to designated parent owners.

    The designation rule: an internal cell is owned by the owner of its
    first branch descendant in Morton order.  Summaries flow upward
    level-by-level point-to-point; the finished top levels are then
    broadcast to everyone.  The merge *work* is charged only at the
    designated owners (that is the scheme's point), the final values are
    identical to :func:`merge_broadcast`.
    """
    dims = root.dims
    # Lightweight structure exchange: (key, owner, count) per branch.
    with comm.phase("all-to-all broadcast"):
        skeleton = comm.allgather(
            [(b.key, b.owner, b.count) for b in my_branches]
        )
    all_keys = sorted(
        (key, owner) for rank_list in skeleton for key, owner, _ in rank_list
    )
    if not all_keys:
        raise ValueError("no branch nodes anywhere")
    first_owner = all_keys[0][1]

    with comm.phase("tree merging"):
        # Branch summaries (the heavy payload) go point-to-point to the
        # designated root owner, which would compute the internal nodes.
        if comm.rank != first_owner and my_branches:
            nbytes = sum(b.wire_bytes(degree, dims) for b in my_branches)
            comm.send(my_branches, first_owner, tag=71, nbytes=nbytes)
            branches = None
        elif comm.rank == first_owner:
            branches = list(my_branches)
            senders = {
                owner for rank_list in skeleton
                for _, owner, _ in rank_list if owner != comm.rank
            }
            for src in sorted(senders):
                branches.extend(comm.recv(src=src, tag=71))
            comm.compute(_merge_flops(_internal_count(branches, dims),
                                      dims, degree))
        else:
            branches = None

    # The computed top levels must still reach everyone.
    with comm.phase("all-to-all broadcast"):
        branches = comm.bcast(branches, root=first_owner)

    with comm.phase("tree merging"):
        # Building the local data structure from finished summaries is
        # cheap (no redundant multipole merges charged here).
        top = build_top_tree(branches, root, degree, lookup_kind)
    return top
