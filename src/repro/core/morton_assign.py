"""SPDA: Morton-ordered, load-driven cluster assignment.

Paper, Section 3.3.2: clusters keep their static grid partition but are
assigned to processors as *contiguous runs of the Morton ordering*, sized
by the load each cluster incurred in the previous iteration.  The paper
phrases the rebalance incrementally (import from / export to the Morton
neighbour); :func:`morton_partition` computes the equivalent prefix-sum
split directly, and :func:`balance_clusters` applies it given measured
loads, also reporting how many clusters changed owner (the "cluster data
movement" cost).
"""

from __future__ import annotations

import numpy as np


def morton_partition(loads: np.ndarray, p: int) -> np.ndarray:
    """Assign each of ``len(loads)`` Morton-ordered clusters an owner in
    ``[0, p)`` such that every owner's run is contiguous and loads are as
    even as prefix splitting allows.

    Cluster i goes to ``floor(prefix_load(i) * p / W)`` where the prefix
    is taken at the cluster's *midpoint* — the standard costzones rule,
    robust to zero-load clusters at the ends.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads must be a non-empty 1-D array")
    if np.any(loads < 0):
        raise ValueError("cluster loads must be non-negative")
    if p <= 0:
        raise ValueError(f"processor count must be positive, got {p}")
    total = loads.sum()
    if total == 0.0:
        # Degenerate: spread clusters evenly by count.
        return (np.arange(loads.size) * p // loads.size).astype(np.int64)
    prefix = np.cumsum(loads)
    midpoints = prefix - 0.5 * loads
    owners = np.floor(midpoints * p / total).astype(np.int64)
    return np.clip(owners, 0, p - 1)


def balance_clusters(loads: np.ndarray, current_owners: np.ndarray | None,
                     p: int) -> tuple[np.ndarray, int]:
    """One SPDA rebalance step.

    Returns ``(new_owners, moved)`` where ``moved`` is the number of
    clusters whose owner changed (each costs a cluster-data transfer;
    the paper argues this is small because "cluster loads are not
    expected to change drastically after each iteration").
    """
    new_owners = morton_partition(loads, p)
    if current_owners is None:
        moved = int(new_owners.size)
    else:
        current_owners = np.asarray(current_owners)
        if current_owners.shape != new_owners.shape:
            raise ValueError("current_owners has the wrong length")
        moved = int((current_owners != new_owners).sum())
    return new_owners, moved


def partition_imbalance(loads: np.ndarray, owners: np.ndarray,
                        p: int) -> float:
    """max/mean processor load under an assignment (1.0 = perfect)."""
    loads = np.asarray(loads, dtype=np.float64)
    owners = np.asarray(owners)
    per_proc = np.zeros(p)
    np.add.at(per_proc, owners, loads)
    mean = per_proc.mean()
    return float(per_proc.max() / mean) if mean > 0 else 1.0
